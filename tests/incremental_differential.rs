//! Cross-crate differential suite: every *real* knowledge-integration method
//! (LoRA, prefix tuning, InfuserKI — with non-trivially nudged weights) runs
//! bitwise-identically through the KV-cached samplers and the tape path with
//! serial kernels; GRACE (non-causal ε-ball lookup) declares itself
//! incompatible and the cached samplers fall back to full recomputation.
//!
//! The kernel thread override is process-global; this file serializes every
//! test behind one lock.

use std::sync::Mutex;

use infuserki::baselines::grace::{Grace, GraceConfig};
use infuserki::baselines::lora::{LoraConfig, LoraMethod};
use infuserki::baselines::prefix::{PrefixConfig, PrefixTuning};
use infuserki::baselines::VisitTrainable;
use infuserki::core::{InfuserKiConfig, InfuserKiMethod};
use infuserki::nn::{sampler, LayerHook, LmSample, ModelConfig, TransformerLm};
use infuserki::tensor::{kernels, Tape};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 40;

static THREADS: Mutex<()> = Mutex::new(());

fn base() -> TransformerLm {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    TransformerLm::new(ModelConfig::tiny(VOCAB), &mut rng)
}

/// Deterministic nonzero nudge so zero-initialized up-projections don't make
/// the method a trivial identity.
fn nudge(p: &mut infuserki::tensor::Param) {
    for (i, w) in p.data_mut().data_mut().iter_mut().enumerate() {
        *w += 0.01 * ((i % 7) as f32 - 3.0);
    }
}

fn lora(b: &TransformerLm) -> LoraMethod {
    let mut m = LoraMethod::new(LoraConfig::default(), b);
    m.visit_trainable_params(&mut nudge);
    m
}

fn prefix(b: &TransformerLm) -> PrefixTuning {
    // Fresh prefix K/V rows are already nonzero.
    PrefixTuning::new(PrefixConfig::default(), b)
}

fn infuserki(b: &TransformerLm) -> InfuserKiMethod {
    let mut c = InfuserKiConfig::for_model(b.n_layers());
    c.bottleneck = 4;
    c.infuser_hidden = 4;
    c.rc_dim = 8;
    let mut m = InfuserKiMethod::new(c, b, 5);
    m.visit_adapters_mut(&mut nudge);
    m
}

fn prompt() -> Vec<usize> {
    vec![3, 10, 17, 24, 31, 2]
}

fn options() -> Vec<Vec<usize>> {
    vec![vec![1], vec![2, 3], vec![4, 5, 6], vec![7, 8]]
}

fn assert_samplers_agree(b: &TransformerLm, hook: &dyn LayerHook, name: &str) {
    let p = prompt();
    let opts = options();
    let cached = sampler::score_options(b, hook, &p, &opts);
    let naive = sampler::score_options_uncached(b, hook, &p, &opts);
    for (i, (x, y)) in cached.iter().zip(&naive).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{name}: option {i} score {x} vs {y}"
        );
    }
    let g_cached = sampler::greedy_decode(b, hook, &p, 12, None);
    let g_naive = sampler::greedy_decode_uncached(b, hook, &p, 12, None);
    assert_eq!(g_cached, g_naive, "{name}: greedy divergence");
    let bm_cached = sampler::beam_search(b, hook, &p, 8, 3, None);
    let bm_naive = sampler::beam_search_uncached(b, hook, &p, 8, 3, None);
    assert_eq!(bm_cached, bm_naive, "{name}: beam divergence");
}

#[test]
fn lora_cached_sampling_is_bitwise_identical() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let m = lora(&b);
    assert!(m.supports_incremental());
    assert_samplers_agree(&b, &m, "lora");
    kernels::set_num_threads(0);
}

#[test]
fn prefix_cached_sampling_is_bitwise_identical() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let m = prefix(&b);
    assert!(m.supports_incremental());
    assert_samplers_agree(&b, &m, "prefix");
    kernels::set_num_threads(0);
}

#[test]
fn infuserki_cached_sampling_is_bitwise_identical() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let m = infuserki(&b);
    let hook = m.hook();
    assert!(hook.supports_incremental());
    assert_samplers_agree(&b, &hook, "infuserki hook");
    // The method doubles as a hook itself; both views must share the path.
    assert_samplers_agree(&b, &m, "infuserki method");
    kernels::set_num_threads(0);
}

#[test]
fn infuserki_prefill_matches_tape_forward_every_length() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let m = infuserki(&b);
    let hook = m.hook();
    let max_seq = b.config().max_seq;
    for n in 1..=max_seq {
        let toks: Vec<usize> = (0..n).map(|i| (i * 11 + 5) % VOCAB).collect();
        let mut tape = Tape::new();
        let full = b.forward(&toks, &hook, &mut tape);
        let (_, cached) = b.prefill(&toks, &hook);
        let fv = tape.value(full);
        assert_eq!(fv.shape(), cached.shape(), "len {n}");
        for (i, (x, y)) in fv.data().iter().zip(cached.data()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "len {n}, element {i}: {x} vs {y}"
            );
        }
    }
    kernels::set_num_threads(0);
}

#[test]
fn infuserki_forked_option_scoring_shares_gate_statistics_correctly() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let m = infuserki(&b);
    let hook = m.hook();
    // Score each option against the cached shared prefix AND standalone; the
    // cumulative gate sums forked from the prefix must not leak between
    // branches (each option sees prefix stats + its own rows only).
    let p = prompt();
    let opts = options();
    let cached = sampler::score_options(&b, &hook, &p, &opts);
    for (i, opt) in opts.iter().enumerate() {
        let naive = b.completion_logprob(&p, opt, &hook);
        assert!(
            cached[i].to_bits() == naive.to_bits(),
            "option {i}: {} vs {naive}",
            cached[i]
        );
    }
    kernels::set_num_threads(0);
}

#[test]
fn grace_opts_out_and_samplers_fall_back() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let mut g = Grace::new(GraceConfig::for_model(b.n_layers()), &b);
    let sample = LmSample::from_completion(&[3, 10, 17], &[24, 31]);
    g.apply_edit(&b, &sample);
    assert!(!g.supports_incremental());
    // Cached entry points must route to the uncached path and still answer.
    assert_samplers_agree(&b, &g, "grace");
    kernels::set_num_threads(0);
}
