//! Cross-crate integration: the full InfuserKI pipeline on a miniature world
//! — generate KG → pre-train base → detect → three-phase training → metrics.

use infuserki::core::dataset::KiDataset;
use infuserki::core::detect::detect_unknown;
use infuserki::core::{train_infuserki, InfuserKiConfig, InfuserKiMethod, TrainConfig};
use infuserki::eval::evaluate_method;
use infuserki::eval::world::{build_world_in, Domain, World, WorldConfig};
use infuserki::nn::NoHook;

fn tiny_world(seed: u64) -> World {
    let dir = std::env::temp_dir().join(format!("infuserki_e2e_{}_{seed}", std::process::id()));
    build_world_in(&WorldConfig::tiny(Domain::Umls, seed), &dir)
}

fn quick_tc() -> TrainConfig {
    TrainConfig {
        epochs_infuser: 1,
        epochs_qa: 2,
        epochs_rc: 1,
        lr: 3e-3,
        lr_infuser: 1e-2,
        batch: 8,
        seed: 3,
    }
}

#[test]
fn full_pipeline_runs_and_reports_metrics() {
    let w = tiny_world(101);
    let det = detect_unknown(&w.base, &NoHook, &w.tokenizer, w.bank.template(0));
    assert_eq!(det.known.len() + det.unknown.len(), w.store.len());
    assert!(!det.unknown.is_empty(), "a tiny base model must miss facts");

    let data = KiDataset::build(&w.store, &w.bank, &w.tokenizer, &det.known, &det.unknown, 1);
    assert!(!data.qa.is_empty());
    assert!(!data.rc.is_empty());

    let mut cfg = InfuserKiConfig::for_model(w.base.n_layers());
    cfg.bottleneck = 6;
    cfg.infuser_hidden = 8;
    cfg.rc_dim = 12;
    let mut method = InfuserKiMethod::new(cfg, &w.base, w.store.n_relations());
    let report = train_infuserki(&w.base, &mut method, &data, &quick_tc());
    assert!(!report.qa_losses.is_empty());
    assert!(report.qa_losses.iter().all(|l| l.is_finite()));

    let eval = evaluate_method(
        &w.base,
        &method.hook(),
        &w.tokenizer,
        &w.bank,
        &det.known,
        &det.unknown,
    );
    assert!((0.0..=1.0).contains(&eval.nr));
    assert!(eval.rr.is_nan() || (0.0..=1.0).contains(&eval.rr));
}

#[test]
fn qa_training_moves_toward_new_knowledge() {
    let w = tiny_world(103);
    let det = detect_unknown(&w.base, &NoHook, &w.tokenizer, w.bank.template(0));
    let data = KiDataset::build(&w.store, &w.bank, &w.tokenizer, &det.known, &det.unknown, 2);
    let mut cfg = InfuserKiConfig::for_model(w.base.n_layers());
    cfg.bottleneck = 6;
    cfg.infuser_hidden = 8;
    cfg.rc_dim = 12;
    let mut method = InfuserKiMethod::new(cfg, &w.base, w.store.n_relations());
    let tc = TrainConfig {
        epochs_qa: 4,
        ..quick_tc()
    };
    let report = train_infuserki(&w.base, &mut method, &data, &tc);
    let first = report.qa_losses.first().unwrap();
    let last = report.qa_losses.last().unwrap();
    assert!(
        last < first,
        "QA loss should decrease over epochs: {first} → {last}"
    );
}

#[test]
fn frozen_base_is_bitwise_unchanged_by_integration() {
    let w = tiny_world(105);
    let det = detect_unknown(&w.base, &NoHook, &w.tokenizer, w.bank.template(0));
    let data = KiDataset::build(&w.store, &w.bank, &w.tokenizer, &det.known, &det.unknown, 3);
    let mut t0 = infuserki::tensor::Tape::new();
    let before_node = w.base.forward(&[2, 3, 4, 5], &NoHook, &mut t0);
    let before = t0.value(before_node).clone();

    let mut cfg = InfuserKiConfig::for_model(w.base.n_layers());
    cfg.bottleneck = 6;
    cfg.infuser_hidden = 8;
    cfg.rc_dim = 12;
    let mut method = InfuserKiMethod::new(cfg, &w.base, w.store.n_relations());
    train_infuserki(&w.base, &mut method, &data, &quick_tc());

    let mut t1 = infuserki::tensor::Tape::new();
    let after_node = w.base.forward(&[2, 3, 4, 5], &NoHook, &mut t1);
    assert_eq!(t1.value(after_node).data(), before.data());
}
