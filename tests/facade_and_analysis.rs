//! Facade surface checks and analysis-path integration: probes, projections,
//! downstream builders, and checkpoint round-trips through the public API.

use infuserki::eval::probes::{fig1_layer, hidden_states_for, option_probs};
use infuserki::eval::projection::{pca, tsne};
use infuserki::eval::world::{build_world_in, Domain, WorldConfig};
use infuserki::kg::{synth_metaqa, synth_umls, KgStats, MetaQaConfig, UmlsConfig};
use infuserki::nn::{NoHook, TransformerLm};
use infuserki::text::{levenshtein, Tokenizer};

#[test]
fn facade_reexports_are_usable() {
    // kg
    let store = synth_umls(&UmlsConfig::with_triplets(50, 1));
    assert_eq!(store.len(), 50);
    let movie = synth_metaqa(&MetaQaConfig::with_triplets(60, 1));
    assert_eq!(movie.n_relations(), 9);
    let stats = KgStats::of(&store);
    assert_eq!(stats.n_triples, 50);
    // text
    assert_eq!(levenshtein("graph", "grape"), 1);
    let tok = Tokenizer::build(["hello world"]);
    assert_eq!(tok.encode_strict("world hello").len(), 2);
    // tensor
    let m = infuserki::tensor::Matrix::scalar(3.0);
    assert_eq!(m.scalar_value(), 3.0);
}

#[test]
fn analysis_paths_work_end_to_end() {
    let dir = std::env::temp_dir().join(format!("infuserki_facade_{}", std::process::id()));
    let w = build_world_in(&WorldConfig::tiny(Domain::Umls, 401), &dir);

    // Hidden-state capture + projection.
    let layer = fig1_layer(w.base.n_layers());
    let idx: Vec<usize> = (0..12).collect();
    let states = hidden_states_for(&w.base, &NoHook, &w.tokenizer, &w.bank, &idx, layer);
    assert_eq!(states.len(), 12);
    let proj2 = pca(&states, 2, 0);
    assert_eq!(proj2[0].len(), 2);
    let coords = tsne(&states, 4.0, 60, 0);
    assert!(coords.iter().all(|(x, y)| x.is_finite() && y.is_finite()));

    // Case-study probabilities.
    let p = option_probs(&w.base, &NoHook, &w.tokenizer, w.bank.mcq(0, 0));
    assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);

    // Checkpoint round-trip through the facade path.
    let ckpt = dir.join("roundtrip.json");
    w.base.save(&ckpt).unwrap();
    let loaded = TransformerLm::load(&ckpt).unwrap();
    assert_eq!(loaded.config(), w.base.config());
    let _ = std::fs::remove_dir_all(dir);
}
