//! Golden-determinism: the full pipeline (world → detect → dataset → train →
//! eval) is *bitwise* reproducible under a fixed seed with `threads = 1`, and
//! the matrix kernels' banded parallelism is designed so a multi-threaded run
//! matches too (every output element is a single ascending accumulation
//! chain regardless of the band split — see `crates/tensor/src/kernels.rs`).
//!
//! All three pipeline runs live in one `#[test]`: the kernel thread override
//! is process-global, so sequencing inside a single test avoids cross-test
//! races without any locking.

use infuserki::core::dataset::KiDataset;
use infuserki::core::detect::detect_unknown;
use infuserki::core::{train_infuserki, InfuserKiConfig, InfuserKiMethod, TrainConfig};
use infuserki::eval::evaluate_method;
use infuserki::eval::world::{build_world_in, Domain, WorldConfig};
use infuserki::nn::NoHook;
use infuserki::tensor::kernels;

/// Trained-parameter snapshot plus the headline eval metrics of one run.
struct RunFingerprint {
    known: Vec<usize>,
    unknown: Vec<usize>,
    params: Vec<(String, Vec<f32>)>,
    infuser_losses: Vec<f32>,
    qa_losses: Vec<f32>,
    rc_losses: Vec<f32>,
    nr: f32,
    rr: f32,
}

/// Panics naming the first bitwise difference between two param snapshots.
fn assert_params_bitwise_eq(a: &[(String, Vec<f32>)], b: &[(String, Vec<f32>)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: param count differs");
    for ((na, va), (nb, vb)) in a.iter().zip(b.iter()) {
        assert_eq!(na, nb, "{what}: param order differs");
        assert_eq!(va.len(), vb.len(), "{what}: {na} length differs");
        for (i, (x, y)) in va.iter().zip(vb.iter()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: first divergence at {na}[{i}]: {x:e} ({:#010x}) vs {y:e} ({:#010x})",
                x.to_bits(),
                y.to_bits()
            );
        }
    }
}

fn run_pipeline(seed: u64) -> RunFingerprint {
    let dir = std::env::temp_dir().join(format!("infuserki_golden_{}_{seed}", std::process::id()));
    let w = build_world_in(&WorldConfig::tiny(Domain::Umls, seed), &dir);
    let det = detect_unknown(&w.base, &NoHook, &w.tokenizer, w.bank.template(0));
    let data = KiDataset::build(&w.store, &w.bank, &w.tokenizer, &det.known, &det.unknown, 1);

    let mut cfg = InfuserKiConfig::for_model(w.base.n_layers());
    cfg.bottleneck = 6;
    cfg.infuser_hidden = 8;
    cfg.rc_dim = 12;
    let mut method = InfuserKiMethod::new(cfg, &w.base, w.store.n_relations());
    let tc = TrainConfig {
        epochs_infuser: 1,
        epochs_qa: 2,
        epochs_rc: 1,
        lr: 3e-3,
        lr_infuser: 1e-2,
        batch: 8,
        seed: 7,
    };
    let report = train_infuserki(&w.base, &mut method, &data, &tc);

    let eval = evaluate_method(
        &w.base,
        &method.hook(),
        &w.tokenizer,
        &w.bank,
        &det.known,
        &det.unknown,
    );

    let mut params = Vec::new();
    method.visit_all(&mut |p| params.push((p.name().to_string(), p.data().data().to_vec())));
    RunFingerprint {
        known: det.known,
        unknown: det.unknown,
        params,
        infuser_losses: report.infuser_losses,
        qa_losses: report.qa_losses,
        rc_losses: report.rc_losses,
        nr: eval.nr,
        rr: eval.rr,
    }
}

fn max_rel_diff(a: &[(String, Vec<f32>)], b: &[(String, Vec<f32>)]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .flat_map(|((_, va), (_, vb))| va.iter().zip(vb.iter()))
        .map(|(&x, &y)| (x - y).abs() / 1.0f32.max(x.abs()).max(y.abs()))
        .fold(0.0f32, f32::max)
}

#[test]
fn pipeline_is_golden_deterministic() {
    // --- two single-threaded runs must agree bit for bit --------------------
    kernels::set_num_threads(1);
    let first = run_pipeline(211);
    let second = run_pipeline(211);
    assert_eq!(first.known, second.known, "known-fact detection diverged");
    assert_eq!(
        first.unknown, second.unknown,
        "unknown-fact detection diverged"
    );
    assert_eq!(
        first.infuser_losses, second.infuser_losses,
        "infuser loss curves diverged"
    );
    assert_eq!(first.qa_losses, second.qa_losses, "QA loss curves diverged");
    assert_eq!(first.rc_losses, second.rc_losses, "RC loss curves diverged");
    assert_params_bitwise_eq(&first.params, &second.params, "threads=1 rerun");
    assert_eq!(first.nr.to_bits(), second.nr.to_bits(), "NR diverged");
    assert!(
        (first.rr.is_nan() && second.rr.is_nan()) || first.rr.to_bits() == second.rr.to_bits(),
        "RR diverged"
    );

    // --- a multi-threaded run must agree within tolerance -------------------
    // (By the kernels' determinism design it is bitwise identical too, but
    // the documented contract for threaded runs is 1e-4 relative.)
    kernels::set_num_threads(4);
    let threaded = run_pipeline(211);
    kernels::set_num_threads(0); // restore default resolution
    let drift = max_rel_diff(&first.params, &threaded.params);
    assert!(
        drift <= 1e-4,
        "threads=4 drifted {drift} relative from threads=1"
    );
    assert!(
        (first.nr - threaded.nr).abs() <= 1e-4,
        "threaded NR drifted: {} vs {}",
        first.nr,
        threaded.nr
    );
}
