//! Hot-swap differential suite for versioned knowledge bundles.
//!
//! The scheduler serves while bundles are loaded, promoted and rolled back
//! mid-stream. The invariants proved here, at one kernel thread:
//!
//! * **Version pinning** — a request runs on the version it resolved at
//!   admission (explicit pin, or active-at-admission), bitwise equal to the
//!   single-request sampler path under *that* hook, no matter what control
//!   ops land while it is in flight.
//! * **Per-version isolation** — two versions serving concurrently (A/B)
//!   never adopt each other's prefix-cache blocks or hook-state snapshots,
//!   even for identical prompts: `PrefixIndex` entries are keyed by
//!   `(bundle_version, tokens)`.
//! * **Bitwise rollback** — after promote + rollback, unpinned requests
//!   reproduce the pre-promote responses bit for bit.
//! * **NR regression gate** — a promote whose candidate answers fewer
//!   held-out probes than the active version is refused with a typed error,
//!   leaves the active version unchanged, and bumps
//!   `serve.bundle.rejected_promotions`.
//! * **Zero drops** — every request submitted across a swap reaches a
//!   terminal outcome.
//!
//! Each test pins its own kernel thread count: the bitwise suites run
//! serial, and one suite re-runs the A/B phase under 4-way banded kernels
//! with the MCQ-score tolerance convention of `serve_differential.rs` (the
//! pinning/isolation/gate logic is threading-independent). The thread
//! override is process-global; every test serializes behind one lock.

use std::sync::mpsc::{self, Receiver};
use std::sync::Mutex;

use infuserki::core::{
    base_model_digest, EvalStamp, GateProbe, InfuserKiConfig, InfuserKiMethod, KnowledgeBundle,
};
use infuserki::nn::{sampler, LayerHook, ModelConfig, NoHook, TransformerLm};
use infuserki::serve::{
    ControlError, ControlOp, ControlOutcome, GenerateSpec, McqSpec, Outcome, Request, RequestKind,
    Response, Scheduler, ServeConfig,
};
use infuserki::tensor::kernels;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 40;

static THREADS: Mutex<()> = Mutex::new(());

fn base() -> TransformerLm {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    TransformerLm::new(ModelConfig::tiny(VOCAB), &mut rng)
}

/// Deterministic nonzero nudge (scaled by `k`) so zero-initialized
/// up-projections don't make the hook a trivial identity, and so different
/// `k` yield observably different knowledge versions.
fn nudged_method(b: &TransformerLm, k: f32) -> InfuserKiMethod {
    let mut c = InfuserKiConfig::for_model(b.n_layers());
    c.bottleneck = 4;
    c.infuser_hidden = 4;
    c.rc_dim = 8;
    let mut m = InfuserKiMethod::new(c, b, 5);
    m.visit_adapters_mut(&mut |p: &mut infuserki::tensor::Param| {
        for (i, w) in p.data_mut().data_mut().iter_mut().enumerate() {
            *w += k * ((i % 7) as f32 - 3.0);
        }
    });
    m
}

/// Writes `method` to a temp bundle file and returns the path.
fn save_bundle(
    name: &str,
    method: InfuserKiMethod,
    b: &TransformerLm,
    stamp: Option<EvalStamp>,
    probes: Vec<GateProbe>,
) -> String {
    let path = std::env::temp_dir().join(format!(
        "infuserki_hotswap_{}_{}.bundle.json",
        name,
        std::process::id()
    ));
    let bundle = KnowledgeBundle::new(name, method, b, stamp, probes).unwrap();
    bundle.save(&path).unwrap();
    path.to_string_lossy().into_owned()
}

fn cfg() -> ServeConfig {
    ServeConfig {
        prefill_chunk: 3,
        max_batch: 6,
        kv_budget_rows: 512,
        block_rows: 4,
        prefix_cache: true,
        queue_capacity: 64,
        compact_after_retire: true,
        threads: None,
    }
}

fn submit(
    sched: &mut Scheduler<'_>,
    id: u64,
    kind: RequestKind,
    bundle: Option<u32>,
) -> Receiver<Response> {
    let (tx, rx) = mpsc::channel();
    let mut req = Request::new(id, kind, tx);
    if let Some(v) = bundle {
        req = req.with_bundle(v);
    }
    sched.enqueue(req);
    rx
}

fn wait_tokens(rx: &Receiver<Response>) -> Vec<usize> {
    match rx.try_recv().expect("request reached a terminal outcome") {
        Response {
            outcome: Outcome::Generated { tokens },
            ..
        } => tokens,
        Response { outcome, .. } => panic!("unexpected outcome {outcome:?}"),
    }
}

fn wait_scores(rx: &Receiver<Response>) -> Vec<f32> {
    match rx.try_recv().expect("request reached a terminal outcome") {
        Response {
            outcome: Outcome::McqScored { scores, .. },
            ..
        } => scores,
        Response { outcome, .. } => panic!("unexpected outcome {outcome:?}"),
    }
}

/// Whether bitwise equality is required at the current thread setting
/// (serial kernels ⇒ bitwise; banded parallel kernels ⇒ tolerance).
fn serial() -> bool {
    kernels::num_threads() == 1
}

fn assert_tokens(got: &[usize], want: &[usize], ctx: &str) {
    assert_eq!(got, want, "{ctx}: token divergence");
}

fn assert_scores(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: score arity");
    for (i, (x, y)) in got.iter().zip(want).enumerate() {
        if serial() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{ctx}: option {i}: {x} vs {y} (bitwise)"
            );
        } else {
            assert!((x - y).abs() <= 1e-5, "{ctx}: option {i}: {x} vs {y}");
        }
    }
}

/// Held-out probes on which `right` answers with `right`'s own argmax and
/// `wrong` disagrees — so `right` scores 100% and `wrong` scores 0%.
fn disagreement_probes(
    b: &TransformerLm,
    right: &dyn LayerHook,
    wrong: &dyn LayerHook,
    n: usize,
) -> Vec<GateProbe> {
    let mut probes = Vec::new();
    let mut seed = 0usize;
    while probes.len() < n {
        seed += 1;
        let prompt = vec![seed % VOCAB, (seed * 3 + 1) % VOCAB, (seed * 7 + 2) % VOCAB];
        let options = vec![
            vec![(seed * 5) % VOCAB, (seed + 11) % VOCAB],
            vec![(seed * 2 + 3) % VOCAB],
            vec![(seed + 9) % VOCAB, (seed * 4 + 1) % VOCAB],
        ];
        let pick = |hook: &dyn LayerHook| {
            let scores = sampler::score_options(b, hook, &prompt, &options);
            let lens: Vec<usize> = options.iter().map(Vec::len).collect();
            sampler::argmax(&sampler::option_probabilities(&scores, &lens))
        };
        let (r, w) = (pick(right), pick(wrong));
        if r != w {
            probes.push(GateProbe {
                prompt,
                options,
                correct: r,
            });
        }
        assert!(seed < 4000, "no disagreeing probes found");
    }
    probes
}

/// A mid-stream load → promote → A/B → rollback sequence with the request
/// mix verified request-by-request against the single-path sampler under
/// each request's pinned hook. Also proves zero drops: every submission
/// gets a terminal outcome.
#[test]
fn swap_under_load_pins_in_flight_requests_and_isolates_versions() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let m1 = nudged_method(&b, 0.01);
    let m2 = nudged_method(&b, -0.02);
    let p1 = save_bundle("k1", nudged_method(&b, 0.01), &b, None, Vec::new());
    let p2 = save_bundle("k2", nudged_method(&b, -0.02), &b, None, Vec::new());
    let hook1 = m1.hook();
    let hook2 = m2.hook();

    let mut sched = Scheduler::new(&b, &NoHook, cfg()).unwrap();

    // Long-running request admitted under version 0 (base); it will still
    // be mid-flight when the first swap lands.
    let long_prompt: Vec<usize> = (1..=9).collect();
    let rx_long = submit(
        &mut sched,
        0,
        RequestKind::Generate(GenerateSpec::greedy(long_prompt.clone(), 24, None)),
        None,
    );
    // Admit it and feed a few chunks.
    sched.step();
    sched.step();

    // Load + promote k1 while request 0 is in flight.
    let info = match sched
        .handle_control(ControlOp::LoadBundle { path: p1.clone() })
        .unwrap()
    {
        ControlOutcome::Loaded(info) => info,
        other => panic!("unexpected outcome {other:?}"),
    };
    assert_eq!(info.version, 1);
    assert_eq!(sched.active_version(), 0, "staging does not activate");
    sched
        .handle_control(ControlOp::Promote { version: 1 })
        .unwrap();
    assert_eq!(sched.active_version(), 1);

    // Unpinned requests now resolve to version 1; explicit pins run base
    // and k2 (staged below) concurrently — three versions in one batch.
    let v2 = match sched
        .handle_control(ControlOp::LoadBundle { path: p2.clone() })
        .unwrap()
    {
        ControlOutcome::Loaded(info) => info.version,
        other => panic!("unexpected outcome {other:?}"),
    };
    assert_eq!(v2, 2);

    // Identical prompts across versions: any cross-version reuse of cached
    // blocks or hook-state snapshots diverges from the single-path replay.
    let shared: Vec<usize> = vec![4, 5, 6, 7, 8, 9, 10, 11];
    let mcq_prompt = vec![2, 3, 4, 5];
    let mcq_options = vec![vec![6], vec![7, 8], vec![9, 10, 11]];
    let rx_v1 = submit(
        &mut sched,
        1,
        RequestKind::Generate(GenerateSpec::greedy(shared.clone(), 6, None)),
        None, // active = 1
    );
    let rx_v0 = submit(
        &mut sched,
        2,
        RequestKind::Generate(GenerateSpec::greedy(shared.clone(), 6, None)),
        Some(0),
    );
    let rx_v2 = submit(
        &mut sched,
        3,
        RequestKind::Generate(GenerateSpec::greedy(shared.clone(), 6, None)),
        Some(2),
    );
    let rx_m1 = submit(
        &mut sched,
        4,
        RequestKind::Mcq(McqSpec {
            prompt: mcq_prompt.clone(),
            options: mcq_options.clone(),
        }),
        Some(1),
    );
    let rx_m2 = submit(
        &mut sched,
        5,
        RequestKind::Mcq(McqSpec {
            prompt: mcq_prompt.clone(),
            options: mcq_options.clone(),
        }),
        Some(2),
    );
    // Roll back to base mid-stream: in-flight pins must be unaffected.
    sched.step();
    sched.handle_control(ControlOp::Rollback).unwrap();
    assert_eq!(sched.active_version(), 0);
    sched.run_until_idle();

    assert_tokens(
        &wait_tokens(&rx_long),
        &sampler::greedy_decode(&b, &NoHook, &long_prompt, 24, None),
        "long-running v0 request across two swaps",
    );
    assert_tokens(
        &wait_tokens(&rx_v1),
        &sampler::greedy_decode(&b, &hook1, &shared, 6, None),
        "unpinned request admitted while v1 active",
    );
    assert_tokens(
        &wait_tokens(&rx_v0),
        &sampler::greedy_decode(&b, &NoHook, &shared, 6, None),
        "request pinned to v0",
    );
    assert_tokens(
        &wait_tokens(&rx_v2),
        &sampler::greedy_decode(&b, &hook2, &shared, 6, None),
        "request pinned to staged v2",
    );
    assert_scores(
        &wait_scores(&rx_m1),
        &sampler::score_options(&b, &hook1, &mcq_prompt, &mcq_options),
        "MCQ pinned to v1",
    );
    assert_scores(
        &wait_scores(&rx_m2),
        &sampler::score_options(&b, &hook2, &mcq_prompt, &mcq_options),
        "MCQ pinned to v2",
    );

    let snap = sched.snapshot();
    assert_eq!(snap.bundle_swaps, 1);
    assert_eq!(snap.bundle_rollbacks, 1);
    assert_eq!(snap.bundle_active_version, 0);
    assert_eq!(snap.completed, 6, "zero dropped requests across swaps");
    kernels::set_num_threads(0);
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);
}

/// Prefix-cache poisoning check: warm the index under one version with a
/// block-aligned prompt, then serve the identical prompt pinned to another
/// version. `(bundle_version, tokens)` keying means the second request must
/// rebuild its own prefix (and still match its own single-path replay) —
/// and re-serving under the first version again still matches too.
#[test]
fn prefix_cache_entries_never_cross_versions() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let m1 = nudged_method(&b, 0.015);
    let p1 = save_bundle("iso", nudged_method(&b, 0.015), &b, None, Vec::new());
    let hook1 = m1.hook();

    let mut sched = Scheduler::new(&b, &NoHook, cfg()).unwrap();
    sched
        .handle_control(ControlOp::LoadBundle { path: p1.clone() })
        .unwrap();

    // Two full 4-row blocks of shared prompt, so the index holds entries
    // (with InfuserKI hook-state snapshots for v1) for both versions.
    let prompt: Vec<usize> = vec![3, 1, 4, 1, 5, 9, 2, 6];
    for (round, (pin, hook)) in [
        (None, &NoHook as &dyn LayerHook),
        (Some(1u32), &hook1 as &dyn LayerHook),
        (None, &NoHook as &dyn LayerHook),
        (Some(1), &hook1 as &dyn LayerHook),
    ]
    .into_iter()
    .enumerate()
    {
        let rx = submit(
            &mut sched,
            round as u64,
            RequestKind::Generate(GenerateSpec::greedy(prompt.clone(), 8, None)),
            pin,
        );
        sched.run_until_idle();
        assert_tokens(
            &wait_tokens(&rx),
            &sampler::greedy_decode(&b, hook, &prompt, 8, None),
            &format!("round {round} pin {pin:?}"),
        );
    }
    // Later rounds actually exercised the per-version cache: the identical
    // prompt re-served under the same version hits its own namespace.
    let snap = sched.snapshot();
    assert!(
        snap.prefix_hits >= 2,
        "expected same-version prefix hits, got {}",
        snap.prefix_hits
    );
    kernels::set_num_threads(0);
    let _ = std::fs::remove_file(&p1);
}

/// Rollback restores bitwise-identical responses: the same unpinned request
/// replayed before promote and after rollback produces identical bits (at
/// one kernel thread).
#[test]
fn rollback_restores_bitwise_identical_responses() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let p1 = save_bundle("rb", nudged_method(&b, 0.02), &b, None, Vec::new());

    let mut sched = Scheduler::new(&b, &NoHook, cfg()).unwrap();
    let prompts: Vec<Vec<usize>> = vec![vec![1, 2, 3], vec![7, 8], vec![4, 5, 6, 7, 8]];

    let run_all = |sched: &mut Scheduler<'_>, tag: u64| -> Vec<Vec<usize>> {
        let rxs: Vec<_> = prompts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                submit(
                    sched,
                    tag * 100 + i as u64,
                    RequestKind::Generate(GenerateSpec::greedy(p.clone(), 7, None)),
                    None,
                )
            })
            .collect();
        sched.run_until_idle();
        rxs.iter().map(wait_tokens).collect()
    };

    let before = run_all(&mut sched, 0);
    sched
        .handle_control(ControlOp::LoadBundle { path: p1.clone() })
        .unwrap();
    sched
        .handle_control(ControlOp::Promote { version: 1 })
        .unwrap();
    let during = run_all(&mut sched, 1);
    assert_ne!(
        before, during,
        "the nudged bundle must observably change at least one response"
    );
    sched.handle_control(ControlOp::Rollback).unwrap();
    let after = run_all(&mut sched, 2);
    if serial() {
        assert_eq!(
            before, after,
            "post-rollback responses must be bitwise identical to pre-promote"
        );
    }
    kernels::set_num_threads(0);
    let _ = std::fs::remove_file(&p1);
}

/// The NR regression gate: a candidate answering fewer held-out probes than
/// the active version is refused with `ControlError::NrGateFailed`, the
/// active version stays put, and the rejection is counted. A candidate
/// matching the active version's probe accuracy passes.
#[test]
fn nr_gate_refuses_regressing_promotions() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let bad_method = nudged_method(&b, 0.05);
    // Probes the base (active v0) answers "correctly" by construction and
    // the candidate gets wrong.
    let probes = disagreement_probes(&b, &NoHook, &bad_method.hook(), 3);
    let stamp = EvalStamp { nr: 0.4, rr: 0.9 };
    let p_bad = save_bundle("bad", bad_method, &b, Some(stamp), probes.clone());
    // The good bundle carries probes whose "correct" answers are its own, and
    // the base disagrees — strictly more correct than active, so it passes.
    let good_method = nudged_method(&b, 0.03);
    let good_probes = disagreement_probes(&b, &good_method.hook(), &NoHook, 3);
    let p_good = save_bundle("good", good_method, &b, None, good_probes);

    let mut sched = Scheduler::new(&b, &NoHook, cfg()).unwrap();
    sched
        .handle_control(ControlOp::LoadBundle {
            path: p_bad.clone(),
        })
        .unwrap();
    let err = sched
        .handle_control(ControlOp::Promote { version: 1 })
        .unwrap_err();
    match err {
        ControlError::NrGateFailed { version, gate } => {
            assert_eq!(version, 1);
            assert_eq!(gate.probes, 3);
            assert_eq!(gate.staged_correct, 0);
            assert_eq!(gate.active_correct, 3);
        }
        other => panic!("unexpected control error {other:?}"),
    }
    assert_eq!(
        sched.active_version(),
        0,
        "failed promote must not activate"
    );
    let snap = sched.snapshot();
    assert_eq!(snap.bundle_rejected_promotions, 1);
    assert_eq!(snap.bundle_swaps, 0);

    // The offline stamp survives the round trip into list_bundles.
    let listed = sched.list_bundles();
    assert_eq!(listed[1].nr, Some(0.4));
    assert_eq!(listed[1].gate_probes, 3);

    // A non-regressing candidate passes the same gate.
    sched
        .handle_control(ControlOp::LoadBundle {
            path: p_good.clone(),
        })
        .unwrap();
    let gate = match sched
        .handle_control(ControlOp::Promote { version: 2 })
        .unwrap()
    {
        ControlOutcome::Promoted { gate, .. } => gate.expect("probes present"),
        other => panic!("unexpected outcome {other:?}"),
    };
    assert_eq!(gate.staged_correct, 3);
    assert_eq!(gate.active_correct, 0);
    assert_eq!(sched.active_version(), 2);
    kernels::set_num_threads(0);
    let _ = std::fs::remove_file(&p_bad);
    let _ = std::fs::remove_file(&p_good);
}

/// The A/B phase again under banded parallel kernels: pinning and
/// per-version isolation hold at any thread count; scores are compared at
/// the cross-batch-shape tolerance instead of bitwise (the
/// `serve_differential.rs` convention).
#[test]
fn swap_under_load_matches_scores_with_parallel_kernels() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(4);
    let b = base();
    let m1 = nudged_method(&b, 0.01);
    let p1 = save_bundle("par", nudged_method(&b, 0.01), &b, None, Vec::new());
    let hook1 = m1.hook();

    let mut sched = Scheduler::new(&b, &NoHook, cfg()).unwrap();
    sched
        .handle_control(ControlOp::LoadBundle { path: p1.clone() })
        .unwrap();
    sched
        .handle_control(ControlOp::Promote { version: 1 })
        .unwrap();

    let prompt = vec![2, 3, 4, 5, 6];
    let options = vec![vec![7], vec![8, 9], vec![10, 11, 12]];
    let rx_v0 = submit(
        &mut sched,
        0,
        RequestKind::Mcq(McqSpec {
            prompt: prompt.clone(),
            options: options.clone(),
        }),
        Some(0),
    );
    let rx_v1 = submit(
        &mut sched,
        1,
        RequestKind::Mcq(McqSpec {
            prompt: prompt.clone(),
            options: options.clone(),
        }),
        None, // active = 1
    );
    sched.run_until_idle();
    assert_scores(
        &wait_scores(&rx_v0),
        &sampler::score_options(&b, &NoHook, &prompt, &options),
        "parallel kernels, pinned to v0",
    );
    assert_scores(
        &wait_scores(&rx_v1),
        &sampler::score_options(&b, &hook1, &prompt, &options),
        "parallel kernels, unpinned on v1",
    );
    kernels::set_num_threads(0);
    let _ = std::fs::remove_file(&p1);
}

/// The in-process client control path: load/promote/rollback through the
/// scheduler thread while requests stream, plus bundle verification
/// failures surfacing as typed `Incompatible` errors.
#[test]
fn client_control_plane_round_trips() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let hook_ref = nudged_method(&b, 0.01);
    let hook1 = hook_ref.hook();
    let p1 = save_bundle("cli", nudged_method(&b, 0.01), &b, None, Vec::new());
    // A bundle built against a *different* base must be refused at load.
    let other_base = {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        TransformerLm::new(ModelConfig::tiny(VOCAB), &mut rng)
    };
    assert_ne!(
        base_model_digest(&b).unwrap(),
        base_model_digest(&other_base).unwrap()
    );
    let p_alien = save_bundle(
        "alien",
        nudged_method(&other_base, 0.01),
        &other_base,
        None,
        Vec::new(),
    );

    let (client, handle) = infuserki::serve::spawn_scheduler(base(), NoHook, cfg()).unwrap();
    let want_base = sampler::greedy_decode(&b, &NoHook, &[1, 2, 3, 4], 6, None);
    let want_v1 = sampler::greedy_decode(&b, &hook1, &[1, 2, 3, 4], 6, None);
    // Unpinned requests resolve to active-at-*admission*, which races
    // control ops issued from this thread — so each phase waits for its
    // response before the next control op, making every resolution certain.
    let run = |want: &[usize], ctx: &str| {
        let rx = client.generate(vec![1, 2, 3, 4], 6, None).unwrap();
        match rx.wait().unwrap() {
            Outcome::Generated { tokens } => assert_tokens(&tokens, want, ctx),
            other => panic!("{ctx}: unexpected outcome {other:?}"),
        }
    };
    run(&want_base, "pre-promote");

    let info = client.load_bundle(&p1).unwrap();
    assert_eq!(info.version, 1);
    match client.load_bundle(&p_alien) {
        Err(ControlError::Incompatible(msg)) => {
            assert!(msg.contains("base"), "unhelpful incompatibility: {msg}")
        }
        other => panic!("alien bundle load returned {other:?}"),
    }
    assert!(client.promote(1).unwrap().is_none(), "no probes, no gate");
    run(&want_v1, "while v1 active");
    assert_eq!(client.rollback().unwrap(), 0);
    run(&want_base, "post-rollback");

    let list = client.list_bundles().unwrap();
    assert_eq!(list.len(), 2);
    assert!(list[0].active && !list[1].active);
    assert!(list[1].previous);
    handle.shutdown();
    kernels::set_num_threads(0);
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p_alien);
}
