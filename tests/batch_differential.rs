//! Cross-crate differential suite for the ragged-batch runtime: every *real*
//! knowledge-integration method (LoRA, prefix tuning, InfuserKI — with
//! non-trivially nudged weights) must produce, through the batched samplers
//! and batched model entry points, exactly what looping the single-sequence
//! path produces — bitwise with serial kernels, within 1e-5 with parallel
//! row-banded kernels. GRACE declares itself incompatible and the batched
//! entry points fall back to per-sequence full recomputation.
//!
//! The InfuserKI cases are the sharpest: its hook carries per-sequence state
//! (the cross-layer adapter carry and the cumulative gate sums), so any
//! cross-batch leak shows up as a bitwise divergence here.
//!
//! The kernel thread override is process-global; this file serializes every
//! test behind one lock.

use std::sync::Mutex;

use infuserki::baselines::grace::{Grace, GraceConfig};
use infuserki::baselines::lora::{LoraConfig, LoraMethod};
use infuserki::baselines::prefix::{PrefixConfig, PrefixTuning};
use infuserki::baselines::VisitTrainable;
use infuserki::core::{InfuserKiConfig, InfuserKiMethod};
use infuserki::nn::{sampler, LayerHook, LmSample, ModelConfig, TransformerLm};
use infuserki::tensor::kernels;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 40;

static THREADS: Mutex<()> = Mutex::new(());

fn base() -> TransformerLm {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    TransformerLm::new(ModelConfig::tiny(VOCAB), &mut rng)
}

/// Deterministic nonzero nudge so zero-initialized up-projections don't make
/// the method a trivial identity.
fn nudge(p: &mut infuserki::tensor::Param) {
    for (i, w) in p.data_mut().data_mut().iter_mut().enumerate() {
        *w += 0.01 * ((i % 7) as f32 - 3.0);
    }
}

fn lora(b: &TransformerLm) -> LoraMethod {
    let mut m = LoraMethod::new(LoraConfig::default(), b);
    m.visit_trainable_params(&mut nudge);
    m
}

fn prefix(b: &TransformerLm) -> PrefixTuning {
    PrefixTuning::new(PrefixConfig::default(), b)
}

fn infuserki(b: &TransformerLm) -> InfuserKiMethod {
    let mut c = InfuserKiConfig::for_model(b.n_layers());
    c.bottleneck = 4;
    c.infuser_hidden = 4;
    c.rc_dim = 8;
    let mut m = InfuserKiMethod::new(c, b, 5);
    m.visit_adapters_mut(&mut nudge);
    m
}

/// A ragged batch of prompts (lengths 6, 9, 1, 4) with distinct contents.
fn prompts() -> Vec<Vec<usize>> {
    vec![
        vec![3, 10, 17, 24, 31, 2],
        vec![5, 12, 19, 26, 33, 1, 8, 15, 22],
        vec![7],
        vec![9, 16, 23, 30],
    ]
}

/// Per-question option sets, ragged in count and token length.
fn options() -> Vec<Vec<Vec<usize>>> {
    vec![
        vec![vec![1], vec![2, 3], vec![4, 5, 6], vec![7, 8]],
        vec![vec![9, 10, 11], vec![12]],
        vec![vec![13, 14], vec![15, 16], vec![17]],
        vec![vec![18, 19, 20, 21], vec![22, 23]],
    ]
}

/// Batched sampler outputs must equal looping the single-sequence samplers.
fn assert_batched_matches_looped(b: &TransformerLm, hook: &dyn LayerHook, name: &str) {
    let ps = prompts();
    let opts = options();
    let per_q: Vec<&[Vec<usize>]> = opts.iter().map(Vec::as_slice).collect();

    let batched = sampler::score_options_batch(b, hook, &ps, &per_q);
    for (q, p) in ps.iter().enumerate() {
        let single = sampler::score_options(b, hook, p, &opts[q]);
        for (oi, (x, y)) in batched[q].iter().zip(&single).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{name}: q {q} option {oi} score {x} vs {y}"
            );
        }
    }

    let g_batched = sampler::greedy_decode_batch(b, hook, &ps, 12, Some(0));
    for (i, p) in ps.iter().enumerate() {
        let g_single = sampler::greedy_decode(b, hook, p, 12, Some(0));
        assert_eq!(g_batched[i], g_single, "{name}: greedy divergence, seq {i}");
    }
}

#[test]
fn lora_batched_sampling_is_bitwise_identical() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let m = lora(&b);
    assert!(m.supports_incremental());
    assert_batched_matches_looped(&b, &m, "lora");
    kernels::set_num_threads(0);
}

#[test]
fn prefix_batched_sampling_is_bitwise_identical() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let m = prefix(&b);
    assert!(m.supports_incremental());
    assert_batched_matches_looped(&b, &m, "prefix");
    kernels::set_num_threads(0);
}

#[test]
fn infuserki_batched_sampling_is_bitwise_identical() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let m = infuserki(&b);
    let hook = m.hook();
    assert!(hook.supports_incremental());
    assert_batched_matches_looped(&b, &hook, "infuserki hook");
    // The method doubles as a hook itself; both views must share the path.
    assert_batched_matches_looped(&b, &m, "infuserki method");
    kernels::set_num_threads(0);
}

#[test]
fn infuserki_batched_prefill_isolates_per_sequence_state() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let m = infuserki(&b);
    let hook = m.hook();
    let ps = prompts();
    // Packed batched forward vs each sequence alone: the gate statistics and
    // adapter carry must pool within one sequence only.
    let (packed, batch) = b.forward_batch(&ps, &hook);
    for (i, p) in ps.iter().enumerate() {
        let (_, single) = b.prefill(p, &hook);
        let rng = batch.range(i);
        let got = packed.slice_rows(rng.start, rng.end);
        assert_eq!(single.shape(), got.shape(), "seq {i}");
        for (e, (x, y)) in single.data().iter().zip(got.data()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "seq {i}, element {e}: {x} vs {y}"
            );
        }
    }
    kernels::set_num_threads(0);
}

#[test]
fn infuserki_batched_sampling_close_with_parallel_kernels() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(4);
    let b = base();
    let m = infuserki(&b);
    let hook = m.hook();
    let ps = prompts();
    let opts = options();
    let per_q: Vec<&[Vec<usize>]> = opts.iter().map(Vec::as_slice).collect();
    let batched = sampler::score_options_batch(&b, &hook, &ps, &per_q);
    for (q, p) in ps.iter().enumerate() {
        let single = sampler::score_options(&b, &hook, p, &opts[q]);
        for (oi, (x, y)) in batched[q].iter().zip(&single).enumerate() {
            assert!(
                (x - y).abs() <= 1e-5,
                "q {q} option {oi}: {x} vs {y} (threads 4)"
            );
        }
    }
    kernels::set_num_threads(0);
}

#[test]
fn grace_opts_out_and_batched_entry_points_fall_back() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let mut g = Grace::new(GraceConfig::for_model(b.n_layers()), &b);
    let sample = LmSample::from_completion(&[3, 10, 17], &[24, 31]);
    g.apply_edit(&b, &sample);
    assert!(!g.supports_incremental());
    // Batched entry points must route to the uncached per-sequence path and
    // still agree with the single-question calls.
    assert_batched_matches_looped(&b, &g, "grace");
    kernels::set_num_threads(0);
}
