//! Differential suite for the multi-replica router: every response served
//! through `spawn_router` — whichever replica it lands on, whatever the
//! tenant mix — must equal running that request *alone* on the
//! single-sequence sampler path (the same oracle `serve_differential.rs`
//! holds the single scheduler to, so router == single-scheduler by
//! transitivity). Bitwise with serial kernels; MCQ scores within 1e-5 with
//! parallel row-banded kernels.
//!
//! Template schedules additionally pin down the affinity machinery: shared
//! leading chunks must actually route by prefix affinity (nonzero
//! `router.dispatch.affinity`), not silently degrade to pure least-loaded.
//!
//! The kernel thread override is process-global; this file serializes every
//! test behind one lock.

use std::sync::Mutex;

use infuserki::nn::{sampler, ModelConfig, NoHook, TransformerLm};
use infuserki::router::{spawn_router, PendingResponse, RouterConfig};
use infuserki::serve::{GenerateSpec, McqSpec, Outcome, RequestKind, ServeConfig, SubmitOpts};
use infuserki::tensor::kernels;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 40;

static THREADS: Mutex<()> = Mutex::new(());

/// Extra randomized seeds for deep-fuzz runs: `INFUSERKI_DIFF_SEEDS=N`
/// appends N derived seeds to the pinned schedules (default 0 keeps the
/// tier-1 runtime flat; the weekly deep-fuzz workflow raises it ~10×).
fn extra_seeds(base: u64) -> Vec<u64> {
    let n: u64 = std::env::var("INFUSERKI_DIFF_SEEDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    (0..n)
        .map(|i| base.wrapping_add(1 + i).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect()
}

fn base() -> TransformerLm {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    TransformerLm::new(ModelConfig::tiny(VOCAB), &mut rng)
}

/// Small-knob per-replica config forcing chunked prefill and slot
/// contention inside every replica, with small paged-KV blocks so short
/// shared prefixes are already indexable (and hashable for affinity).
fn tight_cfg(prefill_chunk: usize, max_batch: usize, kv_budget_rows: usize) -> ServeConfig {
    ServeConfig {
        prefill_chunk,
        max_batch,
        kv_budget_rows,
        block_rows: 4,
        prefix_cache: true,
        queue_capacity: 64,
        compact_after_retire: true,
        threads: None,
    }
}

fn fleet(replicas: usize, serve: ServeConfig) -> RouterConfig {
    RouterConfig {
        replicas,
        serve,
        ..RouterConfig::default()
    }
}

/// One randomized request mix: mostly generates, a third MCQs.
fn random_kind(rng: &mut ChaCha8Rng) -> RequestKind {
    if rng.gen_range(0..3) < 2 {
        let plen = rng.gen_range(1..9);
        let prompt: Vec<usize> = (0..plen).map(|_| rng.gen_range(0..VOCAB)).collect();
        let eos = if rng.gen_range(0..3) == 0 {
            Some(0)
        } else {
            None
        };
        RequestKind::Generate(GenerateSpec::greedy(prompt, rng.gen_range(1..9), eos))
    } else {
        let plen = rng.gen_range(1..7);
        let prompt: Vec<usize> = (0..plen).map(|_| rng.gen_range(0..VOCAB)).collect();
        let n_opts = rng.gen_range(2..5);
        let options: Vec<Vec<usize>> = (0..n_opts)
            .map(|_| {
                let olen = rng.gen_range(1..5);
                (0..olen).map(|_| rng.gen_range(0..VOCAB)).collect()
            })
            .collect();
        RequestKind::Mcq(McqSpec { prompt, options })
    }
}

/// Template-derived request mix: most prompts share a leading chunk with
/// one of three templates, so both the per-replica radix prefix cache and
/// the router's affinity hash see repeats.
fn template_kinds(rng: &mut ChaCha8Rng, n_requests: usize) -> Vec<RequestKind> {
    let templates: Vec<Vec<usize>> = (0..3)
        .map(|_| {
            let len = rng.gen_range(9..14);
            (0..len).map(|_| rng.gen_range(0..VOCAB)).collect()
        })
        .collect();
    (0..n_requests)
        .map(|_| {
            let t = &templates[rng.gen_range(0..templates.len())];
            let keep = rng.gen_range(t.len() - 3..=t.len());
            let mut prompt: Vec<usize> = t[..keep].to_vec();
            for _ in 0..rng.gen_range(0..4) {
                prompt.push(rng.gen_range(0..VOCAB));
            }
            if rng.gen_range(0..3) < 2 {
                RequestKind::Generate(GenerateSpec::greedy(prompt, rng.gen_range(1..9), None))
            } else {
                let options: Vec<Vec<usize>> = (0..rng.gen_range(2..5))
                    .map(|_| {
                        let olen = rng.gen_range(1..5);
                        (0..olen).map(|_| rng.gen_range(0..VOCAB)).collect()
                    })
                    .collect();
                RequestKind::Mcq(McqSpec { prompt, options })
            }
        })
        .collect()
}

const TENANTS: [Option<&str>; 4] = [None, Some("alpha"), Some("beta"), Some("gamma")];

/// Submits every kind (random tenants keep the fair-share machinery in the
/// loop), waits for all outcomes, and returns them in submission order.
fn run_through_router(
    client: &infuserki::router::RouterClient,
    rng: &mut ChaCha8Rng,
    kinds: &[RequestKind],
) -> Vec<Outcome> {
    let handles: Vec<PendingResponse> = kinds
        .iter()
        .map(|k| {
            let tenant = TENANTS[rng.gen_range(0..TENANTS.len())];
            client
                .submit(k.clone(), SubmitOpts::default(), tenant)
                .expect("differential submissions are valid")
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.wait().expect("router outlives the schedule"))
        .collect()
}

/// Every outcome must match the single-request sampler path.
fn verify(
    model: &TransformerLm,
    kinds: &[RequestKind],
    outcomes: &[Outcome],
    bitwise: bool,
    name: &str,
) {
    for (id, (kind, outcome)) in kinds.iter().zip(outcomes).enumerate() {
        match (kind, outcome) {
            (RequestKind::Generate(g), Outcome::Generated { tokens }) => {
                let want = sampler::greedy_decode(model, &NoHook, &g.prompt, g.max_new, g.eos);
                assert_eq!(*tokens, want, "{name}: request {id} token divergence");
            }
            (RequestKind::Mcq(m), Outcome::McqScored { scores, .. }) => {
                let want = sampler::score_options(model, &NoHook, &m.prompt, &m.options);
                for (oi, (x, y)) in scores.iter().zip(&want).enumerate() {
                    if bitwise {
                        assert!(
                            x.to_bits() == y.to_bits(),
                            "{name}: request {id} option {oi}: {x} vs {y} (bitwise)"
                        );
                    } else {
                        assert!(
                            (x - y).abs() <= 1e-5,
                            "{name}: request {id} option {oi}: {x} vs {y} (1e-5)"
                        );
                    }
                }
            }
            other => panic!("{name}: request {id} kind/outcome mismatch {other:?}"),
        }
    }
}

#[test]
fn two_replica_router_is_bitwise_under_randomized_mixes() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    // Deep-fuzz extension: each derived seed also derives a batch shape and
    // replica count, widening coverage past the pinned pair.
    let fuzz: Vec<(u64, ServeConfig)> = extra_seeds(9100)
        .into_iter()
        .map(|seed| {
            (
                seed,
                tight_cfg(1 + (seed % 5) as usize, 2 + (seed % 3) as usize, 256),
            )
        })
        .collect();
    let pinned = [
        (2101u64, tight_cfg(2, 3, 256)),
        (2202, tight_cfg(5, 4, 256)),
    ];
    for (seed, cfg) in pinned.into_iter().chain(fuzz) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let kinds: Vec<RequestKind> = (0..16).map(|_| random_kind(&mut rng)).collect();
        let (client, handle) =
            spawn_router(fleet(2, cfg), |_| (base(), NoHook)).expect("router spawns");
        let outcomes = run_through_router(&client, &mut rng, &kinds);
        verify(&b, &kinds, &outcomes, true, "two-replica");
        assert_eq!(
            client.metrics().dispatched.get(),
            kinds.len() as u64,
            "every request dispatched exactly once"
        );
        // Both replicas must have actually served traffic — otherwise this
        // differential degenerates to the single-scheduler one.
        let per_replica: Vec<u64> = (0..2)
            .map(|i| client.metrics().replica_dispatched[i].get())
            .collect();
        assert!(
            per_replica.iter().all(|&c| c > 0),
            "seed {seed}: dispatch never spread: {per_replica:?}"
        );
        handle.shutdown();
    }
    kernels::set_num_threads(0);
}

#[test]
fn three_replica_router_is_bitwise_under_randomized_mixes() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let mut rng = ChaCha8Rng::seed_from_u64(2303);
    let kinds: Vec<RequestKind> = (0..18).map(|_| random_kind(&mut rng)).collect();
    let (client, handle) =
        spawn_router(fleet(3, tight_cfg(3, 3, 256)), |_| (base(), NoHook)).expect("router spawns");
    let outcomes = run_through_router(&client, &mut rng, &kinds);
    verify(&b, &kinds, &outcomes, true, "three-replica");
    handle.shutdown();
    kernels::set_num_threads(0);
}

#[test]
fn template_schedules_route_by_affinity_and_stay_bitwise() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    for (seed, replicas) in [(2707u64, 2usize), (2808, 3)] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let kinds = template_kinds(&mut rng, 18);
        let (client, handle) =
            spawn_router(fleet(replicas, tight_cfg(4, 4, 256)), |_| (base(), NoHook))
                .expect("router spawns");
        let outcomes = run_through_router(&client, &mut rng, &kinds);
        verify(&b, &kinds, &outcomes, true, "template");
        // Shared leading chunks must route by prefix affinity: requests cut
        // from the same template hash to the same home replica.
        let hits = client.metrics().affinity_hits.get();
        assert!(
            hits > 0,
            "seed {seed} ({replicas} replicas): template schedule never \
             dispatched by affinity ({} balanced)",
            client.metrics().balanced.get()
        );
        handle.shutdown();
    }
    kernels::set_num_threads(0);
}

#[test]
fn router_mcq_scores_close_with_parallel_kernels() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(4);
    let b = base();
    let mut rng = ChaCha8Rng::seed_from_u64(2909);
    let kinds = template_kinds(&mut rng, 14);
    let (client, handle) =
        spawn_router(fleet(2, tight_cfg(4, 4, 256)), |_| (base(), NoHook)).expect("router spawns");
    let outcomes = run_through_router(&client, &mut rng, &kinds);
    // At four threads only the MCQ score comparison is meaningful (the
    // row-banded kernels reassociate sums); greedy token streams are
    // checked in the serial tests above.
    for (id, (kind, outcome)) in kinds.iter().zip(&outcomes).enumerate() {
        if let (RequestKind::Mcq(m), Outcome::McqScored { scores, .. }) = (kind, outcome) {
            let want = sampler::score_options(&b, &NoHook, &m.prompt, &m.options);
            for (oi, (x, y)) in scores.iter().zip(&want).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-5,
                    "request {id} option {oi}: {x} vs {y} (threads 4)"
                );
            }
        }
    }
    handle.shutdown();
    kernels::set_num_threads(0);
}
