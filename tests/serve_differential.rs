//! Differential suite for the continuous-batching serving subsystem: under
//! randomized arrival, priority, and cancellation schedules — with chunked
//! prefill and mid-stream admissions/retirements scrambling the batch
//! composition every step — every completed response must equal running
//! that request *alone* on the single-sequence sampler path. Bitwise with
//! serial kernels; MCQ scores within 1e-5 with parallel row-banded kernels
//! (the same convention as `tests/batch_differential.rs`).
//!
//! Hooks with per-sequence state (InfuserKI) and per-layer cache prefixes
//! (prefix tuning, which makes the KV-row cost accounting nontrivial) are
//! exercised alongside the bare model.
//!
//! The kernel thread override is process-global; this file serializes every
//! test behind one lock.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Mutex;

use infuserki::baselines::prefix::{PrefixConfig, PrefixTuning};
use infuserki::core::{InfuserKiConfig, InfuserKiMethod};
use infuserki::nn::{sampler, LayerHook, ModelConfig, TransformerLm};
use infuserki::serve::{
    CancelToken, GenerateSpec, McqSpec, MetricsSnapshot, Outcome, Request, RequestKind, Response,
    Scheduler, ServeConfig,
};
use infuserki::tensor::kernels;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 40;

static THREADS: Mutex<()> = Mutex::new(());

/// Extra randomized seeds for deep-fuzz runs: `INFUSERKI_DIFF_SEEDS=N`
/// appends N derived seeds to the pinned schedules (default 0 keeps the
/// tier-1 runtime flat; the weekly deep-fuzz workflow raises it ~10×).
fn extra_seeds(base: u64) -> Vec<u64> {
    let n: u64 = std::env::var("INFUSERKI_DIFF_SEEDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    (0..n)
        .map(|i| base.wrapping_add(1 + i).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect()
}

fn base() -> TransformerLm {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    TransformerLm::new(ModelConfig::tiny(VOCAB), &mut rng)
}

/// Deterministic nonzero nudge so zero-initialized up-projections don't make
/// the hook a trivial identity.
fn nudge(p: &mut infuserki::tensor::Param) {
    for (i, w) in p.data_mut().data_mut().iter_mut().enumerate() {
        *w += 0.01 * ((i % 7) as f32 - 3.0);
    }
}

fn infuserki_hook(b: &TransformerLm) -> InfuserKiMethod {
    let mut c = InfuserKiConfig::for_model(b.n_layers());
    c.bottleneck = 4;
    c.infuser_hidden = 4;
    c.rc_dim = 8;
    let mut m = InfuserKiMethod::new(c, b, 5);
    m.visit_adapters_mut(&mut nudge);
    m
}

fn prefix_hook(b: &TransformerLm) -> PrefixTuning {
    PrefixTuning::new(PrefixConfig::default(), b)
}

/// One randomized request mix: mostly generates, a third MCQs.
fn random_kind(rng: &mut ChaCha8Rng) -> RequestKind {
    if rng.gen_range(0..3) < 2 {
        let plen = rng.gen_range(1..9);
        let prompt: Vec<usize> = (0..plen).map(|_| rng.gen_range(0..VOCAB)).collect();
        let eos = if rng.gen_range(0..3) == 0 {
            Some(0)
        } else {
            None
        };
        RequestKind::Generate(GenerateSpec::greedy(prompt, rng.gen_range(1..9), eos))
    } else {
        let plen = rng.gen_range(1..7);
        let prompt: Vec<usize> = (0..plen).map(|_| rng.gen_range(0..VOCAB)).collect();
        let n_opts = rng.gen_range(2..5);
        let options: Vec<Vec<usize>> = (0..n_opts)
            .map(|_| {
                let olen = rng.gen_range(1..5);
                (0..olen).map(|_| rng.gen_range(0..VOCAB)).collect()
            })
            .collect();
        RequestKind::Mcq(McqSpec { prompt, options })
    }
}

struct ScheduleResult {
    kinds: Vec<RequestKind>,
    outcomes: Vec<Outcome>,
    cancelled_ids: Vec<usize>,
    snapshot: MetricsSnapshot,
}

/// Drives one randomized arrival/cancellation schedule to completion.
///
/// Requests trickle in over many steps (so the batch composition keeps
/// changing), carry random priorities, and a few get cancelled at
/// predetermined steps — some while queued, some mid-flight.
fn run_schedule(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    seed: u64,
    cfg: ServeConfig,
    n_requests: usize,
) -> ScheduleResult {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let kinds: Vec<RequestKind> = (0..n_requests).map(|_| random_kind(&mut rng)).collect();
    run_schedule_with(model, hook, rng, cfg, kinds)
}

/// Drives a pre-generated request mix through the randomized
/// arrival/priority/cancellation machinery.
fn run_schedule_with(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    mut rng: ChaCha8Rng,
    cfg: ServeConfig,
    kinds: Vec<RequestKind>,
) -> ScheduleResult {
    let n_requests = kinds.len();
    // Each request arrives at a random step; a few are cancelled a couple
    // of steps after arrival.
    let arrivals: Vec<usize> = (0..n_requests).map(|_| rng.gen_range(0..12)).collect();
    let mut cancels: HashMap<usize, usize> = HashMap::new();
    let mut cancelled_ids = Vec::new();
    for (id, &arrival) in arrivals.iter().enumerate() {
        if rng.gen_range(0..5) == 0 {
            cancels.insert(id, arrival + rng.gen_range(1usize..4));
            cancelled_ids.push(id);
        }
    }
    let priorities: Vec<i32> = (0..n_requests).map(|_| rng.gen_range(-2..3)).collect();

    let mut sched = Scheduler::new(model, hook, cfg).unwrap();
    let mut rxs: Vec<Option<Receiver<Response>>> = (0..n_requests).map(|_| None).collect();
    let mut tokens: Vec<Option<CancelToken>> = (0..n_requests).map(|_| None).collect();
    let last_arrival = arrivals.iter().copied().max().unwrap();
    let last_cancel = cancels.values().copied().max().unwrap_or(0);
    for step in 0..=last_arrival.max(last_cancel) {
        for (id, &arrival) in arrivals.iter().enumerate() {
            if arrival == step {
                let (tx, rx) = std::sync::mpsc::channel();
                let req =
                    Request::new(id as u64, kinds[id].clone(), tx).with_priority(priorities[id]);
                tokens[id] = Some(req.cancel.clone());
                rxs[id] = Some(rx);
                sched.enqueue(req);
            }
            if cancels.get(&id) == Some(&step) {
                if let Some(t) = &tokens[id] {
                    t.cancel();
                }
            }
        }
        sched.step();
    }
    sched.run_until_idle();
    let snapshot = sched.snapshot();

    let outcomes: Vec<Outcome> = rxs
        .into_iter()
        .enumerate()
        .map(
            |(id, rx)| match rx.expect("every request arrived").try_recv() {
                Ok(resp) => {
                    assert_eq!(resp.id, id as u64);
                    resp.outcome
                }
                Err(TryRecvError::Empty) => panic!("request {id} never got a response"),
                Err(TryRecvError::Disconnected) => panic!("request {id} channel died"),
            },
        )
        .collect();
    ScheduleResult {
        kinds,
        outcomes,
        cancelled_ids,
        snapshot,
    }
}

/// A few shared prompt templates plus a randomized schedule: most requests
/// start with a template's tokens (sometimes truncated, sometimes with a
/// random suffix), so concurrent requests keep hitting the radix prefix
/// cache mid-flight while arrivals, priorities and cancellations churn the
/// batch exactly as in `run_schedule`.
fn run_template_schedule(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    seed: u64,
    cfg: ServeConfig,
    n_requests: usize,
) -> ScheduleResult {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let templates: Vec<Vec<usize>> = (0..3)
        .map(|_| {
            let len = rng.gen_range(9..14);
            (0..len).map(|_| rng.gen_range(0..VOCAB)).collect()
        })
        .collect();
    let kinds: Vec<RequestKind> = (0..n_requests)
        .map(|_| {
            let t = &templates[rng.gen_range(0..templates.len())];
            let keep = rng.gen_range(t.len() - 3..=t.len());
            let mut prompt: Vec<usize> = t[..keep].to_vec();
            for _ in 0..rng.gen_range(0..4) {
                prompt.push(rng.gen_range(0..VOCAB));
            }
            if rng.gen_range(0..3) < 2 {
                RequestKind::Generate(GenerateSpec::greedy(prompt, rng.gen_range(1..9), None))
            } else {
                let options: Vec<Vec<usize>> = (0..rng.gen_range(2..5))
                    .map(|_| {
                        let olen = rng.gen_range(1..5);
                        (0..olen).map(|_| rng.gen_range(0..VOCAB)).collect()
                    })
                    .collect();
                RequestKind::Mcq(McqSpec { prompt, options })
            }
        })
        .collect();
    run_schedule_with(model, hook, rng, cfg, kinds)
}

/// Every completed outcome must match the single-request sampler path;
/// cancelled requests may only be Cancelled (or have legitimately finished
/// before their cancel step fired).
fn verify(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    result: &ScheduleResult,
    bitwise: bool,
    name: &str,
) {
    let mut completed = 0usize;
    for (id, (kind, outcome)) in result.kinds.iter().zip(&result.outcomes).enumerate() {
        match outcome {
            Outcome::Generated { tokens } => {
                completed += 1;
                let g = match kind {
                    RequestKind::Generate(g) => g,
                    _ => panic!("{name}: request {id} kind/outcome mismatch"),
                };
                let want = sampler::greedy_decode(model, hook, &g.prompt, g.max_new, g.eos);
                assert_eq!(*tokens, want, "{name}: request {id} token divergence");
            }
            Outcome::McqScored { scores, .. } => {
                completed += 1;
                let m = match kind {
                    RequestKind::Mcq(m) => m,
                    _ => panic!("{name}: request {id} kind/outcome mismatch"),
                };
                let want = sampler::score_options(model, hook, &m.prompt, &m.options);
                for (oi, (x, y)) in scores.iter().zip(&want).enumerate() {
                    if bitwise {
                        assert!(
                            x.to_bits() == y.to_bits(),
                            "{name}: request {id} option {oi}: {x} vs {y} (bitwise)"
                        );
                    } else {
                        assert!(
                            (x - y).abs() <= 1e-5,
                            "{name}: request {id} option {oi}: {x} vs {y} (1e-5)"
                        );
                    }
                }
            }
            Outcome::Cancelled => {
                assert!(
                    result.cancelled_ids.contains(&id),
                    "{name}: request {id} cancelled without a cancel schedule"
                );
            }
            other => panic!("{name}: request {id} unexpected outcome {other:?}"),
        }
    }
    assert!(
        completed >= result.kinds.len() / 2,
        "{name}: only {completed}/{} requests completed",
        result.kinds.len()
    );
}

/// Small-knob configs that force chunked prefill, slot contention and
/// (for the tight-budget variant) head-of-line budget waits.
fn tight_cfg(prefill_chunk: usize, max_batch: usize, kv_budget_rows: usize) -> ServeConfig {
    ServeConfig {
        prefill_chunk,
        max_batch,
        kv_budget_rows,
        // Small paged-KV blocks so whole-block reservation rounding keeps
        // even the 48-row schedule admissible, and short shared prefixes
        // are already indexable.
        block_rows: 4,
        prefix_cache: true,
        queue_capacity: 64,
        compact_after_retire: true,
        threads: None,
    }
}

#[test]
fn scheduler_is_bitwise_under_randomized_schedules() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    // Three seeds, three batch shapes — one with a budget tight enough that
    // admissions must wait for retirements.
    for (seed, cfg) in [
        (101u64, tight_cfg(2, 3, 256)),
        (202, tight_cfg(1, 2, 48)),
        (303, tight_cfg(5, 4, 256)),
    ] {
        let result = run_schedule(&b, &infuserki::nn::NoHook, seed, cfg, 12);
        verify(&b, &infuserki::nn::NoHook, &result, true, "nohook");
    }
    // Deep-fuzz extension: each derived seed also derives a batch shape, so
    // a wide sweep covers chunk/batch/budget combinations the pinned trio
    // cannot.
    for seed in extra_seeds(9000) {
        let cfg = tight_cfg(
            1 + (seed % 5) as usize,
            2 + (seed % 3) as usize,
            if seed % 2 == 0 { 256 } else { 96 },
        );
        let result = run_schedule(&b, &infuserki::nn::NoHook, seed, cfg, 12);
        verify(&b, &infuserki::nn::NoHook, &result, true, "nohook-fuzz");
    }
    kernels::set_num_threads(0);
}

#[test]
fn scheduler_is_bitwise_with_infuserki_hook_state() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let m = infuserki_hook(&b);
    let hook = m.hook();
    // Per-sequence adapter carry + gate statistics: any cross-lane leak in
    // the continuous batch shows up as a bitwise divergence here.
    let result = run_schedule(&b, &hook, 404, tight_cfg(3, 3, 256), 10);
    verify(&b, &hook, &result, true, "infuserki");
    kernels::set_num_threads(0);
}

#[test]
fn scheduler_is_bitwise_with_prefix_rows_in_the_budget() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let m = prefix_hook(&b);
    // Prefix tuning prepends 8 K/V rows to every cached sequence, so the
    // admission cost accounting (and the tight budget) must include them.
    let result = run_schedule(&b, &m, 505, tight_cfg(2, 3, 160), 10);
    verify(&b, &m, &result, true, "prefix");
    kernels::set_num_threads(0);
}

#[test]
fn shared_prefix_schedules_are_bitwise_and_hit_the_cache() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    // Many concurrent requests cut from three prompt templates: later
    // arrivals adopt the cached blocks of earlier ones and skip that
    // prefill, yet every response must stay bitwise equal to running the
    // request alone — the cached K/V rows ARE the isolated rows.
    for (seed, cfg) in [(707u64, tight_cfg(4, 4, 256)), (808, tight_cfg(3, 3, 128))] {
        let result = run_template_schedule(&b, &infuserki::nn::NoHook, seed, cfg, 14);
        verify(&b, &infuserki::nn::NoHook, &result, true, "shared-nohook");
        assert!(
            result.snapshot.prefix_hits > 0,
            "seed {seed}: template schedule never hit the prefix cache"
        );
        assert!(
            result.snapshot.prefix_hit_tokens >= result.snapshot.prefix_hits,
            "every hit skips at least one whole block of prompt tokens"
        );
    }
    kernels::set_num_threads(0);
}

#[test]
fn shared_prefix_schedules_are_bitwise_with_infuserki_state() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let m = infuserki_hook(&b);
    let hook = m.hook();
    // The infuser carry/gate state is a pure function of the token prefix,
    // so adopted snapshots must resume mid-prompt without any divergence.
    let result = run_template_schedule(&b, &hook, 909, tight_cfg(3, 4, 256), 12);
    verify(&b, &hook, &result, true, "shared-infuserki");
    assert!(
        result.snapshot.prefix_hits > 0,
        "stateful template schedule never hit the prefix cache"
    );
    kernels::set_num_threads(0);
}

#[test]
fn shared_prefix_scores_close_with_parallel_kernels() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(4);
    let b = base();
    let result = run_template_schedule(&b, &infuserki::nn::NoHook, 1010, tight_cfg(4, 4, 256), 12);
    for (id, (kind, outcome)) in result.kinds.iter().zip(&result.outcomes).enumerate() {
        if let (RequestKind::Mcq(m), Outcome::McqScored { scores, .. }) = (kind, outcome) {
            let want = sampler::score_options(&b, &infuserki::nn::NoHook, &m.prompt, &m.options);
            for (oi, (x, y)) in scores.iter().zip(&want).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-5,
                    "request {id} option {oi}: {x} vs {y} (threads 4)"
                );
            }
        }
    }
    assert!(result.snapshot.prefix_hits > 0);
    kernels::set_num_threads(0);
}

#[test]
fn scheduler_scores_close_with_parallel_kernels() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(4);
    let b = base();
    let result = run_schedule(&b, &infuserki::nn::NoHook, 606, tight_cfg(2, 3, 256), 10);
    // At four threads only the MCQ score comparison is meaningful (the
    // row-banded kernels reassociate sums); greedy token streams are
    // checked in the serial tests above.
    for (id, (kind, outcome)) in result.kinds.iter().zip(&result.outcomes).enumerate() {
        if let (RequestKind::Mcq(m), Outcome::McqScored { scores, .. }) = (kind, outcome) {
            let want = sampler::score_options(&b, &infuserki::nn::NoHook, &m.prompt, &m.options);
            for (oi, (x, y)) in scores.iter().zip(&want).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-5,
                    "request {id} option {oi}: {x} vs {y} (threads 4)"
                );
            }
        }
    }
    kernels::set_num_threads(0);
}
