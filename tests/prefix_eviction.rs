//! Eviction-under-pressure regression for the radix prefix cache: with a KV
//! budget far too small to keep every template's blocks indexed, admission
//! must reclaim cold prefixes via LRU eviction instead of deadlocking behind
//! them, and a prompt whose cached prefix was evicted must simply re-prefill
//! — bitwise identical to running it alone (serial kernels).
//!
//! The kernel thread override is process-global; tests serialize behind one
//! lock.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

use infuserki::nn::{sampler, ModelConfig, NoHook, TransformerLm};
use infuserki::serve::{
    GenerateSpec, McqSpec, Outcome, Request, RequestKind, Response, Scheduler, ServeConfig,
};
use infuserki::tensor::kernels;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 40;

static THREADS: Mutex<()> = Mutex::new(());

fn base() -> TransformerLm {
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    TransformerLm::new(ModelConfig::tiny(VOCAB), &mut rng)
}

/// A budget that fits only a couple of in-flight requests plus a fraction of
/// the index the templates would like to keep: admission pressure must evict.
fn pressure_cfg() -> ServeConfig {
    ServeConfig {
        prefill_chunk: 3,
        max_batch: 2,
        kv_budget_rows: 48,
        block_rows: 4,
        prefix_cache: true,
        queue_capacity: 64,
        compact_after_retire: true,
        threads: None,
    }
}

fn template(rng: &mut ChaCha8Rng, len: usize) -> Vec<usize> {
    (0..len).map(|_| rng.gen_range(0..VOCAB)).collect()
}

fn submit(sched: &mut Scheduler<'_>, id: u64, kind: RequestKind) -> Receiver<Response> {
    let (tx, rx) = std::sync::mpsc::channel();
    sched.enqueue(Request::new(id, kind, tx));
    rx
}

/// Every outcome must be a completion matching the isolated sampler path,
/// bitwise (callers hold the thread count at 1).
fn verify_bitwise(model: &TransformerLm, kinds: &[RequestKind], rxs: Vec<Receiver<Response>>) {
    for (id, (kind, rx)) in kinds.iter().zip(rxs).enumerate() {
        let outcome = rx
            .try_recv()
            .unwrap_or_else(|_| panic!("request {id} never finished"))
            .outcome;
        match (kind, outcome) {
            (RequestKind::Generate(g), Outcome::Generated { tokens }) => {
                let want = sampler::greedy_decode(model, &NoHook, &g.prompt, g.max_new, g.eos);
                assert_eq!(tokens, want, "request {id}: token divergence");
            }
            (RequestKind::Mcq(m), Outcome::McqScored { scores, .. }) => {
                let want = sampler::score_options(model, &NoHook, &m.prompt, &m.options);
                for (oi, (x, y)) in scores.iter().zip(&want).enumerate() {
                    assert!(
                        x.to_bits() == y.to_bits(),
                        "request {id} option {oi}: {x} vs {y} (bitwise)"
                    );
                }
            }
            (_, other) => panic!("request {id}: unexpected outcome {other:?}"),
        }
    }
}

#[test]
fn pressure_evicts_cold_prefixes_without_deadlock() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    // One hot template most requests share, six cold one-shot templates.
    // Each 12-token template wants 3 index blocks (12 rows); all seven
    // together want 84 rows against a 48-row budget, so admission *must*
    // evict — and the hot path, being recently used, should survive while
    // the cold ones go.
    let hot = template(&mut rng, 12);
    let colds: Vec<Vec<usize>> = (0..6).map(|_| template(&mut rng, 12)).collect();

    let mut kinds: Vec<RequestKind> = Vec::new();
    for cold in &colds {
        let mut hot_prompt = hot.clone();
        hot_prompt.push(rng.gen_range(0..VOCAB));
        kinds.push(RequestKind::Generate(GenerateSpec::greedy(
            hot_prompt, 4, None,
        )));
        kinds.push(RequestKind::Generate(GenerateSpec::greedy(
            cold.clone(),
            4,
            None,
        )));
    }
    // A couple of MCQs on the hot template exercise the branch-phase cost
    // path under the same pressure.
    kinds.push(RequestKind::Mcq(McqSpec {
        prompt: hot.clone(),
        options: vec![vec![1, 2, 3], vec![4, 5]],
    }));

    let mut sched = Scheduler::new(&b, &NoHook, pressure_cfg()).unwrap();
    let rxs: Vec<Receiver<Response>> = kinds
        .iter()
        .enumerate()
        .map(|(id, kind)| submit(&mut sched, id as u64, kind.clone()))
        .collect();
    // Termination of this call *is* the no-deadlock property: queued
    // requests block on budget until eviction frees indexed rows.
    sched.run_until_idle();

    let snap = sched.snapshot();
    assert!(
        snap.blocks_evicted > 0,
        "48-row budget never evicted despite 84 rows of indexable prefixes"
    );
    assert!(
        snap.prefix_hits > 0,
        "hot template repeats never hit the cache"
    );
    assert_eq!(
        snap.completed,
        kinds.len() as u64,
        "every request completes"
    );
    verify_bitwise(&b, &kinds, rxs);
    kernels::set_num_threads(0);
}

#[test]
fn evicted_prefixes_reprefill_bitwise() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let b = base();
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let first = template(&mut rng, 12);
    let churn: Vec<Vec<usize>> = (0..6).map(|_| template(&mut rng, 12)).collect();

    let mut sched = Scheduler::new(&b, &NoHook, pressure_cfg()).unwrap();

    // Wave 1: prime the cache with `first`, then churn through six other
    // templates so LRU pressure evicts the primed path.
    let mut kinds: Vec<RequestKind> = vec![RequestKind::Generate(GenerateSpec::greedy(
        first.clone(),
        3,
        None,
    ))];
    for t in &churn {
        kinds.push(RequestKind::Generate(GenerateSpec::greedy(
            t.clone(),
            3,
            None,
        )));
    }
    let rxs: Vec<Receiver<Response>> = kinds
        .iter()
        .enumerate()
        .map(|(id, kind)| submit(&mut sched, id as u64, kind.clone()))
        .collect();
    sched.run_until_idle();
    let evicted_after_wave1 = sched.snapshot().blocks_evicted;
    assert!(
        evicted_after_wave1 > 0,
        "churn wave never forced an eviction"
    );
    verify_bitwise(&b, &kinds, rxs);

    // Wave 2: resubmit the first template (its blocks are long cold — some
    // or all were reclaimed) plus a fresh variant with a suffix. Whether a
    // block survives or re-prefills, responses stay bitwise equal to the
    // isolated path; the determinism contract makes recomputed rows
    // indistinguishable from cached ones.
    let mut suffixed = first.clone();
    suffixed.push(7);
    let kinds2 = vec![
        RequestKind::Generate(GenerateSpec::greedy(first.clone(), 5, None)),
        RequestKind::Generate(GenerateSpec::greedy(suffixed, 3, None)),
    ];
    let rxs2: Vec<Receiver<Response>> = kinds2
        .iter()
        .enumerate()
        .map(|(id, kind)| submit(&mut sched, 100 + id as u64, kind.clone()))
        .collect();
    sched.run_until_idle();
    verify_bitwise(&b, &kinds2, rxs2);
    kernels::set_num_threads(0);
}
