//! The online update pipeline against the REAL serving control plane: an
//! [`infuserki::serve::Client`] is the pipeline's publisher, so bundles go
//! through load→stage→promote on the scheduler thread with the NR
//! regression gate live.
//!
//! Proves the acceptance pair:
//! * a round of genuinely new facts trains, packages and promotes a bundle
//!   the serving side activates;
//! * a regressing candidate (the method reset underneath the pipeline) is
//!   REFUSED by the promote-time gate, the batch is dropped, the prior
//!   version keeps serving, and requests still complete.

use infuserki::core::{InfuserKiConfig, TrainConfig};
use infuserki::ingest::{
    AppendOutcome, DurableStore, PipelineConfig, RoundOutcome, StoreOptions, TripleDelta,
    UpdatePipeline,
};
use infuserki::kg::{synth_umls, TripleStore, UmlsConfig};
use infuserki::nn::{ModelConfig, NoHook, TransformerLm};
use infuserki::serve::{spawn_scheduler, Outcome, ServeConfig};
use infuserki::tensor::kernels;
use infuserki::text::{prompts, templates::TemplateSet, Tokenizer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("infuserki_ingpipe_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn tiny_world() -> (TransformerLm, Tokenizer, TripleStore) {
    let store = synth_umls(&UmlsConfig::with_triplets(40, 19));
    let mut lines: Vec<String> = store.entity_names().map(str::to_string).collect();
    for r in store.relation_names() {
        lines.extend(TemplateSet::vocabulary_lines(r));
    }
    lines.extend(prompts::vocabulary_lines());
    let tok = Tokenizer::build(lines.iter().map(String::as_str));
    let mut rng = ChaCha8Rng::seed_from_u64(91);
    let base = TransformerLm::new(
        ModelConfig {
            vocab_size: tok.vocab_size(),
            max_seq: 96,
            ..ModelConfig::tiny(0)
        },
        &mut rng,
    );
    (base, tok, store)
}

fn pipeline_cfg(dir: &std::path::Path) -> PipelineConfig {
    let mut method = InfuserKiConfig::for_model(2);
    method.bottleneck = 4;
    method.infuser_hidden = 4;
    method.rc_dim = 8;
    PipelineConfig {
        min_batch: 2,
        max_age_ms: 120_000,
        max_relations: 24,
        method: Some(method),
        bundle_dir: dir.join("bundles").display().to_string(),
        name_prefix: "live".to_string(),
        train: TrainConfig {
            epochs_infuser: 6,
            epochs_qa: 24,
            epochs_rc: 2,
            lr: 3e-3,
            lr_infuser: 2e-2,
            batch: 4,
            seed: 11,
        },
        ..PipelineConfig::default()
    }
}

/// Appends `n` novel (not-yet-live) facts re-using known names, so they are
/// in-vocabulary and trainable. Facts appended by an earlier call are live
/// and rejected as duplicates, so repeated calls find fresh ones. Returns
/// how many were accepted.
fn append_novel(ds: &mut DurableStore, world: &TripleStore, n: usize) -> usize {
    let names: Vec<&str> = world.entity_names().collect();
    let rel = world.relation_name(world.triples()[0].relation);
    let mut appended = 0;
    'outer: for (i, &s) in names.iter().enumerate() {
        for &o in names.iter().skip(i + 1) {
            if appended == n {
                break 'outer;
            }
            if let AppendOutcome::Accepted(_) = ds.append(&TripleDelta::add(s, rel, o)).unwrap() {
                appended += 1;
            }
        }
    }
    ds.sync().unwrap();
    appended
}

#[test]
fn pipeline_publishes_through_real_gate_then_refuses_regression() {
    kernels::set_num_threads(1);
    let dir = tmp("gate");
    let (base, tok, world) = tiny_world();

    // Baseline world into the WAL before the pipeline exists.
    let mut ds = DurableStore::open(&dir, StoreOptions::default()).unwrap();
    for t in world.triples() {
        let d = TripleDelta::add(
            world.entity_name(t.head),
            world.relation_name(t.relation),
            world.entity_name(t.tail),
        );
        ds.append(&d).unwrap();
    }
    ds.sync().unwrap();

    let (client, handle) = spawn_scheduler(base.clone(), NoHook, ServeConfig::default()).unwrap();
    let metrics = client.metrics_handle();
    let mut pipe = UpdatePipeline::new(
        base,
        tok,
        &dir,
        pipeline_cfg(&dir),
        client.clone(),
        metrics.registry(),
    )
    .unwrap();
    assert_eq!(pipe.run_once().unwrap(), RoundOutcome::Idle, "baseline");

    // Round 1: two new facts → trained bundle promoted as version 1.
    assert_eq!(append_novel(&mut ds, &world, 2), 2);
    let outcome = pipe.run_once().unwrap();
    let RoundOutcome::Published { version, .. } = outcome else {
        panic!("round 1 should publish, got {outcome:?}");
    };
    assert_eq!(version, 1);
    let list = client.list_bundles().unwrap();
    assert!(list[1].active, "published version serves unpinned traffic");
    assert!(
        !pipe.carried_probes().is_empty(),
        "round 1 probes are carried forward"
    );

    // Sabotage: replace the trained method with a fresh untrained one and
    // gate the next bundle ONLY on the carried (round-1) probes. The
    // candidate now regresses on knowledge version 1 mastered — exactly
    // what the NR gate exists to catch.
    pipe.reset_method();
    let carried = pipe.carried_probes().len();
    pipe.config_mut().max_gate_probes = carried;

    assert_eq!(append_novel(&mut ds, &world, 2), 2);
    let outcome = pipe.run_once().unwrap();
    let RoundOutcome::Refused {
        probes,
        staged_correct,
        active_correct,
    } = outcome
    else {
        panic!("regressing candidate should be refused, got {outcome:?}");
    };
    assert_eq!(probes as usize, carried);
    assert!(
        staged_correct < active_correct,
        "gate fired on a genuine regression: {staged_correct} vs {active_correct}"
    );

    // The prior version keeps serving: still active, and live requests
    // complete normally after the refusal.
    let list = client.list_bundles().unwrap();
    assert!(list[1].active, "version 1 still active after refusal");
    assert_eq!(
        list.iter().filter(|b| b.active).count(),
        1,
        "exactly one active version"
    );
    let rx = client.generate(vec![1, 2, 3], 4, None).unwrap();
    assert!(matches!(rx.wait().unwrap(), Outcome::Generated { .. }));

    // The pipeline itself moved on: batch dropped, ready for more work.
    assert_eq!(pipe.pending(), 0);
    handle.shutdown();
    kernels::set_num_threads(0);
    let _ = std::fs::remove_dir_all(&dir);
}
