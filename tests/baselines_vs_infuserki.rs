//! Cross-crate integration: every baseline trains through the same hook
//! interface, and the forgetting comparison between LoRA and InfuserKI is
//! measurable end-to-end.

use infuserki::baselines::calinet::{Calinet, CalinetConfig};
use infuserki::baselines::lora::{LoraConfig, LoraMethod};
use infuserki::baselines::prefix::{PrefixConfig, PrefixTuning};
use infuserki::baselines::qlora::{quantize_model, QuantConfig};
use infuserki::baselines::tpatcher::{TPatcher, TPatcherConfig};
use infuserki::baselines::{train_patched, VisitTrainable};
use infuserki::core::dataset::KiDataset;
use infuserki::core::detect::detect_unknown;
use infuserki::eval::evaluate_method;
use infuserki::eval::world::{build_world_in, Domain, World, WorldConfig};
use infuserki::nn::{LayerHook, NoHook};

fn tiny_world(seed: u64) -> World {
    let dir = std::env::temp_dir().join(format!("infuserki_bvi_{}_{seed}", std::process::id()));
    build_world_in(&WorldConfig::tiny(Domain::MetaQa, seed), &dir)
}

#[test]
fn all_baselines_train_and_evaluate_through_hooks() {
    let w = tiny_world(301);
    let det = detect_unknown(&w.base, &NoHook, &w.tokenizer, w.bank.template(0));
    let data = KiDataset::build(&w.store, &w.bank, &w.tokenizer, &det.known, &det.unknown, 1);
    let samples = &data.qa;

    let mut lora = LoraMethod::new(LoraConfig::default(), &w.base);
    let mut prefix = PrefixTuning::new(PrefixConfig::default(), &w.base);
    let mut calinet = Calinet::new(CalinetConfig::for_model(w.base.n_layers()), &w.base);
    let mut tpatcher = TPatcher::new(TPatcherConfig::default(), &w.base);

    let l1 = train_patched(&w.base, &mut lora, samples, 1, 3e-3, 8, 0);
    let l2 = train_patched(&w.base, &mut prefix, samples, 1, 3e-3, 8, 0);
    let l3 = train_patched(&w.base, &mut calinet, samples, 1, 3e-3, 8, 0);
    let l4 = train_patched(&w.base, &mut tpatcher, samples, 1, 3e-3, 8, 0);
    for losses in [&l1, &l2, &l3, &l4] {
        assert_eq!(losses.len(), 1);
        assert!(losses[0].is_finite() && losses[0] > 0.0);
    }

    for (name, hook) in [
        ("lora", &lora as &dyn LayerHook),
        ("prefix", &prefix),
        ("calinet", &calinet),
        ("tpatcher", &tpatcher),
    ] {
        let eval = evaluate_method(
            &w.base,
            hook,
            &w.tokenizer,
            &w.bank,
            &det.known,
            &det.unknown,
        );
        assert!(
            eval.nr.is_nan() || (0.0..=1.0).contains(&eval.nr),
            "{name}: NR out of range"
        );
    }

    // Parameter budgets stay small relative to the base (PEFT property).
    let base_params = {
        use infuserki::nn::layers::Module;
        w.base.numel()
    };
    for (name, params) in [
        ("lora", lora.trainable_params()),
        ("prefix", prefix.trainable_params()),
        ("calinet", calinet.trainable_params()),
        ("tpatcher", tpatcher.trainable_params()),
    ] {
        assert!(
            params * 4 < base_params,
            "{name}: {params} trainable params is not parameter-efficient vs {base_params}"
        );
    }
}

#[test]
fn qlora_trains_on_a_quantized_base() {
    let w = tiny_world(302);
    let mut qbase = w.base.clone();
    let n = quantize_model(&mut qbase, QuantConfig::default());
    assert!(n > 0);
    let det = detect_unknown(&w.base, &NoHook, &w.tokenizer, w.bank.template(0));
    let data = KiDataset::build(&w.store, &w.bank, &w.tokenizer, &det.known, &det.unknown, 1);
    let mut lora = LoraMethod::new(LoraConfig::default(), &qbase);
    let losses = train_patched(&qbase, &mut lora, &data.qa, 1, 3e-3, 8, 0);
    assert!(losses[0].is_finite());
}
