//! [`InfuserKiMethod`]: the trainable patch — adapters + infusers + RC head —
//! and its [`LayerHook`] implementation wiring Eq. 1–6 into the frozen base
//! model's forward pass.

use infuserki_nn::layers::{Linear, Module};
use infuserki_nn::{ForwardTrace, HookState, LayerHook, TransformerLm};
use infuserki_tensor::{infer, init, kernels, Matrix, NodeId, Param, SeqBatch, Tape};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::adapter::AdapterLayer;
use crate::config::{GateInput, InfuserKiConfig, Site};
use crate::dataset::{InfuserSample, RcSample};
use crate::infuser::InfuserMlp;

/// The InfuserKI trainable modules. The base model stays frozen; this struct
/// owns every parameter the three training phases touch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InfuserKiMethod {
    cfg: InfuserKiConfig,
    adapters: Vec<AdapterLayer>,
    infusers: Vec<InfuserMlp>,
    rc_proj: Linear,
    rel_embed: Param,
}

impl InfuserKiMethod {
    /// Builds the method for `base` over a KG with `n_relations` relations.
    pub fn new(cfg: InfuserKiConfig, base: &TransformerLm, n_relations: usize) -> Self {
        assert!(
            cfg.placement.last <= base.n_layers(),
            "placement {}..{} exceeds model depth {}",
            cfg.placement.first,
            cfg.placement.last,
            base.n_layers()
        );
        assert!(!cfg.placement.is_empty(), "empty adapter placement");
        let d = base.config().d_model;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let adapters = (cfg.placement.first..cfg.placement.last)
            .map(|l| AdapterLayer::new(l, d, cfg.bottleneck, &mut rng))
            .collect();
        let infusers = (cfg.placement.first..cfg.placement.last)
            .map(|l| InfuserMlp::new(l, d, cfg.infuser_hidden, &mut rng))
            .collect();
        let rc_proj = Linear::new("rc.proj", 2 * d, cfg.rc_dim, 0.05, true, &mut rng);
        let rel_embed = Param::new(
            "rc.rel_embed",
            init::normal(n_relations, cfg.rc_dim, 0.05, &mut rng),
        );
        InfuserKiMethod {
            cfg,
            adapters,
            infusers,
            rc_proj,
            rel_embed,
        }
    }

    /// The method configuration.
    pub fn config(&self) -> &InfuserKiConfig {
        &self.cfg
    }

    /// A hook view for running the patched model.
    pub fn hook(&self) -> InfuserKiHook<'_> {
        InfuserKiHook { method: self }
    }

    /// Extra-parameter count (the paper reports ≈2.5M for LLaMa-2-7B).
    pub fn extra_params(&self) -> usize {
        let mut n = 0;
        self.visit_all(&mut |p| n += p.numel());
        n
    }

    /// Saves the trained adapters/infusers/RC head as JSON — a method
    /// checkpoint is tiny (~KBs) compared to the base model, which is the
    /// deployment story of adapter methods: ship one base, many patches.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        let json = serde_json::to_string(self).map_err(|e| e.to_string())?;
        if let Some(dir) = path.as_ref().parent() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
        std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.as_ref().display()))
    }

    /// Loads a method checkpoint saved by [`save`](Self::save). The
    /// checkpoint must match `base`'s depth and width.
    pub fn load(path: impl AsRef<std::path::Path>, base: &TransformerLm) -> Result<Self, String> {
        let json = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.as_ref().display()))?;
        let method: InfuserKiMethod =
            serde_json::from_str(&json).map_err(|e| format!("parse checkpoint: {e}"))?;
        if method.cfg.placement.last > base.n_layers() {
            return Err(format!(
                "checkpoint placement {}..{} exceeds base depth {}",
                method.cfg.placement.first,
                method.cfg.placement.last,
                base.n_layers()
            ));
        }
        Ok(method)
    }

    /// Core of Eq. 1–6: combines the carry, runs the adapter, applies the
    /// gate, and fuses with the sublayer output.
    fn adapt(
        &self,
        layer: usize,
        sub_in: NodeId,
        sub_out: NodeId,
        tape: &mut Tape,
        trace: &mut ForwardTrace,
    ) -> NodeId {
        let offset = self.cfg.placement.offset(layer);
        // Eq. 1: H̃_A^l = H_A^{l-1} + H_P^l (carry starts at zero ⇒ identity).
        let h_tilde = match trace.adapter_carry {
            Some(carry) => tape.add(carry, sub_in),
            None => sub_in,
        };
        // Eq. 2.
        let h_a = self.adapters[offset].forward(h_tilde, tape);
        trace.adapter_carry = Some(h_a);
        trace.adapter_outputs.push((layer, h_a));

        if self.cfg.ablation.use_infuser {
            // Eq. 4, made causal: the paper pools the *full* sequence, which
            // row `t` cannot see under autoregressive decoding. We gate row
            // `t` by its cumulative prefix mean `Mean(gate_src[0..=t])`
            // instead; the last row's gate is bitwise the paper's
            // full-sequence gate, so the recorded logits/scores (and Eq. 5's
            // BCE) are unchanged, while every row becomes KV-cacheable.
            let gate_src = match self.cfg.gate_input {
                GateInput::SublayerIn => sub_in,
                GateInput::SublayerOut => sub_out,
            };
            let pooled = tape.cum_mean_rows(gate_src);
            let logits = self.infusers[offset].logit(pooled, tape);
            let n = tape.value(logits).rows();
            let last_logit = tape.slice_rows(logits, n - 1, n);
            trace.gate_logits.push((layer, last_logit));
            let r = tape.sigmoid(logits);
            let last_r = tape.slice_rows(r, n - 1, n);
            trace.gate_scores.push((layer, last_r));
            // Eq. 6: H_O^l = r^l · H_A^l + FFN(H_P^l), per row.
            let gated = tape.mul_col_broadcast(h_a, r);
            tape.add(gated, sub_out)
        } else {
            // Eq. 3 (w/o-Ro ablation): plain additive fusion.
            tape.add(h_a, sub_out)
        }
    }

    /// Tape-free counterpart of [`Self::adapt`] for the KV-cached incremental
    /// engine. Bitwise-identical row for row to the tape path under any
    /// chunking: the adapter carry is row-local (it crosses *layers*, not
    /// tokens), and the cumulative gate statistics in `state` continue the
    /// prefix means across chunks exactly.
    fn adapt_incremental(
        &self,
        layer: usize,
        sub_in: &Matrix,
        sub_out: Matrix,
        state: &mut InfuserInferState,
    ) -> Matrix {
        let offset = self.cfg.placement.offset(layer);
        // Eq. 1.
        let h_tilde = match &state.carry {
            Some(carry) => {
                let mut h = carry.clone();
                h.add_assign(sub_in);
                h
            }
            None => sub_in.clone(),
        };
        // Eq. 2.
        let h_a = self.adapters[offset].apply(&h_tilde);
        state.carry = Some(h_a.clone());
        if self.cfg.ablation.use_infuser {
            // Eq. 4 (causal form — see `adapt`).
            let gate_src = match self.cfg.gate_input {
                GateInput::SublayerIn => sub_in,
                GateInput::SublayerOut => &sub_out,
            };
            let (sums, count) = &mut state.gates[offset];
            let pooled = infer::cumulative_mean_rows_continue(sums, count, gate_src);
            let logits = self.infusers[offset].apply(&pooled);
            let r = logits.map(kernels::sigmoid);
            // Eq. 6.
            let mut out = infer::mul_col_broadcast(&h_a, &r);
            out.add_assign(&sub_out);
            out
        } else {
            // Eq. 3 (w/o-Ro ablation).
            let mut out = h_a;
            out.add_assign(&sub_out);
            out
        }
    }

    /// Batched counterpart of [`Self::adapt_incremental`] over packed chunks.
    /// The carry add, adapter forward, infuser MLP, sigmoid and gating are all
    /// row-local, so they run once over the packed matrix; only the per-state
    /// bookkeeping (carry slices, cumulative gate sums) dispatches per
    /// sequence. Per row bitwise-equal (at one kernel thread) to adapting each
    /// sequence alone — no state leaks across batch members.
    fn adapt_incremental_batch(
        &self,
        layer: usize,
        sub_in: &Matrix,
        sub_out: Matrix,
        batch: &SeqBatch,
        states: &mut [Option<Box<dyn HookState>>],
    ) -> Matrix {
        if batch.n_seqs() == 1 {
            return self.adapt_incremental(layer, sub_in, sub_out, downcast_state(&mut states[0]));
        }
        let offset = self.cfg.placement.offset(layer);
        let mut sts: Vec<&mut InfuserInferState> = states.iter_mut().map(downcast_state).collect();
        // Eq. 1, packed: each sequence's carry adds into its own row block
        // (f32 addition commutes, so `sub_in + carry` matches the single
        // path's `carry + sub_in` bit for bit).
        let mut h_tilde = sub_in.clone();
        for (i, rng) in batch.ranges().enumerate() {
            if let Some(carry) = &sts[i].carry {
                let mut rows = h_tilde.slice_rows(rng.start, rng.end);
                rows.add_assign(carry);
                h_tilde.copy_rows_from(rng.start, &rows);
            }
        }
        // Eq. 2, one packed adapter forward.
        let h_a = self.adapters[offset].apply(&h_tilde);
        for (i, rng) in batch.ranges().enumerate() {
            sts[i].carry = Some(h_a.slice_rows(rng.start, rng.end));
        }
        if self.cfg.ablation.use_infuser {
            // Eq. 4 (causal form — see `adapt`). The cumulative means are the
            // only token-crossing statistic, so they pool per sequence.
            let gate_src = match self.cfg.gate_input {
                GateInput::SublayerIn => sub_in,
                GateInput::SublayerOut => &sub_out,
            };
            let mut pooled = Matrix::zeros(gate_src.rows(), gate_src.cols());
            for (i, rng) in batch.ranges().enumerate() {
                let chunk = gate_src.slice_rows(rng.start, rng.end);
                let (sums, count) = &mut sts[i].gates[offset];
                let p = infer::cumulative_mean_rows_continue(sums, count, &chunk);
                pooled.copy_rows_from(rng.start, &p);
            }
            let logits = self.infusers[offset].apply(&pooled);
            let r = logits.map(kernels::sigmoid);
            // Eq. 6.
            let mut out = infer::mul_col_broadcast(&h_a, &r);
            out.add_assign(&sub_out);
            out
        } else {
            // Eq. 3 (w/o-Ro ablation).
            let mut out = h_a;
            out.add_assign(&sub_out);
            out
        }
    }

    // ---- loss builders -------------------------------------------------------

    /// Phase-1 loss (Eq. 5): BCE over every adapted layer's gate logit;
    /// label 1 for unknown knowledge, 0 for known.
    pub fn infuser_loss(
        &self,
        base: &TransformerLm,
        sample: &InfuserSample,
        tape: &mut Tape,
    ) -> NodeId {
        assert!(
            self.cfg.ablation.use_infuser,
            "infuser loss requires the infuser module"
        );
        let mut trace = ForwardTrace::new();
        let hook = self.hook();
        base.forward_traced(&sample.tokens, &hook, tape, &mut trace);
        assert!(
            !trace.gate_logits.is_empty(),
            "no gate logits recorded — placement/hook mismatch"
        );
        let mut stacked = trace.gate_logits[0].1;
        for &(_, z) in &trace.gate_logits[1..] {
            stacked = tape.concat_rows(stacked, z);
        }
        let labels = vec![sample.label; trace.gate_logits.len()];
        tape.bce_with_logits(stacked, &labels)
    }

    /// Phase-3 loss (Eq. 9–10): statement next-token loss plus λ_RC × the
    /// InfoNCE relation-classification loss over pooled adapter outputs at
    /// the head/tail mention spans.
    pub fn rc_loss(&self, base: &TransformerLm, sample: &RcSample, tape: &mut Tape) -> NodeId {
        let mut trace = ForwardTrace::new();
        let hook = self.hook();
        let logits = base.forward_traced(&sample.tokens, &hook, tape, &mut trace);
        let ntl = tape.cross_entropy(logits, &sample.targets);
        if !self.cfg.ablation.use_rc {
            return ntl;
        }
        let h_a = trace
            .last_adapter_output()
            .expect("adapters must be active for RC pooling");
        let head_rows: Vec<usize> = (sample.head_span.0..sample.head_span.1).collect();
        let tail_rows: Vec<usize> = (sample.tail_span.0..sample.tail_span.1).collect();
        let v_h = tape.mean_selected_rows(h_a, &head_rows);
        let v_t = tape.mean_selected_rows(h_a, &tail_rows);
        // v^r = [v^h, v^t] (Qin et al. 2021 relational representation).
        let v_r = tape.concat_cols(&[v_h, v_t]);
        let proj = self.rc_proj.forward(v_r, tape);
        let rel = tape.param(&self.rel_embed);
        let sim = tape.matmul_bt(proj, rel);
        let scaled = tape.scale(sim, 1.0 / self.cfg.tau);
        // InfoNCE over the full relation set reduces to CE on scaled logits.
        let rc = tape.cross_entropy(scaled, &[sample.relation]);
        let rc_weighted = tape.scale(rc, self.cfg.lambda_rc);
        tape.add(ntl, rc_weighted)
    }

    // ---- parameter visitors ---------------------------------------------------

    /// Visits adapter parameters.
    pub fn visit_adapters_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for a in &mut self.adapters {
            a.visit_mut(f);
        }
    }

    /// Visits infuser parameters.
    pub fn visit_infusers_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for i in &mut self.infusers {
            i.visit_mut(f);
        }
    }

    /// Visits RC head parameters.
    pub fn visit_rc_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.rc_proj.visit_mut(f);
        f(&mut self.rel_embed);
    }

    /// Visits every parameter immutably.
    pub fn visit_all(&self, f: &mut dyn FnMut(&Param)) {
        for a in &self.adapters {
            a.visit(f);
        }
        for i in &self.infusers {
            i.visit(f);
        }
        self.rc_proj.visit(f);
        f(&self.rel_embed);
    }
}

/// Per-cache incremental hook state: the cross-layer adapter carry (reset at
/// the start of each chunk — it flows across layers within one forward, not
/// across tokens) and, per adapted layer, the running column sums and row
/// count behind the cumulative gate means (persist across chunks — they pool
/// over every token seen so far, matching the tape path's prefix means).
#[derive(Clone)]
struct InfuserInferState {
    carry: Option<Matrix>,
    gates: Vec<(Vec<f32>, usize)>,
}

impl InfuserInferState {
    fn new(n_adapters: usize, d_model: usize) -> Self {
        InfuserInferState {
            carry: None,
            gates: vec![(vec![0.0; d_model], 0); n_adapters],
        }
    }
}

impl HookState for InfuserInferState {
    fn clone_box(&self) -> Box<dyn HookState> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn begin_chunk(&mut self) {
        self.carry = None;
    }
}

/// The method is itself a [`LayerHook`], so harness code can treat every
/// knowledge-integration method as `&dyn LayerHook` uniformly.
impl LayerHook for InfuserKiMethod {
    fn ffn_output(
        &self,
        layer: usize,
        ffn_in: NodeId,
        ffn_out: NodeId,
        tape: &mut Tape,
        trace: &mut ForwardTrace,
    ) -> NodeId {
        self.hook().ffn_output(layer, ffn_in, ffn_out, tape, trace)
    }

    fn attn_output(
        &self,
        layer: usize,
        attn_in: NodeId,
        attn_out: NodeId,
        tape: &mut Tape,
        trace: &mut ForwardTrace,
    ) -> NodeId {
        self.hook()
            .attn_output(layer, attn_in, attn_out, tape, trace)
    }

    fn make_state(&self) -> Option<Box<dyn HookState>> {
        self.hook().make_state()
    }

    fn prefix_cache_safe(&self) -> bool {
        self.hook().prefix_cache_safe()
    }

    fn infer_ffn_output(
        &self,
        layer: usize,
        ffn_in: &Matrix,
        ffn_out: Matrix,
        state: &mut Option<Box<dyn HookState>>,
    ) -> Matrix {
        self.hook().infer_ffn_output(layer, ffn_in, ffn_out, state)
    }

    fn infer_attn_output(
        &self,
        layer: usize,
        attn_in: &Matrix,
        attn_out: Matrix,
        state: &mut Option<Box<dyn HookState>>,
    ) -> Matrix {
        self.hook()
            .infer_attn_output(layer, attn_in, attn_out, state)
    }

    fn infer_ffn_output_batch(
        &self,
        layer: usize,
        ffn_in: &Matrix,
        ffn_out: Matrix,
        batch: &SeqBatch,
        states: &mut [Option<Box<dyn HookState>>],
    ) -> Matrix {
        self.hook()
            .infer_ffn_output_batch(layer, ffn_in, ffn_out, batch, states)
    }

    fn infer_attn_output_batch(
        &self,
        layer: usize,
        attn_in: &Matrix,
        attn_out: Matrix,
        batch: &SeqBatch,
        states: &mut [Option<Box<dyn HookState>>],
    ) -> Matrix {
        self.hook()
            .infer_attn_output_batch(layer, attn_in, attn_out, batch, states)
    }
}

/// Borrowing [`LayerHook`] view over an [`InfuserKiMethod`].
pub struct InfuserKiHook<'a> {
    method: &'a InfuserKiMethod,
}

impl LayerHook for InfuserKiHook<'_> {
    fn ffn_output(
        &self,
        layer: usize,
        ffn_in: NodeId,
        ffn_out: NodeId,
        tape: &mut Tape,
        trace: &mut ForwardTrace,
    ) -> NodeId {
        let p = &self.method.cfg.placement;
        if p.site != Site::Ffn || !p.contains(layer) {
            return ffn_out;
        }
        self.method.adapt(layer, ffn_in, ffn_out, tape, trace)
    }

    fn attn_output(
        &self,
        layer: usize,
        attn_in: NodeId,
        attn_out: NodeId,
        tape: &mut Tape,
        trace: &mut ForwardTrace,
    ) -> NodeId {
        let p = &self.method.cfg.placement;
        if p.site != Site::Attention || !p.contains(layer) {
            return attn_out;
        }
        self.method.adapt(layer, attn_in, attn_out, tape, trace)
    }

    fn make_state(&self) -> Option<Box<dyn HookState>> {
        let m = self.method;
        Some(Box::new(InfuserInferState::new(
            m.adapters.len(),
            m.adapters[0].d_model(),
        )))
    }

    // The infuser state is a pure function of the token prefix: the carry
    // resets at every `begin_chunk` and the cumulative gate sums depend only
    // on the tokens already fed, so a snapshot taken after a prefix can be
    // adopted by any request sharing that prefix.
    fn prefix_cache_safe(&self) -> bool {
        true
    }

    fn infer_ffn_output(
        &self,
        layer: usize,
        ffn_in: &Matrix,
        ffn_out: Matrix,
        state: &mut Option<Box<dyn HookState>>,
    ) -> Matrix {
        let p = &self.method.cfg.placement;
        if p.site != Site::Ffn || !p.contains(layer) {
            return ffn_out;
        }
        let st = downcast_state(state);
        self.method.adapt_incremental(layer, ffn_in, ffn_out, st)
    }

    fn infer_attn_output(
        &self,
        layer: usize,
        attn_in: &Matrix,
        attn_out: Matrix,
        state: &mut Option<Box<dyn HookState>>,
    ) -> Matrix {
        let p = &self.method.cfg.placement;
        if p.site != Site::Attention || !p.contains(layer) {
            return attn_out;
        }
        let st = downcast_state(state);
        self.method.adapt_incremental(layer, attn_in, attn_out, st)
    }

    fn infer_ffn_output_batch(
        &self,
        layer: usize,
        ffn_in: &Matrix,
        ffn_out: Matrix,
        batch: &SeqBatch,
        states: &mut [Option<Box<dyn HookState>>],
    ) -> Matrix {
        let p = &self.method.cfg.placement;
        if p.site != Site::Ffn || !p.contains(layer) {
            return ffn_out;
        }
        self.method
            .adapt_incremental_batch(layer, ffn_in, ffn_out, batch, states)
    }

    fn infer_attn_output_batch(
        &self,
        layer: usize,
        attn_in: &Matrix,
        attn_out: Matrix,
        batch: &SeqBatch,
        states: &mut [Option<Box<dyn HookState>>],
    ) -> Matrix {
        let p = &self.method.cfg.placement;
        if p.site != Site::Attention || !p.contains(layer) {
            return attn_out;
        }
        self.method
            .adapt_incremental_batch(layer, attn_in, attn_out, batch, states)
    }
}

/// Extracts the [`InfuserInferState`] a cache built via `make_state` carries.
fn downcast_state(state: &mut Option<Box<dyn HookState>>) -> &mut InfuserInferState {
    state
        .as_mut()
        .expect("InfuserKI incremental inference requires hook state")
        .as_any_mut()
        .downcast_mut::<InfuserInferState>()
        .expect("hook state is not InfuserInferState")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Placement;
    use infuserki_nn::{ModelConfig, NoHook};

    fn base() -> TransformerLm {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        TransformerLm::new(ModelConfig::tiny(40), &mut rng)
    }

    fn cfg(n_layers: usize) -> InfuserKiConfig {
        let mut c = InfuserKiConfig::for_model(n_layers);
        c.bottleneck = 4;
        c.infuser_hidden = 4;
        c.rc_dim = 8;
        c
    }

    #[test]
    fn fresh_method_is_identity_on_base() {
        let b = base();
        let m = InfuserKiMethod::new(cfg(b.n_layers()), &b, 5);
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let plain = b.forward(&[1, 2, 3], &NoHook, &mut t1);
        let hooked = b.forward(&[1, 2, 3], &m.hook(), &mut t2);
        // Zero-init up-projections ⇒ adapter output 0 ⇒ identical logits.
        assert_eq!(t1.value(plain).data(), t2.value(hooked).data());
    }

    #[test]
    fn gates_recorded_for_each_adapted_layer() {
        let b = base();
        let m = InfuserKiMethod::new(cfg(b.n_layers()), &b, 5);
        let mut t = Tape::new();
        let mut trace = ForwardTrace::new();
        b.forward_traced(&[1, 2, 3], &m.hook(), &mut t, &mut trace);
        assert_eq!(trace.gate_scores.len(), m.cfg.placement.len());
        assert_eq!(trace.gate_logits.len(), m.cfg.placement.len());
        assert_eq!(trace.adapter_outputs.len(), m.cfg.placement.len());
        for &(_, r) in &trace.gate_scores {
            let v = t.value(r).scalar_value();
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn no_infuser_ablation_records_no_gates() {
        let b = base();
        let mut c = cfg(b.n_layers());
        c.ablation.use_infuser = false;
        let m = InfuserKiMethod::new(c, &b, 5);
        let mut t = Tape::new();
        let mut trace = ForwardTrace::new();
        b.forward_traced(&[1, 2, 3], &m.hook(), &mut t, &mut trace);
        assert!(trace.gate_scores.is_empty());
        assert_eq!(trace.adapter_outputs.len(), m.cfg.placement.len());
    }

    #[test]
    fn attention_placement_hooks_attention_only() {
        let b = base();
        let mut c = cfg(b.n_layers());
        c.placement = Placement::attention(b.n_layers());
        let m = InfuserKiMethod::new(c, &b, 5);
        let mut t = Tape::new();
        let mut trace = ForwardTrace::new();
        b.forward_traced(&[1, 2, 3], &m.hook(), &mut t, &mut trace);
        assert_eq!(trace.adapter_outputs.len(), m.cfg.placement.len());
    }

    #[test]
    fn infuser_loss_builds_scalar() {
        let b = base();
        let m = InfuserKiMethod::new(cfg(b.n_layers()), &b, 5);
        let s = InfuserSample {
            tokens: vec![1, 2, 3, 4],
            label: 1.0,
        };
        let mut t = Tape::new();
        let loss = m.infuser_loss(&b, &s, &mut t);
        assert_eq!(t.value(loss).shape(), (1, 1));
        assert!(t.value(loss).scalar_value() > 0.0);
    }

    #[test]
    fn rc_loss_builds_scalar_and_reaches_rc_params() {
        let b = base();
        let m = InfuserKiMethod::new(cfg(b.n_layers()), &b, 5);
        let s = RcSample {
            tokens: vec![1, 2, 3, 4, 5, 6],
            targets: vec![2, 3, 4, 5, 6, infuserki_tensor::op::IGNORE_INDEX],
            head_span: (1, 3),
            tail_span: (4, 6),
            relation: 2,
        };
        let mut t = Tape::new();
        let loss = m.rc_loss(&b, &s, &mut t);
        t.backward(loss);
        let grads = t.grads();
        assert!(grads.get(m.rel_embed.id()).is_some());
    }

    #[test]
    fn extra_params_scale_with_placement() {
        // A deeper model so bottom-third and full placements differ in size.
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let b = TransformerLm::new(
            infuserki_nn::ModelConfig {
                n_layers: 6,
                ..infuserki_nn::ModelConfig::tiny(40)
            },
            &mut rng,
        );
        let m_full = InfuserKiMethod::new(cfg(b.n_layers()), &b, 5);
        let mut c_small = cfg(b.n_layers());
        c_small.placement = Placement::bottom(b.n_layers());
        let m_small = InfuserKiMethod::new(c_small, &b, 5);
        assert!(m_full.extra_params() > m_small.extra_params());
    }

    #[test]
    fn gate_out_ablation_runs_and_gates_in_range() {
        let b = base();
        let mut c = cfg(b.n_layers());
        c.gate_input = crate::config::GateInput::SublayerOut;
        let m = InfuserKiMethod::new(c, &b, 5);
        let mut t = Tape::new();
        let mut trace = ForwardTrace::new();
        b.forward_traced(&[1, 2, 3], &m.hook(), &mut t, &mut trace);
        assert_eq!(trace.gate_scores.len(), m.cfg.placement.len());
        for &(_, r) in &trace.gate_scores {
            let v = t.value(r).scalar_value();
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn save_load_round_trip_preserves_behaviour() {
        let b = base();
        let m = InfuserKiMethod::new(cfg(b.n_layers()), &b, 5);
        let dir = std::env::temp_dir().join(format!("infuserki_method_{}", std::process::id()));
        let path = dir.join("method.json");
        m.save(&path).unwrap();
        let loaded = InfuserKiMethod::load(&path, &b).unwrap();
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let a = b.forward(&[1, 2, 3], &m.hook(), &mut t1);
        let c = b.forward(&[1, 2, 3], &loaded.hook(), &mut t2);
        assert_eq!(t1.value(a).data(), t2.value(c).data());
        assert_eq!(loaded.extra_params(), m.extra_params());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn load_rejects_deeper_checkpoint() {
        let deep = {
            let mut rng = ChaCha8Rng::seed_from_u64(33);
            TransformerLm::new(
                infuserki_nn::ModelConfig {
                    n_layers: 6,
                    ..infuserki_nn::ModelConfig::tiny(40)
                },
                &mut rng,
            )
        };
        let m = InfuserKiMethod::new(cfg(deep.n_layers()), &deep, 5);
        let dir = std::env::temp_dir().join(format!("infuserki_methodx_{}", std::process::id()));
        let path = dir.join("method.json");
        m.save(&path).unwrap();
        let shallow = base(); // 2 layers
        assert!(InfuserKiMethod::load(&path, &shallow).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "exceeds model depth")]
    fn placement_beyond_depth_rejected() {
        let b = base();
        let mut c = cfg(b.n_layers());
        c.placement.last = 99;
        InfuserKiMethod::new(c, &b, 5);
    }
}
