//! Knowledge adapter layers (Eq. 1–2).
//!
//! Each adapted layer holds a bottleneck pair `W_down ∈ R^{d×d'}`,
//! `W_up ∈ R^{d'×d}`: the combined input `H̃_A^l = H_A^{l-1} + H_P^l` is
//! down-projected, passed through a nonlinearity σ (ReLU here, following
//! He et al. 2022's parallel-adapter formulation), and up-projected.
//! `W_up` is zero-initialized so a fresh adapter stack is an exact identity
//! on the base model — integration starts from the unmodified LLM.

use infuserki_nn::layers::{Linear, Module};
use infuserki_tensor::{Matrix, NodeId, Param, Tape};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One bottleneck adapter (`d → d' → d`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdapterLayer {
    down: Linear,
    up: Linear,
}

impl AdapterLayer {
    /// New adapter for `layer` with bottleneck `d_prime`.
    pub fn new(layer: usize, d_model: usize, d_prime: usize, rng: &mut impl Rng) -> Self {
        AdapterLayer {
            down: Linear::new(
                &format!("adapter{layer}.down"),
                d_model,
                d_prime,
                0.02,
                true,
                rng,
            ),
            up: Linear::zeros(&format!("adapter{layer}.up"), d_prime, d_model, false),
        }
    }

    /// `H_A^l = σ(H̃_A^l W_down) W_up` (Eq. 2).
    pub fn forward(&self, h_tilde: NodeId, tape: &mut Tape) -> NodeId {
        let z = self.down.forward(h_tilde, tape);
        let a = tape.relu(z);
        self.up.forward(a, tape)
    }

    /// Tape-free counterpart of [`Self::forward`] for the incremental
    /// inference engine. Bitwise-identical to the tape path.
    pub fn apply(&self, h_tilde: &Matrix) -> Matrix {
        let z = self.down.apply(h_tilde);
        let a = z.map(|v| v.max(0.0));
        self.up.apply(&a)
    }

    /// Bottleneck width `d'`.
    pub fn bottleneck(&self) -> usize {
        self.down.shape().1
    }

    /// Model width `d`.
    pub fn d_model(&self) -> usize {
        self.down.shape().0
    }
}

impl Module for AdapterLayer {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.down.visit(f);
        self.up.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.down.visit_mut(f);
        self.up.visit_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_tensor::Matrix;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn fresh_adapter_outputs_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let a = AdapterLayer::new(0, 8, 3, &mut rng);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(4, 8, 0.7));
        let y = a.forward(x, &mut t);
        assert_eq!(t.value(y).shape(), (4, 8));
        assert!(t.value(y).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bottleneck_reported() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = AdapterLayer::new(2, 16, 10, &mut rng);
        assert_eq!(a.bottleneck(), 10);
    }

    #[test]
    fn parameter_count_matches_formula() {
        // d×d' + d' (bias) + d'×d (up, no bias)
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = AdapterLayer::new(0, 64, 10, &mut rng);
        assert_eq!(a.numel(), 64 * 10 + 10 + 10 * 64);
    }

    #[test]
    fn gradients_flow_once_trained_weights_nonzero() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut a = AdapterLayer::new(0, 4, 2, &mut rng);
        // Nudge the up-projection so the forward is non-trivial.
        a.up.weight_mut().data_mut().data_mut()[0] = 0.5;
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(1, 4, 1.0));
        let y = a.forward(x, &mut t);
        let ones = t.leaf(Matrix::from_vec(4, 1, vec![1.0; 4]));
        let loss = t.matmul(y, ones);
        t.backward(loss);
        let grads = t.grads();
        let mut n_with_grad = 0;
        a.visit(&mut |p| {
            if grads.get(p.id()).is_some() {
                n_with_grad += 1;
            }
        });
        assert_eq!(n_with_grad, 3); // down.w, down.b, up.w
    }
}
