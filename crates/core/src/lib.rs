//! # infuserki-core
//!
//! The paper's primary contribution: **Infuser-guided Knowledge Integration**.
//!
//! * [`adapter`] — bottleneck knowledge adapters parallel to FFN (or
//!   attention) sublayers with a cross-layer accumulator (Eq. 1–3);
//! * [`infuser`] — the per-layer gate `r^l = σ(MLP(Mean(H_P^l)))` that decides
//!   how much adapter signal reaches the frozen base model (Eq. 4–6);
//! * [`method`] — [`method::InfuserKiMethod`], bundling adapters, infusers and
//!   the relation-classification head, exposed as a
//!   [`infuserki_nn::LayerHook`];
//! * [`detect`] — MCQ-based known/unknown knowledge detection (§3.2);
//! * [`dataset`] — MCQ banks and the three phases' training samples;
//! * [`trainer`] — the three-phase training loop (Eq. 7) with ablation
//!   switches for the paper's Table 4 variants.

pub mod adapter;
pub mod bundle;
pub mod config;
pub mod dataset;
pub mod detect;
pub mod incremental;
pub mod infuser;
pub mod method;
pub mod trainer;

pub use bundle::{base_model_digest, EvalStamp, GateProbe, KnowledgeBundle, BUNDLE_FORMAT};
pub use config::{Ablation, GateInput, InfuserKiConfig, Placement, Site, TrainConfig};
pub use dataset::{InfuserSample, KiDataset, McqBank, RcSample};
pub use detect::{answer_mcq, answer_mcq_batch, detect_unknown, DetectionResult};
pub use incremental::{integrate_more, IncrementalReport};
pub use method::InfuserKiMethod;
pub use trainer::{train_infuserki, TrainingReport};
