//! MCQ banks and training-sample construction for the three phases.

use infuserki_kg::{Triple, TripleStore};
use infuserki_nn::LmSample;
use infuserki_text::templates::{TemplateSet, N_QA_TEMPLATES, SEEN_TEMPLATES};
use infuserki_text::{format_mcq_prompt, prompts, Mcq, McqBuilder, Tokenizer};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// All MCQs for an experiment's triples, one per (template, triple) pair.
///
/// Option shuffles are seeded per pair, so the *same* MCQ (same distractors,
/// same letter positions) is used by detection, training, and every method's
/// evaluation — a fairness requirement the paper's shared test set implies.
pub struct McqBank {
    /// `mcqs[template][triple_idx]`.
    mcqs: Vec<Vec<Mcq>>,
    triples: Vec<Triple>,
}

impl McqBank {
    /// Builds the bank for `triples` against `store`.
    pub fn build(store: &TripleStore, triples: &[Triple], seed: u64) -> Self {
        let builder = McqBuilder::new(store);
        let mcqs = (0..N_QA_TEMPLATES)
            .map(|tpl| {
                triples
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| {
                        let mut rng = ChaCha8Rng::seed_from_u64(
                            seed ^ (i as u64).wrapping_mul(0x9e37_79b9) ^ ((tpl as u64) << 56),
                        );
                        builder.build(t, tpl, &mut rng)
                    })
                    .collect()
            })
            .collect();
        McqBank {
            mcqs,
            triples: triples.to_vec(),
        }
    }

    /// The MCQ for `(template, triple_idx)`.
    pub fn mcq(&self, template: usize, triple_idx: usize) -> &Mcq {
        &self.mcqs[template][triple_idx]
    }

    /// All MCQs of one template.
    pub fn template(&self, template: usize) -> &[Mcq] {
        &self.mcqs[template]
    }

    /// The experiment triples, in bank order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }
}

/// A phase-1 infuser-tuning sample: an MCQ prompt with a binary label
/// (1 = unknown knowledge, 0 = known).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfuserSample {
    /// Prompt token ids.
    pub tokens: Vec<usize>,
    /// Infusing label `y_In` (Eq. 5).
    pub label: f32,
}

/// A phase-3 RC sample: a knowledge statement with entity spans.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RcSample {
    /// Statement token ids.
    pub tokens: Vec<usize>,
    /// Shifted next-token targets.
    pub targets: Vec<usize>,
    /// Token span of the head mention.
    pub head_span: (usize, usize),
    /// Token span of the tail mention.
    pub tail_span: (usize, usize),
    /// Relation id (InfoNCE positive class).
    pub relation: usize,
}

/// The full training corpus for one InfuserKI run.
pub struct KiDataset {
    /// Phase-2 QA samples (seen templates on unknown triples + known mix +
    /// yes/no mix).
    pub qa: Vec<LmSample>,
    /// Phase-1 infuser samples (balanced known/unknown).
    pub infuser: Vec<InfuserSample>,
    /// Phase-3 RC samples (unknown statements).
    pub rc: Vec<RcSample>,
}

/// Fraction of known samples mixed into QA training — the paper's "modest
/// quantity of samples representing knowledge the LLMs already have".
pub const KNOWN_MIX_RATIO: f32 = 0.25;

/// Fraction of unknown triples that also contribute a yes/no pair.
pub const YESNO_RATIO: f32 = 0.25;

impl KiDataset {
    /// Builds the three phases' samples.
    ///
    /// `known`/`unknown` are triple indices into `bank` from knowledge
    /// detection. Known QA samples reuse the same gold-completion format.
    pub fn build(
        store: &TripleStore,
        bank: &McqBank,
        tokenizer: &Tokenizer,
        known: &[usize],
        unknown: &[usize],
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        // ---- phase 2: QA samples -------------------------------------------
        let mut qa = Vec::new();
        for &i in unknown {
            for &tpl in &SEEN_TEMPLATES {
                qa.push(qa_sample(bank.mcq(tpl, i), tokenizer));
            }
        }
        // Yes/no mix for question-type generality.
        let n_yesno = ((unknown.len() as f32) * YESNO_RATIO) as usize;
        for &i in unknown.iter().take(n_yesno) {
            let t = bank.triples()[i];
            qa.extend(yesno_pair(store, t, tokenizer, &mut rng));
        }
        // Modest known mix (paper: all methods get the same mix).
        let mut known_shuffled = known.to_vec();
        known_shuffled.shuffle(&mut rng);
        let n_known = ((qa.len() as f32) * KNOWN_MIX_RATIO) as usize;
        for &i in known_shuffled
            .iter()
            .cycle()
            .take(n_known.min(known_shuffled.len().saturating_mul(SEEN_TEMPLATES.len())))
        {
            let tpl = SEEN_TEMPLATES[rng.gen_range(0..SEEN_TEMPLATES.len())];
            qa.push(qa_sample(bank.mcq(tpl, i), tokenizer));
        }

        // ---- phase 1: balanced infuser samples ------------------------------
        let mut infuser = Vec::new();
        let n_bal = known.len().min(unknown.len());
        for &i in unknown.iter().take(n_bal) {
            infuser.push(InfuserSample {
                tokens: tokenizer.encode_strict(&format_mcq_prompt(bank.mcq(0, i))),
                label: 1.0,
            });
        }
        for &i in known_shuffled.iter().take(n_bal) {
            infuser.push(InfuserSample {
                tokens: tokenizer.encode_strict(&format_mcq_prompt(bank.mcq(0, i))),
                label: 0.0,
            });
        }

        // ---- phase 3: RC statements -----------------------------------------
        let rc = unknown
            .iter()
            .map(|&i| rc_sample(store, bank.triples()[i], tokenizer))
            .collect();

        KiDataset { qa, infuser, rc }
    }
}

/// Builds a QA [`LmSample`]: MCQ prompt → "(letter) answer" + `<eos>`.
pub fn qa_sample(mcq: &Mcq, tokenizer: &Tokenizer) -> LmSample {
    let prompt = tokenizer.encode_strict(&format_mcq_prompt(mcq));
    let mut completion = tokenizer.encode_strict(&prompts::gold_completion(mcq));
    completion.push(infuserki_text::tokenizer::EOS);
    LmSample::from_completion(&prompt, &completion)
}

/// Builds a yes/no pair for a triple: the true statement and one corrupted.
pub fn yesno_pair(
    store: &TripleStore,
    triple: Triple,
    tokenizer: &Tokenizer,
    rng: &mut impl Rng,
) -> Vec<LmSample> {
    let rel = store.relation_name(triple.relation);
    let subj = store.entity_name(triple.head);
    let obj = store.entity_name(triple.tail);
    let mut out = Vec::with_capacity(2);
    let eos = infuserki_text::tokenizer::EOS;
    let yes_q = TemplateSet::yesno_question(rel, subj, obj);
    let mut yes_completion = tokenizer.encode_strict("yes");
    yes_completion.push(eos);
    out.push(LmSample::from_completion(
        &tokenizer.encode_strict(&prompts::format_yesno_prompt(&yes_q)),
        &yes_completion,
    ));
    // Corrupt the tail with another entity from the same relation's pool.
    let pool: Vec<_> = store
        .tail_pool(triple.relation)
        .into_iter()
        .filter(|&e| e != triple.tail)
        .collect();
    if !pool.is_empty() {
        let wrong = pool[rng.gen_range(0..pool.len())];
        let no_q = TemplateSet::yesno_question(rel, subj, store.entity_name(wrong));
        let mut no_completion = tokenizer.encode_strict("no");
        no_completion.push(eos);
        out.push(LmSample::from_completion(
            &tokenizer.encode_strict(&prompts::format_yesno_prompt(&no_q)),
            &no_completion,
        ));
    }
    out
}

/// Builds the RC sample for a triple's knowledge statement.
pub fn rc_sample(store: &TripleStore, triple: Triple, tokenizer: &Tokenizer) -> RcSample {
    let st = TemplateSet::statement(
        store.relation_name(triple.relation),
        store.entity_name(triple.head),
        store.entity_name(triple.tail),
    );
    let lm = LmSample::from_sequence(&tokenizer.encode_strict(&st.text));
    debug_assert!(st.tail_span.1 <= lm.tokens.len());
    RcSample {
        tokens: lm.tokens,
        targets: lm.targets,
        head_span: st.head_span,
        tail_span: st.tail_span,
        relation: triple.relation.0 as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_kg::{synth_umls, UmlsConfig};

    fn setup() -> (TripleStore, McqBank, Tokenizer) {
        let store = synth_umls(&UmlsConfig::with_triplets(60, 3));
        let triples = store.triples().to_vec();
        let bank = McqBank::build(&store, &triples, 42);
        let mut lines: Vec<String> = store.entity_names().map(str::to_string).collect();
        for r in store.relation_names() {
            lines.extend(TemplateSet::vocabulary_lines(r));
        }
        lines.extend(prompts::vocabulary_lines());
        let tok = Tokenizer::build(lines.iter().map(String::as_str));
        (store, bank, tok)
    }

    #[test]
    fn bank_is_deterministic_and_complete() {
        let (store, bank, _) = setup();
        assert_eq!(bank.len(), 60);
        for tpl in 0..N_QA_TEMPLATES {
            assert_eq!(bank.template(tpl).len(), 60);
        }
        let bank2 = McqBank::build(&store, store.triples(), 42);
        assert_eq!(bank.mcq(2, 7).options, bank2.mcq(2, 7).options);
        assert_eq!(bank.mcq(2, 7).correct, bank2.mcq(2, 7).correct);
    }

    #[test]
    fn same_triple_same_template_across_calls() {
        let (_, bank, _) = setup();
        // Different templates share the triple but may differ in options seed.
        assert_eq!(bank.mcq(0, 3).triple, bank.mcq(4, 3).triple);
    }

    #[test]
    fn qa_sample_supervises_completion_only() {
        let (_, bank, tok) = setup();
        let s = qa_sample(bank.mcq(0, 0), &tok);
        assert!(s.supervised_len() >= 2); // letter + ≥1 answer word
        assert!(s.supervised_len() < s.tokens.len());
    }

    #[test]
    fn dataset_builds_all_three_phases() {
        let (store, bank, tok) = setup();
        let known: Vec<usize> = (0..20).collect();
        let unknown: Vec<usize> = (20..60).collect();
        let d = KiDataset::build(&store, &bank, &tok, &known, &unknown, 1);
        // 40 unknown × 2 seen templates + yes/no + known mix
        assert!(d.qa.len() >= 80);
        assert_eq!(d.infuser.len(), 40); // 2 × min(20, 40)
        let pos = d.infuser.iter().filter(|s| s.label == 1.0).count();
        assert_eq!(pos * 2, d.infuser.len()); // balanced
        assert_eq!(d.rc.len(), 40);
    }

    #[test]
    fn rc_sample_spans_are_valid() {
        let (store, bank, tok) = setup();
        for &t in bank.triples().iter().take(10) {
            let s = rc_sample(&store, t, &tok);
            assert!(s.head_span.0 < s.head_span.1);
            assert!(s.tail_span.0 < s.tail_span.1);
            assert!(s.tail_span.1 <= s.tokens.len());
            // Spans decode back to the entity names.
            let head_text = tok.decode(&s.tokens[s.head_span.0..s.head_span.1]);
            assert_eq!(head_text, store.entity_name(t.head));
        }
    }

    #[test]
    fn yesno_pair_has_yes_and_no() {
        let (store, bank, tok) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let pair = yesno_pair(&store, bank.triples()[0], &tok, &mut rng);
        assert_eq!(pair.len(), 2);
        let yes_id = tok.word_id("yes").unwrap();
        let no_id = tok.word_id("no").unwrap();
        assert!(pair[0].targets.contains(&yes_id));
        assert!(pair[1].targets.contains(&no_id));
    }
}
