//! Knowledge detection (§3.2): query the model with MCQs, extract the chosen
//! option from its generation, and partition triples into known/unknown.

use infuserki_nn::{sampler, LayerHook, TransformerLm};
use infuserki_text::{format_mcq_prompt, Mcq, Tokenizer, OPTION_TOKENS};
use rayon::prelude::*;

/// The known/unknown partition over a set of MCQ-probed triples.
#[derive(Debug, Clone, Default)]
pub struct DetectionResult {
    /// Indices answered correctly (regions N1+N2 of Fig. 3).
    pub known: Vec<usize>,
    /// Indices answered incorrectly or unparseably (N3+N4).
    pub unknown: Vec<usize>,
}

impl DetectionResult {
    /// Fraction of probed triples the model already knows.
    pub fn known_rate(&self) -> f32 {
        let total = self.known.len() + self.unknown.len();
        if total == 0 {
            0.0
        } else {
            self.known.len() as f32 / total as f32
        }
    }
}

/// Token ids of the option letters `(a)`–`(d)` under `tokenizer`.
pub fn option_token_ids(tokenizer: &Tokenizer) -> [usize; 4] {
    let mut ids = [0usize; 4];
    for (i, t) in OPTION_TOKENS.iter().enumerate() {
        ids[i] = tokenizer
            .word_id(t)
            .unwrap_or_else(|| panic!("option token {t} missing from vocabulary"));
    }
    ids
}

/// Answers one MCQ by greedy generation (EOS-stopped), extracting the chosen
/// option by answer-text match with option-letter fallback (see
/// [`infuserki_text::prompts::extract_choice`]); unparseable generations
/// return `None` and count as incorrect, matching the paper's protocol.
pub fn answer_mcq(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    mcq: &Mcq,
) -> Option<usize> {
    let prompt = tokenizer.encode_strict(&format_mcq_prompt(mcq));
    let max_new = mcq
        .options
        .iter()
        .map(|o| tokenizer.encode(o).len())
        .max()
        .unwrap_or(4)
        + 2;
    let generated = sampler::greedy_decode(
        model,
        hook,
        &prompt,
        max_new,
        Some(infuserki_text::tokenizer::EOS),
    );
    let text = tokenizer.decode(&generated);
    infuserki_text::prompts::extract_choice(&text, &mcq.options)
}

/// Answers a set of MCQs with one batched greedy decode: all prompts prefill
/// as a ragged batch and every question advances one token per decode step.
/// Per question identical to [`answer_mcq`] (bitwise logits at one kernel
/// thread); per-question `max_new` budgets carry through as decode limits.
pub fn answer_mcq_batch(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    mcqs: &[Mcq],
) -> Vec<Option<usize>> {
    let prompts: Vec<Vec<usize>> = mcqs
        .iter()
        .map(|m| tokenizer.encode_strict(&format_mcq_prompt(m)))
        .collect();
    let limits: Vec<usize> = mcqs
        .iter()
        .map(|m| {
            m.options
                .iter()
                .map(|o| tokenizer.encode(o).len())
                .max()
                .unwrap_or(4)
                + 2
        })
        .collect();
    let generated = sampler::greedy_decode_batch_limits(
        model,
        hook,
        &prompts,
        &limits,
        Some(infuserki_text::tokenizer::EOS),
    );
    generated
        .iter()
        .zip(mcqs)
        .map(|(g, m)| {
            let text = tokenizer.decode(g);
            infuserki_text::prompts::extract_choice(&text, &m.options)
        })
        .collect()
}

/// True when the model answers `mcq` correctly.
pub fn answers_correctly(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    mcq: &Mcq,
) -> bool {
    answer_mcq(model, hook, tokenizer, mcq) == Some(mcq.correct)
}

/// Decode-batch width for MCQ probing: chunks of this many questions run as
/// one ragged batch, and the chunks themselves spread across the thread pool.
pub const MCQ_BATCH: usize = 16;

/// Probes every MCQ — batched within chunks, chunks in parallel — and
/// partitions indices by correctness.
pub fn detect_unknown(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    mcqs: &[Mcq],
) -> DetectionResult {
    let verdicts: Vec<bool> = mcqs
        .par_chunks(MCQ_BATCH)
        .map(|chunk| {
            answer_mcq_batch(model, hook, tokenizer, chunk)
                .into_iter()
                .zip(chunk)
                .map(|(pred, m)| pred == Some(m.correct))
                .collect::<Vec<bool>>()
        })
        .collect::<Vec<Vec<bool>>>()
        .concat();
    let mut result = DetectionResult::default();
    for (i, ok) in verdicts.into_iter().enumerate() {
        if ok {
            result.known.push(i);
        } else {
            result.unknown.push(i);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_kg::{synth_umls, UmlsConfig};
    use infuserki_nn::{ModelConfig, NoHook};
    use infuserki_text::prompts;
    use infuserki_text::templates::TemplateSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (TransformerLm, Tokenizer, Vec<Mcq>) {
        let store = synth_umls(&UmlsConfig::with_triplets(30, 5));
        let triples = store.triples().to_vec();
        let bank = crate::dataset::McqBank::build(&store, &triples, 9);
        let mut lines: Vec<String> = store.entity_names().map(str::to_string).collect();
        for r in store.relation_names() {
            lines.extend(TemplateSet::vocabulary_lines(r));
        }
        lines.extend(prompts::vocabulary_lines());
        let tok = Tokenizer::build(lines.iter().map(String::as_str));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            max_seq: 96,
            ..ModelConfig::tiny(0)
        };
        let model = TransformerLm::new(cfg, &mut rng);
        (model, tok, bank.template(0).to_vec())
    }

    #[test]
    fn option_ids_resolve() {
        let (_, tok, _) = setup();
        let ids = option_token_ids(&tok);
        assert_eq!(ids.len(), 4);
        assert!(ids.iter().all(|&i| i > 1));
        // distinct
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn untrained_model_mostly_unknown() {
        let (model, tok, mcqs) = setup();
        let res = detect_unknown(&model, &NoHook, &tok, &mcqs);
        assert_eq!(res.known.len() + res.unknown.len(), mcqs.len());
        // An untrained model rarely emits a correct option letter.
        assert!(res.known_rate() < 0.5);
    }

    #[test]
    fn partition_is_disjoint_and_exhaustive() {
        let (model, tok, mcqs) = setup();
        let res = detect_unknown(&model, &NoHook, &tok, &mcqs);
        let mut all: Vec<usize> = res.known.iter().chain(&res.unknown).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..mcqs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn known_rate_empty_is_zero() {
        assert_eq!(DetectionResult::default().known_rate(), 0.0);
    }
}
