//! The three-phase InfuserKI training loop (Eq. 7, Algorithm 1).
//!
//! Phase 1 tunes the infuser gates with BCE on a balanced known/unknown mix;
//! phase 2 fine-tunes the adapters with the QA loss on seen templates;
//! phase 3 trains adapters + RC head with statement NTL + λ_RC·InfoNCE.
//! The base model is frozen throughout — only the method's parameters are
//! visited by the optimizer.

use infuserki_nn::optim::{AdamW, AdamWConfig};
use infuserki_nn::{train_epoch, LmSample, Trainable, TransformerLm};
use infuserki_obs as obs;
use infuserki_tensor::{NodeId, Param, Tape};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::config::TrainConfig;
use crate::dataset::{InfuserSample, KiDataset, RcSample};
use crate::method::InfuserKiMethod;

/// Per-phase mean losses recorded during training.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Mean infuser BCE per epoch (phase 1).
    pub infuser_losses: Vec<f32>,
    /// Mean QA loss per epoch (phase 2).
    pub qa_losses: Vec<f32>,
    /// Mean RC-phase loss per epoch (phase 3).
    pub rc_losses: Vec<f32>,
    /// Extra trainable parameters introduced by the method.
    pub extra_params: usize,
}

struct InfuserPhase<'a> {
    base: &'a TransformerLm,
    method: &'a mut InfuserKiMethod,
}

impl Trainable for InfuserPhase<'_> {
    type Sample = InfuserSample;
    fn loss(&self, s: &InfuserSample, tape: &mut Tape) -> NodeId {
        self.method.infuser_loss(self.base, s, tape)
    }
    fn visit_trainable(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.method.visit_infusers_mut(f);
    }
}

struct QaPhase<'a> {
    base: &'a TransformerLm,
    method: &'a mut InfuserKiMethod,
    train_infuser_too: bool,
}

impl Trainable for QaPhase<'_> {
    type Sample = LmSample;
    fn loss(&self, s: &LmSample, tape: &mut Tape) -> NodeId {
        self.base
            .lm_loss(&s.tokens, &s.targets, &self.method.hook(), tape)
    }
    fn visit_trainable(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.method.visit_adapters_mut(f);
        if self.train_infuser_too {
            self.method.visit_infusers_mut(f);
        }
    }
}

struct RcPhase<'a> {
    base: &'a TransformerLm,
    method: &'a mut InfuserKiMethod,
}

impl Trainable for RcPhase<'_> {
    type Sample = RcSample;
    fn loss(&self, s: &RcSample, tape: &mut Tape) -> NodeId {
        self.method.rc_loss(self.base, s, tape)
    }
    fn visit_trainable(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.method.visit_adapters_mut(f);
        if self.method.config().ablation.use_rc {
            self.method.visit_rc_mut(f);
        }
    }
}

/// Runs the full three-phase schedule, honoring the method's ablation flags:
/// * `use_infuser == false` (w/o-Ro) — phase 1 is skipped (no gates exist);
/// * `infuser_pretrain == false` (w/o-RL) — phase 1 is skipped and the
///   infuser instead trains end-to-end with the QA loss;
/// * `use_rc == false` (w/o-RC) — phase 3 keeps the statement NTL but drops
///   the InfoNCE term.
pub fn train_infuserki(
    base: &TransformerLm,
    method: &mut InfuserKiMethod,
    data: &KiDataset,
    tc: &TrainConfig,
) -> TrainingReport {
    let mut rng = ChaCha8Rng::seed_from_u64(tc.seed);
    let mut report = TrainingReport {
        extra_params: method.extra_params(),
        ..TrainingReport::default()
    };
    let opt_cfg = AdamWConfig {
        lr: tc.lr,
        ..AdamWConfig::default()
    };

    let ablation = method.config().ablation;

    // Phase 1: infuser tuning (Eq. 5).
    if ablation.use_infuser && ablation.infuser_pretrain && !data.infuser.is_empty() {
        obs::set_phase("infuser");
        let _sp = obs::enabled().then(|| obs::span("train.phase.infuser"));
        let epoch_loss = obs::global().histogram_with("train.infuser.epoch_loss", loss_buckets);
        let mut opt = AdamW::new(AdamWConfig {
            lr: tc.lr_infuser,
            ..opt_cfg
        });
        let mut phase = InfuserPhase { base, method };
        for _ in 0..tc.epochs_infuser {
            let loss = train_epoch(&mut phase, &data.infuser, tc.batch, &mut opt, &mut rng);
            epoch_loss.record(loss as f64);
            report.infuser_losses.push(loss);
        }
    }

    // Phase 2: QA training (Eq. 8).
    if !data.qa.is_empty() {
        obs::set_phase("qa");
        let _sp = obs::enabled().then(|| obs::span("train.phase.qa"));
        let epoch_loss = obs::global().histogram_with("train.qa.epoch_loss", loss_buckets);
        let mut opt = AdamW::new(opt_cfg);
        let mut phase = QaPhase {
            base,
            method,
            train_infuser_too: ablation.use_infuser && !ablation.infuser_pretrain,
        };
        for _ in 0..tc.epochs_qa {
            let loss = train_epoch(&mut phase, &data.qa, tc.batch, &mut opt, &mut rng);
            epoch_loss.record(loss as f64);
            report.qa_losses.push(loss);
        }
    }

    // Phase 3: RC training (Eq. 9–10).
    if !data.rc.is_empty() && tc.epochs_rc > 0 {
        obs::set_phase("rc");
        let _sp = obs::enabled().then(|| obs::span("train.phase.rc"));
        let epoch_loss = obs::global().histogram_with("train.rc.epoch_loss", loss_buckets);
        let mut opt = AdamW::new(opt_cfg);
        let mut phase = RcPhase { base, method };
        for _ in 0..tc.epochs_rc {
            let loss = train_epoch(&mut phase, &data.rc, tc.batch, &mut opt, &mut rng);
            epoch_loss.record(loss as f64);
            report.rc_losses.push(loss);
        }
    }
    obs::set_phase("");

    report
}

/// Loss-value histogram buckets: losses live on a much wider dynamic range
/// than latencies, so span 1e-4 … ~50k in ×2 steps.
fn loss_buckets() -> obs::Histogram {
    obs::Histogram::exponential(1e-4, 2.0, 30)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfuserKiConfig;
    use crate::dataset::McqBank;
    use infuserki_kg::{synth_umls, UmlsConfig};
    use infuserki_nn::ModelConfig;
    use infuserki_text::prompts;
    use infuserki_text::templates::TemplateSet;
    use infuserki_text::Tokenizer;

    fn setup() -> (TransformerLm, InfuserKiMethod, KiDataset) {
        let store = synth_umls(&UmlsConfig::with_triplets(24, 13));
        let triples = store.triples().to_vec();
        let bank = McqBank::build(&store, &triples, 2);
        let mut lines: Vec<String> = store.entity_names().map(str::to_string).collect();
        for r in store.relation_names() {
            lines.extend(TemplateSet::vocabulary_lines(r));
        }
        lines.extend(prompts::vocabulary_lines());
        let tok = Tokenizer::build(lines.iter().map(String::as_str));
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let base = TransformerLm::new(
            ModelConfig {
                vocab_size: tok.vocab_size(),
                max_seq: 96,
                ..ModelConfig::tiny(0)
            },
            &mut rng,
        );
        let known: Vec<usize> = (0..8).collect();
        let unknown: Vec<usize> = (8..24).collect();
        let data = KiDataset::build(&store, &bank, &tok, &known, &unknown, 3);
        let mut cfg = InfuserKiConfig::for_model(base.n_layers());
        cfg.bottleneck = 4;
        cfg.infuser_hidden = 4;
        cfg.rc_dim = 8;
        let method = InfuserKiMethod::new(cfg, &base, store.n_relations());
        (base, method, data)
    }

    fn quick_tc() -> TrainConfig {
        TrainConfig {
            epochs_infuser: 1,
            epochs_qa: 1,
            epochs_rc: 1,
            lr: 1e-3,
            lr_infuser: 1e-2,
            batch: 4,
            seed: 1,
        }
    }

    #[test]
    fn all_three_phases_run_and_report() {
        let (base, mut method, data) = setup();
        let report = train_infuserki(&base, &mut method, &data, &quick_tc());
        assert_eq!(report.infuser_losses.len(), 1);
        assert_eq!(report.qa_losses.len(), 1);
        assert_eq!(report.rc_losses.len(), 1);
        assert!(report.extra_params > 0);
        assert!(report.qa_losses[0].is_finite());
    }

    #[test]
    fn base_model_params_never_change() {
        let (base, mut method, data) = setup();
        let mut t0 = Tape::new();
        let before = base.forward(&[2, 3, 4], &infuserki_nn::NoHook, &mut t0);
        let snapshot = t0.value(before).clone();
        train_infuserki(&base, &mut method, &data, &quick_tc());
        let mut t1 = Tape::new();
        let after = base.forward(&[2, 3, 4], &infuserki_nn::NoHook, &mut t1);
        assert_eq!(t1.value(after).data(), snapshot.data());
    }

    #[test]
    fn ablation_wo_rl_skips_infuser_phase() {
        let (base, method, data) = setup();
        let mut cfg = method.config().clone();
        cfg.ablation.infuser_pretrain = false;
        let mut m2 = InfuserKiMethod::new(cfg, &base, 18);
        let report = train_infuserki(&base, &mut m2, &data, &quick_tc());
        assert!(report.infuser_losses.is_empty());
        assert_eq!(report.qa_losses.len(), 1);
    }

    #[test]
    fn ablation_wo_ro_skips_infuser_phase_too() {
        let (base, _method, data) = setup();
        let mut cfg = InfuserKiConfig::for_model(base.n_layers());
        cfg.bottleneck = 4;
        cfg.infuser_hidden = 4;
        cfg.rc_dim = 8;
        cfg.ablation.use_infuser = false;
        let mut m2 = InfuserKiMethod::new(cfg, &base, 18);
        let report = train_infuserki(&base, &mut m2, &data, &quick_tc());
        assert!(report.infuser_losses.is_empty());
    }

    #[test]
    fn qa_training_reduces_qa_loss() {
        let (base, mut method, data) = setup();
        let tc = TrainConfig {
            epochs_infuser: 1,
            epochs_qa: 6,
            epochs_rc: 0,
            lr: 3e-3,
            lr_infuser: 1e-2,
            batch: 8,
            seed: 5,
        };
        let report = train_infuserki(&base, &mut method, &data, &tc);
        let first = report.qa_losses.first().copied().unwrap();
        let last = report.qa_losses.last().copied().unwrap();
        assert!(last < first, "QA loss should fall: {first} → {last}");
    }
}
