//! Configuration of the InfuserKI method and its training schedule.

use serde::{Deserialize, Serialize};

/// Which sublayer the knowledge adapters parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Site {
    /// Parallel to FFN sublayers (the paper's main configuration — FFN layers
    /// store factual knowledge).
    Ffn,
    /// Parallel to attention sublayers (Fig. 5's "attention" ablation).
    Attention,
}

/// Adapter placement: a contiguous 0-based layer range at a [`Site`].
///
/// Paper → reproduction mapping (32-layer LLaMa → 12-layer SmolLM, see
/// DESIGN.md §4): main last-30-of-32 → layers 1..12; Fig. 5 thirds
/// 3–12/13–22/23–32 → 1..4 / 4..8 / 8..12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Sublayer kind.
    pub site: Site,
    /// First adapted layer (0-based, inclusive).
    pub first: usize,
    /// One past the last adapted layer.
    pub last: usize,
}

impl Placement {
    /// The paper's main placement for a model of `n_layers`: every layer but
    /// the bottom one (last 30 of 32 ≙ last L−1 of L), at FFN sublayers.
    pub fn main(n_layers: usize) -> Self {
        Placement {
            site: Site::Ffn,
            first: 1,
            last: n_layers,
        }
    }

    /// Bottom third (paper layers 3–12).
    pub fn bottom(n_layers: usize) -> Self {
        Placement {
            site: Site::Ffn,
            first: 1,
            last: (n_layers / 3).max(2),
        }
    }

    /// Middle third (paper layers 13–22).
    pub fn middle(n_layers: usize) -> Self {
        Placement {
            site: Site::Ffn,
            first: n_layers / 3,
            last: 2 * n_layers / 3,
        }
    }

    /// Top third (paper layers 23–32).
    pub fn top(n_layers: usize) -> Self {
        Placement {
            site: Site::Ffn,
            first: 2 * n_layers / 3,
            last: n_layers,
        }
    }

    /// Attention-sublayer placement over the main range (paper 3–32 attn).
    pub fn attention(n_layers: usize) -> Self {
        Placement {
            site: Site::Attention,
            first: 1,
            last: n_layers,
        }
    }

    /// True when `layer` is adapted.
    pub fn contains(&self, layer: usize) -> bool {
        (self.first..self.last).contains(&layer)
    }

    /// Number of adapted layers.
    pub fn len(&self) -> usize {
        self.last.saturating_sub(self.first)
    }

    /// True when no layers are adapted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of `layer` within the adapted range.
    pub fn offset(&self, layer: usize) -> usize {
        debug_assert!(self.contains(layer));
        layer - self.first
    }
}

/// Which internal state the infuser reads (design-choice ablation; the paper
/// uses the FFN sublayer *input* `H_P^l`, following Azaria & Mitchell's
/// internal-state probing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GateInput {
    /// Mean-pooled sublayer input `H_P^l` (Eq. 4 — the paper's choice).
    SublayerIn,
    /// Mean-pooled raw sublayer output `FFN(H_P^l)` (ablation).
    SublayerOut,
}

/// Ablation switches matching Table 4's variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ablation {
    /// `false` ⇒ InfuserKI-w/o-Ro: no gate, plain additive fusion (Eq. 3).
    pub use_infuser: bool,
    /// `false` ⇒ InfuserKI-w/o-RL: skip the BCE infuser-tuning phase; the
    /// infuser trains end-to-end with the QA loss instead.
    pub infuser_pretrain: bool,
    /// `false` ⇒ InfuserKI-w/o-RC: skip the relation-classification phase.
    pub use_rc: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Ablation {
            use_infuser: true,
            infuser_pretrain: true,
            use_rc: true,
        }
    }
}

/// Hyperparameters of the method (paper §4.1: d' = 10, τ = 0.7, λ_RC = 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfuserKiConfig {
    /// Adapter placement.
    pub placement: Placement,
    /// Adapter bottleneck dimension `d'`.
    pub bottleneck: usize,
    /// Hidden width of the infuser MLP.
    pub infuser_hidden: usize,
    /// Dimension of the relation-classification space.
    pub rc_dim: usize,
    /// Weight `λ_RC` of the RC loss.
    pub lambda_rc: f32,
    /// InfoNCE temperature `τ`.
    pub tau: f32,
    /// Ablation switches.
    pub ablation: Ablation,
    /// Which state the infuser gate reads (design-choice ablation).
    pub gate_input: GateInput,
    /// Init seed for method parameters.
    pub seed: u64,
}

impl InfuserKiConfig {
    /// Paper-default hyperparameters for a model of `n_layers`.
    pub fn for_model(n_layers: usize) -> Self {
        InfuserKiConfig {
            placement: Placement::main(n_layers),
            bottleneck: 10,
            infuser_hidden: 16,
            rc_dim: 32,
            lambda_rc: 10.0,
            tau: 0.7,
            ablation: Ablation::default(),
            gate_input: GateInput::SublayerIn,
            seed: 0x1f05,
        }
    }
}

/// Training schedule for the three phases.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Epochs of infuser BCE tuning (phase 1).
    pub epochs_infuser: usize,
    /// Epochs of QA training (phase 2).
    pub epochs_qa: usize,
    /// Epochs of RC training (phase 3).
    pub epochs_rc: usize,
    /// Learning rate (paper: 1e-4; scaled up for the small substrate).
    pub lr: f32,
    /// Learning rate for the infuser-tuning phase. The infuser MLPs are tiny
    /// and freshly initialized, so they take a much larger step size than the
    /// adapters without instability.
    pub lr_infuser: f32,
    /// Batch size (paper: 8).
    pub batch: usize,
    /// Shuffle/ordering seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs_infuser: 15,
            epochs_qa: 12,
            epochs_rc: 3,
            lr: 3e-3,
            lr_infuser: 2e-2,
            batch: 8,
            seed: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_placement_covers_all_but_first() {
        let p = Placement::main(12);
        assert!(!p.contains(0));
        assert!(p.contains(1) && p.contains(11));
        assert_eq!(p.len(), 11);
    }

    #[test]
    fn thirds_partition_roughly() {
        let (b, m, t) = (
            Placement::bottom(12),
            Placement::middle(12),
            Placement::top(12),
        );
        assert_eq!(b.first, 1);
        assert_eq!(m.first, b.last);
        assert_eq!(t.first, m.last);
        assert_eq!(t.last, 12);
    }

    #[test]
    fn offsets() {
        let p = Placement::middle(12);
        assert_eq!(p.offset(p.first), 0);
        assert_eq!(p.offset(p.last - 1), p.len() - 1);
    }

    #[test]
    fn defaults_match_paper() {
        let c = InfuserKiConfig::for_model(12);
        assert_eq!(c.bottleneck, 10);
        assert!((c.tau - 0.7).abs() < 1e-6);
        assert!((c.lambda_rc - 10.0).abs() < 1e-6);
        assert!(c.ablation.use_infuser && c.ablation.use_rc);
    }

    #[test]
    fn attention_placement_site() {
        let p = Placement::attention(12);
        assert_eq!(p.site, Site::Attention);
        assert_eq!(p.len(), 11);
    }
}
