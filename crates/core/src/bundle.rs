//! Versioned knowledge-bundle artifacts — the deployable unit of knowledge.
//!
//! InfuserKI's deployment story is "one frozen base, many small patches":
//! everything a knowledge version adds — adapter weights, infuser-gate
//! weights, the RC head — lives in an [`InfuserKiMethod`] checkpoint measured
//! in kilobytes. A [`KnowledgeBundle`] wraps that checkpoint with the
//! metadata the serving layer needs to load it *safely* into a live process:
//!
//! * a **config fingerprint** (hash of the method config) for telemetry and
//!   A/B bookkeeping;
//! * the **base-model hash** the bundle was trained against — a bundle's
//!   adapters are deltas on one specific frozen base, so loading them onto a
//!   different base is silent corruption; [`KnowledgeBundle::verify`] makes
//!   it a typed error instead;
//! * an optional **NR/RR eval stamp** recorded at training time (the paper's
//!   two headline metrics: knowledge-*retention* on the known set, NR, and
//!   knowledge-*acquisition* on the unknown set, RR);
//! * **gate probes**: a held-out known-set MCQ sample the serving layer
//!   re-scores at `promote` time as an online NR regression gate — a bundle
//!   that answers fewer probes correctly than the currently active version
//!   is refused promotion.
//!
//! Bundles serialize as plain JSON through the workspace serde shim, same as
//! every other artifact in the repo.

use infuserki_nn::TransformerLm;
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

use crate::method::InfuserKiMethod;

/// Current bundle format version. Bump on incompatible schema changes;
/// [`KnowledgeBundle::verify`] rejects mismatches.
pub const BUNDLE_FORMAT: u32 = 1;

/// NR/RR scores stamped on a bundle at training/eval time (fractions in
/// `[0, 1]`; NR = known-set retention, RR = unknown-set acquisition).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalStamp {
    pub nr: f32,
    pub rr: f32,
}

/// One held-out known-set MCQ probe for the promote-time NR gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateProbe {
    /// Question prompt tokens.
    pub prompt: Vec<usize>,
    /// Candidate answer continuations.
    pub options: Vec<Vec<usize>>,
    /// Index of the correct option.
    pub correct: usize,
}

/// A versioned, self-describing knowledge artifact: the trained
/// [`InfuserKiMethod`] plus the provenance and gate data needed to hot-swap
/// it into a serving process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnowledgeBundle {
    /// Schema version ([`BUNDLE_FORMAT`]).
    pub format: u32,
    /// Human-readable bundle name (e.g. `"umls-2026-08"`).
    pub name: String,
    /// Hex fingerprint of the method configuration.
    pub config_fingerprint: String,
    /// Hex hash of the frozen base model this bundle was built against.
    pub base_model_hash: String,
    /// Offline NR/RR eval results, if recorded.
    pub stamp: Option<EvalStamp>,
    /// Held-out known-set probes for the online NR gate at `promote`.
    pub gate_probes: Vec<GateProbe>,
    /// The knowledge weights themselves.
    pub method: InfuserKiMethod,
}

/// Deterministic 64-bit hex digest of a serializable value. Uses
/// `DefaultHasher`, which is fixed-key SipHash in this workspace's std — the
/// same digest on every run and host, which is what makes the base-model
/// hash a portable compatibility check. Returned as a hex *string* because
/// the serde_json shim stores numbers as f64 (u64 digests above 2^53 would
/// silently lose bits).
fn hex_digest<T: Serialize>(value: &T) -> Result<String, String> {
    let json = serde_json::to_string(value).map_err(|e| e.to_string())?;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    json.hash(&mut h);
    Ok(format!("{:016x}", h.finish()))
}

/// The hex digest [`KnowledgeBundle`] records for a frozen base model.
pub fn base_model_digest(base: &TransformerLm) -> Result<String, String> {
    hex_digest(base)
}

impl KnowledgeBundle {
    /// Wraps a trained method into a bundle targeting `base`, computing both
    /// hashes.
    pub fn new(
        name: impl Into<String>,
        method: InfuserKiMethod,
        base: &TransformerLm,
        stamp: Option<EvalStamp>,
        gate_probes: Vec<GateProbe>,
    ) -> Result<Self, String> {
        Ok(KnowledgeBundle {
            format: BUNDLE_FORMAT,
            name: name.into(),
            config_fingerprint: hex_digest(method.config())?,
            base_model_hash: base_model_digest(base)?,
            stamp,
            gate_probes,
            method,
        })
    }

    /// Saves the bundle as JSON.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        let json = serde_json::to_string(self).map_err(|e| e.to_string())?;
        if let Some(dir) = path.as_ref().parent() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
        std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.as_ref().display()))
    }

    /// Loads a bundle saved by [`save`](Self::save). Checks only the schema
    /// version here; base compatibility is [`verify`](Self::verify), which
    /// needs the target model.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let json = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.as_ref().display()))?;
        let bundle: KnowledgeBundle =
            serde_json::from_str(&json).map_err(|e| format!("parse bundle: {e}"))?;
        if bundle.format != BUNDLE_FORMAT {
            return Err(format!(
                "bundle '{}' has format {} but this build reads format {BUNDLE_FORMAT}",
                bundle.name, bundle.format
            ));
        }
        Ok(bundle)
    }

    /// Checks that this bundle can run against `base`: recorded base hash
    /// matches, adapter placement fits the model depth, and every gate probe
    /// is well-formed for the model's vocabulary. Returns a description of
    /// the first violation.
    pub fn verify(&self, base: &TransformerLm) -> Result<(), String> {
        let want = base_model_digest(base)?;
        if self.base_model_hash != want {
            return Err(format!(
                "bundle '{}' was built against base {} but the serving base is {}",
                self.name, self.base_model_hash, want
            ));
        }
        let p = &self.method.config().placement;
        if p.last > base.n_layers() || p.is_empty() {
            return Err(format!(
                "bundle '{}' placement {}..{} does not fit base depth {}",
                self.name,
                p.first,
                p.last,
                base.n_layers()
            ));
        }
        let vocab = base.config().vocab_size;
        for (i, probe) in self.gate_probes.iter().enumerate() {
            if probe.options.is_empty() || probe.correct >= probe.options.len() {
                return Err(format!(
                    "bundle '{}' gate probe {i}: correct={} out of range for {} options",
                    self.name,
                    probe.correct,
                    probe.options.len()
                ));
            }
            let tokens = probe.prompt.iter().chain(probe.options.iter().flatten());
            for &t in tokens {
                if t >= vocab {
                    return Err(format!(
                        "bundle '{}' gate probe {i}: token {t} outside vocab {vocab}",
                        self.name
                    ));
                }
            }
            if probe.prompt.is_empty() || probe.options.iter().any(|o| o.is_empty()) {
                return Err(format!(
                    "bundle '{}' gate probe {i}: empty prompt or option",
                    self.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfuserKiConfig;
    use infuserki_nn::ModelConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn base() -> TransformerLm {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        TransformerLm::new(ModelConfig::tiny(24), &mut rng)
    }

    fn method(base: &TransformerLm) -> InfuserKiMethod {
        let mut c = InfuserKiConfig::for_model(base.n_layers());
        c.bottleneck = 4;
        c.infuser_hidden = 4;
        c.rc_dim = 8;
        InfuserKiMethod::new(c, base, 3)
    }

    fn probe() -> GateProbe {
        GateProbe {
            prompt: vec![1, 2, 3],
            options: vec![vec![4], vec![5, 6]],
            correct: 1,
        }
    }

    #[test]
    fn bundle_round_trips_and_verifies() {
        let b = base();
        let stamp = EvalStamp { nr: 0.96, rr: 0.41 };
        let bundle =
            KnowledgeBundle::new("umls-test", method(&b), &b, Some(stamp), vec![probe()]).unwrap();
        let path = std::env::temp_dir().join(format!("ki_bundle_rt_{}.json", std::process::id()));
        bundle.save(&path).unwrap();
        let loaded = KnowledgeBundle::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.name, "umls-test");
        assert_eq!(loaded.config_fingerprint, bundle.config_fingerprint);
        assert_eq!(loaded.base_model_hash, bundle.base_model_hash);
        assert_eq!(loaded.stamp, Some(stamp));
        assert_eq!(loaded.gate_probes, vec![probe()]);
        loaded.verify(&b).expect("round-tripped bundle verifies");
    }

    #[test]
    fn verify_rejects_a_different_base_model() {
        let b = base();
        let bundle = KnowledgeBundle::new("drift", method(&b), &b, None, vec![]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let other = TransformerLm::new(ModelConfig::tiny(24), &mut rng);
        let err = bundle.verify(&other).unwrap_err();
        assert!(err.contains("built against base"), "got: {err}");
    }

    #[test]
    fn verify_rejects_malformed_gate_probes() {
        let b = base();
        let bad_correct = GateProbe {
            correct: 2,
            ..probe()
        };
        let bundle = KnowledgeBundle::new("bad", method(&b), &b, None, vec![bad_correct]).unwrap();
        assert!(bundle.verify(&b).unwrap_err().contains("out of range"));
        let oov = GateProbe {
            prompt: vec![1, 999],
            ..probe()
        };
        let bundle = KnowledgeBundle::new("oov", method(&b), &b, None, vec![oov]).unwrap();
        assert!(bundle.verify(&b).unwrap_err().contains("outside vocab"));
    }

    #[test]
    fn load_rejects_future_formats() {
        let b = base();
        let mut bundle = KnowledgeBundle::new("future", method(&b), &b, None, vec![]).unwrap();
        bundle.format = BUNDLE_FORMAT + 1;
        let path = std::env::temp_dir().join(format!("ki_bundle_fmt_{}.json", std::process::id()));
        bundle.save(&path).unwrap();
        let err = KnowledgeBundle::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("format"), "got: {err}");
    }
}
