//! The knowledge Infuser (Eq. 4–5).
//!
//! A small MLP over the mean-pooled FFN-sublayer input `Mean(H_P^l)` produces
//! a pre-sigmoid logit; `r^l = σ(logit)` is the infusing score that scales the
//! adapter contribution. Following Azaria & Mitchell (2023), the transformer's
//! internal state at layer `l` carries enough signal to tell whether the model
//! "knows" the current question — the infuser reads exactly that state.

use infuserki_nn::layers::{Linear, Module};
use infuserki_tensor::{Matrix, NodeId, Param, Tape};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-layer infuser MLP: `d → hidden → 1` with tanh hidden activation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InfuserMlp {
    l1: Linear,
    l2: Linear,
}

impl InfuserMlp {
    /// New infuser for `layer`.
    pub fn new(layer: usize, d_model: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        InfuserMlp {
            l1: Linear::new(
                &format!("infuser{layer}.l1"),
                d_model,
                hidden,
                0.1,
                true,
                rng,
            ),
            l2: Linear::new(&format!("infuser{layer}.l2"), hidden, 1, 0.1, true, rng),
        }
    }

    /// Pre-sigmoid logit for a pooled state `x: [1, d]`.
    pub fn logit(&self, x: NodeId, tape: &mut Tape) -> NodeId {
        let h = self.l1.forward(x, tape);
        let a = tape.tanh(h);
        self.l2.forward(a, tape)
    }

    /// Infusing score `r = σ(logit)` ∈ [0, 1] (Eq. 4).
    pub fn score(&self, x: NodeId, tape: &mut Tape) -> NodeId {
        let z = self.logit(x, tape);
        tape.sigmoid(z)
    }

    /// Tape-free counterpart of [`Self::logit`] for the incremental
    /// inference engine: maps pooled rows `[n, d]` to logits `[n, 1]`.
    /// Bitwise-identical to the tape path row for row.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        let h = self.l1.apply(x);
        let a = h.map(f32::tanh);
        self.l2.apply(&a)
    }
}

impl Module for InfuserMlp {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.l1.visit(f);
        self.l2.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.l1.visit_mut(f);
        self.l2.visit_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_tensor::Matrix;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn score_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let inf = InfuserMlp::new(0, 8, 4, &mut rng);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(1, 8, 2.0));
        let s = inf.score(x, &mut t);
        let v = t.value(s).scalar_value();
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn logit_shape_is_scalar() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inf = InfuserMlp::new(0, 6, 3, &mut rng);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(1, 6));
        let z = inf.logit(x, &mut t);
        assert_eq!(t.value(z).shape(), (1, 1));
    }

    #[test]
    fn infuser_is_trainable_on_separation_task() {
        // Two pooled states; train BCE to separate them.
        use infuserki_nn::optim::{AdamW, AdamWConfig};
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut inf = InfuserMlp::new(0, 4, 8, &mut rng);
        let pos = Matrix::from_vec(1, 4, vec![1.0, 0.5, -0.5, 1.0]);
        let neg = Matrix::from_vec(1, 4, vec![-1.0, -0.5, 0.5, -1.0]);
        let mut opt = AdamW::new(AdamWConfig {
            lr: 0.05,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        });
        for _ in 0..100 {
            let mut t = Tape::new();
            let xp = t.leaf(pos.clone());
            let xn = t.leaf(neg.clone());
            let zp = inf.logit(xp, &mut t);
            let zn = inf.logit(xn, &mut t);
            let z = t.concat_rows(zp, zn);
            let loss = t.bce_with_logits(z, &[1.0, 0.0]);
            t.backward(loss);
            let grads = t.grads();
            opt.step(&grads, |f| inf.visit_mut(f));
        }
        let mut t = Tape::new();
        let xp = t.leaf(pos);
        let xn = t.leaf(neg);
        let sp = inf.score(xp, &mut t);
        let sn = inf.score(xn, &mut t);
        assert!(t.value(sp).scalar_value() > 0.85);
        assert!(t.value(sn).scalar_value() < 0.15);
    }
}
