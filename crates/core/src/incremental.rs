//! Incremental knowledge integration: extend an already-integrated method
//! with newly arriving triples.
//!
//! This is the paper's data-efficiency motivation operationalized: when a
//! KG grows (new products, new cases), detection runs with the *patched*
//! model — facts integrated earlier answer correctly and are skipped — and
//! only the genuinely new unknowns are trained, into the same adapters.

use infuserki_kg::{Triple, TripleStore};
use infuserki_nn::TransformerLm;
use infuserki_text::Tokenizer;
use serde::{Deserialize, Serialize};

use crate::config::TrainConfig;
use crate::dataset::{KiDataset, McqBank};
use crate::detect::detect_unknown;
use crate::method::InfuserKiMethod;
use crate::trainer::{train_infuserki, TrainingReport};

/// Outcome of one incremental integration round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncrementalReport {
    /// Triples presented this round.
    pub presented: usize,
    /// Already answered correctly by the patched model (skipped).
    pub already_known: usize,
    /// Actually trained this round.
    pub newly_integrated: usize,
    /// Phase losses of the round's training.
    pub training: TrainingReport,
}

impl IncrementalReport {
    /// Saves the report as JSON (creating parent directories), so an
    /// integration round leaves an auditable artifact next to the bundle it
    /// produced.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        let json = serde_json::to_string(self).map_err(|e| e.to_string())?;
        if let Some(dir) = path.as_ref().parent() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
        std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.as_ref().display()))
    }

    /// Loads a report saved by [`save`](Self::save).
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let json = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.as_ref().display()))?;
        serde_json::from_str(&json).map_err(|e| format!("parse report: {e}"))
    }
}

/// Integrates `new_triples` into an existing `method`.
///
/// Detection runs with the method's hook attached, so knowledge from earlier
/// rounds is treated as known — the unnecessary-overlap avoidance the paper
/// contrasts with whole-graph fine-tuning. All entity/relation names must be
/// within `tokenizer`'s vocabulary (the closed-world invariant).
pub fn integrate_more(
    base: &TransformerLm,
    method: &mut InfuserKiMethod,
    store: &TripleStore,
    new_triples: &[Triple],
    tokenizer: &Tokenizer,
    tc: &TrainConfig,
) -> IncrementalReport {
    let bank = McqBank::build(store, new_triples, tc.seed ^ 0x1c2e);
    let detection = detect_unknown(base, &method.hook(), tokenizer, bank.template(0));
    let data = KiDataset::build(
        store,
        &bank,
        tokenizer,
        &detection.known,
        &detection.unknown,
        tc.seed ^ 0x1c2f,
    );
    let training = if detection.unknown.is_empty() {
        TrainingReport::default()
    } else {
        train_infuserki(base, method, &data, tc)
    };
    IncrementalReport {
        presented: new_triples.len(),
        already_known: detection.known.len(),
        newly_integrated: detection.unknown.len(),
        training,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfuserKiConfig;
    use infuserki_kg::{synth_umls, UmlsConfig};
    use infuserki_nn::ModelConfig;
    use infuserki_text::prompts;
    use infuserki_text::templates::TemplateSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (TransformerLm, InfuserKiMethod, TripleStore, Tokenizer) {
        let store = synth_umls(&UmlsConfig::with_triplets(40, 19));
        let mut lines: Vec<String> = store.entity_names().map(str::to_string).collect();
        for r in store.relation_names() {
            lines.extend(TemplateSet::vocabulary_lines(r));
        }
        lines.extend(prompts::vocabulary_lines());
        let tok = Tokenizer::build(lines.iter().map(String::as_str));
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        let base = TransformerLm::new(
            ModelConfig {
                vocab_size: tok.vocab_size(),
                max_seq: 96,
                ..ModelConfig::tiny(0)
            },
            &mut rng,
        );
        let mut cfg = InfuserKiConfig::for_model(base.n_layers());
        cfg.bottleneck = 4;
        cfg.infuser_hidden = 4;
        cfg.rc_dim = 8;
        let method = InfuserKiMethod::new(cfg, &base, store.n_relations());
        (base, method, store, tok)
    }

    fn quick_tc() -> TrainConfig {
        TrainConfig {
            epochs_infuser: 1,
            epochs_qa: 1,
            epochs_rc: 1,
            lr: 1e-3,
            lr_infuser: 1e-2,
            batch: 4,
            seed: 11,
        }
    }

    #[test]
    fn incremental_round_partitions_and_trains() {
        let (base, mut method, store, tok) = setup();
        let batch: Vec<Triple> = store.triples()[..20].to_vec();
        let report = integrate_more(&base, &mut method, &store, &batch, &tok, &quick_tc());
        assert_eq!(report.presented, 20);
        assert_eq!(report.already_known + report.newly_integrated, 20);
        if report.newly_integrated > 0 {
            assert!(!report.training.qa_losses.is_empty());
        }
    }

    #[test]
    fn second_round_with_same_triples_trains_less_or_equal() {
        // After one round, at least the facts the method mastered are skipped
        // in round two — the data-efficiency property.
        let (base, mut method, store, tok) = setup();
        let batch: Vec<Triple> = store.triples()[..16].to_vec();
        let tc = TrainConfig {
            epochs_qa: 4,
            lr: 3e-3,
            ..quick_tc()
        };
        let first = integrate_more(&base, &mut method, &store, &batch, &tok, &tc);
        let second = integrate_more(&base, &mut method, &store, &batch, &tok, &tc);
        assert!(
            second.newly_integrated <= first.newly_integrated,
            "round 2 should not rediscover more unknowns: {} vs {}",
            second.newly_integrated,
            first.newly_integrated
        );
    }

    #[test]
    fn report_round_trips_through_json_file() {
        let report = IncrementalReport {
            presented: 20,
            already_known: 7,
            newly_integrated: 13,
            training: TrainingReport::default(),
        };
        let path = std::env::temp_dir().join(format!(
            "ki_increport_rt_{}/round.report.json",
            std::process::id()
        ));
        report.save(&path).unwrap();
        let loaded = IncrementalReport::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.presented, 20);
        assert_eq!(loaded.already_known, 7);
        assert_eq!(loaded.newly_integrated, 13);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (base, mut method, store, tok) = setup();
        let report = integrate_more(&base, &mut method, &store, &[], &tok, &quick_tc());
        assert_eq!(report.presented, 0);
        assert_eq!(report.newly_integrated, 0);
        assert!(report.training.qa_losses.is_empty());
    }
}
