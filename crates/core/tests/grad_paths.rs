//! Finite-difference gradient checks over the method's composite paths:
//! the adapter bottleneck (`σ(x W_down + b) W_up`) and the infuser gate
//! (`adapter(h) · σ(MLP(Mean(h)))`), end to end through the real
//! `AdapterLayer` / `InfuserMlp` modules rather than per-op.
//!
//! Per-op rules are already covered in `crates/tensor/tests/grad_properties.rs`;
//! what these checks pin down is the composition the paper's training loop
//! actually differentiates — including the fused affine node the `Linear`
//! layers now record.

use infuserki_core::adapter::AdapterLayer;
use infuserki_core::infuser::InfuserMlp;
use infuserki_nn::layers::Module;
use infuserki_tensor::check::check_gradient;
use infuserki_tensor::{Matrix, NodeId, Tape};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const EPS: f32 = 1e-2;
const TOL: f32 = 3e-2;

/// Weighted scalar reduction keeping the loss sensitive to every element.
fn reduce(t: &mut Tape, x: NodeId) -> NodeId {
    let (r, c) = t.value(x).shape();
    let w = t.leaf(Matrix::from_vec(
        c,
        1,
        (0..c).map(|i| 0.3 + 0.1 * i as f32).collect(),
    ));
    let col = t.matmul(x, w);
    let ones = t.leaf(Matrix::from_vec(1, r, vec![1.0; r]));
    t.matmul(ones, col)
}

/// An adapter whose up-projection has been nudged off its zero init, so the
/// forward (and every gradient) is non-trivial.
fn live_adapter(d: usize, d_prime: usize, seed: u64) -> AdapterLayer {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut a = AdapterLayer::new(0, d, d_prime, &mut rng);
    let mut idx = 0;
    a.visit_mut(&mut |p| {
        if p.name().contains("up") {
            for v in p.data_mut().data_mut() {
                idx += 1;
                *v = 0.11 * (idx % 7) as f32 - 0.3;
            }
        }
    });
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// d/dh of `σ(h W_down + b) W_up` through the real adapter module.
    #[test]
    fn grad_adapter_bottleneck_wrt_input(v in proptest::collection::vec(-1.5f32..1.5, 2 * 6)) {
        let h = Matrix::from_vec(2, 6, v);
        let adapter = live_adapter(6, 3, 11);
        let res = check_gradient(&h, EPS, |t, x| {
            let y = adapter.forward(x, t);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    /// d/dW_down of the bottleneck, via the fused affine node (the checked
    /// matrix is the weight, input and bias are fixed leaves).
    #[test]
    fn grad_adapter_bottleneck_wrt_down_weight(v in proptest::collection::vec(-0.8f32..0.8, 6 * 3)) {
        let w_down = Matrix::from_vec(6, 3, v);
        let res = check_gradient(&w_down, EPS, |t, w| {
            let x = t.leaf(Matrix::from_vec(
                2, 6,
                (0..12).map(|i| 0.25 * (i % 5) as f32 - 0.5).collect(),
            ));
            let b = t.leaf(Matrix::from_vec(1, 3, vec![0.2, -0.1, 0.3]));
            let z = t.affine(x, w, b);
            let a = t.relu(z);
            let w_up = t.leaf(Matrix::from_vec(
                3, 6,
                (0..18).map(|i| 0.1 * (i % 4) as f32 - 0.15).collect(),
            ));
            let y = t.matmul(a, w_up);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    /// d/dx of the infuser score `σ(l2(tanh(l1(x))))` on a pooled state.
    #[test]
    fn grad_infuser_score_wrt_pooled_state(v in proptest::collection::vec(-1.5f32..1.5, 6)) {
        let pooled = Matrix::from_vec(1, 6, v);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let infuser = InfuserMlp::new(0, 6, 4, &mut rng);
        let res = check_gradient(&pooled, EPS, |t, x| {
            infuser.score(x, t)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    /// The full infuser-gated residual path the method trains through:
    /// `h + adapter(h) · σ(MLP(Mean(h)))` — gradients flow into `h` through
    /// the residual, the bottleneck, the pooling, and the `[1,1]` gate.
    #[test]
    fn grad_infuser_gated_adapter_wrt_input(v in proptest::collection::vec(-1.2f32..1.2, 3 * 6)) {
        let h = Matrix::from_vec(3, 6, v);
        let adapter = live_adapter(6, 3, 17);
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let infuser = InfuserMlp::new(0, 6, 4, &mut rng);
        let res = check_gradient(&h, EPS, |t, x| {
            let a = adapter.forward(x, t);
            let pooled = t.mean_rows(x);
            let r = infuser.score(pooled, t);
            let gated = t.mul_scalar_node(a, r);
            let out = t.add(x, gated);
            reduce(t, out)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }
}
