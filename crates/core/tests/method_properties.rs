//! Property tests on the InfuserKI method: identity-at-init for arbitrary
//! placements, gate range, and trace shape invariants over random inputs.

use infuserki_core::{Ablation, InfuserKiConfig, InfuserKiMethod, Placement, Site};
use infuserki_nn::{ForwardTrace, ModelConfig, NoHook, TransformerLm};
use infuserki_tensor::Tape;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 20;
const LAYERS: usize = 4;

fn base() -> TransformerLm {
    let mut rng = ChaCha8Rng::seed_from_u64(55);
    TransformerLm::new(
        ModelConfig {
            n_layers: LAYERS,
            ..ModelConfig::tiny(VOCAB)
        },
        &mut rng,
    )
}

fn placement_strategy() -> impl Strategy<Value = Placement> {
    (0..LAYERS, prop::bool::ANY).prop_flat_map(|(first, attn)| {
        ((first + 1)..=LAYERS).prop_map(move |last| Placement {
            site: if attn { Site::Attention } else { Site::Ffn },
            first,
            last,
        })
    })
}

fn tokens_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..VOCAB, 1..8)
}

fn config(placement: Placement, ablation: Ablation) -> InfuserKiConfig {
    let mut cfg = InfuserKiConfig::for_model(LAYERS);
    cfg.placement = placement;
    cfg.ablation = ablation;
    cfg.bottleneck = 3;
    cfg.infuser_hidden = 4;
    cfg.rc_dim = 6;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fresh_method_is_identity_for_any_placement(placement in placement_strategy(),
                                                  tokens in tokens_strategy()) {
        let b = base();
        let m = InfuserKiMethod::new(config(placement, Ablation::default()), &b, 5);
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let plain = b.forward(&tokens, &NoHook, &mut t1);
        let hooked = b.forward(&tokens, &m.hook(), &mut t2);
        prop_assert_eq!(t1.value(plain).data(), t2.value(hooked).data());
    }

    #[test]
    fn gates_stay_in_unit_interval(placement in placement_strategy(),
                                   tokens in tokens_strategy()) {
        let b = base();
        let m = InfuserKiMethod::new(config(placement, Ablation::default()), &b, 5);
        let mut tape = Tape::new();
        let mut trace = ForwardTrace::new();
        b.forward_traced(&tokens, &m.hook(), &mut tape, &mut trace);
        prop_assert_eq!(trace.gate_scores.len(), placement.len());
        for &(layer, node) in &trace.gate_scores {
            prop_assert!(placement.contains(layer));
            let v = tape.value(node).scalar_value();
            prop_assert!((0.0..=1.0).contains(&v), "gate {v} at layer {layer}");
        }
    }

    #[test]
    fn adapter_outputs_match_sequence_shape(placement in placement_strategy(),
                                            tokens in tokens_strategy()) {
        let b = base();
        let m = InfuserKiMethod::new(config(placement, Ablation::default()), &b, 5);
        let mut tape = Tape::new();
        let mut trace = ForwardTrace::new();
        b.forward_traced(&tokens, &m.hook(), &mut tape, &mut trace);
        prop_assert_eq!(trace.adapter_outputs.len(), placement.len());
        for &(_, node) in &trace.adapter_outputs {
            prop_assert_eq!(
                tape.value(node).shape(),
                (tokens.len(), b.config().d_model)
            );
        }
    }

    #[test]
    fn wo_ro_ablation_never_records_gates(tokens in tokens_strategy()) {
        let b = base();
        let ablation = Ablation { use_infuser: false, ..Ablation::default() };
        let m = InfuserKiMethod::new(config(Placement::main(LAYERS), ablation), &b, 5);
        let mut tape = Tape::new();
        let mut trace = ForwardTrace::new();
        b.forward_traced(&tokens, &m.hook(), &mut tape, &mut trace);
        prop_assert!(trace.gate_scores.is_empty());
        prop_assert!(trace.gate_logits.is_empty());
    }

    #[test]
    fn extra_params_proportional_to_layers(placement in placement_strategy()) {
        let b = base();
        let m = InfuserKiMethod::new(config(placement, Ablation::default()), &b, 5);
        // adapters + infusers scale with placement length; RC head is constant.
        let d = b.config().d_model;
        let per_layer = (d * 3 + 3 + 3 * d) + (d * 4 + 4 + 4 + 1);
        let rc = (2 * d * 6 + 6) + 5 * 6;
        prop_assert_eq!(m.extra_params(), placement.len() * per_layer + rc);
    }
}
