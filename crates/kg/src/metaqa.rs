//! Synthetic MetaQA-style movie knowledge graph.
//!
//! MetaQA (Zhang et al. 2018) has 43k entities and exactly 9 relation types
//! over movies, people, years, languages, genres and tags. This generator
//! reproduces that typed structure at configurable scale: every triple's head
//! is a movie and the tail type is determined by the relation, so 1-hop
//! questions ("who directed X?") and MCQ distractors are type-consistent.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::names;
use crate::store::TripleStore;
use crate::types::{EntityId, Triple};

/// Parameters of the synthetic MetaQA generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetaQaConfig {
    /// Number of movies; each movie contributes several facts.
    pub n_movies: usize,
    /// Number of distinct people (directors/writers/actors).
    pub n_people: usize,
    /// Target number of triplets (paper samples 2,900).
    pub n_triplets: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MetaQaConfig {
    /// Config for a target triplet count (≈6 facts per movie).
    pub fn with_triplets(n_triplets: usize, seed: u64) -> Self {
        MetaQaConfig {
            n_movies: (n_triplets / 6).max(20),
            n_people: (n_triplets / 8).max(30),
            n_triplets,
            seed,
        }
    }
}

/// Generates a deterministic movie-domain KG with the 9 MetaQA relations.
pub fn synth_metaqa(cfg: &MetaQaConfig) -> TripleStore {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut store = TripleStore::new();

    let movies: Vec<EntityId> = (0..cfg.n_movies)
        .map(|i| store.intern_entity(&names::movie_title(i)))
        .collect();
    let people: Vec<EntityId> = (0..cfg.n_people)
        .map(|i| store.intern_entity(&names::person_name(i)))
        .collect();
    let years: Vec<EntityId> = (1950..2021)
        .map(|y| store.intern_entity(&format!("{y}")))
        .collect();
    let languages: Vec<EntityId> = names::LANGUAGES
        .iter()
        .map(|l| store.intern_entity(l))
        .collect();
    let genres: Vec<EntityId> = names::GENRES
        .iter()
        .map(|g| store.intern_entity(g))
        .collect();
    let tags: Vec<EntityId> = names::TAGS.iter().map(|t| store.intern_entity(t)).collect();
    let ratings: Vec<EntityId> = (1..=9)
        .map(|r| store.intern_entity(&format!("rating {r}")))
        .collect();
    let votes: Vec<EntityId> = ["few", "some", "many", "massive"]
        .iter()
        .map(|v| store.intern_entity(&format!("{v} votes")))
        .collect();

    let relations: Vec<_> = names::MOVIE_RELATIONS
        .iter()
        .map(|r| store.intern_relation(r))
        .collect();

    // Tail pool per relation index, matching MOVIE_RELATIONS order.
    let pools: [&[EntityId]; 9] = [
        &people,    // directed_by
        &people,    // written_by
        &people,    // starred_actors
        &years,     // release_year
        &languages, // in_language
        &genres,    // has_genre
        &tags,      // has_tags
        &ratings,   // has_imdb_rating
        &votes,     // has_imdb_votes
    ];

    // Round-robin over movies × relations until the target count: every
    // movie gets a coherent fact set, relations stay balanced.
    let mut mi = 0usize;
    let mut ri = 0usize;
    let mut guard = 0usize;
    while store.len() < cfg.n_triplets {
        guard += 1;
        assert!(
            guard < cfg.n_triplets * 50 + 1000,
            "metaqa generator stalled at {} / {}",
            store.len(),
            cfg.n_triplets
        );
        let movie = movies[mi % movies.len()];
        let rel = relations[ri % relations.len()];
        let pool = pools[ri % relations.len()];
        let tail = pool[rng.gen_range(0..pool.len())];
        store.insert_functional(Triple::new(movie, rel, tail));
        ri += 1;
        if ri.is_multiple_of(relations.len()) {
            mi += 1;
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_target_count_with_nine_relations() {
        let s = synth_metaqa(&MetaQaConfig::with_triplets(900, 1));
        assert_eq!(s.len(), 900);
        assert_eq!(s.n_relations(), 9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synth_metaqa(&MetaQaConfig::with_triplets(300, 5));
        let b = synth_metaqa(&MetaQaConfig::with_triplets(300, 5));
        assert_eq!(a.triples(), b.triples());
    }

    #[test]
    fn tails_are_type_consistent() {
        let s = synth_metaqa(&MetaQaConfig::with_triplets(600, 2));
        let year_rel = s.relation_ids()[3];
        assert_eq!(s.relation_name(year_rel), "release_year");
        for t in s.triples_of_relation(year_rel) {
            let name = s.entity_name(t.tail);
            assert!(
                name.parse::<u32>().is_ok(),
                "release_year tail '{name}' is not a year"
            );
        }
        let lang_rel = s.relation_ids()[4];
        for t in s.triples_of_relation(lang_rel) {
            assert!(names::LANGUAGES.contains(&s.entity_name(t.tail)));
        }
    }

    #[test]
    fn heads_are_movies() {
        let s = synth_metaqa(&MetaQaConfig::with_triplets(300, 3));
        for t in s.triples() {
            assert!(s.entity_name(t.head).starts_with("the "));
        }
    }

    #[test]
    fn relations_are_balanced() {
        let s = synth_metaqa(&MetaQaConfig::with_triplets(900, 4));
        for r in s.relation_ids() {
            let n = s.triples_of_relation(r).len();
            assert!(n >= 60, "relation {} undersampled: {n}", s.relation_name(r));
        }
    }
}
