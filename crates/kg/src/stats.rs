//! Descriptive statistics of a knowledge graph (reported in experiment logs).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::store::TripleStore;

/// Summary statistics of a [`TripleStore`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KgStats {
    /// Triple count.
    pub n_triples: usize,
    /// Distinct entity count.
    pub n_entities: usize,
    /// Distinct relation count.
    pub n_relations: usize,
    /// Mean triples per head entity.
    pub mean_head_degree: f32,
    /// Largest per-relation triple count.
    pub max_relation_count: usize,
    /// Smallest per-relation triple count (over non-empty relations).
    pub min_relation_count: usize,
}

impl KgStats {
    /// Computes statistics for `store`.
    pub fn of(store: &TripleStore) -> Self {
        let mut head_deg: HashMap<_, usize> = HashMap::new();
        let mut rel_count: HashMap<_, usize> = HashMap::new();
        for t in store.triples() {
            *head_deg.entry(t.head).or_default() += 1;
            *rel_count.entry(t.relation).or_default() += 1;
        }
        let mean_head_degree = if head_deg.is_empty() {
            0.0
        } else {
            store.len() as f32 / head_deg.len() as f32
        };
        KgStats {
            n_triples: store.len(),
            n_entities: store.n_entities(),
            n_relations: store.n_relations(),
            mean_head_degree,
            max_relation_count: rel_count.values().copied().max().unwrap_or(0),
            min_relation_count: rel_count.values().copied().min().unwrap_or(0),
        }
    }
}

impl std::fmt::Display for KgStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} triples, {} entities, {} relations, mean head degree {:.2}, \
             relation counts [{}, {}]",
            self.n_triples,
            self.n_entities,
            self.n_relations,
            self.mean_head_degree,
            self.min_relation_count,
            self.max_relation_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::umls::{synth_umls, UmlsConfig};

    #[test]
    fn stats_of_generated_graph() {
        let s = synth_umls(&UmlsConfig::with_triplets(300, 1));
        let st = KgStats::of(&s);
        assert_eq!(st.n_triples, 300);
        assert!(st.mean_head_degree >= 1.0);
        assert!(st.max_relation_count >= st.min_relation_count);
        assert!(st.to_string().contains("300 triples"));
    }

    #[test]
    fn stats_of_empty_store() {
        let s = TripleStore::new();
        let st = KgStats::of(&s);
        assert_eq!(st.n_triples, 0);
        assert_eq!(st.mean_head_degree, 0.0);
    }
}
