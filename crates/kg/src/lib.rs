//! # infuserki-kg
//!
//! Knowledge-graph substrate for the InfuserKI reproduction: an interned
//! triple store with head/relation/tail indices, plus deterministic synthetic
//! generators standing in for the paper's UMLS and MetaQA graphs (see
//! `DESIGN.md` §2 for the substitution rationale).
//!
//! The generators produce **closed-vocabulary** entity names from small word
//! pools, so the downstream tokenizer stays small no matter how many triplets
//! are sampled — the property that makes the paper's 2.5k → 25k scale-up
//! experiment (Table 3) feasible on CPU.

pub mod io;
pub mod metaqa;
pub mod names;
pub mod partition;
pub mod paths;
pub mod stats;
pub mod store;
pub mod types;
pub mod umls;

pub use io::ParseError;
pub use metaqa::{synth_metaqa, MetaQaConfig};
pub use stats::KgStats;
pub use store::TripleStore;
pub use types::{EntityId, RelationId, Triple};
pub use umls::{synth_umls, UmlsConfig};
