//! Import/export of triple stores in the pipe-separated format used by the
//! real MetaQA release (`kb.txt`: `subject|relation|object` per line) — so a
//! downstream user can swap the synthetic graphs for the paper's actual data
//! without touching any other code.

use std::fs;
use std::path::Path;

use crate::store::TripleStore;
use crate::types::Triple;

/// A parse failure with source position: 1-based line and 1-based byte
/// column of the offending field (0/0 for whole-file problems such as an
/// unreadable path).
///
/// Every format front-end in the workspace (this module's pipe format and
/// the ingest crate's JSONL/CSV/TSV readers) reports positions through this
/// one type, so tooling can point at the byte that broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 when the error is not tied to a line).
    pub line: usize,
    /// 1-based byte column of the offending field (0 when unknown).
    pub col: usize,
    /// Human-readable description.
    pub msg: String,
}

impl ParseError {
    /// An error anchored at `line`/`col`.
    pub fn at(line: usize, col: usize, msg: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            msg: msg.into(),
        }
    }

    /// A whole-file error with no position.
    pub fn file(msg: impl Into<String>) -> Self {
        ParseError {
            line: 0,
            col: 0,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}, col {}: {}", self.line, self.col, self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for String {
    fn from(e: ParseError) -> String {
        e.to_string()
    }
}

/// Parses a pipe-separated triple dump (`subject|relation|object` per line).
///
/// Empty lines and `#` comments are skipped. Duplicate `(head, relation)`
/// pairs keep only the first tail when `functional` is set (the invariant the
/// MCQ builder needs); otherwise all distinct triples load. An *exact*
/// duplicate `(s, r, o)` row is rejected in both modes, with its position —
/// silent dedup used to hide data bugs, and the streaming front-ends reject
/// duplicates too, so the formats now agree.
pub fn parse_pipe_separated(text: &str, functional: bool) -> Result<TripleStore, ParseError> {
    let mut store = TripleStore::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // 0-based byte offset of the trimmed content inside the raw line,
        // so reported columns point into the file as written.
        let base = raw.len() - raw.trim_start().len();
        let Some((s_raw, rest)) = trimmed.split_once('|') else {
            return Err(ParseError::at(
                line,
                base + 1,
                format!("expected 'subject|relation|object', got '{trimmed}'"),
            ));
        };
        let Some((r_raw, o_raw)) = rest.split_once('|') else {
            return Err(ParseError::at(
                line,
                base + s_raw.len() + 2,
                format!("expected 'subject|relation|object', got '{trimmed}'"),
            ));
        };
        let cols = [
            base + 1,
            base + s_raw.len() + 2,
            base + s_raw.len() + r_raw.len() + 3,
        ];
        let fields = [s_raw.trim(), r_raw.trim(), o_raw.trim()];
        for (f, col) in fields.iter().zip(cols) {
            if f.is_empty() {
                return Err(ParseError::at(
                    line,
                    col,
                    format!("empty field in '{trimmed}'"),
                ));
            }
        }
        let (s, r, o) = (fields[0], fields[1], fields[2]);
        let head = store.intern_entity(s);
        let rel = store.intern_relation(r);
        let tail = store.intern_entity(o);
        let triple = Triple::new(head, rel, tail);
        if store.contains(&triple) {
            return Err(ParseError::at(
                line,
                cols[0],
                format!("duplicate triple '{s}|{r}|{o}'"),
            ));
        }
        if functional {
            store.insert_functional(triple);
        } else {
            store.insert(triple);
        }
    }
    Ok(store)
}

/// Loads a pipe-separated triple file.
pub fn load_pipe_separated(
    path: impl AsRef<Path>,
    functional: bool,
) -> Result<TripleStore, ParseError> {
    let text = fs::read_to_string(&path)
        .map_err(|e| ParseError::file(format!("read {}: {e}", path.as_ref().display())))?;
    parse_pipe_separated(&text, functional)
}

/// Serializes a store to the pipe-separated format.
pub fn to_pipe_separated(store: &TripleStore) -> String {
    let mut out = String::new();
    for t in store.triples() {
        out.push_str(store.entity_name(t.head));
        out.push('|');
        out.push_str(store.relation_name(t.relation));
        out.push('|');
        out.push_str(store.entity_name(t.tail));
        out.push('\n');
    }
    out
}

/// Writes a store as a pipe-separated file.
pub fn save_pipe_separated(store: &TripleStore, path: impl AsRef<Path>) -> Result<(), String> {
    if let Some(dir) = path.as_ref().parent() {
        fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    }
    fs::write(&path, to_pipe_separated(store))
        .map_err(|e| format!("write {}: {e}", path.as_ref().display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::umls::{synth_umls, UmlsConfig};

    #[test]
    fn parse_metaqa_style_lines() {
        let text = "the silent horizon|directed_by|ava castellano\n\
                    # a comment\n\
                    \n\
                    the silent horizon|release_year|1987\n";
        let s = parse_pipe_separated(text, true).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.n_entities(), 3);
        assert_eq!(s.n_relations(), 2);
        let movie = s.entity_by_name("the silent horizon").unwrap();
        assert_eq!(s.triples_of_head(movie).len(), 2);
    }

    #[test]
    fn functional_mode_keeps_first_tail() {
        let text = "a|r|b\na|r|c\n";
        let s = parse_pipe_separated(text, true).unwrap();
        assert_eq!(s.len(), 1);
        let nonfunc = parse_pipe_separated(text, false).unwrap();
        assert_eq!(nonfunc.len(), 2);
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let err = parse_pipe_separated("a|b\n", true).unwrap_err();
        assert_eq!((err.line, err.col), (1, 3));
        assert!(err.to_string().contains("line 1"), "{err}");
        let err2 = parse_pipe_separated("a||c\n", true).unwrap_err();
        assert!(err2.msg.contains("empty field"), "{err2}");
        assert_eq!((err2.line, err2.col), (1, 3));
    }

    #[test]
    fn columns_point_at_the_offending_field() {
        // The empty object of line 2 starts after "head|rel|" = col 10; the
        // two leading spaces shift every column by the indent.
        let err = parse_pipe_separated("a|r|b\n  head|rel| \n", true).unwrap_err();
        assert_eq!((err.line, err.col), (2, 12));
    }

    #[test]
    fn exact_duplicate_rows_are_rejected_with_position() {
        let err = parse_pipe_separated("a|r|b\na|r|b\n", true).unwrap_err();
        assert!(err.msg.contains("duplicate triple"), "{err}");
        assert_eq!((err.line, err.col), (2, 1));
        // Same in non-functional mode: formats agree on duplicate handling.
        let err2 = parse_pipe_separated("a|r|b\na|r|b\n", false).unwrap_err();
        assert!(err2.msg.contains("duplicate"), "{err2}");
    }

    #[test]
    fn object_may_contain_pipes_only_in_third_field() {
        // splitn-style behavior preserved: everything past the second '|'
        // is the object.
        let s = parse_pipe_separated("a|r|b|c\n", true).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.entity_by_name("b|c").is_some());
    }

    #[test]
    fn round_trip_preserves_store() {
        let original = synth_umls(&UmlsConfig::with_triplets(80, 9));
        let text = to_pipe_separated(&original);
        let back = parse_pipe_separated(&text, true).unwrap();
        assert_eq!(back.len(), original.len());
        for t in original.triples() {
            let h = back
                .entity_by_name(original.entity_name(t.head))
                .expect("head survives");
            let found = back.triples_of_head(h);
            assert!(found
                .iter()
                .any(|bt| back.entity_name(bt.tail) == original.entity_name(t.tail)));
        }
    }

    #[test]
    fn file_round_trip() {
        let s = synth_umls(&UmlsConfig::with_triplets(30, 10));
        let path = std::env::temp_dir().join(format!("infuserki_kg_{}.txt", std::process::id()));
        save_pipe_separated(&s, &path).unwrap();
        let loaded = load_pipe_separated(&path, true).unwrap();
        assert_eq!(loaded.len(), s.len());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_pipe_separated("/nonexistent/kb.txt", true).is_err());
    }
}
