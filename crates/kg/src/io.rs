//! Import/export of triple stores in the pipe-separated format used by the
//! real MetaQA release (`kb.txt`: `subject|relation|object` per line) — so a
//! downstream user can swap the synthetic graphs for the paper's actual data
//! without touching any other code.

use std::fs;
use std::path::Path;

use crate::store::TripleStore;
use crate::types::Triple;

/// Parses a pipe-separated triple dump (`subject|relation|object` per line).
///
/// Empty lines and `#` comments are skipped. Duplicate `(head, relation)`
/// pairs keep only the first tail when `functional` is set (the invariant the
/// MCQ builder needs); otherwise all distinct triples load.
pub fn parse_pipe_separated(text: &str, functional: bool) -> Result<TripleStore, String> {
    let mut store = TripleStore::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '|');
        let (Some(s), Some(r), Some(o)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "line {}: expected 'subject|relation|object', got '{line}'",
                lineno + 1
            ));
        };
        let (s, r, o) = (s.trim(), r.trim(), o.trim());
        if s.is_empty() || r.is_empty() || o.is_empty() {
            return Err(format!("line {}: empty field in '{line}'", lineno + 1));
        }
        let head = store.intern_entity(s);
        let rel = store.intern_relation(r);
        let tail = store.intern_entity(o);
        let triple = Triple::new(head, rel, tail);
        if functional {
            store.insert_functional(triple);
        } else {
            store.insert(triple);
        }
    }
    Ok(store)
}

/// Loads a pipe-separated triple file.
pub fn load_pipe_separated(
    path: impl AsRef<Path>,
    functional: bool,
) -> Result<TripleStore, String> {
    let text =
        fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.as_ref().display()))?;
    parse_pipe_separated(&text, functional)
}

/// Serializes a store to the pipe-separated format.
pub fn to_pipe_separated(store: &TripleStore) -> String {
    let mut out = String::new();
    for t in store.triples() {
        out.push_str(store.entity_name(t.head));
        out.push('|');
        out.push_str(store.relation_name(t.relation));
        out.push('|');
        out.push_str(store.entity_name(t.tail));
        out.push('\n');
    }
    out
}

/// Writes a store as a pipe-separated file.
pub fn save_pipe_separated(store: &TripleStore, path: impl AsRef<Path>) -> Result<(), String> {
    if let Some(dir) = path.as_ref().parent() {
        fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    }
    fs::write(&path, to_pipe_separated(store))
        .map_err(|e| format!("write {}: {e}", path.as_ref().display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::umls::{synth_umls, UmlsConfig};

    #[test]
    fn parse_metaqa_style_lines() {
        let text = "the silent horizon|directed_by|ava castellano\n\
                    # a comment\n\
                    \n\
                    the silent horizon|release_year|1987\n";
        let s = parse_pipe_separated(text, true).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.n_entities(), 3);
        assert_eq!(s.n_relations(), 2);
        let movie = s.entity_by_name("the silent horizon").unwrap();
        assert_eq!(s.triples_of_head(movie).len(), 2);
    }

    #[test]
    fn functional_mode_keeps_first_tail() {
        let text = "a|r|b\na|r|c\n";
        let s = parse_pipe_separated(text, true).unwrap();
        assert_eq!(s.len(), 1);
        let nonfunc = parse_pipe_separated(text, false).unwrap();
        assert_eq!(nonfunc.len(), 2);
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let err = parse_pipe_separated("a|b\n", true).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err2 = parse_pipe_separated("a||c\n", true).unwrap_err();
        assert!(err2.contains("empty field"), "{err2}");
    }

    #[test]
    fn round_trip_preserves_store() {
        let original = synth_umls(&UmlsConfig::with_triplets(80, 9));
        let text = to_pipe_separated(&original);
        let back = parse_pipe_separated(&text, true).unwrap();
        assert_eq!(back.len(), original.len());
        for t in original.triples() {
            let h = back
                .entity_by_name(original.entity_name(t.head))
                .expect("head survives");
            let found = back.triples_of_head(h);
            assert!(found
                .iter()
                .any(|bt| back.entity_name(bt.tail) == original.entity_name(t.tail)));
        }
    }

    #[test]
    fn file_round_trip() {
        let s = synth_umls(&UmlsConfig::with_triplets(30, 10));
        let path = std::env::temp_dir().join(format!("infuserki_kg_{}.txt", std::process::id()));
        save_pipe_separated(&s, &path).unwrap();
        let loaded = load_pipe_separated(&path, true).unwrap();
        assert_eq!(loaded.len(), s.len());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_pipe_separated("/nonexistent/kb.txt", true).is_err());
    }
}
