//! The interned triple store with secondary indices.

use std::collections::{HashMap, HashSet};

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::types::{EntityId, RelationId, Triple};

/// An in-memory knowledge graph: interned entity/relation names, a deduped
/// triple list, and by-head / by-relation / by-tail indices.
///
/// Invariants (property-tested):
/// * every triple appears exactly once;
/// * each `(head, relation)` pair has at most one tail when inserted through
///   [`insert_functional`](Self::insert_functional) — the generators use this
///   so every multiple-choice question has a unique gold answer;
/// * indices always agree with the triple list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TripleStore {
    entities: Vec<String>,
    relations: Vec<String>,
    triples: Vec<Triple>,
    #[serde(skip)]
    entity_index: HashMap<String, EntityId>,
    #[serde(skip)]
    relation_index: HashMap<String, RelationId>,
    #[serde(skip)]
    triple_set: HashSet<Triple>,
    #[serde(skip)]
    head_rel: HashSet<(EntityId, RelationId)>,
    #[serde(skip)]
    by_head: HashMap<EntityId, Vec<usize>>,
    #[serde(skip)]
    by_relation: HashMap<RelationId, Vec<usize>>,
    #[serde(skip)]
    by_tail: HashMap<EntityId, Vec<usize>>,
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> Self {
        TripleStore::default()
    }

    /// Rebuilds all indices from the entity/relation/triple lists. Needed
    /// after deserialization (indices are not serialized).
    pub fn rebuild_indices(&mut self) {
        self.entity_index = self
            .entities
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), EntityId(i as u32)))
            .collect();
        self.relation_index = self
            .relations
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), RelationId(i as u32)))
            .collect();
        self.triple_set = self.triples.iter().copied().collect();
        self.head_rel = self.triples.iter().map(|t| (t.head, t.relation)).collect();
        self.by_head.clear();
        self.by_relation.clear();
        self.by_tail.clear();
        for (i, t) in self.triples.iter().enumerate() {
            self.by_head.entry(t.head).or_default().push(i);
            self.by_relation.entry(t.relation).or_default().push(i);
            self.by_tail.entry(t.tail).or_default().push(i);
        }
    }

    /// Interns an entity name, returning its id (existing id on repeats).
    pub fn intern_entity(&mut self, name: &str) -> EntityId {
        if let Some(&id) = self.entity_index.get(name) {
            return id;
        }
        let id = EntityId(self.entities.len() as u32);
        self.entities.push(name.to_string());
        self.entity_index.insert(name.to_string(), id);
        id
    }

    /// Interns a relation name.
    pub fn intern_relation(&mut self, name: &str) -> RelationId {
        if let Some(&id) = self.relation_index.get(name) {
            return id;
        }
        let id = RelationId(self.relations.len() as u32);
        self.relations.push(name.to_string());
        self.relation_index.insert(name.to_string(), id);
        id
    }

    /// Inserts a triple; returns false if it already exists.
    pub fn insert(&mut self, t: Triple) -> bool {
        self.validate_ids(&t);
        if !self.triple_set.insert(t) {
            return false;
        }
        let idx = self.triples.len();
        self.triples.push(t);
        self.head_rel.insert((t.head, t.relation));
        self.by_head.entry(t.head).or_default().push(idx);
        self.by_relation.entry(t.relation).or_default().push(idx);
        self.by_tail.entry(t.tail).or_default().push(idx);
        true
    }

    /// Inserts only when no triple with the same `(head, relation)` exists —
    /// keeps relations functional so MCQ gold answers are unique.
    pub fn insert_functional(&mut self, t: Triple) -> bool {
        self.validate_ids(&t);
        if self.head_rel.contains(&(t.head, t.relation)) {
            return false;
        }
        self.insert(t)
    }

    fn validate_ids(&self, t: &Triple) {
        assert!(
            (t.head.0 as usize) < self.entities.len(),
            "unknown head entity id"
        );
        assert!(
            (t.tail.0 as usize) < self.entities.len(),
            "unknown tail entity id"
        );
        assert!(
            (t.relation.0 as usize) < self.relations.len(),
            "unknown relation id"
        );
    }

    /// True when the exact triple is present.
    pub fn contains(&self, t: &Triple) -> bool {
        self.triple_set.contains(t)
    }

    /// The unique tail for `(head, relation)`, if present.
    pub fn tail_of(&self, head: EntityId, relation: RelationId) -> Option<EntityId> {
        self.by_head.get(&head).and_then(|idxs| {
            idxs.iter()
                .map(|&i| self.triples[i])
                .find(|t| t.relation == relation)
                .map(|t| t.tail)
        })
    }

    /// All triples with the given head.
    pub fn triples_of_head(&self, head: EntityId) -> Vec<Triple> {
        self.by_head
            .get(&head)
            .map(|idxs| idxs.iter().map(|&i| self.triples[i]).collect())
            .unwrap_or_default()
    }

    /// All triples with the given relation.
    pub fn triples_of_relation(&self, relation: RelationId) -> Vec<Triple> {
        self.by_relation
            .get(&relation)
            .map(|idxs| idxs.iter().map(|&i| self.triples[i]).collect())
            .unwrap_or_default()
    }

    /// Distinct entities appearing as tails of `relation` — the distractor
    /// pool for that relation's MCQs.
    pub fn tail_pool(&self, relation: RelationId) -> Vec<EntityId> {
        let mut seen = HashSet::new();
        let mut pool = Vec::new();
        for t in self.triples_of_relation(relation) {
            if seen.insert(t.tail) {
                pool.push(t.tail);
            }
        }
        pool
    }

    /// Entity name.
    pub fn entity_name(&self, id: EntityId) -> &str {
        &self.entities[id.0 as usize]
    }

    /// Relation name.
    pub fn relation_name(&self, id: RelationId) -> &str {
        &self.relations[id.0 as usize]
    }

    /// Looks up an entity by name.
    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        self.entity_index.get(name).copied()
    }

    /// Looks up a relation by name.
    pub fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        self.relation_index.get(name).copied()
    }

    /// All triples in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Number of distinct entities.
    pub fn n_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of distinct relations.
    pub fn n_relations(&self) -> usize {
        self.relations.len()
    }

    /// All relation ids.
    pub fn relation_ids(&self) -> Vec<RelationId> {
        (0..self.relations.len() as u32).map(RelationId).collect()
    }

    /// All entity names (tokenizer vocabulary building).
    pub fn entity_names(&self) -> impl Iterator<Item = &str> {
        self.entities.iter().map(String::as_str)
    }

    /// All relation names.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.iter().map(String::as_str)
    }

    /// Samples `n` distinct triples uniformly (MoP-style partition sampling
    /// draws per-relation; uniform sampling suffices for our generators which
    /// already balance relations).
    pub fn sample_triples(&self, n: usize, rng: &mut impl Rng) -> Vec<Triple> {
        let mut idxs: Vec<usize> = (0..self.triples.len()).collect();
        idxs.shuffle(rng);
        idxs.truncate(n.min(self.triples.len()));
        idxs.into_iter().map(|i| self.triples[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny() -> TripleStore {
        let mut s = TripleStore::new();
        let a = s.intern_entity("aspirin");
        let b = s.intern_entity("headache");
        let c = s.intern_entity("fever");
        let r = s.intern_relation("treats");
        s.insert(Triple::new(a, r, b));
        s.insert(Triple::new(a, r, c));
        s
    }

    #[test]
    fn interning_is_idempotent() {
        let mut s = TripleStore::new();
        let a1 = s.intern_entity("x");
        let a2 = s.intern_entity("x");
        assert_eq!(a1, a2);
        assert_eq!(s.n_entities(), 1);
    }

    #[test]
    fn insert_dedupes() {
        let mut s = tiny();
        let a = s.entity_by_name("aspirin").unwrap();
        let b = s.entity_by_name("headache").unwrap();
        let r = s.intern_relation("treats");
        assert!(!s.insert(Triple::new(a, r, b)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn insert_functional_enforces_unique_tail() {
        let mut s = TripleStore::new();
        let a = s.intern_entity("a");
        let b = s.intern_entity("b");
        let c = s.intern_entity("c");
        let r = s.intern_relation("r");
        assert!(s.insert_functional(Triple::new(a, r, b)));
        assert!(!s.insert_functional(Triple::new(a, r, c)));
        assert_eq!(s.tail_of(a, r), Some(b));
    }

    #[test]
    fn indices_answer_queries() {
        let s = tiny();
        let a = s.entity_by_name("aspirin").unwrap();
        let r = s.relation_ids()[0];
        assert_eq!(s.triples_of_head(a).len(), 2);
        assert_eq!(s.triples_of_relation(r).len(), 2);
        assert_eq!(s.tail_pool(r).len(), 2);
    }

    #[test]
    fn sample_triples_bounds() {
        let s = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(s.sample_triples(1, &mut rng).len(), 1);
        assert_eq!(s.sample_triples(10, &mut rng).len(), 2);
    }

    #[test]
    fn serde_round_trip_with_rebuild() {
        let s = tiny();
        let json = serde_json::to_string(&s).unwrap();
        let mut back: TripleStore = serde_json::from_str(&json).unwrap();
        back.rebuild_indices();
        assert_eq!(back.len(), s.len());
        let a = back.entity_by_name("aspirin").unwrap();
        assert_eq!(back.triples_of_head(a).len(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown head entity")]
    fn insert_rejects_foreign_ids() {
        let mut s = TripleStore::new();
        let r = s.intern_relation("r");
        s.insert(Triple::new(EntityId(5), r, EntityId(6)));
    }
}
