//! Interned identifiers and the triple record.

use serde::{Deserialize, Serialize};

/// Interned entity identifier within one [`crate::TripleStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

/// Interned relation identifier within one [`crate::TripleStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelationId(pub u32);

/// A knowledge triplet `⟨head, relation, tail⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Triple {
    /// Subject entity.
    pub head: EntityId,
    /// Relation.
    pub relation: RelationId,
    /// Object entity.
    pub tail: EntityId,
}

impl Triple {
    /// Constructs a triple.
    pub fn new(head: EntityId, relation: RelationId, tail: EntityId) -> Self {
        Triple {
            head,
            relation,
            tail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_equality_is_structural() {
        let a = Triple::new(EntityId(1), RelationId(2), EntityId(3));
        let b = Triple::new(EntityId(1), RelationId(2), EntityId(3));
        let c = Triple::new(EntityId(3), RelationId(2), EntityId(1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ids_order_by_value() {
        assert!(EntityId(1) < EntityId(2));
        assert!(RelationId(0) < RelationId(9));
    }
}
