//! Multi-hop path queries over the triple store.
//!
//! MetaQA's benchmark includes 1/2/3-hop questions with annotated reasoning
//! paths; the reproduction's downstream task uses 1-hop, and the 2-hop
//! generator here backs the extension experiment (`eval::downstream`'s 2-hop
//! items) — integrating single triples should also improve compositional
//! questions whose *both* hops were integrated.

use serde::{Deserialize, Serialize};

use crate::store::TripleStore;
use crate::types::{EntityId, RelationId, Triple};

/// A 2-hop path `h -r1-> m -r2-> t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoHopPath {
    /// First hop.
    pub first: Triple,
    /// Second hop (its head equals the first hop's tail).
    pub second: Triple,
}

impl TwoHopPath {
    /// Start entity.
    pub fn start(&self) -> EntityId {
        self.first.head
    }

    /// Bridge entity.
    pub fn bridge(&self) -> EntityId {
        self.first.tail
    }

    /// End entity (the 2-hop answer).
    pub fn end(&self) -> EntityId {
        self.second.tail
    }

    /// The relation pair.
    pub fn relations(&self) -> (RelationId, RelationId) {
        (self.first.relation, self.second.relation)
    }
}

/// Enumerates every 2-hop path in the store (bounded by `limit`).
///
/// Paths where the end loops back to the start are excluded (MetaQA's
/// questions never ask "which movie is the movie of itself").
pub fn two_hop_paths(store: &TripleStore, limit: usize) -> Vec<TwoHopPath> {
    let mut out = Vec::new();
    for &first in store.triples() {
        for second in store.triples_of_head(first.tail) {
            if second.tail == first.head {
                continue;
            }
            out.push(TwoHopPath { first, second });
            if out.len() >= limit {
                return out;
            }
        }
    }
    out
}

/// All entities reachable from `start` in exactly `hops` steps.
pub fn reachable(store: &TripleStore, start: EntityId, hops: usize) -> Vec<EntityId> {
    let mut frontier = vec![start];
    for _ in 0..hops {
        let mut next = Vec::new();
        for &e in &frontier {
            for t in store.triples_of_head(e) {
                if !next.contains(&t.tail) {
                    next.push(t.tail);
                }
            }
        }
        frontier = next;
    }
    frontier
}

/// Degree-weighted connectivity check: fraction of entities with at least
/// one outgoing edge (a KG-quality diagnostic the generators are tested on).
pub fn outgoing_coverage(store: &TripleStore) -> f32 {
    if store.n_entities() == 0 {
        return 0.0;
    }
    let with_out = (0..store.n_entities() as u32)
        .filter(|&i| !store.triples_of_head(EntityId(i)).is_empty())
        .count();
    with_out as f32 / store.n_entities() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metaqa::{synth_metaqa, MetaQaConfig};
    use crate::umls::{synth_umls, UmlsConfig};

    #[test]
    fn two_hop_paths_are_connected() {
        let s = synth_umls(&UmlsConfig::with_triplets(300, 21));
        let paths = two_hop_paths(&s, 200);
        for p in &paths {
            assert_eq!(p.first.tail, p.second.head, "hops must chain");
            assert_ne!(p.end(), p.start(), "no loops");
            assert!(s.contains(&p.first) && s.contains(&p.second));
        }
    }

    #[test]
    fn two_hop_respects_limit() {
        let s = synth_umls(&UmlsConfig::with_triplets(300, 22));
        assert!(two_hop_paths(&s, 10).len() <= 10);
    }

    #[test]
    fn reachable_zero_hops_is_start() {
        let s = synth_metaqa(&MetaQaConfig::with_triplets(120, 3));
        let start = s.triples()[0].head;
        assert_eq!(reachable(&s, start, 0), vec![start]);
    }

    #[test]
    fn reachable_one_hop_matches_tails() {
        let s = synth_metaqa(&MetaQaConfig::with_triplets(120, 3));
        let start = s.triples()[0].head;
        let r = reachable(&s, start, 1);
        let tails: Vec<EntityId> = s.triples_of_head(start).iter().map(|t| t.tail).collect();
        for t in &tails {
            assert!(r.contains(t));
        }
        assert_eq!(r.len(), {
            let mut dedup = tails.clone();
            dedup.sort_unstable();
            dedup.dedup();
            dedup.len()
        });
    }

    #[test]
    fn movie_graph_has_full_outgoing_coverage_for_movies() {
        let s = synth_metaqa(&MetaQaConfig::with_triplets(200, 4));
        // Heads are movies; tail-only entities (people, genres…) lower overall
        // coverage, but it must be strictly positive and below 1.
        let c = outgoing_coverage(&s);
        assert!(c > 0.0 && c < 1.0, "coverage {c}");
    }
}
