//! Closed-vocabulary name grammars for the synthetic knowledge graphs.
//!
//! Every generated entity name is composed from these fixed word pools, so
//! the token vocabulary stays bounded (≈600 words) regardless of graph size.

/// Medical qualifier words (first token of a UMLS-style entity).
pub const MED_QUALIFIERS: &[&str] = &[
    "chronic",
    "acute",
    "congenital",
    "benign",
    "malignant",
    "recurrent",
    "latent",
    "systemic",
    "focal",
    "diffuse",
    "primary",
    "secondary",
    "atypical",
    "juvenile",
    "senile",
    "idiopathic",
    "acquired",
    "hereditary",
    "bilateral",
    "unilateral",
    "proximal",
    "distal",
    "anterior",
    "posterior",
    "lateral",
    "medial",
    "superficial",
    "profound",
    "partial",
    "complete",
];

/// Medical stem prefixes (combined with [`MED_STEM_SUFFIXES`] into one token).
pub const MED_STEM_PREFIXES: &[&str] = &[
    "cardio",
    "neuro",
    "osteo",
    "derma",
    "hepato",
    "nephro",
    "gastro",
    "pulmo",
    "hemato",
    "arthro",
    "encephalo",
    "myelo",
    "angio",
    "broncho",
    "cranio",
    "cysto",
    "entero",
    "fibro",
    "glosso",
    "laryngo",
    "lympho",
    "myo",
    "oculo",
    "oto",
    "pharyngo",
];

/// Medical stem suffixes.
pub const MED_STEM_SUFFIXES: &[&str] = &[
    "pathy",
    "itis",
    "oma",
    "osis",
    "plasty",
    "ectomy",
    "algia",
    "sclerosis",
    "stenosis",
    "megaly",
    "trophy",
    "plasia",
    "rrhagia",
    "spasm",
    "ptosis",
    "cele",
];

/// Medical relation names (subset-sized like UMLS's most frequent relations).
pub const MED_RELATIONS: &[&str] = &[
    "has finding site",
    "is treated by",
    "has causative agent",
    "is associated with",
    "has symptom",
    "has pathological process",
    "is diagnosed by",
    "has risk factor",
    "is prevented by",
    "has complication",
    "occurs in region",
    "is contraindicated with",
    "has biomarker",
    "responds to therapy",
    "is staged by",
    "has onset period",
    "affects system",
    "is screened by",
];

/// Movie-title adjectives.
pub const MOVIE_ADJECTIVES: &[&str] = &[
    "silent",
    "crimson",
    "broken",
    "hidden",
    "burning",
    "frozen",
    "golden",
    "lost",
    "midnight",
    "savage",
    "electric",
    "velvet",
    "shattered",
    "wandering",
    "hollow",
    "radiant",
    "stolen",
    "forgotten",
    "restless",
    "gilded",
];

/// Movie-title nouns.
pub const MOVIE_NOUNS: &[&str] = &[
    "horizon",
    "empire",
    "garden",
    "mirror",
    "station",
    "harvest",
    "voyage",
    "lantern",
    "serpent",
    "compass",
    "orchard",
    "fortress",
    "carnival",
    "meridian",
    "archive",
    "monsoon",
    "paradox",
    "labyrinth",
    "overture",
    "pendulum",
];

/// Person first names.
pub const FIRST_NAMES: &[&str] = &[
    "ava", "noah", "mira", "felix", "iris", "hugo", "lena", "oscar", "nina", "theo", "clara",
    "ivan", "ruth", "marco", "elsa", "victor", "dana", "pablo", "greta", "simon",
];

/// Person last names.
pub const LAST_NAMES: &[&str] = &[
    "castellano",
    "whitfield",
    "okafor",
    "lindqvist",
    "moreau",
    "tanaka",
    "petrov",
    "alvarez",
    "novak",
    "fontaine",
    "herrera",
    "kowalski",
    "braun",
    "santos",
    "moretti",
    "dubois",
    "ferreira",
    "jansen",
    "vargas",
    "klein",
];

/// Movie languages.
pub const LANGUAGES: &[&str] = &[
    "english",
    "french",
    "spanish",
    "japanese",
    "german",
    "italian",
    "korean",
    "hindi",
    "portuguese",
    "swedish",
    "polish",
    "mandarin",
];

/// Movie genres.
pub const GENRES: &[&str] = &[
    "drama",
    "comedy",
    "thriller",
    "horror",
    "romance",
    "documentary",
    "western",
    "musical",
    "animation",
    "mystery",
    "adventure",
    "noir",
    "fantasy",
    "biography",
    "war",
];

/// Movie tags.
pub const TAGS: &[&str] = &[
    "cult",
    "indie",
    "classic",
    "remake",
    "dystopian",
    "heist",
    "courtroom",
    "roadtrip",
    "coming-of-age",
    "space",
    "underwater",
    "heartwarming",
    "gritty",
    "surreal",
    "satirical",
    "slow-burn",
    "ensemble",
    "minimalist",
    "epic",
    "experimental",
];

/// Movie relation names — exactly the 9 MetaQA relation types.
pub const MOVIE_RELATIONS: &[&str] = &[
    "directed_by",
    "written_by",
    "starred_actors",
    "release_year",
    "in_language",
    "has_genre",
    "has_tags",
    "has_imdb_rating",
    "has_imdb_votes",
];

/// Builds the `i`-th medical entity name deterministically; names cycle
/// through qualifier × stem combinations, disambiguated with a `type N`
/// suffix when the combination space wraps.
pub fn medical_entity_name(i: usize) -> String {
    let q = MED_QUALIFIERS[i % MED_QUALIFIERS.len()];
    let p = MED_STEM_PREFIXES[(i / MED_QUALIFIERS.len()) % MED_STEM_PREFIXES.len()];
    let s = MED_STEM_SUFFIXES
        [(i / (MED_QUALIFIERS.len() * MED_STEM_PREFIXES.len())) % MED_STEM_SUFFIXES.len()];
    let wrap = i / (MED_QUALIFIERS.len() * MED_STEM_PREFIXES.len() * MED_STEM_SUFFIXES.len());
    if wrap == 0 {
        format!("{q} {p}{s}")
    } else {
        format!("{q} {p}{s} type {wrap}")
    }
}

/// Builds the `i`-th movie title.
pub fn movie_title(i: usize) -> String {
    let a = MOVIE_ADJECTIVES[i % MOVIE_ADJECTIVES.len()];
    let n = MOVIE_NOUNS[(i / MOVIE_ADJECTIVES.len()) % MOVIE_NOUNS.len()];
    let wrap = i / (MOVIE_ADJECTIVES.len() * MOVIE_NOUNS.len());
    if wrap == 0 {
        format!("the {a} {n}")
    } else {
        format!("the {a} {n} {wrap}")
    }
}

/// Builds the `i`-th person name.
pub fn person_name(i: usize) -> String {
    let f = FIRST_NAMES[i % FIRST_NAMES.len()];
    let l = LAST_NAMES[(i / FIRST_NAMES.len()) % LAST_NAMES.len()];
    let wrap = i / (FIRST_NAMES.len() * LAST_NAMES.len());
    if wrap == 0 {
        format!("{f} {l}")
    } else {
        format!("{f} {l} {wrap}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn medical_names_unique_over_large_range() {
        let names: HashSet<String> = (0..20_000).map(medical_entity_name).collect();
        assert_eq!(names.len(), 20_000);
    }

    #[test]
    fn movie_titles_unique() {
        let names: HashSet<String> = (0..2_000).map(movie_title).collect();
        assert_eq!(names.len(), 2_000);
    }

    #[test]
    fn person_names_unique() {
        let names: HashSet<String> = (0..1_000).map(person_name).collect();
        assert_eq!(names.len(), 1_000);
    }

    #[test]
    fn names_are_deterministic() {
        assert_eq!(medical_entity_name(42), medical_entity_name(42));
        assert_eq!(movie_title(7), movie_title(7));
    }

    #[test]
    fn vocabulary_is_closed() {
        // Token count of 20k medical names stays bounded by the pools.
        let mut words = HashSet::new();
        for i in 0..20_000 {
            for w in medical_entity_name(i).split_whitespace() {
                words.insert(w.to_string());
            }
        }
        // qualifiers + prefix×suffix stems + "type" + wrap numerals
        assert!(words.len() < 600, "vocab {} too large", words.len());
    }

    #[test]
    fn nine_metaqa_relations() {
        assert_eq!(MOVIE_RELATIONS.len(), 9);
    }
}
