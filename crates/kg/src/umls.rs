//! Synthetic UMLS-style medical knowledge graph.
//!
//! Stands in for the paper's UMLS samples (2,500 and 25,000 triplets, MoP
//! sampling). Preserves the statistical structure detection and integration
//! depend on: many relations, shared entities across relations, functional
//! `(head, relation)` pairs, and per-relation tail pools large enough to draw
//! plausible distractors.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::names;
use crate::store::TripleStore;
use crate::types::Triple;

/// Parameters of the synthetic UMLS generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UmlsConfig {
    /// Number of triplets to generate.
    pub n_triplets: usize,
    /// Number of entities in the universe (defaults to ~0.8 × triplets).
    pub n_entities: usize,
    /// RNG seed.
    pub seed: u64,
}

impl UmlsConfig {
    /// Config for a given triplet count with proportionate entities.
    pub fn with_triplets(n_triplets: usize, seed: u64) -> Self {
        UmlsConfig {
            n_triplets,
            n_entities: (n_triplets * 4 / 5).max(40),
            seed,
        }
    }
}

/// Generates a deterministic medical-domain KG.
///
/// Each relation draws heads and tails from overlapping entity subsets;
/// `(head, relation)` pairs are functional. Panics only if the requested
/// triplet count is impossible for the universe size.
pub fn synth_umls(cfg: &UmlsConfig) -> TripleStore {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut store = TripleStore::new();

    let entities: Vec<_> = (0..cfg.n_entities)
        .map(|i| store.intern_entity(&names::medical_entity_name(i)))
        .collect();
    let relations: Vec<_> = names::MED_RELATIONS
        .iter()
        .map(|r| store.intern_relation(r))
        .collect();

    // Per-relation head/tail pools: overlapping random subsets, so entities
    // participate in several relations (like UMLS concepts do).
    let pool_size = (cfg.n_entities / 2).max(10).min(cfg.n_entities);
    let pools: Vec<(Vec<_>, Vec<_>)> = relations
        .iter()
        .map(|_| {
            let mut heads = entities.clone();
            heads.shuffle(&mut rng);
            heads.truncate(pool_size);
            let mut tails = entities.clone();
            tails.shuffle(&mut rng);
            // Tail pools are smaller: several heads share each tail, giving
            // the edit-distance distractor pool realistic near-misses.
            tails.truncate((pool_size / 2).max(8).min(cfg.n_entities));
            (heads, tails)
        })
        .collect();

    let capacity: usize = pools.iter().map(|(h, _)| h.len()).sum();
    assert!(
        cfg.n_triplets <= capacity,
        "cannot generate {} functional triplets from capacity {capacity}; \
         increase n_entities",
        cfg.n_triplets
    );

    let mut attempts = 0usize;
    let max_attempts = cfg.n_triplets * 200;
    while store.len() < cfg.n_triplets {
        attempts += 1;
        assert!(
            attempts < max_attempts,
            "generator stalled at {} / {} triplets",
            store.len(),
            cfg.n_triplets
        );
        let ri = rng.gen_range(0..relations.len());
        let (heads, tails) = &pools[ri];
        let h = heads[rng.gen_range(0..heads.len())];
        let t = tails[rng.gen_range(0..tails.len())];
        if h == t {
            continue;
        }
        store.insert_functional(Triple::new(h, relations[ri], t));
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let s = synth_umls(&UmlsConfig::with_triplets(500, 1));
        assert_eq!(s.len(), 500);
        assert_eq!(s.n_relations(), names::MED_RELATIONS.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synth_umls(&UmlsConfig::with_triplets(200, 7));
        let b = synth_umls(&UmlsConfig::with_triplets(200, 7));
        assert_eq!(a.triples(), b.triples());
        let c = synth_umls(&UmlsConfig::with_triplets(200, 8));
        assert_ne!(a.triples(), c.triples());
    }

    #[test]
    fn head_relation_pairs_are_functional() {
        let s = synth_umls(&UmlsConfig::with_triplets(400, 3));
        let mut seen = std::collections::HashSet::new();
        for t in s.triples() {
            assert!(seen.insert((t.head, t.relation)), "duplicate (h,r)");
        }
    }

    #[test]
    fn no_self_loops() {
        let s = synth_umls(&UmlsConfig::with_triplets(300, 5));
        assert!(s.triples().iter().all(|t| t.head != t.tail));
    }

    #[test]
    fn tail_pools_support_distractors() {
        let s = synth_umls(&UmlsConfig::with_triplets(400, 2));
        for r in s.relation_ids() {
            if !s.triples_of_relation(r).is_empty() {
                assert!(
                    s.tail_pool(r).len() >= 4,
                    "relation {} pool too small for 4-way MCQ",
                    s.relation_name(r)
                );
            }
        }
    }

    #[test]
    fn scales_to_25k_shape() {
        // The Table 3 scale: 10× triplets, still functional and closed-vocab.
        let s = synth_umls(&UmlsConfig::with_triplets(5_000, 4));
        assert_eq!(s.len(), 5_000);
    }
}
