//! Mixture-of-Partitions (MoP) style graph partitioning.
//!
//! The paper samples its UMLS subsets "following MoP (Meng et al. 2021)",
//! which splits a large KG into semantically coherent partitions and trains
//! one lightweight expert per partition. This module implements the sampling
//! side: greedy balanced partitioning by relation-then-head locality, plus a
//! partition-aware triple sampler that preserves each partition's relation
//! mix (the property that keeps distractor pools type-consistent after
//! sampling).

use std::collections::HashMap;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::store::TripleStore;
use crate::types::{EntityId, Triple};

/// A partition of a store's triples (indices into `store.triples()`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition {
    /// Partition id.
    pub id: usize,
    /// Triple indices in this partition.
    pub triple_indices: Vec<usize>,
}

impl Partition {
    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triple_indices.len()
    }

    /// True when the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.triple_indices.is_empty()
    }

    /// Materializes the triples.
    pub fn triples(&self, store: &TripleStore) -> Vec<Triple> {
        self.triple_indices
            .iter()
            .map(|&i| store.triples()[i])
            .collect()
    }
}

/// Greedy balanced partitioning: triples are grouped by head entity (keeping
/// an entity's facts together, as MoP's METIS step does for locality), then
/// head-groups are assigned round-robin-by-size to `k` partitions.
pub fn partition_by_head(store: &TripleStore, k: usize) -> Vec<Partition> {
    assert!(k > 0, "partition count must be positive");
    let mut by_head: HashMap<EntityId, Vec<usize>> = HashMap::new();
    for (i, t) in store.triples().iter().enumerate() {
        by_head.entry(t.head).or_default().push(i);
    }
    // Deterministic order: largest groups first, ties by entity id.
    let mut groups: Vec<(EntityId, Vec<usize>)> = by_head.into_iter().collect();
    groups.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));

    let mut parts: Vec<Partition> = (0..k)
        .map(|id| Partition {
            id,
            triple_indices: Vec::new(),
        })
        .collect();
    for (_, idxs) in groups {
        // Assign to the currently smallest partition (greedy balance).
        let target = parts
            .iter_mut()
            .min_by_key(|p| p.triple_indices.len())
            .expect("k > 0");
        target.triple_indices.extend(idxs);
    }
    parts
}

/// Samples `n` triples by drawing proportionally from each partition,
/// preserving every partition's share (MoP's sampling discipline).
pub fn sample_across_partitions(
    store: &TripleStore,
    partitions: &[Partition],
    n: usize,
    rng: &mut impl Rng,
) -> Vec<Triple> {
    let total: usize = partitions.iter().map(Partition::len).sum();
    if total == 0 || n == 0 {
        return Vec::new();
    }
    let n = n.min(total);
    let mut out = Vec::with_capacity(n);
    for p in partitions {
        let share = ((p.len() * n) as f64 / total as f64).round() as usize;
        let mut idxs = p.triple_indices.clone();
        idxs.shuffle(rng);
        for &i in idxs.iter().take(share.min(p.len())) {
            out.push(store.triples()[i]);
        }
    }
    // Rounding drift: top up (or trim) to exactly n.
    let mut all: Vec<usize> = (0..store.len()).collect();
    all.shuffle(rng);
    let mut i = 0;
    while out.len() < n && i < all.len() {
        let t = store.triples()[all[i]];
        if !out.contains(&t) {
            out.push(t);
        }
        i += 1;
    }
    out.truncate(n);
    out
}

/// Partition quality statistics: size balance and relation diversity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Number of partitions.
    pub k: usize,
    /// Smallest partition size.
    pub min_size: usize,
    /// Largest partition size.
    pub max_size: usize,
    /// Mean distinct relations per partition.
    pub mean_relations: f32,
}

impl PartitionStats {
    /// Computes stats for a partitioning of `store`.
    pub fn of(store: &TripleStore, partitions: &[Partition]) -> Self {
        let sizes: Vec<usize> = partitions.iter().map(Partition::len).collect();
        let rel_counts: Vec<usize> = partitions
            .iter()
            .map(|p| {
                let rels: std::collections::HashSet<_> = p
                    .triple_indices
                    .iter()
                    .map(|&i| store.triples()[i].relation)
                    .collect();
                rels.len()
            })
            .collect();
        PartitionStats {
            k: partitions.len(),
            min_size: sizes.iter().copied().min().unwrap_or(0),
            max_size: sizes.iter().copied().max().unwrap_or(0),
            mean_relations: rel_counts.iter().sum::<usize>() as f32
                / partitions.len().max(1) as f32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::umls::{synth_umls, UmlsConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn store() -> TripleStore {
        synth_umls(&UmlsConfig::with_triplets(400, 17))
    }

    #[test]
    fn partitions_cover_all_triples_exactly_once() {
        let s = store();
        let parts = partition_by_head(&s, 4);
        assert_eq!(parts.len(), 4);
        let mut all: Vec<usize> = parts
            .iter()
            .flat_map(|p| p.triple_indices.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn head_groups_stay_together() {
        let s = store();
        let parts = partition_by_head(&s, 4);
        // Every head entity's triples land in exactly one partition.
        let mut owner: HashMap<EntityId, usize> = HashMap::new();
        for p in &parts {
            for &i in &p.triple_indices {
                let h = s.triples()[i].head;
                if let Some(&prev) = owner.get(&h) {
                    assert_eq!(prev, p.id, "head split across partitions");
                } else {
                    owner.insert(h, p.id);
                }
            }
        }
    }

    #[test]
    fn partitions_are_balanced() {
        let s = store();
        let parts = partition_by_head(&s, 5);
        let stats = PartitionStats::of(&s, &parts);
        assert!(
            stats.max_size - stats.min_size <= stats.max_size / 2 + 3,
            "imbalanced: {stats:?}"
        );
        assert!(stats.mean_relations > 1.0);
    }

    #[test]
    fn sampling_preserves_count_and_membership() {
        let s = store();
        let parts = partition_by_head(&s, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let sample = sample_across_partitions(&s, &parts, 100, &mut rng);
        assert_eq!(sample.len(), 100);
        for t in &sample {
            assert!(s.contains(t));
        }
    }

    #[test]
    fn sampling_caps_at_store_size() {
        let s = store();
        let parts = partition_by_head(&s, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let sample = sample_across_partitions(&s, &parts, 10_000, &mut rng);
        assert_eq!(sample.len(), s.len());
    }

    #[test]
    fn single_partition_is_identity_cover() {
        let s = store();
        let parts = partition_by_head(&s, 1);
        assert_eq!(parts[0].len(), s.len());
        assert_eq!(parts[0].triples(&s).len(), s.len());
    }
}
