//! # infuserki-baselines
//!
//! Every baseline the paper compares InfuserKI against, implemented over the
//! same frozen base model and [`infuserki_nn::LayerHook`] interface:
//!
//! * **PEFT** — [`lora::LoraMethod`], [`qlora`] (4-bit base quantization +
//!   LoRA), [`prefix::PrefixTuning`];
//! * **Model editing** — [`calinet::Calinet`] (FFN calibration adapter in one
//!   top-region layer), [`tpatcher::TPatcher`] (trainable patch neurons on
//!   the last FFN layer);
//! * **Full fine-tuning** — [`fullft::FullFineTune`] (for the Fig. 1
//!   forgetting visualization).
//!
//! All hook-based baselines implement [`common::VisitTrainable`] and train
//! through [`common::train_patched`], the same loop InfuserKI's QA phase
//! uses — differences in results come from the methods, not the harness.

pub mod calinet;
pub mod common;
pub mod fullft;
pub mod grace;
pub mod lora;
pub mod mitigation;
pub mod prefix;
pub mod qlora;
pub mod tpatcher;

pub use calinet::Calinet;
pub use common::{train_patched, VisitTrainable};
pub use fullft::FullFineTune;
pub use lora::LoraMethod;
pub use prefix::PrefixTuning;
pub use qlora::quantize_model;
pub use tpatcher::TPatcher;
