//! GRACE (Hartvigsen et al. 2023): lifelong model editing with a discrete
//! key–value adapter and an ε-ball **deferral mechanism** — the adapter only
//! activates when the current activation falls inside a stored key's radius,
//! otherwise the base model runs untouched.
//!
//! Reproduction notes: keys are mean-pooled FFN-sublayer inputs at the host
//! layer; each entry's value is a trainable vector added (broadcast) to the
//! FFN output when the entry fires. Conflict-driven radius splitting is
//! simplified to radius shrinking against the nearest differing key; the
//! deferral behaviour — the property the paper contrasts with InfuserKI's
//! *soft* infuser gate — is exact.

use infuserki_nn::optim::{AdamW, AdamWConfig};
use infuserki_nn::{ForwardTrace, LayerHook, LmSample, NoHook, TransformerLm};
use infuserki_tensor::{Matrix, NodeId, Param, Tape};
use serde::{Deserialize, Serialize};

use crate::common::VisitTrainable;

/// GRACE hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GraceConfig {
    /// Host layer (GRACE edits one mid/top block).
    pub layer: usize,
    /// Initial ε radius for new codebook entries.
    pub init_radius: f32,
    /// Gradient steps per edit when fitting a value vector.
    pub steps_per_edit: usize,
    /// Learning rate for value fitting.
    pub lr: f32,
}

impl GraceConfig {
    /// Defaults for a model of `n_layers` (host at ⅔ depth).
    pub fn for_model(n_layers: usize) -> Self {
        GraceConfig {
            layer: (2 * n_layers / 3).min(n_layers - 1),
            init_radius: 3.0,
            steps_per_edit: 10,
            lr: 5e-2,
        }
    }
}

#[derive(Debug)]
struct Entry {
    key: Vec<f32>,
    value: Param,
    radius: f32,
}

/// The GRACE codebook adapter.
#[derive(Debug)]
pub struct Grace {
    cfg: GraceConfig,
    d_model: usize,
    entries: Vec<Entry>,
}

impl Grace {
    /// Empty codebook for `base`.
    pub fn new(cfg: GraceConfig, base: &TransformerLm) -> Self {
        assert!(cfg.layer < base.n_layers(), "layer out of range");
        Grace {
            cfg,
            d_model: base.config().d_model,
            entries: Vec::new(),
        }
    }

    /// Number of stored edits.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no edits are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The pooled activation GRACE keys on, for `tokens`.
    pub fn query_activation(&self, base: &TransformerLm, tokens: &[usize]) -> Vec<f32> {
        let mut tape = Tape::new();
        let mut trace = ForwardTrace::new();
        base.forward_traced(tokens, &NoHook, &mut tape, &mut trace);
        let node = trace.ffn_inputs[self.cfg.layer];
        let pooled = tape.mean_rows(node);
        tape.value(pooled).row(0).to_vec()
    }

    fn nearest(&self, query: &[f32]) -> Option<(usize, f32)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, euclid(&e.key, query)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Applies one edit: creates or reuses a codebook entry for the sample's
    /// activation, then fits its value vector to the gold completion.
    /// Returns the entry index used.
    pub fn apply_edit(&mut self, base: &TransformerLm, sample: &LmSample) -> usize {
        let query = self.query_activation(base, &sample.tokens);
        let idx = match self.nearest(&query) {
            Some((i, d)) if d <= self.entries[i].radius => i,
            nearest => {
                // New entry; shrink against the closest existing key so the
                // ε-balls stay disjoint (simplified conflict handling).
                let radius = match nearest {
                    Some((_, d)) => self.cfg.init_radius.min(d * 0.5),
                    None => self.cfg.init_radius,
                };
                self.entries.push(Entry {
                    key: query,
                    value: Param::new(
                        format!("grace.v{}", self.entries.len()),
                        Matrix::zeros(1, self.d_model),
                    ),
                    radius: radius.max(1e-3),
                });
                self.entries.len() - 1
            }
        };
        // Fit the value vector on this edit.
        let mut opt = AdamW::new(AdamWConfig {
            lr: self.cfg.lr,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        });
        for _ in 0..self.cfg.steps_per_edit {
            let mut tape = Tape::new();
            let loss = base.lm_loss(&sample.tokens, &sample.targets, &*self, &mut tape);
            tape.backward(loss);
            let mut grads = tape.grads();
            grads.scale(1.0);
            opt.step(&grads, |f| f(&mut self.entries[idx].value));
        }
        idx
    }

    /// Edits a whole set of samples sequentially (GRACE's lifelong setting).
    pub fn apply_edits(&mut self, base: &TransformerLm, samples: &[LmSample]) {
        for s in samples {
            self.apply_edit(base, s);
        }
    }
}

fn euclid(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

impl LayerHook for Grace {
    fn ffn_output(
        &self,
        layer: usize,
        ffn_in: NodeId,
        ffn_out: NodeId,
        tape: &mut Tape,
        _trace: &mut ForwardTrace,
    ) -> NodeId {
        if layer != self.cfg.layer || self.entries.is_empty() {
            return ffn_out;
        }
        // Deferral: fire only inside the nearest entry's ε-ball.
        let pooled = tape.mean_rows(ffn_in);
        let query = tape.value(pooled).row(0).to_vec();
        let Some((i, d)) = self.nearest(&query) else {
            return ffn_out;
        };
        if d > self.entries[i].radius {
            return ffn_out;
        }
        let v = tape.param(&self.entries[i].value);
        tape.add_row_broadcast(ffn_out, v)
    }

    /// GRACE keys on the *full-sequence* mean of the FFN input — a row's
    /// output depends on tokens after it, so the hook cannot run under the
    /// KV-cached incremental engine. Samplers fall back to full recompute.
    fn supports_incremental(&self) -> bool {
        false
    }
}

impl VisitTrainable for Grace {
    fn visit_trainable_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for e in &mut self.entries {
            f(&mut e.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_nn::ModelConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn base() -> TransformerLm {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        TransformerLm::new(ModelConfig::tiny(30), &mut rng)
    }

    #[test]
    fn empty_grace_defers_everywhere() {
        let b = base();
        let g = Grace::new(GraceConfig::for_model(b.n_layers()), &b);
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let plain = b.forward(&[1, 2], &NoHook, &mut t1);
        let hooked = b.forward(&[1, 2], &g, &mut t2);
        assert_eq!(t1.value(plain).data(), t2.value(hooked).data());
    }

    #[test]
    fn edit_creates_entry_and_changes_output_inside_ball() {
        let b = base();
        let mut g = Grace::new(GraceConfig::for_model(b.n_layers()), &b);
        let sample = LmSample::from_completion(&[3, 4], &[5]);
        g.apply_edit(&b, &sample);
        assert_eq!(g.len(), 1);
        // On the edited prompt, the output differs from plain.
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let plain = b.forward(&[3, 4], &NoHook, &mut t1);
        let hooked = b.forward(&[3, 4], &g, &mut t2);
        assert_ne!(t1.value(plain).data(), t2.value(hooked).data());
    }

    #[test]
    fn deferral_leaves_distant_inputs_untouched() {
        let b = base();
        let mut cfg = GraceConfig::for_model(b.n_layers());
        cfg.init_radius = 1e-4; // tiny ball: everything else defers
        let mut g = Grace::new(cfg, &b);
        g.apply_edit(&b, &LmSample::from_completion(&[3, 4], &[5]));
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let plain = b.forward(&[10, 11, 12], &NoHook, &mut t1);
        let hooked = b.forward(&[10, 11, 12], &g, &mut t2);
        assert_eq!(t1.value(plain).data(), t2.value(hooked).data());
    }

    #[test]
    fn nearby_edits_share_an_entry() {
        let b = base();
        let mut cfg = GraceConfig::for_model(b.n_layers());
        cfg.init_radius = 1e6; // everything inside the first ball
        let mut g = Grace::new(cfg, &b);
        g.apply_edit(&b, &LmSample::from_completion(&[3, 4], &[5]));
        g.apply_edit(&b, &LmSample::from_completion(&[6, 7], &[8]));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn distinct_edits_grow_the_codebook() {
        let b = base();
        let mut cfg = GraceConfig::for_model(b.n_layers());
        cfg.init_radius = 1e-6;
        let mut g = Grace::new(cfg, &b);
        g.apply_edits(
            &b,
            &[
                LmSample::from_completion(&[3, 4], &[5]),
                LmSample::from_completion(&[9, 1], &[2]),
            ],
        );
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn edit_fits_the_target_answer_direction() {
        let b = base();
        let mut g = Grace::new(GraceConfig::for_model(b.n_layers()), &b);
        let sample = LmSample::from_completion(&[3, 4], &[5]);
        let before = {
            let mut t = Tape::new();
            let l = b.lm_loss(&sample.tokens, &sample.targets, &NoHook, &mut t);
            t.value(l).scalar_value()
        };
        g.apply_edit(&b, &sample);
        let after = {
            let mut t = Tape::new();
            let l = b.lm_loss(&sample.tokens, &sample.targets, &g, &mut t);
            t.value(l).scalar_value()
        };
        assert!(after < before, "edit should lower loss: {before} → {after}");
    }
}
