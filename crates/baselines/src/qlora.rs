//! QLoRA (Dettmers et al. 2023): the frozen base model's projection weights
//! are quantized to 4 bits (blockwise absmax), then LoRA trains on top.
//!
//! The reproduction applies the quantization *noise* in place: weights are
//! quantized and immediately dequantized, exactly the values a NF4-storage /
//! f32-compute implementation would use on the forward pass. LoRA then
//! reuses [`crate::lora::LoraMethod`] unchanged.

use infuserki_nn::TransformerLm;
use infuserki_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Blockwise 4-bit quantization parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Values per quantization block (QLoRA uses 64).
    pub block_size: usize,
}

impl Default for QuantConfig {
    fn default() -> Self {
        QuantConfig { block_size: 64 }
    }
}

/// Quantizes one buffer blockwise to 4-bit signed levels and dequantizes it
/// back, in place. Per block: `scale = absmax / 7`, levels in `[-8, 7]`.
///
/// The arithmetic is [`infuserki_tensor::quant::quantize_dequantize_levels`]
/// at the 4-bit levels — the same core the int8 frozen-base inference path
/// uses at `max_level = 127`, so the two quantizers can never drift apart.
pub fn quantize_dequantize(data: &mut [f32], block_size: usize) {
    infuserki_tensor::quant::quantize_dequantize_levels(data, block_size, 7.0, -8.0);
}

/// Worst-case absolute quantization error for a block with the given absmax.
pub fn max_error_bound(absmax: f32) -> f32 {
    absmax / 14.0 + 1e-7
}

/// Quantizes the attention and FFN projection weights of `model` in place
/// (embeddings and LayerNorms stay full precision, as in QLoRA).
/// Returns the number of quantized matrices.
pub fn quantize_model(model: &mut TransformerLm, cfg: QuantConfig) -> usize {
    let mut count = 0;
    for block in model.blocks_mut() {
        for lin in block.attn_mut().projections_mut() {
            quantize_dequantize(lin.weight_mut().data_mut().data_mut(), cfg.block_size);
            count += 1;
        }
        for lin in block.ffn_mut().projections_mut() {
            quantize_dequantize(lin.weight_mut().data_mut().data_mut(), cfg.block_size);
            count += 1;
        }
    }
    count
}

/// Mean absolute difference between two equally-shaped matrices (test util
/// and quantization-noise reporting).
pub fn mean_abs_diff(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape());
    let sum: f32 = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| (x - y).abs())
        .sum();
    sum / a.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_nn::{ModelConfig, NoHook};
    use infuserki_tensor::Tape;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn quantization_is_idempotent() {
        let mut a: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin()).collect();
        quantize_dequantize(&mut a, 64);
        let snapshot = a.clone();
        quantize_dequantize(&mut a, 64);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn zero_block_unchanged() {
        let mut a = vec![0.0f32; 32];
        quantize_dequantize(&mut a, 16);
        assert!(a.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn quantized_model_is_close_but_not_identical() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = TransformerLm::new(ModelConfig::tiny(30), &mut rng);
        let mut quant = model.clone();
        let n = quantize_model(&mut quant, QuantConfig::default());
        assert_eq!(n, quant.n_layers() * 6);
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let a = model.forward(&[1, 2, 3], &NoHook, &mut t1);
        let b = quant.forward(&[1, 2, 3], &NoHook, &mut t2);
        let diff = mean_abs_diff(t1.value(a), t2.value(b));
        assert!(diff > 0.0, "quantization must perturb the model");
        assert!(diff < 1.0, "4-bit noise should stay moderate, got {diff}");
    }

    #[test]
    fn int8_levels_share_the_same_core() {
        // The int8 path is the same shared core at max_level = 127: finer
        // grid, strictly smaller error, idempotent like the 4-bit path.
        let v: Vec<f32> = (0..96).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut q4 = v.clone();
        quantize_dequantize(&mut q4, 64);
        let mut q8 = v.clone();
        infuserki_tensor::quant::quantize_dequantize_levels(&mut q8, 64, 127.0, -127.0);
        let err = |q: &[f32]| {
            v.iter()
                .zip(q)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        assert!(
            err(&q8) < err(&q4),
            "int8 must be strictly finer than 4-bit"
        );
        let snapshot = q8.clone();
        infuserki_tensor::quant::quantize_dequantize_levels(&mut q8, 64, 127.0, -127.0);
        assert_eq!(q8, snapshot);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn int8_error_within_bound(v in proptest::collection::vec(-3.0f32..3.0, 1..96)) {
            use infuserki_tensor::quant;
            let mut q = v.clone();
            quant::quantize_dequantize_levels(&mut q, 64, 127.0, -127.0);
            for block_idx in 0..v.len().div_ceil(64) {
                let lo = block_idx * 64;
                let hi = (lo + 64).min(v.len());
                let absmax = v[lo..hi].iter().fold(0.0f32, |m, x| m.max(x.abs()));
                let bound = quant::max_abs_error(absmax);
                for i in lo..hi {
                    prop_assert!((v[i] - q[i]).abs() <= bound,
                        "err {} > bound {bound}", (v[i] - q[i]).abs());
                }
            }
        }

        #[test]
        fn error_within_half_step(v in proptest::collection::vec(-3.0f32..3.0, 1..96)) {
            let mut q = v.clone();
            quantize_dequantize(&mut q, 64);
            for block_idx in 0..v.len().div_ceil(64) {
                let lo = block_idx * 64;
                let hi = (lo + 64).min(v.len());
                let absmax = v[lo..hi].iter().fold(0.0f32, |m, x| m.max(x.abs()));
                let bound = max_error_bound(absmax);
                for i in lo..hi {
                    prop_assert!((v[i] - q[i]).abs() <= bound,
                        "err {} > bound {bound}", (v[i] - q[i]).abs());
                }
            }
        }

        #[test]
        fn levels_are_at_most_sixteen(v in proptest::collection::vec(-2.0f32..2.0, 64)) {
            let mut q = v.clone();
            quantize_dequantize(&mut q, 64);
            let distinct: std::collections::HashSet<u32> =
                q.iter().map(|f| f.to_bits()).collect();
            prop_assert!(distinct.len() <= 16);
        }
    }
}
