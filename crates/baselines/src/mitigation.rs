//! Classic catastrophic-forgetting mitigations from the paper's related-work
//! section, applied to full fine-tuning: **EWC** (Kirkpatrick et al. 2017),
//! **replay** (Lopez-Paz & Ranzato 2017), and **knowledge distillation**
//! against the pre-update model (Buzzega et al. 2020).
//!
//! These are not rows in the paper's tables, but they are the natural
//! yardstick for its claim that the infuser mechanism beats generic
//! mitigation at *intra-task* forgetting; the ablation benches exercise them.

use std::collections::HashMap;

use infuserki_nn::layers::Module;
use infuserki_nn::optim::{AdamW, AdamWConfig};
use infuserki_nn::{compute_batch_grads, LmSample, NoHook, Trainable, TransformerLm};
use infuserki_tensor::{kernels, Gradients, Matrix, NodeId, Param, ParamId, Tape};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Elastic Weight Consolidation state: the anchor parameters θ* and the
/// diagonal Fisher information estimated on retained-knowledge samples.
pub struct EwcPenalty {
    anchor: HashMap<ParamId, Matrix>,
    fisher: HashMap<ParamId, Matrix>,
    /// Penalty strength λ.
    pub lambda: f32,
}

impl EwcPenalty {
    /// Estimates the diagonal Fisher on `known_samples` (squared gradients of
    /// the LM loss, averaged) and anchors the current parameters.
    pub fn estimate(model: &TransformerLm, known_samples: &[LmSample], lambda: f32) -> Self {
        struct Probe<'a>(&'a TransformerLm);
        impl Trainable for Probe<'_> {
            type Sample = LmSample;
            fn loss(&self, s: &LmSample, tape: &mut Tape) -> NodeId {
                self.0.lm_loss(&s.tokens, &s.targets, &NoHook, tape)
            }
            fn visit_trainable(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
        }
        let probe = Probe(model);
        let indices: Vec<usize> = (0..known_samples.len()).collect();
        let mut fisher: HashMap<ParamId, Matrix> = HashMap::new();
        for chunk in indices.chunks(8) {
            let (_, grads) = compute_batch_grads(&probe, known_samples, chunk);
            for (id, g) in grads.iter() {
                let sq = g.map(|v| v * v);
                match fisher.get_mut(id) {
                    Some(acc) => acc.add_assign(&sq),
                    None => {
                        fisher.insert(*id, sq);
                    }
                }
            }
        }
        let n = known_samples.len().max(1) as f32;
        for f in fisher.values_mut() {
            f.scale_assign(1.0 / n);
        }
        let mut anchor = HashMap::new();
        model.visit(&mut |p| {
            anchor.insert(p.id(), p.data().clone());
        });
        EwcPenalty {
            anchor,
            fisher,
            lambda,
        }
    }

    /// Adds the analytic EWC gradient `λ F (θ − θ*)` for every parameter to
    /// `grads` (the quadratic penalty differentiates outside the tape).
    pub fn add_penalty_grads(&self, model: &TransformerLm, grads: &mut Gradients) {
        model.visit(&mut |p| {
            let (Some(anchor), Some(fisher)) = (self.anchor.get(&p.id()), self.fisher.get(&p.id()))
            else {
                return;
            };
            let mut delta = p.data().clone();
            for ((d, &a), &f) in delta
                .data_mut()
                .iter_mut()
                .zip(anchor.data())
                .zip(fisher.data())
            {
                *d = self.lambda * f * (*d - a);
            }
            grads.add(p.id(), delta);
        });
    }

    /// The current penalty value `λ/2 Σ F (θ − θ*)²` (for logging).
    pub fn penalty_value(&self, model: &TransformerLm) -> f32 {
        let mut total = 0.0;
        model.visit(&mut |p| {
            let (Some(anchor), Some(fisher)) = (self.anchor.get(&p.id()), self.fisher.get(&p.id()))
            else {
                return;
            };
            for ((&v, &a), &f) in p.data().data().iter().zip(anchor.data()).zip(fisher.data()) {
                total += f * (v - a) * (v - a);
            }
        });
        0.5 * self.lambda * total
    }
}

/// Full fine-tuning with the EWC penalty. Returns per-epoch mean task losses.
#[allow(clippy::too_many_arguments)]
pub fn train_full_ft_ewc(
    model: &mut TransformerLm,
    new_samples: &[LmSample],
    known_samples: &[LmSample],
    lambda: f32,
    epochs: usize,
    lr: f32,
    batch: usize,
    seed: u64,
) -> Vec<f32> {
    let penalty = EwcPenalty::estimate(model, known_samples, lambda);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut opt = AdamW::new(AdamWConfig {
        lr,
        ..AdamWConfig::default()
    });
    let mut losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let mut order: Vec<usize> = (0..new_samples.len()).collect();
        order.shuffle(&mut rng);
        let mut total = 0.0f32;
        for chunk in order.chunks(batch) {
            struct Probe<'a>(&'a TransformerLm);
            impl Trainable for Probe<'_> {
                type Sample = LmSample;
                fn loss(&self, s: &LmSample, tape: &mut Tape) -> NodeId {
                    self.0.lm_loss(&s.tokens, &s.targets, &NoHook, tape)
                }
                fn visit_trainable(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
            }
            let (loss_sum, mut grads) = {
                let probe = Probe(model);
                compute_batch_grads(&probe, new_samples, chunk)
            };
            grads.scale(1.0 / chunk.len() as f32);
            penalty.add_penalty_grads(model, &mut grads);
            opt.step(&grads, |f| model.visit_mut(f));
            total += loss_sum;
        }
        losses.push(total / new_samples.len().max(1) as f32);
    }
    losses
}

/// Replay: full fine-tuning on the new samples plus a replayed fraction of
/// known samples each epoch.
#[allow(clippy::too_many_arguments)]
pub fn train_full_ft_replay(
    model: &mut TransformerLm,
    new_samples: &[LmSample],
    known_samples: &[LmSample],
    replay_fraction: f32,
    epochs: usize,
    lr: f32,
    batch: usize,
    seed: u64,
) -> Vec<f32> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n_replay = ((new_samples.len() as f32) * replay_fraction) as usize;
    let mut mixed: Vec<LmSample> = new_samples.to_vec();
    let mut pool = known_samples.to_vec();
    pool.shuffle(&mut rng);
    mixed.extend(pool.into_iter().take(n_replay));

    let mut wrapper = crate::fullft::FullFineTune::new(model.clone());
    let losses = wrapper.train(&mixed, epochs, lr, batch, seed);
    *model = wrapper.into_model();
    losses
}

/// Distillation against the frozen pre-update teacher: task CE on new samples
/// plus `alpha ·` cross-entropy between the student and the teacher's output
/// distribution on known prompts.
#[allow(clippy::too_many_arguments)]
pub fn train_full_ft_distill(
    model: &mut TransformerLm,
    new_samples: &[LmSample],
    known_samples: &[LmSample],
    alpha: f32,
    epochs: usize,
    lr: f32,
    batch: usize,
    seed: u64,
) -> Vec<f32> {
    let teacher = model.clone();
    // Precompute teacher distributions per known sample.
    let teacher_probs: Vec<Matrix> = known_samples
        .iter()
        .map(|s| {
            let mut tape = Tape::new();
            let logits = teacher.forward(&s.tokens, &NoHook, &mut tape);
            kernels::softmax_rows(tape.value(logits))
        })
        .collect();

    struct DistillSample {
        new_idx: Option<usize>,
        known_idx: Option<usize>,
    }
    struct DistillModel<'a> {
        model: &'a TransformerLm,
        new_samples: &'a [LmSample],
        known_samples: &'a [LmSample],
        teacher_probs: &'a [Matrix],
        alpha: f32,
    }
    impl Trainable for DistillModel<'_> {
        type Sample = DistillSample;
        fn loss(&self, s: &DistillSample, tape: &mut Tape) -> NodeId {
            match (s.new_idx, s.known_idx) {
                (Some(i), None) => {
                    let sm = &self.new_samples[i];
                    self.model.lm_loss(&sm.tokens, &sm.targets, &NoHook, tape)
                }
                (None, Some(i)) => {
                    // Soft cross-entropy: −Σ p_teacher · log_softmax(student),
                    // averaged over positions, scaled by alpha.
                    let sm = &self.known_samples[i];
                    let logits = self.model.forward(&sm.tokens, &NoHook, tape);
                    let logp = tape.log_softmax(logits);
                    let p = tape.leaf(self.teacher_probs[i].clone());
                    let prod = tape.mul(p, logp);
                    let row_mean = tape.mean_rows(prod); // [1, V]
                    let (rows, cols) = {
                        let v = tape.value(row_mean);
                        v.shape()
                    };
                    debug_assert_eq!(rows, 1);
                    let ones = tape.leaf(Matrix::from_vec(cols, 1, vec![1.0; cols]));
                    let summed = tape.matmul(row_mean, ones); // [1,1]
                    tape.scale(summed, -self.alpha)
                }
                _ => unreachable!("distill sample must reference exactly one side"),
            }
        }
        fn visit_trainable(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
    }

    let mut samples: Vec<DistillSample> = (0..new_samples.len())
        .map(|i| DistillSample {
            new_idx: Some(i),
            known_idx: None,
        })
        .collect();
    samples.extend((0..known_samples.len()).map(|i| DistillSample {
        new_idx: None,
        known_idx: Some(i),
    }));

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut opt = AdamW::new(AdamWConfig {
        lr,
        ..AdamWConfig::default()
    });
    let mut losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let mut order: Vec<usize> = (0..samples.len()).collect();
        order.shuffle(&mut rng);
        let mut total = 0.0f32;
        for chunk in order.chunks(batch) {
            let (loss_sum, mut grads) = {
                let dm = DistillModel {
                    model,
                    new_samples,
                    known_samples,
                    teacher_probs: &teacher_probs,
                    alpha,
                };
                compute_batch_grads(&dm, &samples, chunk)
            };
            grads.scale(1.0 / chunk.len() as f32);
            opt.step(&grads, |f| model.visit_mut(f));
            total += loss_sum;
        }
        losses.push(total / samples.len().max(1) as f32);
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_nn::ModelConfig;

    fn model() -> TransformerLm {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        TransformerLm::new(ModelConfig::tiny(24), &mut rng)
    }

    fn samples(prompt: usize, answer: usize) -> Vec<LmSample> {
        vec![LmSample::from_completion(&[prompt], &[answer]); 3]
    }

    #[test]
    fn fisher_is_nonnegative_and_covers_params() {
        let m = model();
        let known = samples(1, 2);
        let ewc = EwcPenalty::estimate(&m, &known, 1.0);
        assert!(!ewc.fisher.is_empty());
        for f in ewc.fisher.values() {
            assert!(f.data().iter().all(|&v| v >= 0.0));
        }
        // At the anchor, the penalty is zero.
        assert_eq!(ewc.penalty_value(&m), 0.0);
    }

    #[test]
    fn penalty_grows_as_params_move() {
        let mut m = model();
        let known = samples(1, 2);
        let ewc = EwcPenalty::estimate(&m, &known, 1.0);
        train_full_ft_ewc(&mut m, &samples(3, 4), &known, 0.0, 3, 5e-3, 2, 0);
        assert!(ewc.penalty_value(&m) > 0.0);
    }

    #[test]
    fn ewc_training_reduces_task_loss() {
        let mut m = model();
        let losses = train_full_ft_ewc(&mut m, &samples(3, 4), &samples(1, 2), 10.0, 8, 5e-3, 3, 0);
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn replay_mixes_and_trains() {
        let mut m = model();
        let losses =
            train_full_ft_replay(&mut m, &samples(3, 4), &samples(1, 2), 0.5, 4, 5e-3, 3, 0);
        assert_eq!(losses.len(), 4);
        assert!(losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn distill_keeps_student_near_teacher_on_known() {
        let mut student = model();
        let teacher = student.clone();
        let known = samples(1, 2);
        let new = samples(3, 4);
        train_full_ft_distill(&mut student, &new, &known, 5.0, 6, 5e-3, 3, 0);
        // Student should still be close to the teacher on the known prompt
        // (closer than a plain fine-tune of the same budget).
        let mut plain = teacher.clone();
        let mut ft = crate::fullft::FullFineTune::new(plain.clone());
        ft.train(&new, 6, 5e-3, 3, 0);
        plain = ft.into_model();

        let dist = |m: &TransformerLm| {
            let mut t1 = Tape::new();
            let mut t2 = Tape::new();
            let a = teacher.forward(&[1], &NoHook, &mut t1);
            let b = m.forward(&[1], &NoHook, &mut t2);
            t1.value(a)
                .data()
                .iter()
                .zip(t2.value(b).data())
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
        };
        assert!(
            dist(&student) <= dist(&plain) * 1.5,
            "distilled student drifted more than plain FT: {} vs {}",
            dist(&student),
            dist(&plain)
        );
    }
}
