//! Direct full fine-tuning — every base parameter trains.
//!
//! Not a paper baseline table entry, but required for Fig. 1's middle panel
//! ("Fine-Tuned LLM"), which contrasts the representation drift of naive
//! fine-tuning against InfuserKI's locality.

use infuserki_nn::layers::Module;
use infuserki_nn::optim::{AdamW, AdamWConfig};
use infuserki_nn::{train_epoch, LmSample, NoHook, Trainable, TransformerLm};
use infuserki_tensor::{NodeId, Param, Tape};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A fully trainable copy of the base model.
pub struct FullFineTune {
    model: TransformerLm,
}

impl FullFineTune {
    /// Takes ownership of a model copy to fine-tune.
    pub fn new(model: TransformerLm) -> Self {
        FullFineTune { model }
    }

    /// The fine-tuned model.
    pub fn model(&self) -> &TransformerLm {
        &self.model
    }

    /// Consumes the wrapper, returning the fine-tuned model.
    pub fn into_model(self) -> TransformerLm {
        self.model
    }

    /// Trains on QA samples; returns per-epoch mean losses.
    pub fn train(
        &mut self,
        samples: &[LmSample],
        epochs: usize,
        lr: f32,
        batch: usize,
        seed: u64,
    ) -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut opt = AdamW::new(AdamWConfig {
            lr,
            ..AdamWConfig::default()
        });
        (0..epochs)
            .map(|_| train_epoch(self, samples, batch, &mut opt, &mut rng))
            .collect()
    }
}

impl Trainable for FullFineTune {
    type Sample = LmSample;
    fn loss(&self, s: &LmSample, tape: &mut Tape) -> NodeId {
        self.model.lm_loss(&s.tokens, &s.targets, &NoHook, tape)
    }
    fn visit_trainable(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.model.visit_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_nn::ModelConfig;

    #[test]
    fn full_ft_changes_the_model() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let base = TransformerLm::new(ModelConfig::tiny(25), &mut rng);
        let mut ft = FullFineTune::new(base.clone());
        let samples = vec![LmSample::from_completion(&[3, 4], &[5]); 4];
        let losses = ft.train(&samples, 8, 3e-3, 4, 0);
        assert!(losses.last().unwrap() < losses.first().unwrap());
        // Fine-tuned logits differ from the frozen base.
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let a = base.forward(&[3, 4], &NoHook, &mut t1);
        let b = ft.model().forward(&[3, 4], &NoHook, &mut t2);
        assert_ne!(t1.value(a).data(), t2.value(b).data());
    }
}
