//! Prefix Tuning (Li & Liang 2021): learnable key/value rows prepended to
//! every attention layer; base weights frozen.

use infuserki_nn::{LayerHook, TransformerLm};
use infuserki_tensor::{init, NodeId, Param, Tape};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::common::VisitTrainable;

/// Prefix-tuning hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PrefixConfig {
    /// Number of prefix positions per layer.
    pub prefix_len: usize,
    /// Init seed.
    pub seed: u64,
}

impl Default for PrefixConfig {
    fn default() -> Self {
        PrefixConfig {
            prefix_len: 8,
            seed: 0x9ef1,
        }
    }
}

/// Per-layer learnable prefix key/value rows `[p, d_model]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixTuning {
    keys: Vec<Param>,
    values: Vec<Param>,
}

impl PrefixTuning {
    /// Builds prefixes for every layer of `base`.
    pub fn new(cfg: PrefixConfig, base: &TransformerLm) -> Self {
        let d = base.config().d_model;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let keys = (0..base.n_layers())
            .map(|l| {
                Param::new(
                    format!("prefix{l}.k"),
                    init::normal(cfg.prefix_len, d, 0.02, &mut rng),
                )
            })
            .collect();
        let values = (0..base.n_layers())
            .map(|l| {
                Param::new(
                    format!("prefix{l}.v"),
                    // Small-normal value rows: zero-init creates a saddle
                    // (dL/dP_k ∝ P_v), stalling training; real prefix-tuning
                    // implementations likewise init from nonzero activations.
                    init::normal(cfg.prefix_len, d, 0.02, &mut rng),
                )
            })
            .collect();
        PrefixTuning { keys, values }
    }

    /// Prefix length.
    pub fn prefix_len(&self) -> usize {
        self.keys.first().map(|k| k.data().rows()).unwrap_or(0)
    }
}

impl LayerHook for PrefixTuning {
    fn prefix_kv(&self, layer: usize, tape: &mut Tape) -> Option<(NodeId, NodeId)> {
        let k = tape.param(&self.keys[layer]);
        let v = tape.param(&self.values[layer]);
        Some((k, v))
    }
}

impl VisitTrainable for PrefixTuning {
    fn visit_trainable_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in self.keys.iter_mut().chain(self.values.iter_mut()) {
            f(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::train_patched;
    use infuserki_nn::{LmSample, ModelConfig, NoHook};

    fn base() -> TransformerLm {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        TransformerLm::new(ModelConfig::tiny(30), &mut rng)
    }

    #[test]
    fn fresh_prefix_with_zero_values_changes_little() {
        // Zero V rows mean prefix positions contribute zero vectors weighted
        // by their attention mass — outputs shrink but stay finite.
        let b = base();
        let m = PrefixTuning::new(PrefixConfig::default(), &b);
        let mut t = Tape::new();
        let y = b.forward(&[1, 2, 3], &m, &mut t);
        assert_eq!(t.value(y).shape(), (3, 30));
        assert!(t.value(y).all_finite());
    }

    #[test]
    fn param_count() {
        let b = base();
        let mut m = PrefixTuning::new(
            PrefixConfig {
                prefix_len: 4,
                ..PrefixConfig::default()
            },
            &b,
        );
        assert_eq!(m.prefix_len(), 4);
        let expect = b.n_layers() * 2 * 4 * b.config().d_model;
        assert_eq!(m.trainable_params(), expect);
    }

    #[test]
    fn prefix_learns_a_completion() {
        let b = base();
        let mut m = PrefixTuning::new(PrefixConfig::default(), &b);
        let samples = vec![LmSample::from_completion(&[5, 6], &[7]); 4];
        let losses = train_patched(&b, &mut m, &samples, 30, 5e-3, 4, 0);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "prefix tuning should reduce loss: {losses:?}"
        );
    }

    #[test]
    fn causality_preserved_with_prefix() {
        // First token's output must not depend on later tokens even with a
        // prefix (offset mask correctness).
        let b = base();
        let m = PrefixTuning::new(PrefixConfig::default(), &b);
        let run = |last: usize| {
            let mut t = Tape::new();
            let y = b.forward(&[1, 2, last], &m, &mut t);
            t.value(y).row(0).to_vec()
        };
        assert_eq!(run(5), run(9));
        // Sanity: unhooked model agrees on that invariant too.
        let mut t = Tape::new();
        let _ = b.forward(&[1, 2, 3], &NoHook, &mut t);
    }
}
