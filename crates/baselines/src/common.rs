//! Shared training plumbing for hook-based baselines.

use infuserki_nn::optim::{AdamW, AdamWConfig};
use infuserki_nn::{train_epoch, LayerHook, LmSample, Trainable, TransformerLm};
use infuserki_tensor::{NodeId, Param, Tape};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A method whose trainable parameters can be visited by the optimizer.
pub trait VisitTrainable {
    /// Visits every trainable parameter.
    fn visit_trainable_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Total trainable scalar count.
    fn trainable_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_trainable_params(&mut |p| n += p.numel());
        n
    }
}

struct Patched<'a, M: LayerHook + VisitTrainable> {
    base: &'a TransformerLm,
    method: &'a mut M,
}

impl<M: LayerHook + VisitTrainable + Sync> Trainable for Patched<'_, M> {
    type Sample = LmSample;
    fn loss(&self, s: &LmSample, tape: &mut Tape) -> NodeId {
        self.base.lm_loss(&s.tokens, &s.targets, self.method, tape)
    }
    fn visit_trainable(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.method.visit_trainable_params(f);
    }
}

/// Trains a hook-based method on QA samples with AdamW (the paper's common
/// setup for all baselines). Returns the mean loss per epoch.
pub fn train_patched<M: LayerHook + VisitTrainable + Sync>(
    base: &TransformerLm,
    method: &mut M,
    samples: &[LmSample],
    epochs: usize,
    lr: f32,
    batch: usize,
    seed: u64,
) -> Vec<f32> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut opt = AdamW::new(AdamWConfig {
        lr,
        ..AdamWConfig::default()
    });
    let mut patched = Patched { base, method };
    (0..epochs)
        .map(|_| train_epoch(&mut patched, samples, batch, &mut opt, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_nn::{ModelConfig, NoHook};

    struct NullMethod;
    impl LayerHook for NullMethod {}
    impl VisitTrainable for NullMethod {
        fn visit_trainable_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
    }

    #[test]
    fn train_patched_runs_with_no_trainables() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let base = TransformerLm::new(ModelConfig::tiny(20), &mut rng);
        let samples = vec![LmSample::from_completion(&[1, 2], &[3])];
        let mut m = NullMethod;
        let losses = train_patched(&base, &mut m, &samples, 2, 1e-3, 2, 0);
        assert_eq!(losses.len(), 2);
        // Nothing trainable: loss unchanged across epochs.
        assert!((losses[0] - losses[1]).abs() < 1e-5);
        // And matches the unpatched model's loss.
        let mut t = Tape::new();
        let l = base.lm_loss(&samples[0].tokens, &samples[0].targets, &NoHook, &mut t);
        assert!((t.value(l).scalar_value() - losses[0]).abs() < 1e-5);
    }

    #[test]
    fn trainable_params_counts() {
        let mut m = NullMethod;
        assert_eq!(m.trainable_params(), 0);
    }
}
