//! T-Patcher (Huang et al. 2023): a few trainable "patch" neurons appended
//! to the **last** FFN layer — one-mistake-one-neuron model editing.

use infuserki_nn::layers::{Linear, Module};
use infuserki_nn::{ForwardTrace, LayerHook, TransformerLm};
use infuserki_tensor::{NodeId, Param, Tape};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::common::VisitTrainable;

/// T-Patcher hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TPatcherConfig {
    /// Number of patch neurons appended to the last FFN layer.
    pub patches: usize,
    /// Init seed.
    pub seed: u64,
}

impl Default for TPatcherConfig {
    fn default() -> Self {
        TPatcherConfig {
            patches: 32,
            seed: 0x7a7c,
        }
    }
}

/// Patch neurons on the final FFN: `Δ = relu(x K + b) V`, keyed on the FFN
/// input so each neuron fires for its trigger pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TPatcher {
    last_layer: usize,
    keys: Linear,
    values: Linear,
}

impl TPatcher {
    /// Builds the patch head for `base`'s last layer.
    pub fn new(cfg: TPatcherConfig, base: &TransformerLm) -> Self {
        let d = base.config().d_model;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        TPatcher {
            last_layer: base.n_layers() - 1,
            keys: Linear::new("tpatcher.k", d, cfg.patches, 0.02, true, &mut rng),
            values: Linear::zeros("tpatcher.v", cfg.patches, d, false),
        }
    }

    /// The patched layer (always the last).
    pub fn layer(&self) -> usize {
        self.last_layer
    }
}

impl LayerHook for TPatcher {
    fn ffn_output(
        &self,
        layer: usize,
        ffn_in: NodeId,
        ffn_out: NodeId,
        tape: &mut Tape,
        _trace: &mut ForwardTrace,
    ) -> NodeId {
        if layer != self.last_layer {
            return ffn_out;
        }
        let k = self.keys.forward(ffn_in, tape);
        let a = tape.relu(k);
        let delta = self.values.forward(a, tape);
        tape.add(ffn_out, delta)
    }
}

impl VisitTrainable for TPatcher {
    fn visit_trainable_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.keys.visit_mut(f);
        self.values.visit_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::train_patched;
    use infuserki_nn::{LmSample, ModelConfig, NoHook};

    fn base() -> TransformerLm {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        TransformerLm::new(ModelConfig::tiny(30), &mut rng)
    }

    #[test]
    fn fresh_patcher_is_identity() {
        let b = base();
        let m = TPatcher::new(TPatcherConfig::default(), &b);
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let plain = b.forward(&[1, 2], &NoHook, &mut t1);
        let hooked = b.forward(&[1, 2], &m, &mut t2);
        assert_eq!(t1.value(plain).data(), t2.value(hooked).data());
        assert_eq!(m.layer(), b.n_layers() - 1);
    }

    #[test]
    fn patcher_learns_a_completion() {
        let b = base();
        let mut m = TPatcher::new(TPatcherConfig::default(), &b);
        let samples = vec![LmSample::from_completion(&[5, 6], &[7]); 4];
        let losses = train_patched(&b, &mut m, &samples, 25, 5e-3, 4, 0);
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn param_count_scales_with_patches() {
        let b = base();
        let mut small = TPatcher::new(
            TPatcherConfig {
                patches: 4,
                seed: 0,
            },
            &b,
        );
        let mut large = TPatcher::new(
            TPatcherConfig {
                patches: 16,
                seed: 0,
            },
            &b,
        );
        assert!(large.trainable_params() > small.trainable_params());
    }
}
