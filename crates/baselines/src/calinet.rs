//! CALINET (Dong et al. 2022): a calibration memory — extra FFN-style slots —
//! added to **one specific FFN layer** in the top region of the transformer,
//! trained to correct false factual predictions while the base stays frozen.

use infuserki_nn::layers::{Linear, Module};
use infuserki_nn::{ForwardTrace, LayerHook, TransformerLm};
use infuserki_tensor::{NodeId, Param, Tape};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::common::VisitTrainable;

/// CALINET hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CalinetConfig {
    /// Which FFN layer hosts the calibration memory (0-based). The paper
    /// places it in the top region; [`CalinetConfig::for_model`] uses ¾ depth.
    pub layer: usize,
    /// Number of calibration memory slots.
    pub slots: usize,
    /// Init seed.
    pub seed: u64,
}

impl CalinetConfig {
    /// Default placement for a model of `n_layers`: the ¾-depth FFN layer.
    pub fn for_model(n_layers: usize) -> Self {
        CalinetConfig {
            layer: (3 * n_layers / 4).min(n_layers - 1),
            slots: 48,
            seed: 0xca11,
        }
    }
}

/// The calibration memory: `ΔFFN(x) = gelu(x K) V`, added to the host FFN's
/// output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Calinet {
    cfg: CalinetConfig,
    keys: Linear,
    values: Linear,
}

impl Calinet {
    /// Builds the memory for `base`.
    pub fn new(cfg: CalinetConfig, base: &TransformerLm) -> Self {
        assert!(cfg.layer < base.n_layers(), "layer out of range");
        let d = base.config().d_model;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        Calinet {
            keys: Linear::new("calinet.k", d, cfg.slots, 0.02, true, &mut rng),
            values: Linear::zeros("calinet.v", cfg.slots, d, false),
            cfg,
        }
    }

    /// Host layer index.
    pub fn layer(&self) -> usize {
        self.cfg.layer
    }
}

impl LayerHook for Calinet {
    fn ffn_output(
        &self,
        layer: usize,
        ffn_in: NodeId,
        ffn_out: NodeId,
        tape: &mut Tape,
        _trace: &mut ForwardTrace,
    ) -> NodeId {
        if layer != self.cfg.layer {
            return ffn_out;
        }
        let k = self.keys.forward(ffn_in, tape);
        let a = tape.gelu(k);
        let delta = self.values.forward(a, tape);
        tape.add(ffn_out, delta)
    }
}

impl VisitTrainable for Calinet {
    fn visit_trainable_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.keys.visit_mut(f);
        self.values.visit_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::train_patched;
    use infuserki_nn::{LmSample, ModelConfig, NoHook};

    fn base() -> TransformerLm {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        TransformerLm::new(ModelConfig::tiny(30), &mut rng)
    }

    #[test]
    fn fresh_calinet_is_identity() {
        let b = base();
        let m = Calinet::new(CalinetConfig::for_model(b.n_layers()), &b);
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let plain = b.forward(&[1, 2], &NoHook, &mut t1);
        let hooked = b.forward(&[1, 2], &m, &mut t2);
        assert_eq!(t1.value(plain).data(), t2.value(hooked).data());
    }

    #[test]
    fn default_placement_is_top_region() {
        let cfg = CalinetConfig::for_model(12);
        assert_eq!(cfg.layer, 9);
        let tiny = CalinetConfig::for_model(2);
        assert!(tiny.layer < 2);
    }

    #[test]
    fn calinet_learns_a_completion() {
        let b = base();
        let mut m = Calinet::new(CalinetConfig::for_model(b.n_layers()), &b);
        let samples = vec![LmSample::from_completion(&[5, 6], &[7]); 4];
        let losses = train_patched(&b, &mut m, &samples, 25, 5e-3, 4, 0);
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    #[should_panic(expected = "layer out of range")]
    fn rejects_bad_layer() {
        let b = base();
        Calinet::new(
            CalinetConfig {
                layer: 99,
                slots: 4,
                seed: 0,
            },
            &b,
        );
    }
}
