//! LoRA (Hu et al. 2021): trainable low-rank deltas on the attention query
//! and value projections, frozen base weights.

use infuserki_nn::layers::{Linear, Module};
use infuserki_nn::{LayerHook, TransformerLm};
use infuserki_tensor::{NodeId, Param, Tape};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::common::VisitTrainable;

/// LoRA hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LoraConfig {
    /// Rank `r` of the update matrices.
    pub rank: usize,
    /// Scaling `α`; the delta is `(α / r) · x A B`.
    pub alpha: f32,
    /// Init seed.
    pub seed: u64,
}

impl Default for LoraConfig {
    fn default() -> Self {
        LoraConfig {
            rank: 8,
            alpha: 16.0,
            seed: 0x10ea,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct LoraPair {
    a: Linear,
    b: Linear,
}

impl LoraPair {
    fn new(name: &str, d: usize, rank: usize, rng: &mut impl rand::Rng) -> Self {
        LoraPair {
            // A ~ N(0, σ²), B = 0 — standard LoRA init: delta starts at zero.
            a: Linear::new(&format!("{name}.A"), d, rank, 0.02, false, rng),
            b: Linear::zeros(&format!("{name}.B"), rank, d, false),
        }
    }

    fn delta(&self, x: NodeId, scale: f32, tape: &mut Tape) -> NodeId {
        let low = self.a.forward(x, tape);
        let up = self.b.forward(low, tape);
        tape.scale(up, scale)
    }
}

/// Low-rank adaptation of every layer's Wq and Wv.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoraMethod {
    cfg: LoraConfig,
    q: Vec<LoraPair>,
    v: Vec<LoraPair>,
}

impl LoraMethod {
    /// Builds LoRA modules for every layer of `base`.
    pub fn new(cfg: LoraConfig, base: &TransformerLm) -> Self {
        let d = base.config().d_model;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let q = (0..base.n_layers())
            .map(|l| LoraPair::new(&format!("lora{l}.q"), d, cfg.rank, &mut rng))
            .collect();
        let v = (0..base.n_layers())
            .map(|l| LoraPair::new(&format!("lora{l}.v"), d, cfg.rank, &mut rng))
            .collect();
        LoraMethod { cfg, q, v }
    }

    fn scale(&self) -> f32 {
        self.cfg.alpha / self.cfg.rank as f32
    }
}

impl LayerHook for LoraMethod {
    fn attn_q_delta(&self, layer: usize, x: NodeId, tape: &mut Tape) -> Option<NodeId> {
        Some(self.q[layer].delta(x, self.scale(), tape))
    }

    fn attn_v_delta(&self, layer: usize, x: NodeId, tape: &mut Tape) -> Option<NodeId> {
        Some(self.v[layer].delta(x, self.scale(), tape))
    }
}

impl VisitTrainable for LoraMethod {
    fn visit_trainable_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in self.q.iter_mut().chain(self.v.iter_mut()) {
            p.a.visit_mut(f);
            p.b.visit_mut(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::train_patched;
    use infuserki_nn::{LmSample, ModelConfig, NoHook};

    fn base() -> TransformerLm {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        TransformerLm::new(ModelConfig::tiny(30), &mut rng)
    }

    #[test]
    fn fresh_lora_is_identity() {
        let b = base();
        let m = LoraMethod::new(LoraConfig::default(), &b);
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let plain = b.forward(&[1, 2, 3], &NoHook, &mut t1);
        let hooked = b.forward(&[1, 2, 3], &m, &mut t2);
        assert_eq!(t1.value(plain).data(), t2.value(hooked).data());
    }

    #[test]
    fn lora_param_count() {
        let b = base();
        let mut m = LoraMethod::new(
            LoraConfig {
                rank: 4,
                ..LoraConfig::default()
            },
            &b,
        );
        let d = b.config().d_model;
        let expect = b.n_layers() * 2 * (d * 4 + 4 * d);
        assert_eq!(m.trainable_params(), expect);
    }

    #[test]
    fn lora_learns_a_completion() {
        let b = base();
        let mut m = LoraMethod::new(LoraConfig::default(), &b);
        let samples = vec![LmSample::from_completion(&[5, 6], &[7]); 4];
        let losses = train_patched(&b, &mut m, &samples, 40, 1e-2, 4, 0);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "LoRA should reduce loss: {losses:?}"
        );
    }
}
