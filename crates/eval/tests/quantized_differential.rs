//! End-to-end differential test for int8 frozen-base inference: a tiny
//! pre-trained world evaluated twice — once with the f32 base, once with the
//! same base reloaded through `load_quantized` — must agree within the
//! documented tolerances on raw logits, teacher-forced decode logits, and
//! option scores, and must give **identical MCQ decisions** wherever the f32
//! model's decision has any margin (the NR regression gate: quantization must
//! not change what the base model is judged to know).
//!
//! Tolerances: per-weight int8 error is relatively tiny
//! (`quant::max_abs_error` ≈ absmax/254 per block), but it compounds through
//! 4 layers of matmuls, layernorms, and a softmax. The bounds below are
//! empirical for the tiny world config with ~4× headroom; they are meant to
//! catch wiring bugs (wrong scale, transposed block, double-dequant), not to
//! certify a tight analytic error bound.

use infuserki_eval::world::{build_world_in, Domain, WorldConfig};
use infuserki_nn::sampler::{greedy_decode, score_options};
use infuserki_nn::{NoHook, TransformerLm};
use infuserki_tensor::QuantSpec;
use infuserki_text::{format_mcq_prompt, tokenizer::EOS, Tokenizer};

/// Max |logit_f32 - logit_int8| over any scored position (empirical ~4×).
const LOGIT_TOL: f32 = 0.5;
/// Max |score_f32 - score_int8| for a summed option log-likelihood.
const SCORE_TOL: f32 = 1.0;
/// An f32 decision (argmax) with at least this top-2 margin must survive
/// quantization unchanged.
const MARGIN_GUARD: f32 = 2.0 * SCORE_TOL;

fn encode_options(tokenizer: &Tokenizer, mcq: &infuserki_text::Mcq) -> Vec<Vec<usize>> {
    mcq.options.iter().map(|o| tokenizer.encode(o)).collect()
}

fn argmax(scores: &[f32]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap()
}

/// Top-1 minus top-2.
fn margin(scores: &[f32]) -> f32 {
    let mut s = scores.to_vec();
    s.sort_by(|a, b| b.total_cmp(a));
    s[0] - s[1]
}

#[test]
fn int8_base_matches_f32_base_end_to_end() {
    let dir = std::env::temp_dir().join(format!("infuserki_quant_diff_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let world = build_world_in(&WorldConfig::tiny(Domain::Umls, 977), &dir);
    let f32_model = &world.base;

    // Round-trip the frozen base through disk and quantize at load — the
    // deployment path, not an in-memory shortcut.
    let path = dir.join("base_for_quant.json");
    f32_model.save(&path).expect("save base");
    let q_model = TransformerLm::load_quantized(&path, QuantSpec::default()).expect("load int8");
    assert!(q_model.is_quantized(), "load_quantized must install blocks");
    assert!(!f32_model.is_quantized(), "f32 base must stay dense");

    let tokenizer = &world.tokenizer;
    let mcqs = world.bank.template(0);
    assert!(!mcqs.is_empty(), "tiny world must have detection MCQs");

    // --- Raw logits: prompt prefill, last position -----------------------
    let mut max_logit_diff = 0.0f32;
    for mcq in mcqs.iter().take(8) {
        let prompt = tokenizer.encode_strict(&format_mcq_prompt(mcq));
        let (_, lf) = f32_model.prefill(&prompt, &NoHook);
        let (_, lq) = q_model.prefill(&prompt, &NoHook);
        assert_eq!(lf.shape(), lq.shape());
        let last = lf.rows() - 1;
        for (a, b) in lf.row(last).iter().zip(lq.row(last)) {
            max_logit_diff = max_logit_diff.max((a - b).abs());
        }
    }
    assert!(
        max_logit_diff <= LOGIT_TOL,
        "prompt logits diverged: max |Δ| = {max_logit_diff} > {LOGIT_TOL}"
    );

    // --- Greedy decode: teacher-forced logit agreement + guarded token
    //     identity. The f32 stream is replayed through both models so a
    //     near-tie early token cannot cascade into incomparable suffixes. ---
    let mut max_forced_diff = 0.0f32;
    for mcq in mcqs.iter().take(4) {
        let prompt = tokenizer.encode_strict(&format_mcq_prompt(mcq));
        let stream = greedy_decode(f32_model, &NoHook, &prompt, 8, Some(EOS));
        let forced: Vec<usize> = prompt.iter().chain(stream.iter()).copied().collect();
        let (_, lf) = f32_model.prefill(&forced, &NoHook);
        let (_, lq) = q_model.prefill(&forced, &NoHook);
        for r in (prompt.len() - 1)..lf.rows() {
            // Positions that produced the generated tokens.
            let (rowf, rowq) = (lf.row(r), lq.row(r));
            for (a, b) in rowf.iter().zip(rowq) {
                max_forced_diff = max_forced_diff.max((a - b).abs());
            }
            // Where f32 is decisive, int8 must pick the same token.
            let m = margin(rowf);
            if m > 2.0 * LOGIT_TOL {
                assert_eq!(
                    argmax(rowf),
                    argmax(rowq),
                    "decisive decode step changed under int8 (margin {m})"
                );
            }
        }
        let q_stream = greedy_decode(&q_model, &NoHook, &prompt, 8, Some(EOS));
        // Streams may only differ if some f32 step was within the guard.
        if stream != q_stream {
            let any_close =
                (prompt.len() - 1..lf.rows()).any(|r| margin(lf.row(r)) <= 2.0 * LOGIT_TOL);
            assert!(
                any_close,
                "greedy streams diverged with no near-tie step: {stream:?} vs {q_stream:?}"
            );
        }
    }
    assert!(
        max_forced_diff <= LOGIT_TOL,
        "teacher-forced decode logits diverged: max |Δ| = {max_forced_diff} > {LOGIT_TOL}"
    );

    // --- MCQ decisions over the full detection template (NR gate) --------
    let mut max_score_diff = 0.0f32;
    let known: std::collections::HashSet<usize> = world.pretrained_idx.iter().copied().collect();
    let (mut nr_f32, mut nr_q, mut n_known) = (0usize, 0usize, 0usize);
    for (idx, mcq) in mcqs.iter().enumerate() {
        let prompt = tokenizer.encode_strict(&format_mcq_prompt(mcq));
        let options = encode_options(tokenizer, mcq);
        let sf = score_options(f32_model, &NoHook, &prompt, &options);
        let sq = score_options(&q_model, &NoHook, &prompt, &options);
        for (a, b) in sf.iter().zip(&sq) {
            max_score_diff = max_score_diff.max((a - b).abs());
        }
        let (pf, pq) = (argmax(&sf), argmax(&sq));
        if margin(&sf) > MARGIN_GUARD {
            assert_eq!(
                pf, pq,
                "MCQ #{idx}: decisive f32 choice changed under int8 \
                 (scores f32 {sf:?} vs int8 {sq:?})"
            );
        }
        if known.contains(&idx) {
            n_known += 1;
            nr_f32 += usize::from(pf == mcq.correct);
            nr_q += usize::from(pq == mcq.correct);
        }
    }
    assert!(
        max_score_diff <= SCORE_TOL,
        "option scores diverged: max |Δ| = {max_score_diff} > {SCORE_TOL}"
    );
    assert!(n_known > 0, "known split must be non-empty");
    assert_eq!(
        nr_f32, nr_q,
        "NR regression: int8 base answers {nr_q}/{n_known} known facts, f32 answers {nr_f32}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
