//! The base-model artifact cache must be *bitwise* faithful: a world built
//! fresh and a world rebuilt through `TransformerLm::save`/`load` must agree
//! on every parameter bit. The golden-determinism suite in
//! `tests/golden_determinism.rs` relies on this — a cached rerun that loses
//! even a sign-of-zero would make "same seed, same bits" unprovable.

use infuserki_eval::world::{build_world_in, Domain, WorldConfig};
use infuserki_nn::layers::Module;

fn all_param_bits(m: &infuserki_nn::model::TransformerLm) -> Vec<(String, Vec<u32>)> {
    let mut out = Vec::new();
    m.visit(&mut |p| {
        out.push((
            p.name().to_string(),
            p.data().data().iter().map(|v| v.to_bits()).collect(),
        ));
    });
    out
}

#[test]
fn cached_base_model_is_bitwise_identical_to_fresh() {
    let dir = std::env::temp_dir().join(format!("infuserki_fidelity_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = WorldConfig::tiny(Domain::Umls, 211);

    let fresh = build_world_in(&cfg, &dir); // pretrains and saves the cache
    let cached = build_world_in(&cfg, &dir); // loads the cache

    let a = all_param_bits(&fresh.base);
    let b = all_param_bits(&cached.base);
    assert_eq!(a.len(), b.len(), "param count changed across cache reload");
    for ((name_a, bits_a), (name_b, bits_b)) in a.iter().zip(b.iter()) {
        assert_eq!(name_a, name_b, "param order changed across cache reload");
        assert_eq!(bits_a.len(), bits_b.len(), "{name_a}: shape changed");
        for (i, (x, y)) in bits_a.iter().zip(bits_b.iter()).enumerate() {
            assert_eq!(
                x,
                y,
                "{name_a}[{i}]: fresh {} vs cached {} ({:e} vs {:e})",
                x,
                y,
                f32::from_bits(*x),
                f32::from_bits(*y)
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
