//! Statistical utilities for reporting: mean ± std across seeds, bootstrap
//! confidence intervals, and a silhouette score quantifying Fig. 1's cluster
//! separation claim.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Mean and (population) standard deviation of a sample.
pub fn mean_std(values: &[f32]) -> (f32, f32) {
    if values.is_empty() {
        return (f32::NAN, f32::NAN);
    }
    let mean = values.iter().sum::<f32>() / values.len() as f32;
    let var = values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / values.len() as f32;
    (mean, var.sqrt())
}

/// Percentile-bootstrap confidence interval for the mean.
/// Returns `(lo, hi)` at the given confidence level (e.g. 0.95).
pub fn bootstrap_ci(values: &[f32], level: f32, resamples: usize, seed: u64) -> (f32, f32) {
    assert!((0.0..1.0).contains(&level), "level in (0,1)");
    assert!(!values.is_empty(), "bootstrap_ci: empty sample");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut means: Vec<f32> = (0..resamples.max(1))
        .map(|_| {
            let s: f32 = (0..values.len())
                .map(|_| values[rng.gen_range(0..values.len())])
                .sum();
            s / values.len() as f32
        })
        .collect();
    means.sort_by(f32::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((means.len() as f32) * alpha) as usize;
    let hi_idx = (((means.len() as f32) * (1.0 - alpha)) as usize).min(means.len() - 1);
    (means[lo_idx], means[hi_idx])
}

/// Mean silhouette coefficient of a 2-cluster labeling of 2-D points —
/// quantifies how separated the known/unknown clusters are in a Fig. 1 panel.
/// Returns a value in [-1, 1]; higher means cleaner separation.
pub fn silhouette_2d(points: &[(f32, f32)], labels: &[bool]) -> f32 {
    assert_eq!(points.len(), labels.len());
    let n = points.len();
    if n < 3 {
        return f32::NAN;
    }
    let dist = |a: (f32, f32), b: (f32, f32)| -> f32 {
        ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
    };
    let mut total = 0.0f32;
    let mut counted = 0usize;
    for i in 0..n {
        let mut intra = 0.0;
        let mut n_intra = 0;
        let mut inter = 0.0;
        let mut n_inter = 0;
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = dist(points[i], points[j]);
            if labels[i] == labels[j] {
                intra += d;
                n_intra += 1;
            } else {
                inter += d;
                n_inter += 1;
            }
        }
        if n_intra == 0 || n_inter == 0 {
            continue;
        }
        let a = intra / n_intra as f32;
        let b = inter / n_inter as f32;
        total += (b - a) / a.max(b).max(1e-12);
        counted += 1;
    }
    if counted == 0 {
        f32::NAN
    } else {
        total / counted as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-6);
        assert!((s - 2.0).abs() < 1e-6);
        assert!(mean_std(&[]).0.is_nan());
    }

    #[test]
    fn bootstrap_ci_contains_mean_for_tight_sample() {
        let values = vec![0.5f32; 20];
        let (lo, hi) = bootstrap_ci(&values, 0.95, 200, 1);
        assert!((lo - 0.5).abs() < 1e-6 && (hi - 0.5).abs() < 1e-6);
    }

    #[test]
    fn bootstrap_ci_widens_with_variance() {
        let tight: Vec<f32> = (0..40).map(|i| 0.5 + 0.001 * (i % 2) as f32).collect();
        let wide: Vec<f32> = (0..40)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let (tl, th) = bootstrap_ci(&tight, 0.95, 300, 2);
        let (wl, wh) = bootstrap_ci(&wide, 0.95, 300, 2);
        assert!(wh - wl > th - tl);
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let v: Vec<f32> = (0..30).map(|i| i as f32 / 30.0).collect();
        assert_eq!(bootstrap_ci(&v, 0.9, 100, 7), bootstrap_ci(&v, 0.9, 100, 7));
    }

    #[test]
    fn silhouette_separated_clusters_near_one() {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            points.push((0.0 + 0.01 * i as f32, 0.0));
            labels.push(false);
            points.push((100.0 + 0.01 * i as f32, 0.0));
            labels.push(true);
        }
        let s = silhouette_2d(&points, &labels);
        assert!(s > 0.95, "silhouette {s}");
    }

    #[test]
    fn silhouette_mixed_clusters_near_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let points: Vec<(f32, f32)> = (0..40)
            .map(|_| (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let labels: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        let s = silhouette_2d(&points, &labels);
        assert!(s.abs() < 0.3, "silhouette {s}");
    }

    #[test]
    fn silhouette_tiny_input_nan() {
        assert!(silhouette_2d(&[(0.0, 0.0), (1.0, 1.0)], &[true, false]).is_nan());
    }
}
