//! Full MCQ evaluation of one method: NR, RR, per-template F1, F1_Unseen.

use std::sync::mpsc;

use infuserki_core::dataset::McqBank;
use infuserki_core::detect::{answer_mcq_batch, MCQ_BATCH};
use infuserki_nn::{LayerHook, TransformerLm};
use infuserki_serve::{GenerateSpec, Outcome, Request, RequestKind, Scheduler, ServeConfig};
use infuserki_text::templates::{N_QA_TEMPLATES, UNSEEN_TEMPLATES};
use infuserki_text::{format_mcq_prompt, Tokenizer};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::metrics::{macro_f1, subset_accuracy, McqOutcome};

/// A full metric row for one method — the columns of Tables 1–3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodEval {
    /// Newly-learned rate (reliability): accuracy on initially unknown facts.
    pub nr: f32,
    /// Remembering rate (locality): accuracy on initially known facts.
    pub rr: f32,
    /// Macro-F1 per template (T1–T5; T1–T2 seen, T3–T5 unseen).
    pub f1_templates: [f32; N_QA_TEMPLATES],
    /// Mean F1 over the unseen templates.
    pub f1_unseen: f32,
}

impl MethodEval {
    /// Renders the row in the paper's column order.
    pub fn row(&self, name: &str) -> String {
        let fmt = |v: f32| {
            if v.is_nan() {
                "  -  ".to_string()
            } else {
                format!("{v:.2}")
            }
        };
        format!(
            "{name:<16} {} {}  {} {}  {} {} {}  {}",
            fmt(self.nr),
            fmt(self.rr),
            fmt(self.f1_templates[0]),
            fmt(self.f1_templates[1]),
            fmt(self.f1_templates[2]),
            fmt(self.f1_templates[3]),
            fmt(self.f1_templates[4]),
            fmt(self.f1_unseen),
        )
    }
}

/// Answers every MCQ of one template — chunks of [`MCQ_BATCH`] questions run
/// as one ragged decode batch, and the chunks spread across the thread pool.
pub fn answer_template(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    bank: &McqBank,
    template: usize,
) -> Vec<McqOutcome> {
    bank.template(template)
        .par_chunks(MCQ_BATCH)
        .map(|chunk| {
            answer_mcq_batch(model, hook, tokenizer, chunk)
                .into_iter()
                .zip(chunk)
                .map(|(pred, mcq)| McqOutcome {
                    gold: mcq.correct,
                    pred,
                })
                .collect::<Vec<McqOutcome>>()
        })
        .collect::<Vec<Vec<McqOutcome>>>()
        .concat()
}

/// Answers every MCQ of one template through the continuous-batching
/// scheduler instead of fixed [`MCQ_BATCH`] chunks: questions are enqueued
/// as greedy generate requests and the scheduler packs/retires decode lanes
/// under its KV-row budget. With one kernel thread the token streams — and
/// therefore the extracted choices — are bitwise identical to
/// [`answer_template`].
///
/// Panics if a question is rejected: admission limits small enough to turn
/// away an eval probe are a harness misconfiguration, not a model outcome.
pub fn answer_template_scheduled(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    bank: &McqBank,
    template: usize,
    cfg: ServeConfig,
) -> Vec<McqOutcome> {
    let wave = cfg.queue_capacity.max(1);
    let mut sched = Scheduler::new(model, hook, cfg).expect("serve config valid for eval");
    let mut outcomes = Vec::with_capacity(bank.template(template).len());
    // Waves of at most the queue capacity, so enqueueing never overflows.
    for chunk in bank.template(template).chunks(wave) {
        let mut rxs = Vec::with_capacity(chunk.len());
        for (id, mcq) in chunk.iter().enumerate() {
            let prompt = tokenizer.encode_strict(&format_mcq_prompt(mcq));
            let max_new = mcq
                .options
                .iter()
                .map(|o| tokenizer.encode(o).len())
                .max()
                .unwrap_or(4)
                + 2;
            let (tx, rx) = mpsc::channel();
            sched.enqueue(Request::new(
                id as u64,
                RequestKind::Generate(GenerateSpec::greedy(
                    prompt,
                    max_new,
                    Some(infuserki_text::tokenizer::EOS),
                )),
                tx,
            ));
            rxs.push(rx);
        }
        sched.run_until_idle();
        for (rx, mcq) in rxs.into_iter().zip(chunk) {
            let outcome = rx
                .try_recv()
                .expect("scheduler answers every probe before going idle")
                .outcome;
            let pred = match outcome {
                Outcome::Generated { tokens } => {
                    let text = tokenizer.decode(&tokens);
                    infuserki_text::prompts::extract_choice(&text, &mcq.options)
                }
                other => panic!("MCQ probe did not complete: {other:?}"),
            };
            outcomes.push(McqOutcome {
                gold: mcq.correct,
                pred,
            });
        }
    }
    outcomes
}

/// Evaluates a method over the bank: NR/RR on the detection template (T1),
/// macro-F1 on every template, and F1_Unseen.
///
/// `known`/`unknown` are the detection partition indices (N1+N2 / N3+N4).
pub fn evaluate_method(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    bank: &McqBank,
    known: &[usize],
    unknown: &[usize],
) -> MethodEval {
    let mut f1_templates = [0.0f32; N_QA_TEMPLATES];
    let mut nr = f32::NAN;
    let mut rr = f32::NAN;
    for (tpl, f1_slot) in f1_templates.iter_mut().enumerate() {
        let outcomes = answer_template(model, hook, tokenizer, bank, tpl);
        *f1_slot = macro_f1(&outcomes, 4);
        if tpl == 0 {
            nr = subset_accuracy(&outcomes, unknown);
            rr = subset_accuracy(&outcomes, known);
        }
    }
    let f1_unseen = UNSEEN_TEMPLATES
        .iter()
        .map(|&t| f1_templates[t])
        .sum::<f32>()
        / UNSEEN_TEMPLATES.len() as f32;
    MethodEval {
        nr,
        rr,
        f1_templates,
        f1_unseen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{build_world_in, Domain, WorldConfig};
    use infuserki_nn::NoHook;

    #[test]
    fn evaluate_untrained_world_produces_full_row() {
        let dir = std::env::temp_dir().join(format!("infuserki_eval_{}", std::process::id()));
        let w = build_world_in(&WorldConfig::tiny(Domain::MetaQa, 3), &dir);
        let known: Vec<usize> = (0..10).collect();
        let unknown: Vec<usize> = (10..40).collect();
        let eval = evaluate_method(&w.base, &NoHook, &w.tokenizer, &w.bank, &known, &unknown);
        assert!(eval.nr >= 0.0 && eval.nr <= 1.0);
        assert!(eval.rr >= 0.0 && eval.rr <= 1.0);
        for f in eval.f1_templates {
            assert!(f.is_nan() || (0.0..=1.0).contains(&f));
        }
        let row = eval.row("vanilla");
        assert!(row.starts_with("vanilla"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn scheduled_answers_match_batched_answers() {
        let dir = std::env::temp_dir().join(format!("infuserki_sched_{}", std::process::id()));
        let w = build_world_in(&WorldConfig::tiny(Domain::MetaQa, 3), &dir);
        infuserki_tensor::kernels::set_num_threads(1);
        let direct = answer_template(&w.base, &NoHook, &w.tokenizer, &w.bank, 0);
        // A deliberately tight config: chunked prefill, few lanes, waves of
        // seven — the scheduler still reproduces every choice bitwise.
        let cfg = ServeConfig {
            prefill_chunk: 8,
            max_batch: 4,
            queue_capacity: 7,
            ..ServeConfig::default()
        };
        let scheduled = answer_template_scheduled(&w.base, &NoHook, &w.tokenizer, &w.bank, 0, cfg);
        infuserki_tensor::kernels::set_num_threads(0);
        assert_eq!(direct.len(), scheduled.len());
        for (i, (d, s)) in direct.iter().zip(&scheduled).enumerate() {
            assert_eq!(d.gold, s.gold, "gold mismatch at {i}");
            assert_eq!(d.pred, s.pred, "pred mismatch at {i}");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn empty_subsets_render_as_dash() {
        let w = MethodEval {
            nr: f32::NAN,
            rr: 0.5,
            f1_templates: [0.1, 0.2, 0.3, 0.4, 0.5],
            f1_unseen: 0.4,
        };
        assert!(w.row("x").contains("-"));
    }
}
