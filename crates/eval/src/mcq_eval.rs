//! Full MCQ evaluation of one method: NR, RR, per-template F1, F1_Unseen.

use infuserki_core::dataset::McqBank;
use infuserki_core::detect::{answer_mcq_batch, MCQ_BATCH};
use infuserki_nn::{LayerHook, TransformerLm};
use infuserki_text::templates::{N_QA_TEMPLATES, UNSEEN_TEMPLATES};
use infuserki_text::Tokenizer;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::metrics::{macro_f1, subset_accuracy, McqOutcome};

/// A full metric row for one method — the columns of Tables 1–3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodEval {
    /// Newly-learned rate (reliability): accuracy on initially unknown facts.
    pub nr: f32,
    /// Remembering rate (locality): accuracy on initially known facts.
    pub rr: f32,
    /// Macro-F1 per template (T1–T5; T1–T2 seen, T3–T5 unseen).
    pub f1_templates: [f32; N_QA_TEMPLATES],
    /// Mean F1 over the unseen templates.
    pub f1_unseen: f32,
}

impl MethodEval {
    /// Renders the row in the paper's column order.
    pub fn row(&self, name: &str) -> String {
        let fmt = |v: f32| {
            if v.is_nan() {
                "  -  ".to_string()
            } else {
                format!("{v:.2}")
            }
        };
        format!(
            "{name:<16} {} {}  {} {}  {} {} {}  {}",
            fmt(self.nr),
            fmt(self.rr),
            fmt(self.f1_templates[0]),
            fmt(self.f1_templates[1]),
            fmt(self.f1_templates[2]),
            fmt(self.f1_templates[3]),
            fmt(self.f1_templates[4]),
            fmt(self.f1_unseen),
        )
    }
}

/// Answers every MCQ of one template — chunks of [`MCQ_BATCH`] questions run
/// as one ragged decode batch, and the chunks spread across the thread pool.
pub fn answer_template(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    bank: &McqBank,
    template: usize,
) -> Vec<McqOutcome> {
    bank.template(template)
        .par_chunks(MCQ_BATCH)
        .map(|chunk| {
            answer_mcq_batch(model, hook, tokenizer, chunk)
                .into_iter()
                .zip(chunk)
                .map(|(pred, mcq)| McqOutcome {
                    gold: mcq.correct,
                    pred,
                })
                .collect::<Vec<McqOutcome>>()
        })
        .collect::<Vec<Vec<McqOutcome>>>()
        .concat()
}

/// Evaluates a method over the bank: NR/RR on the detection template (T1),
/// macro-F1 on every template, and F1_Unseen.
///
/// `known`/`unknown` are the detection partition indices (N1+N2 / N3+N4).
pub fn evaluate_method(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    bank: &McqBank,
    known: &[usize],
    unknown: &[usize],
) -> MethodEval {
    let mut f1_templates = [0.0f32; N_QA_TEMPLATES];
    let mut nr = f32::NAN;
    let mut rr = f32::NAN;
    for (tpl, f1_slot) in f1_templates.iter_mut().enumerate() {
        let outcomes = answer_template(model, hook, tokenizer, bank, tpl);
        *f1_slot = macro_f1(&outcomes, 4);
        if tpl == 0 {
            nr = subset_accuracy(&outcomes, unknown);
            rr = subset_accuracy(&outcomes, known);
        }
    }
    let f1_unseen = UNSEEN_TEMPLATES
        .iter()
        .map(|&t| f1_templates[t])
        .sum::<f32>()
        / UNSEEN_TEMPLATES.len() as f32;
    MethodEval {
        nr,
        rr,
        f1_templates,
        f1_unseen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{build_world_in, Domain, WorldConfig};
    use infuserki_nn::NoHook;

    #[test]
    fn evaluate_untrained_world_produces_full_row() {
        let dir = std::env::temp_dir().join(format!("infuserki_eval_{}", std::process::id()));
        let w = build_world_in(&WorldConfig::tiny(Domain::MetaQa, 3), &dir);
        let known: Vec<usize> = (0..10).collect();
        let unknown: Vec<usize> = (10..40).collect();
        let eval = evaluate_method(&w.base, &NoHook, &w.tokenizer, &w.bank, &known, &unknown);
        assert!(eval.nr >= 0.0 && eval.nr <= 1.0);
        assert!(eval.rr >= 0.0 && eval.rr <= 1.0);
        for f in eval.f1_templates {
            assert!(f.is_nan() || (0.0..=1.0).contains(&f));
        }
        let row = eval.row("vanilla");
        assert!(row.starts_with("vanilla"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn empty_subsets_render_as_dash() {
        let w = MethodEval {
            nr: f32::NAN,
            rr: 0.5,
            f1_templates: [0.1, 0.2, 0.3, 0.4, 0.5],
            f1_unseen: 0.4,
        };
        assert!(w.row("x").contains("-"));
    }
}
