//! The experiment "world": KG + tokenizer + a base model pre-trained on a
//! designated *known* subset of the graph.
//!
//! The paper starts from LLaMa-2-7B, which already knows part of UMLS/MetaQA
//! from its pre-training. The reproduction makes that state explicit and
//! measurable: a fraction of the generated triples (statements, all five QA
//! templates, open-form QA, yes/no pairs) forms the base model's pre-training
//! corpus, so the knowledge-detection step afterwards *measures* known vs.
//! unknown exactly as the paper's §3.2 does. Pre-trained checkpoints are
//! cached on disk keyed by the config hash, so every table/figure binary
//! reuses the same base model.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;

use infuserki_core::dataset::{qa_sample, yesno_pair, McqBank};
use infuserki_kg::{synth_metaqa, synth_umls, MetaQaConfig, TripleStore, UmlsConfig};
use infuserki_nn::layers::Module;
use infuserki_nn::optim::{AdamW, AdamWConfig};
use infuserki_nn::{train_epoch, LmSample, ModelConfig, NoHook, Trainable, TransformerLm};
use infuserki_tensor::{NodeId, Param, Tape};
use infuserki_text::templates::TemplateSet;
use infuserki_text::{prompts, Tokenizer};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::downstream;

/// Which synthetic knowledge graph backs the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Medical (UMLS-style), paired with PubMedQA-style downstream.
    Umls,
    /// Movie (MetaQA-style), paired with 1-hop QA downstream.
    MetaQa,
}

/// Configuration of a reproducible experiment world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// KG domain.
    pub domain: Domain,
    /// Number of KG triplets in the experiment sample.
    pub n_triplets: usize,
    /// Master seed (KG, splits, init, shuffling).
    pub seed: u64,
    /// Fraction of triples whose facts enter base pre-training.
    pub known_fraction: f32,
    /// Hidden width of the base model.
    pub d_model: usize,
    /// Depth of the base model.
    pub n_layers: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// FFN width.
    pub d_ff: usize,
    /// Base pre-training epochs.
    pub pretrain_epochs: usize,
    /// Base pre-training learning rate.
    pub pretrain_lr: f32,
    /// Reading-comprehension drills per known fact mixed into pre-training.
    ///
    /// A drill states a *random* (head, relation, tail) pairing in a context
    /// sentence and asks the MCQ about it; because pairings are random, the
    /// only strategy that fits all drills is the find-and-copy circuit — the
    /// generic option-binding skill LLaMa brings from its own pre-training.
    pub drills_per_fact: usize,
}

impl WorldConfig {
    /// The default experiment-scale world for a domain.
    pub fn new(domain: Domain, n_triplets: usize, seed: u64) -> Self {
        WorldConfig {
            domain,
            n_triplets,
            seed,
            known_fraction: 0.45,
            d_model: 64,
            n_layers: 12,
            n_heads: 4,
            d_ff: 192,
            pretrain_epochs: 30,
            pretrain_lr: 2e-3,
            drills_per_fact: 6,
        }
    }

    /// A miniature world for unit/integration tests.
    pub fn tiny(domain: Domain, seed: u64) -> Self {
        WorldConfig {
            domain,
            n_triplets: 40,
            seed,
            known_fraction: 0.45,
            d_model: 32,
            n_layers: 4,
            n_heads: 2,
            d_ff: 64,
            pretrain_epochs: 2,
            pretrain_lr: 3e-3,
            drills_per_fact: 2,
        }
    }

    /// Stable cache key derived from every field.
    pub fn cache_key(&self) -> String {
        let json = serde_json::to_string(self).expect("config serializes");
        let mut h = DefaultHasher::new();
        json.hash(&mut h);
        format!("{:016x}", h.finish())
    }
}

/// A built world: everything an experiment needs.
pub struct World {
    /// The world's configuration.
    pub config: WorldConfig,
    /// The knowledge graph.
    pub store: TripleStore,
    /// Closed vocabulary over the whole universe.
    pub tokenizer: Tokenizer,
    /// The pre-trained frozen base model.
    pub base: TransformerLm,
    /// All MCQs (template × triple), shared by detection/training/eval.
    pub bank: McqBank,
    /// Ground-truth indices of triples included in pre-training.
    pub pretrained_idx: Vec<usize>,
}

/// Builds the closed vocabulary for a store (entities, relations' template
/// frames, prompt scaffolding, downstream phrasings).
pub fn build_vocabulary(store: &TripleStore) -> Tokenizer {
    let mut lines: Vec<String> = store.entity_names().map(str::to_string).collect();
    for r in store.relation_names() {
        lines.extend(TemplateSet::vocabulary_lines(r));
        lines.push(downstream::one_hop_question(r, "x"));
    }
    lines.extend(prompts::vocabulary_lines());
    Tokenizer::build(lines.iter().map(String::as_str))
}

struct PretrainModel(TransformerLm);

impl Trainable for PretrainModel {
    type Sample = LmSample;
    fn loss(&self, s: &LmSample, tape: &mut Tape) -> NodeId {
        self.0.lm_loss(&s.tokens, &s.targets, &NoHook, tape)
    }
    fn visit_trainable(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.0.visit_mut(f);
    }
}

/// Binary-level default for the base-model cache location: the
/// `INFUSERKI_ARTIFACTS` env var, falling back to `artifacts/`. Tests and
/// library callers that need isolation pass an explicit directory to
/// [`build_world_in`] instead — mutating the env var from concurrently
/// running tests is a process-global race.
fn artifacts_dir() -> PathBuf {
    std::env::var_os("INFUSERKI_ARTIFACTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("artifacts"))
}

/// Generates the KG for a config.
pub fn generate_store(cfg: &WorldConfig) -> TripleStore {
    match cfg.domain {
        Domain::Umls => synth_umls(&UmlsConfig::with_triplets(cfg.n_triplets, cfg.seed)),
        Domain::MetaQa => synth_metaqa(&MetaQaConfig::with_triplets(cfg.n_triplets, cfg.seed)),
    }
}

/// Builds (or loads from cache) the full world for `cfg`, caching the base
/// model under the process-wide artifacts directory (see `artifacts_dir`).
pub fn build_world(cfg: &WorldConfig) -> World {
    build_world_in(cfg, &artifacts_dir())
}

/// Builds (or loads from cache) the full world for `cfg`, caching the base
/// model under `artifacts`. Parallel callers with distinct directories never
/// interfere — unlike the env-var default, which is process-global.
pub fn build_world_in(cfg: &WorldConfig, artifacts: &std::path::Path) -> World {
    let store = generate_store(cfg);
    let tokenizer = build_vocabulary(&store);
    let triples = store.triples().to_vec();
    let bank = McqBank::build(&store, &triples, cfg.seed ^ 0xba7c);

    // Ground-truth known split.
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x5eed);
    let mut idx: Vec<usize> = (0..triples.len()).collect();
    idx.shuffle(&mut rng);
    let n_known = ((triples.len() as f32) * cfg.known_fraction) as usize;
    let mut pretrained_idx: Vec<usize> = idx.into_iter().take(n_known).collect();
    pretrained_idx.sort_unstable();

    let model_cfg = ModelConfig {
        vocab_size: tokenizer.vocab_size(),
        d_model: cfg.d_model,
        n_layers: cfg.n_layers,
        n_heads: cfg.n_heads,
        d_ff: cfg.d_ff,
        max_seq: 96,
        ..ModelConfig::default()
    };

    let cache_path = artifacts.join(format!("base_{}.json", cfg.cache_key()));
    let base = match TransformerLm::load(&cache_path) {
        Ok(model) if model.config() == &model_cfg => {
            eprintln!(
                "[world] loaded cached base model from {}",
                cache_path.display()
            );
            model
        }
        _ => {
            let model = pretrain_base(cfg, &store, &tokenizer, &bank, &pretrained_idx, model_cfg);
            if let Err(e) = model.save(&cache_path) {
                eprintln!("[world] warning: could not cache base model: {e}");
            }
            model
        }
    };

    World {
        config: cfg.clone(),
        store,
        tokenizer,
        base,
        bank,
        pretrained_idx,
    }
}

fn pretrain_base(
    cfg: &WorldConfig,
    store: &TripleStore,
    tokenizer: &Tokenizer,
    bank: &McqBank,
    pretrained_idx: &[usize],
    model_cfg: ModelConfig,
) -> TransformerLm {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xba5e);
    let mut corpus: Vec<LmSample> = Vec::new();
    for (k, &i) in pretrained_idx.iter().enumerate() {
        let triple = bank.triples()[i];
        // All five templates: the base "understands" every phrasing of known
        // facts, just as LLaMa does — templates are unseen only w.r.t. the
        // knowledge-integration fine-tuning.
        for tpl in 0..infuserki_text::templates::N_QA_TEMPLATES {
            corpus.push(qa_sample(bank.mcq(tpl, i), tokenizer));
        }
        // The knowledge statement.
        let st = TemplateSet::statement(
            store.relation_name(triple.relation),
            store.entity_name(triple.head),
            store.entity_name(triple.tail),
        );
        corpus.push(LmSample::from_sequence(&tokenizer.encode_strict(&st.text)));
        // Open-form QA (downstream phrasing).
        let q = downstream::one_hop_question(
            store.relation_name(triple.relation),
            store.entity_name(triple.head),
        );
        let mut open_completion = tokenizer.encode_strict(store.entity_name(triple.tail));
        open_completion.push(infuserki_text::tokenizer::EOS);
        corpus.push(LmSample::from_completion(
            &tokenizer.encode_strict(&format!("question : {q} answer :")),
            &open_completion,
        ));
        // Yes/no pairs for a third of the known facts.
        if k % 3 == 0 {
            corpus.extend(yesno_pair(store, triple, tokenizer, &mut rng));
        }
    }

    // Reading-comprehension drills: random facts stated in context, asked as
    // MCQs. These teach the generic find-and-copy binding circuit (see the
    // `drills_per_fact` doc) without leaking held-out knowledge — pairings
    // are random, so no consistent fact can be memorized from them.
    let n_drills = pretrained_idx.len() * cfg.drills_per_fact;
    for _ in 0..n_drills {
        if let Some(s) = drill_sample(store, tokenizer, &mut rng) {
            corpus.push(s);
        }
    }

    let mut model = PretrainModel(TransformerLm::new(model_cfg, &mut rng));
    let mut opt = AdamW::new(AdamWConfig {
        lr: cfg.pretrain_lr,
        ..AdamWConfig::default()
    });
    for epoch in 0..cfg.pretrain_epochs {
        let loss = train_epoch(&mut model, &corpus, 8, &mut opt, &mut rng);
        eprintln!(
            "[world] pretrain epoch {}/{}: loss {loss:.4} over {} samples",
            epoch + 1,
            cfg.pretrain_epochs,
            corpus.len()
        );
    }
    model.0
}

/// One reading-comprehension drill: a random (head, relation, tail) pairing
/// stated in a context sentence, then asked as an MCQ whose gold answer is
/// the stated tail. Returns `None` when a relation's pools are too thin.
fn drill_sample(
    store: &TripleStore,
    tokenizer: &Tokenizer,
    rng: &mut ChaCha8Rng,
) -> Option<LmSample> {
    use rand::Rng;
    let rels = store.relation_ids();
    let rel = rels[rng.gen_range(0..rels.len())];
    let rel_triples = store.triples_of_relation(rel);
    let tails = store.tail_pool(rel);
    if rel_triples.is_empty() || tails.len() < 4 {
        return None;
    }
    let head = rel_triples[rng.gen_range(0..rel_triples.len())].head;
    let gold = tails[rng.gen_range(0..tails.len())];
    // Three distinct distractors from the same pool.
    let mut distractors = Vec::with_capacity(3);
    let mut guard = 0;
    while distractors.len() < 3 {
        guard += 1;
        if guard > 200 {
            return None;
        }
        let d = tails[rng.gen_range(0..tails.len())];
        if d != gold && !distractors.contains(&d) {
            distractors.push(d);
        }
    }
    let correct = rng.gen_range(0..4usize);
    let mut options = distractors;
    options.insert(correct, gold);

    let rel_name = store.relation_name(rel);
    let head_name = store.entity_name(head);
    let gold_name = store.entity_name(gold);
    let tpl = rng.gen_range(0..infuserki_text::templates::N_QA_TEMPLATES);
    let statement = TemplateSet::statement(rel_name, head_name, gold_name).text;
    let question = TemplateSet::question(rel_name, head_name, tpl);
    let prompt = format!(
        "context : {statement} question : {question} options : (a) {} (b) {} (c) {} (d) {} answer :",
        store.entity_name(options[0]),
        store.entity_name(options[1]),
        store.entity_name(options[2]),
        store.entity_name(options[3]),
    );
    let completion = format!("{} {gold_name}", infuserki_text::option_token(correct));
    let mut completion_ids = tokenizer.encode_strict(&completion);
    completion_ids.push(infuserki_text::tokenizer::EOS);
    Some(LmSample::from_completion(
        &tokenizer.encode_strict(&prompt),
        &completion_ids,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_core::detect::detect_unknown;

    #[test]
    fn tiny_world_builds_and_caches() {
        let dir = std::env::temp_dir().join(format!("infuserki_world_{}", std::process::id()));
        let cfg = WorldConfig::tiny(Domain::Umls, 99);
        let w = build_world_in(&cfg, &dir);
        assert_eq!(w.store.len(), 40);
        assert!(!w.pretrained_idx.is_empty());
        assert!(w.tokenizer.vocab_size() > 50);
        // Second build loads from cache and produces identical logits.
        let w2 = build_world_in(&cfg, &dir);
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let a = w.base.forward(&[2, 3], &NoHook, &mut t1);
        let b = w2.base.forward(&[2, 3], &NoHook, &mut t2);
        assert_eq!(t1.value(a).data(), t2.value(b).data());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn pretraining_separates_known_from_unknown() {
        let dir = std::env::temp_dir().join(format!("infuserki_world_sep_{}", std::process::id()));
        let mut cfg = WorldConfig::tiny(Domain::Umls, 7);
        cfg.pretrain_epochs = 14;
        let w = build_world_in(&cfg, &dir);
        let mcqs = w.bank.template(0).to_vec();
        let det = detect_unknown(&w.base, &NoHook, &w.tokenizer, &mcqs);
        // Accuracy on pretrained facts should exceed accuracy on held-out.
        let known_set: std::collections::HashSet<_> = w.pretrained_idx.iter().collect();
        let acc = |subset: &[usize]| {
            let hits = subset.iter().filter(|i| det.known.contains(i)).count();
            hits as f32 / subset.len().max(1) as f32
        };
        let seen: Vec<usize> = (0..mcqs.len()).filter(|i| known_set.contains(i)).collect();
        let unseen: Vec<usize> = (0..mcqs.len()).filter(|i| !known_set.contains(i)).collect();
        assert!(
            acc(&seen) > acc(&unseen),
            "seen acc {} should beat unseen acc {}",
            acc(&seen),
            acc(&unseen)
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn cache_key_changes_with_config() {
        let a = WorldConfig::tiny(Domain::Umls, 1).cache_key();
        let b = WorldConfig::tiny(Domain::Umls, 2).cache_key();
        let c = WorldConfig::tiny(Domain::MetaQa, 1).cache_key();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
