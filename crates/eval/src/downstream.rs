//! Downstream tasks: PubMedQA-style yes/no QA (UMLS worlds) and
//! MetaQA-style 1-hop open-form QA (movie worlds).
//!
//! Both tasks use phrasings that never appear in knowledge-integration
//! training, so they measure whether integrated knowledge transfers across
//! question formats — the paper's "Downstream-Task F1" column.

use infuserki_kg::{Triple, TripleStore};
use infuserki_nn::{sampler, LayerHook, TransformerLm};
use infuserki_text::templates::TemplateSet;
use infuserki_text::tokenizer::EOS;
use infuserki_text::{prompts, Tokenizer};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::metrics::{token_f1, yesno_f1};

/// The open-form 1-hop phrasing — deliberately distinct from every MCQ
/// template frame.
pub fn one_hop_question(relation: &str, subject: &str) -> String {
    let rel = TemplateSet::relation_phrase(relation);
    format!("tell me the {rel} of {subject} .")
}

/// One yes/no downstream item.
#[derive(Debug, Clone)]
pub struct YesNoItem {
    /// Prompt text.
    pub prompt: String,
    /// Gold label.
    pub gold: bool,
}

/// Builds a balanced PubMedQA-style set from `triples`: each contributes a
/// true statement (yes) or a corrupted-tail statement (no), alternating.
pub fn build_yesno_items(store: &TripleStore, triples: &[Triple], seed: u64) -> Vec<YesNoItem> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut items = Vec::with_capacity(triples.len());
    for (i, t) in triples.iter().enumerate() {
        let rel = store.relation_name(t.relation);
        let subj = store.entity_name(t.head);
        let gold = i % 2 == 0;
        let obj = if gold {
            store.entity_name(t.tail).to_string()
        } else {
            let pool: Vec<_> = store
                .tail_pool(t.relation)
                .into_iter()
                .filter(|&e| e != t.tail)
                .collect();
            if pool.is_empty() {
                continue;
            }
            store
                .entity_name(pool[rng.gen_range(0..pool.len())])
                .to_string()
        };
        let q = TemplateSet::yesno_question(rel, subj, &obj);
        items.push(YesNoItem {
            prompt: prompts::format_yesno_prompt(&q),
            gold,
        });
    }
    items
}

/// Evaluates the yes/no task: binary macro-F1 over extracted answers.
pub fn eval_yesno(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    items: &[YesNoItem],
) -> f32 {
    let pairs: Vec<(bool, Option<bool>)> = items
        .par_iter()
        .map(|item| {
            let prompt = tokenizer.encode_strict(&item.prompt);
            let generated = sampler::greedy_decode(model, hook, &prompt, 2, Some(EOS));
            let text = tokenizer.decode(&generated);
            (item.gold, prompts::extract_yesno(&text))
        })
        .collect();
    yesno_f1(&pairs)
}

/// One open-form 1-hop item.
#[derive(Debug, Clone)]
pub struct OneHopItem {
    /// Prompt text (question + "answer :").
    pub prompt: String,
    /// Gold answer entity name.
    pub answer: String,
}

/// Builds 1-hop items for `triples` (every triple yields one question).
pub fn build_one_hop_items(store: &TripleStore, triples: &[Triple]) -> Vec<OneHopItem> {
    triples
        .iter()
        .map(|t| {
            let q = one_hop_question(store.relation_name(t.relation), store.entity_name(t.head));
            OneHopItem {
                prompt: format!("question : {q} answer :"),
                answer: store.entity_name(t.tail).to_string(),
            }
        })
        .collect()
}

/// Evaluates 1-hop QA: mean token-F1 of generated vs. gold answers.
pub fn eval_one_hop(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    items: &[OneHopItem],
) -> f32 {
    if items.is_empty() {
        return f32::NAN;
    }
    let total: f32 = items
        .par_iter()
        .map(|item| {
            let prompt = tokenizer.encode_strict(&item.prompt);
            let gold = tokenizer.encode_strict(&item.answer);
            let generated = sampler::greedy_decode(model, hook, &prompt, gold.len() + 2, Some(EOS));
            token_f1(&generated, &gold)
        })
        .sum();
    total / items.len() as f32
}

/// A compositional 2-hop item: "the {r2} of the {r1} of {start}".
///
/// MetaQA's 2-hop split asks exactly these chained questions; the paper's
/// downstream uses 1-hop, so 2-hop here is the natural extension experiment:
/// knowledge integrated triple-by-triple should compose when *both* hops were
/// integrated.
#[derive(Debug, Clone)]
pub struct TwoHopItem {
    /// Prompt text.
    pub prompt: String,
    /// Gold end-entity name.
    pub answer: String,
    /// The underlying path.
    pub path: infuserki_kg::paths::TwoHopPath,
}

/// Builds 2-hop items from the store's path structure (up to `limit`).
pub fn build_two_hop_items(store: &TripleStore, limit: usize) -> Vec<TwoHopItem> {
    infuserki_kg::paths::two_hop_paths(store, limit)
        .into_iter()
        .map(|p| {
            let r1 = TemplateSet::relation_phrase(store.relation_name(p.first.relation));
            let r2 = TemplateSet::relation_phrase(store.relation_name(p.second.relation));
            let start = store.entity_name(p.start());
            TwoHopItem {
                prompt: format!("question : tell me the {r2} of the {r1} of {start} . answer :"),
                answer: store.entity_name(p.end()).to_string(),
                path: p,
            }
        })
        .collect()
}

/// Evaluates 2-hop QA: mean token-F1 of generated vs. gold end entities.
pub fn eval_two_hop(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    items: &[TwoHopItem],
) -> f32 {
    if items.is_empty() {
        return f32::NAN;
    }
    let total: f32 = items
        .par_iter()
        .map(|item| {
            let prompt = tokenizer.encode_strict(&item.prompt);
            let gold = tokenizer.encode_strict(&item.answer);
            let generated = sampler::greedy_decode(model, hook, &prompt, gold.len() + 2, Some(EOS));
            token_f1(&generated, &gold)
        })
        .sum();
    total / items.len() as f32
}

/// Samples up to `n` evaluation triples for the downstream tasks.
pub fn sample_downstream_triples(store: &TripleStore, n: usize, seed: u64) -> Vec<Triple> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut all = store.triples().to_vec();
    all.shuffle(&mut rng);
    all.truncate(n);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{build_vocabulary, generate_store, Domain, WorldConfig};
    use infuserki_nn::{ModelConfig, NoHook, TransformerLm};

    fn setup(domain: Domain) -> (TripleStore, Tokenizer, TransformerLm) {
        let cfg = WorldConfig::tiny(domain, 21);
        let store = generate_store(&cfg);
        let tok = build_vocabulary(&store);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = TransformerLm::new(
            ModelConfig {
                vocab_size: tok.vocab_size(),
                max_seq: 96,
                ..ModelConfig::tiny(0)
            },
            &mut rng,
        );
        (store, tok, model)
    }

    #[test]
    fn yesno_items_are_balanced_and_parseable() {
        let (store, tok, _) = setup(Domain::Umls);
        let items = build_yesno_items(&store, store.triples(), 3);
        let yes = items.iter().filter(|i| i.gold).count();
        assert!(yes > 0 && yes < items.len());
        for item in &items {
            // vocabulary closure: every prompt must encode strictly
            let _ = tok.encode_strict(&item.prompt);
        }
    }

    #[test]
    fn yesno_eval_runs_on_untrained_model() {
        let (store, tok, model) = setup(Domain::Umls);
        let items = build_yesno_items(&store, &store.triples()[..10], 3);
        let f1 = eval_yesno(&model, &NoHook, &tok, &items);
        assert!(f1.is_nan() || (0.0..=1.0).contains(&f1));
    }

    #[test]
    fn one_hop_items_encode_strictly() {
        let (store, tok, _) = setup(Domain::MetaQa);
        let items = build_one_hop_items(&store, &store.triples()[..10]);
        for item in &items {
            let _ = tok.encode_strict(&item.prompt);
            let _ = tok.encode_strict(&item.answer);
        }
    }

    #[test]
    fn one_hop_eval_in_unit_range() {
        let (store, tok, model) = setup(Domain::MetaQa);
        let items = build_one_hop_items(&store, &store.triples()[..8]);
        let f1 = eval_one_hop(&model, &NoHook, &tok, &items);
        assert!((0.0..=1.0).contains(&f1));
        assert!(eval_one_hop(&model, &NoHook, &tok, &[]).is_nan());
    }

    #[test]
    fn one_hop_phrasing_differs_from_templates() {
        let q = one_hop_question("directed_by", "the silent horizon");
        for tpl in 0..infuserki_text::templates::N_QA_TEMPLATES {
            assert_ne!(
                q,
                TemplateSet::question("directed_by", "the silent horizon", tpl)
            );
        }
    }

    #[test]
    fn two_hop_items_chain_and_encode() {
        // UMLS-style graphs share entities between head and tail roles, so
        // 2-hop chains exist (the MetaQA generator is strictly bipartite).
        let (store, tok, model) = setup(Domain::Umls);
        let items = build_two_hop_items(&store, 20);
        assert!(!items.is_empty());
        for item in &items {
            assert_eq!(item.path.first.tail, item.path.second.head);
            let _ = tok.encode_strict(&item.prompt);
            let _ = tok.encode_strict(&item.answer);
        }
        let f1 = eval_two_hop(&model, &NoHook, &tok, &items[..5.min(items.len())]);
        assert!((0.0..=1.0).contains(&f1));
        assert!(eval_two_hop(&model, &NoHook, &tok, &[]).is_nan());
    }

    #[test]
    fn downstream_sampling_bounds() {
        let (store, _, _) = setup(Domain::Umls);
        assert_eq!(sample_downstream_triples(&store, 5, 1).len(), 5);
        assert_eq!(
            sample_downstream_triples(&store, 10_000, 1).len(),
            store.len()
        );
    }
}
