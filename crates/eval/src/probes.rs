//! Analysis probes: infusing-score profiles (Fig. 6), hidden-state capture
//! (Fig. 1) and option-probability case studies (Fig. 7).

use infuserki_core::dataset::McqBank;
use infuserki_core::InfuserKiMethod;
use infuserki_nn::{sampler, ForwardTrace, LayerHook, TransformerLm};
use infuserki_tensor::Tape;
use infuserki_text::{format_mcq_prompt, Mcq, Tokenizer};
use rayon::prelude::*;

/// Mean infusing score per adapted layer over the prompts of the given
/// triple indices (template-0 MCQs) — one Fig. 6 series.
pub fn gate_profile(
    base: &TransformerLm,
    method: &InfuserKiMethod,
    tokenizer: &Tokenizer,
    bank: &McqBank,
    indices: &[usize],
) -> Vec<(usize, f32)> {
    let per_prompt: Vec<Vec<(usize, f32)>> = indices
        .par_iter()
        .map(|&i| {
            let tokens = tokenizer.encode_strict(&format_mcq_prompt(bank.mcq(0, i)));
            let mut tape = Tape::new();
            let mut trace = ForwardTrace::new();
            base.forward_traced(&tokens, &method.hook(), &mut tape, &mut trace);
            trace
                .gate_scores
                .iter()
                .map(|&(layer, node)| (layer, tape.value(node).scalar_value()))
                .collect()
        })
        .collect();
    if per_prompt.is_empty() {
        return Vec::new();
    }
    let layers: Vec<usize> = per_prompt[0].iter().map(|&(l, _)| l).collect();
    layers
        .into_iter()
        .enumerate()
        .map(|(pos, layer)| {
            let mean = per_prompt.iter().map(|p| p[pos].1).sum::<f32>() / per_prompt.len() as f32;
            (layer, mean)
        })
        .collect()
}

/// Mean-pooled hidden state at `layer` (block output) for a token sequence —
/// the representations Fig. 1 projects with t-SNE.
pub fn hidden_state(
    base: &TransformerLm,
    hook: &dyn LayerHook,
    tokens: &[usize],
    layer: usize,
) -> Vec<f32> {
    let mut tape = Tape::new();
    let mut trace = ForwardTrace::new();
    base.forward_traced(tokens, hook, &mut tape, &mut trace);
    let node = trace.block_outputs[layer];
    let pooled = tape.mean_rows(node);
    tape.value(pooled).row(0).to_vec()
}

/// Hidden states for a batch of MCQ prompts, in parallel.
pub fn hidden_states_for(
    base: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    bank: &McqBank,
    indices: &[usize],
    layer: usize,
) -> Vec<Vec<f32>> {
    indices
        .par_iter()
        .map(|&i| {
            let tokens = tokenizer.encode_strict(&format_mcq_prompt(bank.mcq(0, i)));
            hidden_state(base, hook, &tokens, layer)
        })
        .collect()
}

/// The paper probes LLaMa's 10th of 32 layers; map that depth fraction onto
/// the reproduction model.
pub fn fig1_layer(n_layers: usize) -> usize {
    ((10.0 / 32.0) * n_layers as f32).round() as usize - 1
}

/// Probability the method assigns to each option of an MCQ
/// (length-normalized option likelihoods, softmaxed) — a Fig. 7 cell.
pub fn option_probs(
    base: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    mcq: &Mcq,
) -> [f32; 4] {
    option_probs_many(base, hook, tokenizer, std::slice::from_ref(mcq))
        .pop()
        .unwrap()
}

/// [`option_probs`] for a set of MCQs in one batched scoring pass: every
/// prompt and every option extension runs through
/// [`sampler::score_options_batch`]'s two ragged forwards instead of
/// per-question calls. Per question identical to [`option_probs`].
pub fn option_probs_many(
    base: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    mcqs: &[Mcq],
) -> Vec<[f32; 4]> {
    let prompts: Vec<Vec<usize>> = mcqs
        .iter()
        .map(|m| tokenizer.encode_strict(&format_mcq_prompt(m)))
        .collect();
    let options: Vec<Vec<Vec<usize>>> = mcqs
        .iter()
        .map(|m| {
            m.options
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    tokenizer.encode_strict(&format!("{} {o}", infuserki_text::option_token(i)))
                })
                .collect()
        })
        .collect();
    let per_q: Vec<&[Vec<usize>]> = options.iter().map(Vec::as_slice).collect();
    let scores = sampler::score_options_batch(base, hook, &prompts, &per_q);
    scores
        .iter()
        .zip(&options)
        .map(|(sc, opts)| {
            let lens: Vec<usize> = opts.iter().map(Vec::len).collect();
            let probs = sampler::option_probabilities(sc, &lens);
            [probs[0], probs[1], probs[2], probs[3]]
        })
        .collect()
}

/// Embeds an entity name as the mean-pooled final hidden state of its tokens
/// under (model, hook) — the representation-space view of what integration
/// changed.
pub fn entity_embedding(
    base: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    name: &str,
) -> Vec<f32> {
    let tokens = tokenizer.encode_strict(name);
    hidden_state(base, hook, &tokens, base.n_layers() - 1)
}

/// The `k` nearest entities to `query` by cosine similarity of
/// [`entity_embedding`]s — a qualitative probe of the learned entity
/// geometry (e.g. tails of one relation clustering together after
/// integration).
pub fn nearest_entities(
    base: &TransformerLm,
    hook: &dyn LayerHook,
    tokenizer: &Tokenizer,
    store: &infuserki_kg::TripleStore,
    query: &str,
    k: usize,
) -> Vec<(String, f32)> {
    let q = entity_embedding(base, hook, tokenizer, query);
    let mut scored: Vec<(String, f32)> = store
        .entity_names()
        .filter(|&n| n != query)
        .map(|n| (n.to_string(), n))
        .collect::<Vec<_>>()
        .par_iter()
        .map(|(owned, n)| {
            let e = entity_embedding(base, hook, tokenizer, n);
            (owned.clone(), cosine(&q, &e))
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    scored.truncate(k);
    scored
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{build_world_in, Domain, WorldConfig};
    use infuserki_core::InfuserKiConfig;
    use infuserki_nn::NoHook;

    fn world() -> crate::world::World {
        let dir = std::env::temp_dir().join(format!("infuserki_probe_{}", std::process::id()));
        build_world_in(&WorldConfig::tiny(Domain::Umls, 55), &dir)
    }

    #[test]
    fn gate_profile_covers_adapted_layers() {
        let w = world();
        let mut cfg = InfuserKiConfig::for_model(w.base.n_layers());
        cfg.bottleneck = 4;
        cfg.infuser_hidden = 4;
        cfg.rc_dim = 8;
        let method = InfuserKiMethod::new(cfg, &w.base, w.store.n_relations());
        let profile = gate_profile(&w.base, &method, &w.tokenizer, &w.bank, &[0, 1, 2]);
        assert_eq!(profile.len(), method.config().placement.len());
        for (_, score) in profile {
            assert!((0.0..=1.0).contains(&score));
        }
    }

    #[test]
    fn gate_profile_empty_indices() {
        let w = world();
        let mut cfg = InfuserKiConfig::for_model(w.base.n_layers());
        cfg.bottleneck = 4;
        cfg.infuser_hidden = 4;
        cfg.rc_dim = 8;
        let method = InfuserKiMethod::new(cfg, &w.base, w.store.n_relations());
        assert!(gate_profile(&w.base, &method, &w.tokenizer, &w.bank, &[]).is_empty());
    }

    #[test]
    fn hidden_states_have_model_width() {
        let w = world();
        let layer = fig1_layer(w.base.n_layers());
        let states = hidden_states_for(&w.base, &NoHook, &w.tokenizer, &w.bank, &[0, 1], layer);
        assert_eq!(states.len(), 2);
        assert_eq!(states[0].len(), w.base.config().d_model);
        assert_ne!(states[0], states[1]);
    }

    #[test]
    fn fig1_layer_mapping() {
        assert_eq!(fig1_layer(32), 9); // 10th layer, 0-based
        assert_eq!(fig1_layer(12), 3);
    }

    #[test]
    fn entity_embedding_has_model_width() {
        let w = world();
        let name = w.store.entity_name(infuserki_kg::EntityId(0)).to_string();
        let e = entity_embedding(&w.base, &NoHook, &w.tokenizer, &name);
        assert_eq!(e.len(), w.base.config().d_model);
    }

    #[test]
    fn nearest_entities_returns_sorted_cosines() {
        let w = world();
        let name = w.store.entity_name(infuserki_kg::EntityId(0)).to_string();
        let nn = nearest_entities(&w.base, &NoHook, &w.tokenizer, &w.store, &name, 5);
        assert_eq!(nn.len(), 5);
        for pair in nn.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "not sorted: {nn:?}");
        }
        assert!(nn.iter().all(|(n, _)| *n != name));
    }

    #[test]
    fn cosine_bounds() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn option_probs_sum_to_one() {
        let w = world();
        let p = option_probs(&w.base, &NoHook, &w.tokenizer, w.bank.mcq(0, 0));
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(p.iter().all(|&x| x >= 0.0));
    }
}
