//! 2-D projections for Fig. 1: PCA (power iteration) and exact t-SNE.
//!
//! Exact (O(n²)) t-SNE is ample for the figure's few hundred points; PCA
//! provides the init, making runs deterministic given the seed.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Mean-centers rows in place; returns the mean.
fn center(data: &mut [Vec<f32>]) -> Vec<f32> {
    let n = data.len();
    let d = data[0].len();
    let mut mean = vec![0.0f32; d];
    for row in data.iter() {
        for (m, &v) in mean.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n as f32;
    }
    for row in data.iter_mut() {
        for (v, &m) in row.iter_mut().zip(&mean) {
            *v -= m;
        }
    }
    mean
}

/// Top-`k` principal components via power iteration with deflation.
/// Returns the projected coordinates `[n][k]`.
pub fn pca(data: &[Vec<f32>], k: usize, seed: u64) -> Vec<Vec<f32>> {
    assert!(!data.is_empty(), "pca: empty input");
    let mut x: Vec<Vec<f32>> = data.to_vec();
    center(&mut x);
    let n = x.len();
    let d = x[0].len();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut components: Vec<Vec<f32>> = Vec::with_capacity(k);

    for _ in 0..k.min(d) {
        let mut v: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        normalize(&mut v);
        for _ in 0..60 {
            // w = Xᵀ X v (covariance product without materializing covariance)
            let mut xv = vec![0.0f32; n];
            for (i, row) in x.iter().enumerate() {
                xv[i] = dot(row, &v);
            }
            let mut w = vec![0.0f32; d];
            for (i, row) in x.iter().enumerate() {
                for (wj, &rj) in w.iter_mut().zip(row) {
                    *wj += xv[i] * rj;
                }
            }
            // Deflate previously found components.
            for c in &components {
                let proj = dot(&w, c);
                for (wj, &cj) in w.iter_mut().zip(c) {
                    *wj -= proj * cj;
                }
            }
            normalize(&mut w);
            v = w;
        }
        components.push(v);
    }

    x.iter()
        .map(|row| components.iter().map(|c| dot(row, c)).collect())
        .collect()
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn normalize(v: &mut [f32]) {
    let n = dot(v, v).sqrt();
    if n > 1e-12 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

/// Exact t-SNE to 2-D with PCA init.
///
/// `perplexity` is clamped to `(n-1)/3`; typical figure settings are 20–30.
pub fn tsne(data: &[Vec<f32>], perplexity: f32, iters: usize, seed: u64) -> Vec<(f32, f32)> {
    let n = data.len();
    assert!(n >= 4, "tsne: need at least 4 points");
    let perplexity = perplexity.min((n as f32 - 1.0) / 3.0).max(2.0);

    // Pairwise squared distances.
    let mut d2 = vec![vec![0.0f32; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist: f32 = data[i]
                .iter()
                .zip(&data[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            d2[i][j] = dist;
            d2[j][i] = dist;
        }
    }

    // Per-point precision by bisection to match the target perplexity.
    let target_h = perplexity.ln();
    let mut p = vec![vec![0.0f32; n]; n];
    for i in 0..n {
        let (mut lo, mut hi) = (1e-10f32, 1e10f32);
        let mut beta = 1.0f32;
        for _ in 0..40 {
            let mut sum = 0.0f32;
            let mut h = 0.0f32;
            for (j, &d) in d2[i].iter().enumerate() {
                if j == i {
                    continue;
                }
                sum += (-d * beta).exp();
            }
            if sum <= 0.0 {
                beta = lo;
                break;
            }
            for (j, &d) in d2[i].iter().enumerate() {
                if j == i {
                    continue;
                }
                let pij = (-d * beta).exp() / sum;
                if pij > 1e-12 {
                    h -= pij * pij.ln();
                }
            }
            if (h - target_h).abs() < 1e-4 {
                break;
            }
            if h > target_h {
                lo = beta;
                beta = if hi >= 1e10 {
                    beta * 2.0
                } else {
                    (beta + hi) / 2.0
                };
            } else {
                hi = beta;
                beta = (beta + lo) / 2.0;
            }
        }
        let mut sum = 0.0f32;
        for j in 0..n {
            if j != i {
                p[i][j] = (-d2[i][j] * beta).exp();
                sum += p[i][j];
            }
        }
        for (j, pv) in p[i].iter_mut().enumerate() {
            if j != i {
                *pv /= sum.max(1e-12);
            }
        }
    }
    // Symmetrize.
    let mut pm = vec![vec![0.0f32; n]; n];
    for i in 0..n {
        for j in 0..n {
            pm[i][j] = ((p[i][j] + p[j][i]) / (2.0 * n as f32)).max(1e-12);
        }
    }

    // PCA init, scaled small.
    let init = pca(data, 2, seed);
    let scale = init
        .iter()
        .flat_map(|r| r.iter())
        .fold(0.0f32, |m, v| m.max(v.abs()))
        .max(1e-6);
    let mut y: Vec<[f32; 2]> = init
        .iter()
        .map(|r| [r[0] / scale * 1e-2, r[1] / scale * 1e-2])
        .collect();
    let mut vel = vec![[0.0f32; 2]; n];

    let lr = 20.0f32;
    for it in 0..iters {
        let exaggeration = if it < iters / 4 { 4.0 } else { 1.0 };
        // Q distribution (student-t, dof 1).
        let mut num = vec![vec![0.0f32; n]; n];
        let mut qsum = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let t = 1.0 / (1.0 + dx * dx + dy * dy);
                num[i][j] = t;
                num[j][i] = t;
                qsum += 2.0 * t;
            }
        }
        let qsum = qsum.max(1e-12);
        let momentum = if it < 60 { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut grad = [0.0f32; 2];
            for j in 0..n {
                if j == i {
                    continue;
                }
                let q = (num[i][j] / qsum).max(1e-12);
                let coeff = 4.0 * (exaggeration * pm[i][j] - q) * num[i][j];
                grad[0] += coeff * (y[i][0] - y[j][0]);
                grad[1] += coeff * (y[i][1] - y[j][1]);
            }
            for k in 0..2 {
                vel[i][k] = momentum * vel[i][k] - lr * grad[k];
                // Clamp per-step displacement: keeps early-exaggeration
                // iterations from diverging at this small point count.
                vel[i][k] = vel[i][k].clamp(-2.0, 2.0);
                y[i][k] += vel[i][k];
            }
        }
    }
    y.into_iter().map(|p| (p[0], p[1])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters(n_per: usize, sep: f32) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..n_per {
                let base = c as f32 * sep;
                data.push(vec![
                    base + rng.gen_range(-0.1f32..0.1),
                    base + rng.gen_range(-0.1f32..0.1),
                    rng.gen_range(-0.1f32..0.1),
                ]);
                labels.push(c);
            }
        }
        (data, labels)
    }

    #[test]
    fn pca_projects_to_requested_dims() {
        let (data, _) = clusters(10, 5.0);
        let proj = pca(&data, 2, 1);
        assert_eq!(proj.len(), 20);
        assert_eq!(proj[0].len(), 2);
    }

    #[test]
    fn pca_first_component_separates_clusters() {
        let (data, labels) = clusters(10, 5.0);
        let proj = pca(&data, 1, 1);
        let mean = |c: usize| {
            let vals: Vec<f32> = proj
                .iter()
                .zip(&labels)
                .filter(|(_, &l)| l == c)
                .map(|(p, _)| p[0])
                .collect();
            vals.iter().sum::<f32>() / vals.len() as f32
        };
        assert!((mean(0) - mean(1)).abs() > 1.0);
    }

    #[test]
    fn pca_is_deterministic() {
        let (data, _) = clusters(8, 3.0);
        assert_eq!(pca(&data, 2, 9), pca(&data, 2, 9));
    }

    #[test]
    fn tsne_separates_well_separated_clusters() {
        let (data, labels) = clusters(12, 8.0);
        let y = tsne(&data, 8.0, 250, 3);
        assert_eq!(y.len(), 24);
        // Mean intra-cluster distance should be far below inter-cluster.
        let dist =
            |a: (f32, f32), b: (f32, f32)| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..y.len() {
            for j in (i + 1)..y.len() {
                if labels[i] == labels[j] {
                    intra.push(dist(y[i], y[j]));
                } else {
                    inter.push(dist(y[i], y[j]));
                }
            }
        }
        let m_intra: f32 = intra.iter().sum::<f32>() / intra.len() as f32;
        let m_inter: f32 = inter.iter().sum::<f32>() / inter.len() as f32;
        assert!(
            m_inter > 1.5 * m_intra,
            "inter {m_inter} should exceed intra {m_intra}"
        );
    }

    #[test]
    fn tsne_outputs_finite_coords() {
        let (data, _) = clusters(5, 2.0);
        let y = tsne(&data, 5.0, 120, 7);
        assert!(y.iter().all(|(a, b)| a.is_finite() && b.is_finite()));
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tsne_rejects_tiny_input() {
        let data = vec![vec![0.0; 3]; 3];
        tsne(&data, 5.0, 10, 0);
    }
}
