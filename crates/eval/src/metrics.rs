//! Metric primitives: accuracy partitions, multi-class macro-F1 for MCQ
//! answers, and token-level F1 for free-form answers.

use serde::{Deserialize, Serialize};

/// Outcome of answering one MCQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct McqOutcome {
    /// Gold option index.
    pub gold: usize,
    /// Extracted prediction; `None` when no option could be parsed (counted
    /// as wrong, per the paper's protocol).
    pub pred: Option<usize>,
}

impl McqOutcome {
    /// True when the prediction matches the gold option.
    pub fn correct(&self) -> bool {
        self.pred == Some(self.gold)
    }
}

/// Mean accuracy over a subset of outcome indices (NR over unknown indices,
/// RR over known indices — Eq. in §4.1). Empty subsets yield `f32::NAN` so
/// callers can render "–" like the paper's vanilla rows.
pub fn subset_accuracy(outcomes: &[McqOutcome], subset: &[usize]) -> f32 {
    if subset.is_empty() {
        return f32::NAN;
    }
    let correct = subset.iter().filter(|&&i| outcomes[i].correct()).count();
    correct as f32 / subset.len() as f32
}

/// Macro-averaged multi-class F1 over option positions. Unparseable
/// predictions never match any class, hurting recall — mirroring the paper's
/// treat-as-incorrect rule. Classes that never occur as gold are skipped.
pub fn macro_f1(outcomes: &[McqOutcome], n_classes: usize) -> f32 {
    let mut f1_sum = 0.0;
    let mut n_present = 0;
    for c in 0..n_classes {
        let tp = outcomes
            .iter()
            .filter(|o| o.gold == c && o.pred == Some(c))
            .count() as f32;
        let fp = outcomes
            .iter()
            .filter(|o| o.gold != c && o.pred == Some(c))
            .count() as f32;
        let fn_ = outcomes
            .iter()
            .filter(|o| o.gold == c && o.pred != Some(c))
            .count() as f32;
        if tp + fn_ == 0.0 {
            continue; // class absent from gold
        }
        n_present += 1;
        if tp == 0.0 {
            continue; // F1 = 0 for this class
        }
        let precision = tp / (tp + fp);
        let recall = tp / (tp + fn_);
        f1_sum += 2.0 * precision * recall / (precision + recall);
    }
    if n_present == 0 {
        f32::NAN
    } else {
        f1_sum / n_present as f32
    }
}

/// Token-overlap F1 between a generated answer and the gold answer (the
/// SQuAD-style measure used for free-form downstream QA).
pub fn token_f1(pred_tokens: &[usize], gold_tokens: &[usize]) -> f32 {
    if pred_tokens.is_empty() || gold_tokens.is_empty() {
        return 0.0;
    }
    let mut gold_counts = std::collections::HashMap::new();
    for &t in gold_tokens {
        *gold_counts.entry(t).or_insert(0usize) += 1;
    }
    let mut overlap = 0usize;
    for &t in pred_tokens {
        if let Some(c) = gold_counts.get_mut(&t) {
            if *c > 0 {
                *c -= 1;
                overlap += 1;
            }
        }
    }
    if overlap == 0 {
        return 0.0;
    }
    let precision = overlap as f32 / pred_tokens.len() as f32;
    let recall = overlap as f32 / gold_tokens.len() as f32;
    2.0 * precision * recall / (precision + recall)
}

/// Binary macro-F1 for yes/no tasks from (gold, pred) pairs; `None`
/// predictions count as wrong for both classes.
pub fn yesno_f1(pairs: &[(bool, Option<bool>)]) -> f32 {
    let outcomes: Vec<McqOutcome> = pairs
        .iter()
        .map(|&(gold, pred)| McqOutcome {
            gold: usize::from(gold),
            pred: pred.map(usize::from),
        })
        .collect();
    macro_f1(&outcomes, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(gold: usize, pred: Option<usize>) -> McqOutcome {
        McqOutcome { gold, pred }
    }

    #[test]
    fn subset_accuracy_basics() {
        let outs = vec![o(0, Some(0)), o(1, Some(2)), o(2, None), o(3, Some(3))];
        assert_eq!(subset_accuracy(&outs, &[0, 3]), 1.0);
        assert_eq!(subset_accuracy(&outs, &[1, 2]), 0.0);
        assert_eq!(subset_accuracy(&outs, &[0, 1]), 0.5);
        assert!(subset_accuracy(&outs, &[]).is_nan());
    }

    #[test]
    fn macro_f1_perfect_and_zero() {
        let perfect: Vec<_> = (0..4).map(|c| o(c, Some(c))).collect();
        assert!((macro_f1(&perfect, 4) - 1.0).abs() < 1e-6);
        let awful: Vec<_> = (0..4).map(|c| o(c, None)).collect();
        assert_eq!(macro_f1(&awful, 4), 0.0);
    }

    #[test]
    fn macro_f1_partial() {
        // Class 0: tp=1 fp=1 fn=0 → p=.5 r=1 f1=2/3; class 1: tp=0 → 0.
        let outs = vec![o(0, Some(0)), o(1, Some(0))];
        let f1 = macro_f1(&outs, 4);
        assert!((f1 - (2.0 / 3.0) / 2.0).abs() < 1e-5, "{f1}");
    }

    #[test]
    fn macro_f1_skips_absent_classes() {
        let outs = vec![o(2, Some(2))];
        assert!((macro_f1(&outs, 4) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn token_f1_cases() {
        assert!((token_f1(&[1, 2, 3], &[1, 2, 3]) - 1.0).abs() < 1e-6);
        assert_eq!(token_f1(&[4, 5], &[1, 2]), 0.0);
        // half overlap: pred {1,2}, gold {2,3}: overlap 1, p=.5, r=.5
        assert!((token_f1(&[1, 2], &[2, 3]) - 0.5).abs() < 1e-6);
        assert_eq!(token_f1(&[], &[1]), 0.0);
        // duplicate handling: pred [2,2] vs gold [2] → overlap 1, p=.5, r=1
        assert!((token_f1(&[2, 2], &[2]) - (2.0 * 0.5 / 1.5)).abs() < 1e-5);
    }

    #[test]
    fn yesno_f1_balanced() {
        let pairs = vec![
            (true, Some(true)),
            (false, Some(false)),
            (true, Some(false)),
            (false, None),
        ];
        let f1 = yesno_f1(&pairs);
        assert!(f1 > 0.0 && f1 < 1.0);
    }
}
