//! # infuserki-eval
//!
//! The evaluation harness: the paper's metrics (NR for reliability, RR for
//! locality, per-template F1 and F1_Unseen for generality), the downstream
//! tasks (PubMedQA-style yes/no and MetaQA-style 1-hop QA), analysis probes
//! (infusing scores, hidden states, case studies) and the PCA/t-SNE
//! projections for Fig. 1 — plus [`world`], the shared experiment fixture
//! that generates a KG, builds the tokenizer, pre-trains the base model on
//! the designated "known" subset, and caches the result.

pub mod downstream;
pub mod mcq_eval;
pub mod metrics;
pub mod probes;
pub mod projection;
pub mod statistics;
pub mod world;

pub use mcq_eval::{evaluate_method, MethodEval};
pub use metrics::{macro_f1, token_f1, McqOutcome};
pub use world::{build_world, Domain, World, WorldConfig};
