//! ISA-dispatch differential suite: every dispatched kernel, run under every
//! tier the host supports, must be **bit-for-bit** the scalar tier's output —
//! across ragged shapes (proptest), at the banded thread counts, and for the
//! fused int8 dequant-matmul. Plus the loud-failure contract of the
//! `INFUSERKI_ISA` knob: an invalid value aborts with a clear message
//! (checked end-to-end in a subprocess), never a silent fallback.

use infuserki_tensor::{kernels, quant, simd, Matrix};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that flip the process-global tier override. (The bitwise
/// contract makes cross-talk harmless in value terms, but a failure must
/// point at the tier that produced it.)
static ISA_GUARD: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    ISA_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// The non-scalar tiers this host can execute.
fn simd_tiers() -> Vec<simd::Isa> {
    [simd::Isa::Avx2, simd::Isa::Avx512]
        .into_iter()
        .filter(|&isa| simd::supported(isa))
        .collect()
}

/// Runs `f` under `isa` and returns its output.
fn under<R>(isa: simd::Isa, f: impl Fn() -> R) -> R {
    simd::set_isa(Some(isa));
    let r = f();
    simd::set_isa(None);
    r
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{ctx}: elem {i} {x} vs {y} (bits differ)"
        );
    }
}

fn matrix(rows: usize, cols: usize, vals: &[f32]) -> Matrix {
    Matrix::from_vec(rows, cols, vals[..rows * cols].to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `a@b` and `aᵀ@b` across ragged shapes: strips, column tails, the
    /// MR/4/2/scalar row ladder, and accumulate mode.
    #[test]
    fn matmul_family_bitwise_across_tiers(
        m in 1usize..24,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1000,
        accumulate in prop::bool::ANY,
    ) {
        let _g = guard();
        let vals: Vec<f32> = (0..m.max(k) * k.max(n) + m * n)
            .map(|i| ((i as f32 + (seed % 1000) as f32) * 0.37).sin())
            .collect();
        let a = matrix(m, k, &vals);
        let b = matrix(k, n, &vals[1..]);
        let at = matrix(k, m, &vals);
        let init = matrix(m, n, &vals[2..]);
        let scalar = under(simd::Isa::Scalar, || {
            let mut out = init.clone();
            kernels::matmul_into(&a, &b, &mut out, accumulate);
            let mut out_at = init.clone();
            kernels::matmul_at_into(&at, &b, &mut out_at, accumulate);
            (out, out_at)
        });
        for isa in simd_tiers() {
            let tier = under(isa, || {
                let mut out = init.clone();
                kernels::matmul_into(&a, &b, &mut out, accumulate);
                let mut out_at = init.clone();
                kernels::matmul_at_into(&at, &b, &mut out_at, accumulate);
                (out, out_at)
            });
            assert_bits_eq(&tier.0, &scalar.0, &format!("matmul {m}x{k}x{n} {}", isa.name()));
            assert_bits_eq(&tier.1, &scalar.1, &format!("matmul_at {m}x{k}x{n} {}", isa.name()));
        }
    }

    /// The attention·V window fold (contiguous and segmented forms).
    #[test]
    fn av_fold_bitwise_across_tiers(
        ra in 1usize..8,
        hist in 1usize..30,
        d in 1usize..24,
        seed in 0u64..100,
    ) {
        let _g = guard();
        let lo = d / 3;
        let hi = d;
        let attn = Matrix::from_vec(ra, hist, (0..ra * hist)
            .map(|i| ((i as f32 + (seed % 100) as f32) * 0.41).sin()).collect());
        let v = Matrix::from_vec(hist, d, (0..hist * d)
            .map(|i| (i as f32 * 0.23).cos()).collect());
        let run = || {
            let mut merged = Matrix::full(ra, d, 7.5);
            kernels::matmul_cols_into(&attn, &v, lo, hi, &mut merged, 0);
            // Segmented: split the history at an awkward point and continue.
            let split = hist / 2;
            let mut seg = Matrix::full(ra, d, 7.5);
            kernels::matmul_cols_seg_into(&attn, 0, split, &v, lo, hi, &mut seg, 0, false);
            kernels::matmul_cols_seg_into(
                &attn, split, hist, &v.slice_rows(split, hist), lo, hi, &mut seg, 0, split > 0,
            );
            (merged, seg)
        };
        let scalar = under(simd::Isa::Scalar, run);
        assert_bits_eq(&scalar.0, &scalar.1, "segmented fold vs contiguous (scalar)");
        for isa in simd_tiers() {
            let tier = under(isa, run);
            assert_bits_eq(&tier.0, &scalar.0, &format!("av fold {ra}x{hist}x{d} {}", isa.name()));
            assert_bits_eq(&tier.1, &scalar.1, &format!("av seg fold {ra}x{hist}x{d} {}", isa.name()));
        }
    }

    /// Softmax (plain and causal) and GELU over ragged rows.
    #[test]
    fn softmax_and_gelu_bitwise_across_tiers(
        rows in 1usize..10,
        cols in 1usize..40,
        offset in 0usize..6,
        seed in 0u64..50,
    ) {
        let _g = guard();
        let x = Matrix::from_vec(rows, cols, (0..rows * cols)
            .map(|i| ((i as f32 + (seed % 50) as f32) * 0.63).sin() * 4.0).collect());
        let run = || {
            let mut s = x.clone();
            kernels::softmax_rows_in_place(&mut s);
            let mut c = x.clone();
            kernels::softmax_rows_causal_in_place(&mut c, offset);
            let mut g = x.clone();
            kernels::gelu_slice(g.data_mut());
            (s, c, g)
        };
        let scalar = under(simd::Isa::Scalar, run);
        for isa in simd_tiers() {
            let tier = under(isa, run);
            assert_bits_eq(&tier.0, &scalar.0, &format!("softmax {rows}x{cols} {}", isa.name()));
            assert_bits_eq(&tier.1, &scalar.1, &format!("causal softmax {rows}x{cols} {}", isa.name()));
            assert_bits_eq(&tier.2, &scalar.2, &format!("gelu {rows}x{cols} {}", isa.name()));
        }
    }

    /// Fused int8 dequant-matmul: every tier bitwise vs the scalar fused
    /// kernel, and the scalar fused kernel bitwise vs dense-over-dequantized.
    #[test]
    fn quantized_matmul_bitwise_across_tiers(
        m in 1usize..12,
        k in 1usize..32,
        n in 1usize..48,
        bs_idx in 0usize..4,
        seed in 0u64..100,
    ) {
        let _g = guard();
        let bs = [3usize, 16, 32, 64][bs_idx];
        let x = Matrix::from_vec(m, k, (0..m * k)
            .map(|i| ((i as f32 + (seed % 100) as f32) * 0.31).sin()).collect());
        let w = Matrix::from_vec(k, n, (0..k * n).map(|i| (i as f32 * 0.57).cos()).collect());
        let qw = quant::QuantizedMatrix::quantize(&w, quant::QuantSpec { block_size: bs });
        let scalar = under(simd::Isa::Scalar, || {
            let fused = qw.matmul(&x);
            let dense = kernels::matmul(&x, &qw.dequantize());
            assert_bits_eq(&fused, &dense, "fused vs dense (scalar)");
            fused
        });
        for isa in simd_tiers() {
            let tier = under(isa, || qw.matmul(&x));
            assert_bits_eq(&tier, &scalar, &format!("qmatmul {m}x{k}x{n} bs={bs} {}", isa.name()));
        }
    }
}

/// A product big enough to cross `PAR_MIN_FLOPS` (160³ ≈ 8.2 MFLOP): the
/// banded multi-thread path and every tier must all agree bitwise.
#[test]
fn banded_threads_and_tiers_all_agree_bitwise() {
    let _g = guard();
    let a = Matrix::from_vec(160, 160, (0..160 * 160).map(|i| (i as f32).sin()).collect());
    let b = Matrix::from_vec(160, 160, (0..160 * 160).map(|i| (i as f32).cos()).collect());
    kernels::set_num_threads(1);
    let base = under(simd::Isa::Scalar, || kernels::matmul(&a, &b));
    for threads in [1usize, 4] {
        kernels::set_num_threads(threads);
        let scalar = under(simd::Isa::Scalar, || kernels::matmul(&a, &b));
        assert_bits_eq(&scalar, &base, &format!("scalar @ {threads} threads"));
        for isa in simd_tiers() {
            let tier = under(isa, || kernels::matmul(&a, &b));
            assert_bits_eq(&tier, &base, &format!("{} @ {threads} threads", isa.name()));
        }
    }
    kernels::set_num_threads(0);
}

/// The knob parser rejects garbage with a message naming the knob and the
/// valid spellings, and never falls back.
#[test]
fn invalid_isa_values_are_rejected() {
    for bad in ["avx9000", "AVX2", "", "auto"] {
        let err = simd::parse_isa(bad).unwrap_err();
        assert!(err.contains(simd::ISA_ENV), "{err}");
        assert!(err.contains("scalar|avx2|avx512"), "{err}");
    }
    let err = simd::resolve_isa(Some("fast")).unwrap_err();
    assert!(err.contains(simd::ISA_ENV), "{err}");
}

/// Subprocess probe: only runs the kernel call when the parent test below
/// re-invokes this binary with the probe env set.
#[test]
fn probe_active_isa_under_env() {
    if std::env::var("INFUSERKI_ISA_PROBE").is_err() {
        return;
    }
    // With an invalid INFUSERKI_ISA this must panic loudly inside active_isa.
    let a = Matrix::full(2, 2, 1.0);
    let _ = kernels::matmul(&a, &a);
}

/// End-to-end loud failure: a process with `INFUSERKI_ISA=avx9000` must die
/// with a message naming the knob on its first dispatched kernel call — not
/// silently fall back to another tier.
#[test]
fn invalid_isa_env_fails_loudly_end_to_end() {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args([
            "--exact",
            "probe_active_isa_under_env",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("INFUSERKI_ISA", "avx9000")
        .env("INFUSERKI_ISA_PROBE", "1")
        .output()
        .expect("spawn probe");
    assert!(
        !out.status.success(),
        "probe must fail under an invalid INFUSERKI_ISA"
    );
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        text.contains("INFUSERKI_ISA") && text.contains("scalar|avx2|avx512"),
        "failure must name the knob and valid values:\n{text}"
    );
}

/// Forcing a tier through the env knob (valid spelling) resolves to exactly
/// that tier — `scalar` is always legal, so this is host-independent.
#[test]
fn scalar_env_value_resolves_to_scalar() {
    assert_eq!(simd::resolve_isa(Some("scalar")), Ok(simd::Isa::Scalar));
    assert_eq!(simd::resolve_isa(Some(" scalar ")), Ok(simd::Isa::Scalar));
}
