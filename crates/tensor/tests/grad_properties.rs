//! Property-based gradient checks: every differentiable op's backward rule is
//! compared against central finite differences on randomized inputs.

use infuserki_tensor::check::check_gradient;
use infuserki_tensor::op::IGNORE_INDEX;
use infuserki_tensor::{Matrix, NodeId, Tape};
use proptest::prelude::*;

const EPS: f32 = 1e-2;
const TOL: f32 = 3e-2;

/// Strategy: a rows×cols matrix with entries in a gradient-friendly range
/// (bounded away from activation kinks by the tolerance).
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Reduces any matrix node to a scalar by summing with fixed weights — keeps
/// the loss sensitive to every element.
fn reduce(t: &mut Tape, x: NodeId) -> NodeId {
    let (r, c) = {
        let v = t.value(x);
        v.shape()
    };
    let w = t.leaf(Matrix::from_vec(
        c,
        1,
        (0..c).map(|i| 0.3 + 0.1 * i as f32).collect(),
    ));
    let col = t.matmul(x, w); // [r,1]
    let ones = t.leaf(Matrix::from_vec(1, r, vec![1.0; r]));
    t.matmul(ones, col) // [1,1]
}

macro_rules! unary_grad_test {
    ($name:ident, $rows:expr, $cols:expr, $body:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn $name(m in matrix($rows, $cols)) {
                let res = check_gradient(&m, EPS, |t, x| {
                    let y = $body(t, x);
                    reduce(t, y)
                });
                prop_assert!(res.within(TOL), "{:?}", res);
            }
        }
    };
}

unary_grad_test!(grad_scale, 2, 3, |t: &mut Tape, x| t.scale(x, 1.7));
unary_grad_test!(grad_transpose, 2, 3, |t: &mut Tape, x| t.transpose(x));
unary_grad_test!(grad_softmax, 2, 4, |t: &mut Tape, x| t.softmax(x));
unary_grad_test!(grad_log_softmax, 2, 4, |t: &mut Tape, x| t.log_softmax(x));
unary_grad_test!(grad_gelu, 2, 3, |t: &mut Tape, x| t.gelu(x));
unary_grad_test!(grad_silu, 2, 3, |t: &mut Tape, x| t.silu(x));
unary_grad_test!(grad_sigmoid, 2, 3, |t: &mut Tape, x| t.sigmoid(x));
unary_grad_test!(grad_tanh, 2, 3, |t: &mut Tape, x| t.tanh(x));
unary_grad_test!(grad_mean_rows, 3, 4, |t: &mut Tape, x| t.mean_rows(x));
unary_grad_test!(grad_cum_mean_rows, 4, 3, |t: &mut Tape, x| t
    .cum_mean_rows(x));
unary_grad_test!(grad_mean_selected, 4, 3, |t: &mut Tape, x| t
    .mean_selected_rows(x, &[1, 3]));
unary_grad_test!(grad_slice_cols, 2, 5, |t: &mut Tape, x| t
    .slice_cols(x, 1, 4));
unary_grad_test!(grad_slice_rows, 4, 3, |t: &mut Tape, x| t
    .slice_rows(x, 1, 3));

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn grad_relu_away_from_kink(v in proptest::collection::vec(0.2f32..2.0, 6)) {
        // Restrict to strictly positive inputs: ReLU is non-differentiable at 0.
        let m = Matrix::from_vec(2, 3, v);
        let res = check_gradient(&m, 1e-3, |t, x| {
            let y = t.relu(x);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_matmul_lhs(a in matrix(2, 3)) {
        let res = check_gradient(&a, EPS, |t, x| {
            let b = t.leaf(Matrix::from_vec(3, 2, vec![0.5, -1.0, 1.5, 0.3, -0.7, 0.9]));
            let y = t.matmul(x, b);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_matmul_rhs(b in matrix(3, 2)) {
        let res = check_gradient(&b, EPS, |t, x| {
            let a = t.leaf(Matrix::from_vec(2, 3, vec![0.5, -1.0, 1.5, 0.3, -0.7, 0.9]));
            let y = t.matmul(a, x);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_matmul_bt(a in matrix(2, 3)) {
        let res = check_gradient(&a, EPS, |t, x| {
            let b = t.leaf(Matrix::from_vec(4, 3, (0..12).map(|i| 0.1 * i as f32 - 0.5).collect()));
            let y = t.matmul_bt(x, b);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_affine_input(x in matrix(2, 3)) {
        let res = check_gradient(&x, EPS, |t, n| {
            let w = t.leaf(Matrix::from_vec(3, 2, vec![0.5, -1.0, 1.5, 0.3, -0.7, 0.9]));
            let b = t.leaf(Matrix::from_vec(1, 2, vec![0.2, -0.4]));
            let y = t.affine(n, w, b);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_affine_weight(w in matrix(3, 2)) {
        let res = check_gradient(&w, EPS, |t, n| {
            let x = t.leaf(Matrix::from_vec(2, 3, vec![0.5, -1.0, 1.5, 0.3, -0.7, 0.9]));
            let b = t.leaf(Matrix::from_vec(1, 2, vec![0.2, -0.4]));
            let y = t.affine(x, n, b);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_affine_bias(b in matrix(1, 2)) {
        let res = check_gradient(&b, EPS, |t, n| {
            let x = t.leaf(Matrix::from_vec(2, 3, vec![0.5, -1.0, 1.5, 0.3, -0.7, 0.9]));
            let w = t.leaf(Matrix::from_vec(3, 2, vec![0.1, 0.6, -0.2, 0.8, 0.4, -0.9]));
            let y = t.affine(x, w, n);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn affine_matches_unfused(x in matrix(3, 4)) {
        // The fused node must agree exactly with matmul + add_row_broadcast.
        let mut t = Tape::new();
        let xn = t.leaf(x);
        let w = t.leaf(Matrix::from_vec(4, 2, (0..8).map(|i| 0.15 * i as f32 - 0.5).collect()));
        let b = t.leaf(Matrix::from_vec(1, 2, vec![0.3, -0.8]));
        let fused = t.affine(xn, w, b);
        let mm = t.matmul(xn, w);
        let unfused = t.add_row_broadcast(mm, b);
        prop_assert_eq!(t.value(fused).data(), t.value(unfused).data());
    }

    #[test]
    fn grad_add_and_sub(a in matrix(2, 3)) {
        let res = check_gradient(&a, EPS, |t, x| {
            let b = t.leaf(Matrix::from_vec(2, 3, vec![0.2; 6]));
            let s = t.add(x, b);
            let d = t.sub(s, x); // gradient cancels partially: checks accumulation
            let y = t.add(d, x);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_add_row_broadcast_bias(b in matrix(1, 3)) {
        let res = check_gradient(&b, EPS, |t, x| {
            let a = t.leaf(Matrix::from_vec(2, 3, vec![0.1, 0.4, -0.3, 0.9, -1.1, 0.6]));
            let y = t.add_row_broadcast(a, x);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_mul_elementwise(a in matrix(2, 3)) {
        let res = check_gradient(&a, EPS, |t, x| {
            let b = t.leaf(Matrix::from_vec(2, 3, vec![0.5, -1.0, 1.5, 0.3, -0.7, 0.9]));
            let y = t.mul(x, b);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_mul_scalar_node_gate(s in -2.0f32..2.0) {
        let m = Matrix::scalar(s);
        let res = check_gradient(&m, EPS, |t, x| {
            let a = t.leaf(Matrix::from_vec(2, 2, vec![0.4, -0.2, 0.8, 1.1]));
            let y = t.mul_scalar_node(a, x);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_mul_col_broadcast_lhs(a in matrix(3, 2)) {
        let res = check_gradient(&a, EPS, |t, x| {
            let s = t.leaf(Matrix::from_vec(3, 1, vec![0.6, -0.9, 1.3]));
            let y = t.mul_col_broadcast(x, s);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_mul_col_broadcast_gate(s in matrix(3, 1)) {
        let res = check_gradient(&s, EPS, |t, x| {
            let a = t.leaf(Matrix::from_vec(3, 2, vec![0.4, -0.2, 0.8, 1.1, -0.5, 0.3]));
            let y = t.mul_col_broadcast(a, x);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn cum_mean_last_row_matches_mean_rows(m in matrix(4, 3)) {
        // The causal gate reads the last cumulative-mean row where the
        // full-sequence mean used to be — they must agree bitwise.
        let mut t = Tape::new();
        let x = t.leaf(m);
        let cum = t.cum_mean_rows(x);
        let mean = t.mean_rows(x);
        prop_assert_eq!(t.value(cum).row(3), t.value(mean).row(0));
    }

    #[test]
    fn grad_layer_norm_input(x in matrix(2, 4)) {
        let res = check_gradient(&x, EPS, |t, n| {
            let g = t.leaf(Matrix::from_vec(1, 4, vec![1.0, 0.9, 1.1, 1.2]));
            let b = t.leaf(Matrix::from_vec(1, 4, vec![0.0, 0.1, -0.1, 0.2]));
            let y = t.layer_norm(n, g, b, 1e-5);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_layer_norm_gain(g in matrix(1, 4)) {
        let res = check_gradient(&g, EPS, |t, n| {
            let x = t.leaf(Matrix::from_vec(2, 4, vec![0.3, -0.5, 0.9, 1.4, -1.0, 0.2, 0.8, -0.6]));
            let b = t.leaf(Matrix::zeros(1, 4));
            let y = t.layer_norm(x, n, b, 1e-5);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_embedding_table(w in matrix(4, 3)) {
        let res = check_gradient(&w, EPS, |t, x| {
            let e = t.embedding(x, &[0, 2, 2, 3]);
            reduce(t, e)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_concat_rows(a in matrix(2, 3)) {
        let res = check_gradient(&a, EPS, |t, x| {
            let b = t.leaf(Matrix::from_vec(1, 3, vec![0.4, -0.1, 0.7]));
            let y = t.concat_rows(x, b);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_concat_cols(a in matrix(2, 2)) {
        let res = check_gradient(&a, EPS, |t, x| {
            let b = t.leaf(Matrix::from_vec(2, 3, vec![0.4, -0.1, 0.7, 0.2, 0.9, -0.8]));
            let y = t.concat_cols(&[x, b, x]);
            reduce(t, y)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_causal_mask_then_softmax(a in matrix(3, 3)) {
        let res = check_gradient(&a, EPS, |t, x| {
            let m = t.causal_mask(x, 0);
            let s = t.softmax(m);
            reduce(t, s)
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_cross_entropy(l in matrix(3, 4)) {
        let res = check_gradient(&l, EPS, |t, x| {
            t.cross_entropy(x, &[1, IGNORE_INDEX, 3])
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn grad_bce_with_logits(l in matrix(3, 1)) {
        let res = check_gradient(&l, EPS, |t, x| {
            t.bce_with_logits(x, &[1.0, 0.0, 1.0])
        });
        prop_assert!(res.within(TOL), "{:?}", res);
    }

    #[test]
    fn softmax_rows_are_distributions(m in matrix(3, 5)) {
        let mut t = Tape::new();
        let x = t.leaf(m);
        let s = t.softmax(x);
        let v = t.value(s);
        for r in 0..3 {
            let sum: f32 = v.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(v.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn sigmoid_outputs_in_unit_interval(m in matrix(2, 4)) {
        let mut t = Tape::new();
        let x = t.leaf(m);
        let s = t.sigmoid(x);
        prop_assert!(t.value(s).data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn layer_norm_rows_standardized(m in matrix(3, 8)) {
        let mut t = Tape::new();
        let x = t.leaf(m);
        let g = t.leaf(Matrix::full(1, 8, 1.0));
        let b = t.leaf(Matrix::zeros(1, 8));
        let y = t.layer_norm(x, g, b, 1e-5);
        let v = t.value(y);
        for r in 0..3 {
            let mean: f32 = v.row(r).iter().sum::<f32>() / 8.0;
            prop_assert!(mean.abs() < 1e-3, "row mean {mean}");
        }
    }
}
