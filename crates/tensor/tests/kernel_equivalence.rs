//! Equivalence suite for the blocked/parallel kernels in `kernels.rs`.
//!
//! Every optimized product (`matmul`, `matmul_bt`, `matmul_at`, and their
//! `_into` accumulate variants) is compared against the preserved seed
//! kernels in `kernels::reference` over randomized shapes, including the
//! degenerate ones the tiling logic must survive: `k = 0`, `1×1`, tall/skinny
//! operands, and dimensions that are not multiples of the register tile.
//!
//! The blocked kernels are designed to be *bitwise* identical to the serial
//! reference (each output element is one ascending-`p` accumulation chain in
//! every code path), but the contract these tests enforce is the documented
//! one: agreement within `1e-4` relative error. A separate test pins the
//! stronger bitwise claim across thread counts.

// The proptest! macro is token-tree recursive; eight properties in one block
// exceed the default limit of 128.
#![recursion_limit = "256"]

use infuserki_tensor::kernels::{self, reference};
use infuserki_tensor::Matrix;
use proptest::prelude::*;

const REL_TOL: f32 = 1e-4;

/// Largest `|x - y| / max(1, |x|, |y|)` over all elements.
fn max_rel_err(x: &Matrix, y: &Matrix) -> f32 {
    assert_eq!(x.shape(), y.shape(), "shape mismatch in comparison");
    x.data()
        .iter()
        .zip(y.data().iter())
        .map(|(&a, &b)| (a - b).abs() / 1.0f32.max(a.abs()).max(b.abs()))
        .fold(0.0f32, f32::max)
}

/// A random `(m, n, k, a, b)` problem with dims in `1..=24` (and `k` allowed
/// to be zero), covering non-tile-multiple shapes by construction.
fn mm_case() -> impl Strategy<Value = (usize, usize, Matrix, Matrix)> {
    (1usize..=24, 1usize..=24, 0usize..=24).prop_flat_map(|(m, n, k)| {
        (
            Just(m),
            Just(n),
            proptest::collection::vec(-3.0f32..3.0, m * k)
                .prop_map(move |v| Matrix::from_vec(m, k, v)),
            proptest::collection::vec(-3.0f32..3.0, k * n)
                .prop_map(move |v| Matrix::from_vec(k, n, v)),
        )
    })
}

/// Tall/skinny and wide/flat operands: one dimension large, others tiny.
fn skewed_case() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..=3, 1usize..=3, 48usize..=96, proptest::bool::ANY).prop_flat_map(
        |(small_a, small_b, big, tall)| {
            let (m, n, k) = if tall {
                (big, small_b, small_a)
            } else {
                (small_a, small_b, big)
            };
            (
                proptest::collection::vec(-2.0f32..2.0, m * k)
                    .prop_map(move |v| Matrix::from_vec(m, k, v)),
                proptest::collection::vec(-2.0f32..2.0, k * n)
                    .prop_map(move |v| Matrix::from_vec(k, n, v)),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_matches_reference((_m, _n, a, b) in mm_case()) {
        let got = kernels::matmul(&a, &b);
        let want = reference::matmul(&a, &b);
        prop_assert!(max_rel_err(&got, &want) <= REL_TOL);
    }

    #[test]
    fn matmul_bt_matches_reference((_m, _n, a, b) in mm_case()) {
        // b is [k,n]; the bt kernel wants [n,k], so transpose the operand.
        let bt = b.transposed();
        let got = kernels::matmul_bt(&a, &bt);
        let want = reference::matmul_bt(&a, &bt);
        prop_assert!(max_rel_err(&got, &want) <= REL_TOL);
    }

    #[test]
    fn matmul_at_matches_reference((_m, _n, a, b) in mm_case()) {
        // a is [m,k]; the at kernel wants [k,m], so transpose the operand.
        let at = a.transposed();
        let got = kernels::matmul_at(&at, &b);
        let want = reference::matmul_at(&at, &b);
        prop_assert!(max_rel_err(&got, &want) <= REL_TOL);
    }

    #[test]
    fn matmul_skewed_shapes((a, b) in skewed_case()) {
        let got = kernels::matmul(&a, &b);
        let want = reference::matmul(&a, &b);
        prop_assert!(max_rel_err(&got, &want) <= REL_TOL);
    }

    #[test]
    fn matmul_into_accumulate_equals_naive_plus_prior((_m, _n, a, b) in mm_case()) {
        let prior_data: Vec<f32> = (0..a.rows() * b.cols())
            .map(|i| 0.25 * (i % 7) as f32 - 0.75)
            .collect();
        let mut out = Matrix::from_vec(a.rows(), b.cols(), prior_data.clone());
        kernels::matmul_into(&a, &b, &mut out, true);
        let mut want = reference::matmul(&a, &b);
        for (w, p) in want.data_mut().iter_mut().zip(prior_data.iter()) {
            *w += p;
        }
        prop_assert!(max_rel_err(&out, &want) <= REL_TOL);
    }

    #[test]
    fn matmul_bt_into_accumulate_equals_naive_plus_prior((_m, _n, a, b) in mm_case()) {
        let bt = b.transposed();
        let prior_data: Vec<f32> = (0..a.rows() * bt.rows())
            .map(|i| 0.1 * (i % 11) as f32 - 0.5)
            .collect();
        let mut out = Matrix::from_vec(a.rows(), bt.rows(), prior_data.clone());
        kernels::matmul_bt_into(&a, &bt, &mut out, true);
        let mut want = reference::matmul_bt(&a, &bt);
        for (w, p) in want.data_mut().iter_mut().zip(prior_data.iter()) {
            *w += p;
        }
        prop_assert!(max_rel_err(&out, &want) <= REL_TOL);
    }

    #[test]
    fn matmul_at_into_accumulate_equals_naive_plus_prior((_m, _n, a, b) in mm_case()) {
        let at = a.transposed();
        let prior_data: Vec<f32> = (0..at.cols() * b.cols())
            .map(|i| 0.2 * (i % 5) as f32 - 0.4)
            .collect();
        let mut out = Matrix::from_vec(at.cols(), b.cols(), prior_data.clone());
        kernels::matmul_at_into(&at, &b, &mut out, true);
        let mut want = reference::matmul_at(&at, &b);
        for (w, p) in want.data_mut().iter_mut().zip(prior_data.iter()) {
            *w += p;
        }
        prop_assert!(max_rel_err(&out, &want) <= REL_TOL);
    }

    #[test]
    fn matmul_into_overwrite_equals_fresh((_m, _n, a, b) in mm_case()) {
        // accumulate=false must fully overwrite stale garbage in `out`.
        let mut out = Matrix::full(a.rows(), b.cols(), f32::MAX / 2.0);
        kernels::matmul_into(&a, &b, &mut out, false);
        let want = kernels::matmul(&a, &b);
        prop_assert!(max_rel_err(&out, &want) <= REL_TOL);
    }
}

/// The degenerate shapes spelled out in the acceptance criteria, pinned
/// explicitly (proptest covers them probabilistically).
#[test]
fn explicit_degenerate_shapes_match_reference() {
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),    // scalar product
        (1, 7, 0),    // k = 0: result is all zeros
        (3, 1, 0),    // k = 0, column output
        (1, 1, 16),   // dot product through the tile path
        (64, 1, 3),   // tall and skinny
        (1, 64, 3),   // wide and flat
        (5, 7, 9),    // nothing divides the 4x8 tile
        (13, 3, 17),  // prime edges
        (32, 32, 32), // exact tile multiples
    ];
    // Tolerance, not bitwise: on FMA builds the blocked kernels' fused
    // chains round differently from the reference's separate multiply+add
    // (the bitwise guarantee is blocked-vs-blocked across thread counts,
    // pinned below, not blocked-vs-reference).
    for &(m, n, k) in shapes {
        let a = Matrix::from_vec(m, k, (0..m * k).map(|i| 0.3 * i as f32 - 1.0).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|i| 0.7 - 0.2 * i as f32).collect());
        let got = kernels::matmul(&a, &b);
        let want = reference::matmul(&a, &b);
        assert!(max_rel_err(&got, &want) <= REL_TOL, "matmul at {m}x{n}x{k}");
        if k > 0 {
            let bt = b.transposed();
            assert!(
                max_rel_err(&kernels::matmul_bt(&a, &bt), &reference::matmul_bt(&a, &bt))
                    <= REL_TOL,
                "matmul_bt at {m}x{n}x{k}"
            );
            let at = a.transposed();
            assert!(
                max_rel_err(&kernels::matmul_at(&at, &b), &reference::matmul_at(&at, &b))
                    <= REL_TOL,
                "matmul_at at {m}x{n}x{k}"
            );
        }
    }
}

/// Forcing different worker counts must not change a single bit: every
/// output element is one serial ascending-`p` chain regardless of how rows
/// are banded across threads. This is the only test in the binary that
/// touches the global thread override, so there is no cross-test race.
#[test]
fn thread_override_is_bitwise_invisible() {
    // 2*170^3 ≈ 9.8 MFLOP clears the parallel-dispatch threshold.
    let n = 170;
    let a = Matrix::from_vec(
        n,
        n,
        (0..n * n)
            .map(|i| ((i * 37) % 97) as f32 * 0.021 - 1.0)
            .collect(),
    );
    let b = Matrix::from_vec(
        n,
        n,
        (0..n * n)
            .map(|i| ((i * 53) % 89) as f32 * 0.017 - 0.7)
            .collect(),
    );

    kernels::set_num_threads(1);
    let serial = kernels::matmul(&a, &b);
    let serial_bt = kernels::matmul_bt(&a, &b);
    let serial_at = kernels::matmul_at(&a, &b);
    for threads in [2, 3, 5, 8] {
        kernels::set_num_threads(threads);
        assert_eq!(
            kernels::matmul(&a, &b).data(),
            serial.data(),
            "{threads} threads"
        );
        assert_eq!(
            kernels::matmul_bt(&a, &b).data(),
            serial_bt.data(),
            "{threads} threads"
        );
        assert_eq!(
            kernels::matmul_at(&a, &b).data(),
            serial_at.data(),
            "{threads} threads"
        );
    }
    kernels::set_num_threads(0); // restore "unset"
}
