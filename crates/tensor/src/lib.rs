//! # infuserki-tensor
//!
//! A small, dependency-light CPU tensor library with tape-based reverse-mode
//! automatic differentiation, purpose-built as the numerical substrate for the
//! InfuserKI reproduction.
//!
//! Design notes (see `DESIGN.md` at the workspace root):
//!
//! * All values are dense, row-major `f32` matrices ([`Matrix`]). Sequences of
//!   token embeddings are `[seq, d]` matrices; scalars are `[1, 1]`.
//! * Autograd is a **tape** ([`Tape`]): every operation appends a node holding
//!   its op tag ([`Op`]), parent node ids and the eagerly computed value.
//!   [`Tape::backward`] walks the tape in reverse, matching on the op enum —
//!   no boxed closures, so tapes are `Send` and backward dispatch is a jump
//!   table over a dense `Vec`.
//! * Trainable parameters live *outside* tapes in [`ParamSet`]s. A parameter is
//!   leafed into a tape once per forward pass (cached by [`Tape::param`]);
//!   after `backward`, [`Tape::grads`] extracts per-parameter gradients into a
//!   mergeable [`Gradients`] map, enabling data-parallel batch accumulation.
//!
//! Gradient correctness for every op is property-tested against central finite
//! differences (see `tests/` and [`check`]).

mod backward;
pub mod batch;
pub mod check;
pub mod error;
pub mod infer;
pub mod init;
pub mod kernels;
pub mod matrix;
pub mod op;
pub mod param;
pub mod quant;
pub mod simd;
pub mod tape;

pub use batch::SeqBatch;
pub use error::TensorError;
pub use matrix::Matrix;
pub use op::Op;
pub use param::{Gradients, Param, ParamId, ParamSet};
pub use quant::{QuantSpec, QuantizedMatrix};
pub use simd::Isa;
pub use tape::{NodeId, Tape};
