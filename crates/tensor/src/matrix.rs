//! Dense row-major `f32` matrix — the single value type of the engine.

use crate::error::TensorError;
use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` matrix.
///
/// All tensor values in the engine are 2-D: a token-embedding sequence is
/// `[seq, d]`, a scalar loss is `[1, 1]`, a bias row is `[1, d]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Fallible variant of [`Matrix::from_vec`] for deserialization paths.
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::Corrupt(format!(
                "buffer length {} != {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// A `[1, 1]` scalar matrix.
    pub fn scalar(v: f32) -> Self {
        Matrix::from_vec(1, 1, vec![v])
    }

    /// A `[1, n]` row vector.
    pub fn row_vec(v: Vec<f32>) -> Self {
        let n = v.len();
        Matrix::from_vec(1, n, v)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable slice over row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable slice over row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The value of a `[1,1]` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not `[1,1]`.
    pub fn scalar_value(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar_value on non-scalar matrix");
        self.data[0]
    }

    /// Sets every element to zero, reusing the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// In-place element-wise `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// In-place scaling `self *= alpha`.
    pub fn scale_assign(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|v| *v *= alpha);
    }

    /// Appends `other`'s rows below `self`'s (KV-cache growth).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn append_rows(&mut self, other: &Matrix) {
        assert_eq!(self.cols, other.cols, "append_rows: col mismatch");
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Owned row slice `[start..end, ..)` — how the batched runtime peels one
    /// sequence out of a packed ragged batch.
    ///
    /// # Panics
    /// Panics on an empty or out-of-bounds range.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start < end && end <= self.rows, "slice_rows: bad range");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Overwrites rows `start..start + src.rows()` with `src` — the repacking
    /// half of per-sequence batched processing.
    ///
    /// # Panics
    /// Panics on column mismatch or if the rows don't fit.
    pub fn copy_rows_from(&mut self, start: usize, src: &Matrix) {
        assert_eq!(self.cols, src.cols, "copy_rows_from: col mismatch");
        assert!(
            start + src.rows <= self.rows,
            "copy_rows_from: rows {}..{} out of bounds for {}",
            start,
            start + src.rows,
            self.rows
        );
        self.data[start * self.cols..(start + src.rows) * self.cols].copy_from_slice(&src.data);
    }

    /// Reserves capacity for at least `extra` more rows, so subsequent
    /// [`Matrix::append_rows`] calls (KV-cache growth during decoding) do not
    /// reallocate.
    pub fn reserve_rows(&mut self, extra: usize) {
        self.data.reserve(extra * self.cols);
    }

    /// Rows the current allocation can hold without reallocating (equals
    /// [`Matrix::rows`] at minimum). Zero-column matrices report their row
    /// count. Exposed so tests can pin KV-cache reservation behavior.
    pub fn row_capacity(&self) -> usize {
        self.data
            .capacity()
            .checked_div(self.cols)
            .unwrap_or(self.rows)
    }

    /// Releases spare row capacity, shrinking the allocation to the live
    /// rows. The KV cache calls this when compacting after retiring
    /// sequences, so unused decode reservations are actually returned to the
    /// allocator.
    pub fn shrink_to_fit(&mut self) {
        self.data.shrink_to_fit();
    }

    /// Owned column slice `[.., start..end)`.
    ///
    /// # Panics
    /// Panics on an empty or out-of-bounds range.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start < end && end <= self.cols, "slice_cols: bad range");
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Frobenius (L2) norm of the buffer.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element, or 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, v| m.max(v.abs()))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_round_trip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn try_from_vec_rejects_bad_len() {
        assert!(Matrix::try_from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::try_from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn row_access() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = m.transposed();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::full(1, 3, 1.0);
        let b = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3., 5., 7.]);
        a.scale_assign(0.5);
        assert_eq!(a.data(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(1, 2, vec![3.0, -4.0]);
        assert!((m.l2_norm() - 5.0).abs() < 1e-6);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.sum(), -1.0);
    }

    #[test]
    fn scalar_helpers() {
        let s = Matrix::scalar(2.5);
        assert_eq!(s.scalar_value(), 2.5);
        let r = Matrix::row_vec(vec![1.0, 2.0]);
        assert_eq!(r.shape(), (1, 2));
    }

    #[test]
    fn finite_check() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.all_finite());
        m.set(0, 1, f32::NAN);
        assert!(!m.all_finite());
    }

    #[test]
    fn slice_and_copy_rows_round_trip() {
        let m = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let mid = m.slice_rows(1, 3);
        assert_eq!(mid.shape(), (2, 2));
        assert_eq!(mid.data(), &[3., 4., 5., 6.]);
        let mut out = Matrix::zeros(3, 2);
        out.copy_rows_from(1, &mid);
        assert_eq!(out.row(0), &[0., 0.]);
        assert_eq!(out.row(1), &[3., 4.]);
        assert_eq!(out.row(2), &[5., 6.]);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn slice_rows_rejects_bad_range() {
        Matrix::zeros(2, 2).slice_rows(1, 4);
    }

    #[test]
    fn reserve_rows_prevents_reallocation_on_append() {
        let mut m = Matrix::zeros(1, 4);
        m.reserve_rows(10);
        assert!(m.row_capacity() >= 11);
        let ptr = m.data().as_ptr();
        for _ in 0..10 {
            m.append_rows(&Matrix::full(1, 4, 1.0));
        }
        assert_eq!(m.rows(), 11);
        assert_eq!(
            m.data().as_ptr(),
            ptr,
            "append within reserve must not move"
        );
    }

    #[test]
    fn shrink_to_fit_releases_reservation() {
        let mut m = Matrix::full(3, 4, 1.0);
        m.reserve_rows(32);
        assert!(m.row_capacity() >= 35);
        m.shrink_to_fit();
        assert_eq!(m.row_capacity(), 3);
        assert_eq!(m.row(2), &[1.0; 4]);
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let s = serde_json::to_string(&m);
        // serde_json is not a dependency of this crate's tests; use bincode-free
        // manual check instead when unavailable.
        if let Ok(s) = s {
            let back: Matrix = serde_json::from_str(&s).unwrap();
            assert_eq!(back, m);
        }
    }
}
