//! Finite-difference gradient checking.
//!
//! Used by the property-test suite to verify every op's backward rule: a
//! scalar loss is built from a parameter by an arbitrary closure, the autograd
//! gradient is compared element-wise against central differences.

use crate::matrix::Matrix;
use crate::param::Param;
use crate::tape::{NodeId, Tape};

/// Result of a gradient check: worst absolute and relative deviation.
#[derive(Debug, Clone, Copy)]
pub struct GradCheck {
    /// Largest `|autograd - finite_diff|` over all elements.
    pub max_abs_err: f32,
    /// Largest `|autograd - fd| / max(1, |autograd|, |fd|)`.
    pub max_rel_err: f32,
}

impl GradCheck {
    /// True when both deviations are below `tol`.
    pub fn within(&self, tol: f32) -> bool {
        self.max_abs_err <= tol || self.max_rel_err <= tol
    }
}

/// Checks the gradient of `build` with respect to `data`.
///
/// `build` receives a tape and the leafed parameter node and must return a
/// scalar loss node. The function runs autograd once, then perturbs each
/// element of `data` by ±`eps` and compares.
pub fn check_gradient(
    data: &Matrix,
    eps: f32,
    build: impl Fn(&mut Tape, NodeId) -> NodeId,
) -> GradCheck {
    let param = Param::new("gc", data.clone());
    let mut tape = Tape::new();
    let x = tape.param(&param);
    let loss = build(&mut tape, x);
    tape.backward(loss);
    let auto = tape
        .grads()
        .get(param.id())
        .cloned()
        .unwrap_or_else(|| Matrix::zeros(data.rows(), data.cols()));

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for i in 0..data.len() {
        let eval = |v: f32| -> f32 {
            let mut d = data.clone();
            d.data_mut()[i] = v;
            let p = Param::new("gc", d);
            let mut t = Tape::new();
            let x = t.param(&p);
            let l = build(&mut t, x);
            t.value(l).scalar_value()
        };
        let base = data.data()[i];
        let fd = (eval(base + eps) - eval(base - eps)) / (2.0 * eps);
        let ag = auto.data()[i];
        let abs = (ag - fd).abs();
        let rel = abs / 1.0f32.max(ag.abs()).max(fd.abs());
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheck {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_checks_out() {
        // loss = sum(x^2) via mul + mean; grad = 2x * (1/len) scaling handled
        let data = Matrix::from_vec(2, 2, vec![0.5, -1.0, 2.0, 0.1]);
        let res = check_gradient(&data, 1e-3, |t, x| {
            let sq = t.mul(x, x);
            let m = t.mean_rows(sq); // [1,2]
            let mm = t.mean_rows(m); // still [1,2]? no: mean_rows of [1,2] -> [1,2]
            let ones = t.leaf(Matrix::from_vec(2, 1, vec![1.0, 1.0]));
            t.matmul(mm, ones)
        });
        assert!(res.within(1e-2), "{res:?}");
    }

    #[test]
    fn detects_wrong_gradients() {
        // A deliberately non-differentiable-at-kink check still passes away
        // from the kink; here we verify the checker reports small error for
        // relu on strictly positive input.
        let data = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let res = check_gradient(&data, 1e-3, |t, x| {
            let r = t.relu(x);
            let ones = t.leaf(Matrix::from_vec(3, 1, vec![1.0; 3]));
            t.matmul(r, ones)
        });
        assert!(res.within(1e-2), "{res:?}");
    }
}
