//! Deterministic weight initialization.
//!
//! All randomness flows through a caller-supplied [`rand::Rng`]; experiments
//! seed a `ChaCha8Rng` so every run is reproducible bit-for-bit.

use rand::Rng;

use crate::matrix::Matrix;

/// Samples a `rows × cols` matrix from `N(0, std²)` (Box–Muller).
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        // Box–Muller transform produces two independent normals per draw.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < rows * cols {
            data.push(r * theta.sin() * std);
        }
    }
    Matrix::from_vec(rows, cols, data)
}

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Uniform `U(lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let m = normal(100, 100, 0.5, &mut rng);
        let mean = m.sum() / m.len() as f32;
        let var = m
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / m.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn init_is_deterministic_for_same_seed() {
        let a = normal(4, 4, 1.0, &mut ChaCha8Rng::seed_from_u64(42));
        let b = normal(4, 4, 1.0, &mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = xavier_uniform(10, 30, &mut rng);
        let a = (6.0f32 / 40.0).sqrt();
        assert!(m.data().iter().all(|&v| v > -a && v < a));
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = uniform(5, 5, -0.1, 0.1, &mut rng);
        assert!(m.data().iter().all(|&v| (-0.1..0.1).contains(&v)));
    }

    #[test]
    fn normal_odd_element_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = normal(1, 3, 1.0, &mut rng);
        assert_eq!(m.len(), 3);
        assert!(m.all_finite());
    }
}
