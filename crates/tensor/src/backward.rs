//! Reverse-mode differentiation over a recorded tape.

use crate::kernels;
use crate::matrix::Matrix;
use crate::op::{Op, IGNORE_INDEX};
use crate::param::Gradients;
use crate::tape::{NodeId, Tape};

fn accumulate(slot: &mut Option<Matrix>, delta: Matrix) {
    match slot {
        Some(g) => g.add_assign(&delta),
        None => *slot = Some(delta),
    }
}

/// Accumulates a `rows×cols` matrix-product contribution directly into
/// `slot` via an allocation-free `_into` kernel: an occupied slot is passed
/// with `accumulate=true` (no temporary, no add pass); an empty slot is
/// allocated once and overwritten.
fn accumulate_product(
    slot: &mut Option<Matrix>,
    rows: usize,
    cols: usize,
    compute: impl FnOnce(&mut Matrix, bool),
) {
    match slot {
        Some(g) => compute(g, true),
        None => {
            let mut g = Matrix::zeros(rows, cols);
            compute(&mut g, false);
            *slot = Some(g);
        }
    }
}

/// Column-sums of `gout` added into `slot` (bias gradient of a row-broadcast
/// add).
fn accumulate_col_sums(slot: &mut Option<Matrix>, gout: &Matrix) {
    if slot.is_none() {
        *slot = Some(Matrix::zeros(1, gout.cols()));
    }
    let db = slot.as_mut().expect("slot just filled");
    for r in 0..gout.rows() {
        for (o, &g) in db.row_mut(0).iter_mut().zip(gout.row(r).iter()) {
            *o += g;
        }
    }
}

impl Tape {
    /// Runs reverse-mode autodiff from the scalar node `root`, filling
    /// per-node gradients (readable via [`Tape::grad`], extractable via
    /// [`Tape::grads`]).
    ///
    /// Nodes recorded after `root` are ignored; nodes that do not contribute
    /// to `root` keep a `None` gradient. Safe to call once per tape.
    ///
    /// # Panics
    /// Panics if `root` is not a `[1,1]` node.
    pub fn backward(&mut self, root: NodeId) {
        assert_eq!(
            self.value(root).shape(),
            (1, 1),
            "backward: root must be a scalar loss"
        );
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        self.grads[root.index()] = Some(Matrix::scalar(1.0));

        for i in (0..=root.index()).rev() {
            // Parents are strictly earlier on the tape (topological order by
            // construction), so split lets us read this node's gradient while
            // mutating parents' slots.
            let (before, after) = self.grads.split_at_mut(i);
            let gout = match &after[0] {
                Some(g) => g,
                None => continue,
            };
            let node = &self.nodes[i];
            backward_op(&node.op, &self.nodes, gout, before);
        }
    }

    /// Extracts per-parameter gradients (leaf nodes carrying a `ParamId`)
    /// into a mergeable map. Call after [`Tape::backward`].
    pub fn grads(&self) -> Gradients {
        let mut out = Gradients::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if let Op::Leaf { param: Some(pid) } = node.op {
                if let Some(g) = &self.grads[i] {
                    out.add(pid, g.clone());
                }
            }
        }
        out
    }
}

/// Propagates `gout` (gradient of node `i`'s output) into `grads_before`
/// (slots for nodes with index < i).
fn backward_op(
    op: &Op,
    nodes: &[crate::tape::Node],
    gout: &Matrix,
    grads_before: &mut [Option<Matrix>],
) {
    let val = |id: NodeId| -> &Matrix { &nodes[id.index()].value };
    match op {
        Op::Leaf { .. } => {}
        Op::MatMul(a, b) => {
            // y = a @ b: dA = g @ bᵀ, dB = aᵀ @ g — both written straight
            // into the gradient slots (no temporaries on the re-visit path).
            let (va, vb) = (val(*a), val(*b));
            accumulate_product(
                &mut grads_before[a.index()],
                gout.rows(),
                vb.rows(),
                |o, acc| {
                    kernels::matmul_bt_into(gout, vb, o, acc);
                },
            );
            accumulate_product(
                &mut grads_before[b.index()],
                va.cols(),
                gout.cols(),
                |o, acc| {
                    kernels::matmul_at_into(va, gout, o, acc);
                },
            );
        }
        Op::MatMulBt(a, b) => {
            // y = a @ bᵀ: dA = g @ b, dB = gᵀ @ a
            let (va, vb) = (val(*a), val(*b));
            accumulate_product(
                &mut grads_before[a.index()],
                gout.rows(),
                vb.cols(),
                |o, acc| {
                    kernels::matmul_into(gout, vb, o, acc);
                },
            );
            accumulate_product(
                &mut grads_before[b.index()],
                gout.cols(),
                va.cols(),
                |o, acc| {
                    kernels::matmul_at_into(gout, va, o, acc);
                },
            );
        }
        Op::Affine { x, w, bias } => {
            // y = x @ w + 1·biasᵀ: dX = g @ wᵀ, dW = xᵀ @ g, dbias = Σ_rows g
            let (vx, vw) = (val(*x), val(*w));
            accumulate_product(
                &mut grads_before[x.index()],
                gout.rows(),
                vw.rows(),
                |o, acc| {
                    kernels::matmul_bt_into(gout, vw, o, acc);
                },
            );
            accumulate_product(
                &mut grads_before[w.index()],
                vx.cols(),
                gout.cols(),
                |o, acc| {
                    kernels::matmul_at_into(vx, gout, o, acc);
                },
            );
            accumulate_col_sums(&mut grads_before[bias.index()], gout);
        }
        Op::Add(a, b) => {
            accumulate(&mut grads_before[a.index()], gout.clone());
            accumulate(&mut grads_before[b.index()], gout.clone());
        }
        Op::AddRowBroadcast(a, b) => {
            accumulate(&mut grads_before[a.index()], gout.clone());
            accumulate_col_sums(&mut grads_before[b.index()], gout);
        }
        Op::Sub(a, b) => {
            accumulate(&mut grads_before[a.index()], gout.clone());
            let mut db = gout.clone();
            db.scale_assign(-1.0);
            accumulate(&mut grads_before[b.index()], db);
        }
        Op::Mul(a, b) => {
            let mut da = gout.clone();
            for (x, y) in da.data_mut().iter_mut().zip(val(*b).data().iter()) {
                *x *= y;
            }
            let mut db = gout.clone();
            for (x, y) in db.data_mut().iter_mut().zip(val(*a).data().iter()) {
                *x *= y;
            }
            accumulate(&mut grads_before[a.index()], da);
            accumulate(&mut grads_before[b.index()], db);
        }
        Op::MulScalarNode(a, s) => {
            let sv = val(*s).scalar_value();
            let mut da = gout.clone();
            da.scale_assign(sv);
            accumulate(&mut grads_before[a.index()], da);
            let ds: f32 = gout
                .data()
                .iter()
                .zip(val(*a).data().iter())
                .map(|(&g, &x)| g * x)
                .sum();
            accumulate(&mut grads_before[s.index()], Matrix::scalar(ds));
        }
        Op::Scale(a, c) => {
            let mut da = gout.clone();
            da.scale_assign(*c);
            accumulate(&mut grads_before[a.index()], da);
        }
        Op::Transpose(a) => {
            accumulate(&mut grads_before[a.index()], gout.transposed());
        }
        Op::Softmax(a) => {
            // y known from the node's own forward; recompute from the input.
            let y = kernels::softmax_rows(val(*a));
            let mut da = Matrix::zeros(y.rows(), y.cols());
            for r in 0..y.rows() {
                let yr = y.row(r);
                let gr = gout.row(r);
                let dotp = kernels::dot(gr, yr);
                for (c, o) in da.row_mut(r).iter_mut().enumerate() {
                    *o = yr[c] * (gr[c] - dotp);
                }
            }
            accumulate(&mut grads_before[a.index()], da);
        }
        Op::LogSoftmax(a) => {
            let p = kernels::softmax_rows(val(*a));
            let mut da = Matrix::zeros(p.rows(), p.cols());
            for r in 0..p.rows() {
                let gr = gout.row(r);
                let gsum: f32 = gr.iter().sum();
                let pr = p.row(r);
                for (c, o) in da.row_mut(r).iter_mut().enumerate() {
                    *o = gr[c] - pr[c] * gsum;
                }
            }
            accumulate(&mut grads_before[a.index()], da);
        }
        Op::LayerNorm { x, gain, bias, eps } => {
            let vx = val(*x);
            let vg = val(*gain);
            let (n, d) = vx.shape();
            let mut dx = Matrix::zeros(n, d);
            let mut dgain = Matrix::zeros(1, d);
            let mut dbias = Matrix::zeros(1, d);
            for r in 0..n {
                let row = vx.row(r);
                let mean = row.iter().sum::<f32>() / d as f32;
                let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
                let inv = 1.0 / (var + eps).sqrt();
                let gr = gout.row(r);
                // dgain, dbias and the two per-row means of dxhat statistics
                let mut mean_dxhat = 0.0f32;
                let mut mean_dxhat_xhat = 0.0f32;
                let mut xhat = vec![0.0f32; d];
                let mut dxhat = vec![0.0f32; d];
                for c in 0..d {
                    xhat[c] = (row[c] - mean) * inv;
                    dxhat[c] = gr[c] * vg.get(0, c);
                    mean_dxhat += dxhat[c];
                    mean_dxhat_xhat += dxhat[c] * xhat[c];
                    dgain.row_mut(0)[c] += gr[c] * xhat[c];
                    dbias.row_mut(0)[c] += gr[c];
                }
                mean_dxhat /= d as f32;
                mean_dxhat_xhat /= d as f32;
                for (c, o) in dx.row_mut(r).iter_mut().enumerate() {
                    *o = inv * (dxhat[c] - mean_dxhat - xhat[c] * mean_dxhat_xhat);
                }
            }
            accumulate(&mut grads_before[x.index()], dx);
            accumulate(&mut grads_before[gain.index()], dgain);
            accumulate(&mut grads_before[bias.index()], dbias);
        }
        Op::Relu(a) => {
            let mut da = gout.clone();
            for (g, &x) in da.data_mut().iter_mut().zip(val(*a).data().iter()) {
                if x <= 0.0 {
                    *g = 0.0;
                }
            }
            accumulate(&mut grads_before[a.index()], da);
        }
        Op::Gelu(a) => {
            let mut da = gout.clone();
            for (g, &x) in da.data_mut().iter_mut().zip(val(*a).data().iter()) {
                *g *= kernels::gelu_grad(x);
            }
            accumulate(&mut grads_before[a.index()], da);
        }
        Op::Silu(a) => {
            let mut da = gout.clone();
            for (g, &x) in da.data_mut().iter_mut().zip(val(*a).data().iter()) {
                *g *= kernels::silu_grad(x);
            }
            accumulate(&mut grads_before[a.index()], da);
        }
        Op::Sigmoid(a) => {
            let mut da = gout.clone();
            for (g, &x) in da.data_mut().iter_mut().zip(val(*a).data().iter()) {
                let y = kernels::sigmoid(x);
                *g *= y * (1.0 - y);
            }
            accumulate(&mut grads_before[a.index()], da);
        }
        Op::Tanh(a) => {
            let mut da = gout.clone();
            for (g, &x) in da.data_mut().iter_mut().zip(val(*a).data().iter()) {
                let y = x.tanh();
                *g *= 1.0 - y * y;
            }
            accumulate(&mut grads_before[a.index()], da);
        }
        Op::Embedding { weight, ids } => {
            let w = val(*weight);
            let mut dw = Matrix::zeros(w.rows(), w.cols());
            for (r, &id) in ids.iter().enumerate() {
                let src = gout.row(r);
                for (o, &g) in dw.row_mut(id).iter_mut().zip(src.iter()) {
                    *o += g;
                }
            }
            accumulate(&mut grads_before[weight.index()], dw);
        }
        Op::MeanRows(a) => {
            let va = val(*a);
            let n = va.rows();
            let scale = 1.0 / n as f32;
            let mut da = Matrix::zeros(n, va.cols());
            for r in 0..n {
                for (o, &g) in da.row_mut(r).iter_mut().zip(gout.row(0).iter()) {
                    *o = g * scale;
                }
            }
            accumulate(&mut grads_before[a.index()], da);
        }
        Op::CumMeanRows(a) => {
            // out[t] = (1/(t+1)) Σ_{i<=t} x[i], so dL/dx[i] = Σ_{t>=i} g[t]/(t+1):
            // a reverse suffix accumulation of the scaled output gradients.
            let va = val(*a);
            let (n, d) = va.shape();
            let mut da = Matrix::zeros(n, d);
            let mut acc = vec![0.0f32; d];
            for t in (0..n).rev() {
                let scale = 1.0 / (t + 1) as f32;
                for (s, &g) in acc.iter_mut().zip(gout.row(t).iter()) {
                    *s += g * scale;
                }
                da.row_mut(t).copy_from_slice(&acc);
            }
            accumulate(&mut grads_before[a.index()], da);
        }
        Op::MulColBroadcast(a, s) => {
            // out[t] = a[t] * s[t]: da[t] = g[t]*s[t], ds[t] = <g[t], a[t]>
            let vs = val(*s);
            let mut da = gout.clone();
            for r in 0..da.rows() {
                let sv = vs.get(r, 0);
                for x in da.row_mut(r) {
                    *x *= sv;
                }
            }
            accumulate(&mut grads_before[a.index()], da);
            let va = val(*a);
            let mut ds = Matrix::zeros(gout.rows(), 1);
            for r in 0..gout.rows() {
                ds.set(r, 0, kernels::dot(gout.row(r), va.row(r)));
            }
            accumulate(&mut grads_before[s.index()], ds);
        }
        Op::MeanSelectedRows(a, rows) => {
            let va = val(*a);
            let scale = 1.0 / rows.len() as f32;
            let mut da = Matrix::zeros(va.rows(), va.cols());
            for &r in rows {
                for (o, &g) in da.row_mut(r).iter_mut().zip(gout.row(0).iter()) {
                    *o += g * scale;
                }
            }
            accumulate(&mut grads_before[a.index()], da);
        }
        Op::ConcatRows(a, b) => {
            let na = val(*a).rows();
            let cols = gout.cols();
            let da = Matrix::from_vec(na, cols, gout.data()[..na * cols].to_vec());
            let db = Matrix::from_vec(gout.rows() - na, cols, gout.data()[na * cols..].to_vec());
            accumulate(&mut grads_before[a.index()], da);
            accumulate(&mut grads_before[b.index()], db);
        }
        Op::ConcatCols(parts) => {
            let mut off = 0;
            for &p in parts {
                let vp = val(p);
                let w = vp.cols();
                let mut dp = Matrix::zeros(vp.rows(), w);
                for r in 0..vp.rows() {
                    dp.row_mut(r).copy_from_slice(&gout.row(r)[off..off + w]);
                }
                accumulate(&mut grads_before[p.index()], dp);
                off += w;
            }
        }
        Op::SliceCols(a, start, end) => {
            let va = val(*a);
            let mut da = Matrix::zeros(va.rows(), va.cols());
            for r in 0..va.rows() {
                da.row_mut(r)[*start..*end].copy_from_slice(gout.row(r));
            }
            accumulate(&mut grads_before[a.index()], da);
        }
        Op::SliceRows(a, start, end) => {
            let va = val(*a);
            let mut da = Matrix::zeros(va.rows(), va.cols());
            for (gr, r) in (*start..*end).enumerate() {
                da.row_mut(r).copy_from_slice(gout.row(gr));
            }
            accumulate(&mut grads_before[a.index()], da);
        }
        Op::CausalMask { a, .. } => {
            // Adding a constant mask: gradient passes through unchanged.
            accumulate(&mut grads_before[a.index()], gout.clone());
        }
        Op::CrossEntropy { logits, targets } => {
            let vl = val(*logits);
            let p = kernels::softmax_rows(vl);
            let count = targets.iter().filter(|&&t| t != IGNORE_INDEX).count() as f32;
            let gv = gout.scalar_value() / count;
            let mut dl = Matrix::zeros(vl.rows(), vl.cols());
            for (r, &t) in targets.iter().enumerate() {
                if t == IGNORE_INDEX {
                    continue;
                }
                let pr = p.row(r);
                let out = dl.row_mut(r);
                for (c, o) in out.iter_mut().enumerate() {
                    *o = gv * (pr[c] - if c == t { 1.0 } else { 0.0 });
                }
            }
            accumulate(&mut grads_before[logits.index()], dl);
        }
        Op::BceWithLogits { logits, targets } => {
            let vl = val(*logits);
            let gv = gout.scalar_value() / targets.len() as f32;
            let mut dl = Matrix::zeros(vl.rows(), 1);
            for (r, &y) in targets.iter().enumerate() {
                let z = vl.get(r, 0);
                dl.set(r, 0, gv * (kernels::sigmoid(z) - y));
            }
            accumulate(&mut grads_before[logits.index()], dl);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    #[test]
    fn backward_through_matmul_chain() {
        // loss = sum(a @ b) with a=[1,2], b=[2,1]
        let mut t = Tape::new();
        let pa = Param::new("a", Matrix::from_vec(1, 2, vec![2.0, 3.0]));
        let pb = Param::new("b", Matrix::from_vec(2, 1, vec![5.0, 7.0]));
        let a = t.param(&pa);
        let b = t.param(&pb);
        let c = t.matmul(a, b); // 2*5 + 3*7 = 31
        t.backward(c);
        let g = t.grads();
        assert_eq!(g.get(pa.id()).unwrap().data(), &[5.0, 7.0]);
        assert_eq!(g.get(pb.id()).unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    fn backward_accumulates_on_shared_nodes() {
        // loss = (x + x) reduced to scalar: dx = 2
        let mut t = Tape::new();
        let p = Param::new("x", Matrix::scalar(4.0));
        let x = t.param(&p);
        let y = t.add(x, x);
        t.backward(y);
        assert_eq!(t.grads().get(p.id()).unwrap().scalar_value(), 2.0);
    }

    #[test]
    fn backward_cross_entropy_points_toward_target() {
        let mut t = Tape::new();
        let p = Param::new("l", Matrix::from_vec(1, 3, vec![0.0, 0.0, 0.0]));
        let l = t.param(&p);
        let loss = t.cross_entropy(l, &[1]);
        t.backward(loss);
        let g = t.grads();
        let gl = g.get(p.id()).unwrap();
        // gradient is softmax - onehot: [1/3, 1/3-1, 1/3]
        assert!((gl.get(0, 0) - 1.0 / 3.0).abs() < 1e-5);
        assert!((gl.get(0, 1) + 2.0 / 3.0).abs() < 1e-5);
        assert!(gl.get(0, 1) < 0.0, "target logit should be pushed up");
    }

    #[test]
    fn backward_ignores_unrelated_nodes() {
        let mut t = Tape::new();
        let p = Param::new("x", Matrix::scalar(1.0));
        let x = t.param(&p);
        let _unused = t.scale(x, 3.0);
        let y = t.scale(x, 2.0);
        t.backward(y);
        assert_eq!(t.grads().get(p.id()).unwrap().scalar_value(), 2.0);
    }

    #[test]
    fn mul_scalar_node_grads() {
        let mut t = Tape::new();
        let pa = Param::new("a", Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let ps = Param::new("s", Matrix::scalar(0.5));
        let a = t.param(&pa);
        let s = t.param(&ps);
        let o = t.mul_scalar_node(a, s);
        let m = t.mean_rows(o); // [1,2] mean over rows = identity here
        let loss = t.matmul_bt(m, m); // sum of squares scaled
        t.backward(loss);
        let g = t.grads();
        assert!(g.get(pa.id()).is_some());
        assert!(g.get(ps.id()).is_some());
        // loss = s^2 (9+16) = 25 s^2, so dL/ds = 50 s = 25 at s = 0.5
        let gs = g.get(ps.id()).unwrap().scalar_value();
        assert!((gs - 25.0).abs() < 1e-4, "gs = {gs}");
    }
}
