//! The autograd tape: eager forward evaluation + recorded graph.

use std::collections::HashMap;

use crate::infer;
use crate::kernels;
use crate::matrix::Matrix;
use crate::op::{Op, IGNORE_INDEX};
use crate::param::{Param, ParamId};

/// Index of a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index into the tape's node vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

pub(crate) struct Node {
    pub(crate) op: Op,
    pub(crate) value: Matrix,
}

/// A single forward pass: values are computed eagerly as ops are recorded;
/// [`Tape::backward`](crate::Tape::backward) then fills per-node gradients.
///
/// One tape per (sample, forward); tapes are cheap to create and are dropped
/// after gradient extraction. Parameters are leafed in at most once per tape
/// via [`Tape::param`].
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
    pub(crate) grads: Vec<Option<Matrix>>,
    leaf_cache: HashMap<ParamId, NodeId>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `id`.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.index()].value
    }

    /// The gradient of `id` after [`backward`](Self::backward); `None` if the
    /// node did not receive any gradient.
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.grads.get(id.index()).and_then(|g| g.as_ref())
    }

    /// The op recorded at `id` (for diagnostics).
    pub fn op(&self, id: NodeId) -> &Op {
        &self.nodes[id.index()].op
    }

    fn push(&mut self, op: Op, value: Matrix) -> NodeId {
        debug_assert!(value.all_finite() || matches!(op, Op::CausalMask { .. }));
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { op, value });
        id
    }

    // ---- leaves ------------------------------------------------------------

    /// Records a constant input value (no gradient extraction).
    pub fn leaf(&mut self, value: Matrix) -> NodeId {
        self.push(Op::Leaf { param: None }, value)
    }

    /// Leafs a trainable parameter into the tape, copying its current data.
    /// Repeated calls with the same parameter return the cached node.
    pub fn param(&mut self, p: &Param) -> NodeId {
        if let Some(&id) = self.leaf_cache.get(&p.id()) {
            return id;
        }
        let id = self.push(
            Op::Leaf {
                param: Some(p.id()),
            },
            p.data().clone(),
        );
        self.leaf_cache.insert(p.id(), id);
        id
    }

    // ---- linear algebra ----------------------------------------------------

    /// `a @ b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = kernels::matmul(self.value(a), self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// `a @ b^T` without materializing the transpose.
    pub fn matmul_bt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = kernels::matmul_bt(self.value(a), self.value(b));
        self.push(Op::MatMulBt(a, b), v)
    }

    /// Fused `x @ w + bias` (`bias [1,d]` broadcast over rows): the
    /// linear-layer hot path recorded as a single node. The value computation
    /// lives in [`infer::affine`] (shared with the tape-free inference path)
    /// — one output allocation, bias folded in place, so the unfused
    /// intermediate `x @ w` never exists.
    pub fn affine(&mut self, x: NodeId, w: NodeId, bias: NodeId) -> NodeId {
        let v = infer::affine(self.value(x), self.value(w), self.value(bias));
        self.push(Op::Affine { x, w, bias }, v)
    }

    /// Element-wise `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "add: shape mismatch");
        let mut v = va.clone();
        v.add_assign(vb);
        self.push(Op::Add(a, b), v)
    }

    /// `a [n,d] + b [1,d]`, broadcasting `b` over rows.
    pub fn add_row_broadcast(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(vb.rows(), 1, "add_row_broadcast: rhs must be [1,d]");
        assert_eq!(va.cols(), vb.cols(), "add_row_broadcast: col mismatch");
        let mut v = va.clone();
        for r in 0..v.rows() {
            let brow = vb.row(0).to_vec();
            for (x, y) in v.row_mut(r).iter_mut().zip(brow.iter()) {
                *x += y;
            }
        }
        self.push(Op::AddRowBroadcast(a, b), v)
    }

    /// Element-wise `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "sub: shape mismatch");
        let mut v = va.clone();
        for (x, y) in v.data_mut().iter_mut().zip(vb.data().iter()) {
            *x -= y;
        }
        self.push(Op::Sub(a, b), v)
    }

    /// Element-wise `a * b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "mul: shape mismatch");
        let mut v = va.clone();
        for (x, y) in v.data_mut().iter_mut().zip(vb.data().iter()) {
            *x *= y;
        }
        self.push(Op::Mul(a, b), v)
    }

    /// `a * s` where `s` is a differentiable `[1,1]` node — the infuser gate.
    pub fn mul_scalar_node(&mut self, a: NodeId, s: NodeId) -> NodeId {
        assert_eq!(
            self.value(s).shape(),
            (1, 1),
            "mul_scalar_node: gate must be [1,1]"
        );
        let sv = self.value(s).scalar_value();
        let mut v = self.value(a).clone();
        v.scale_assign(sv);
        self.push(Op::MulScalarNode(a, s), v)
    }

    /// `a * c` for a constant `c`.
    pub fn scale(&mut self, a: NodeId, c: f32) -> NodeId {
        let mut v = self.value(a).clone();
        v.scale_assign(c);
        self.push(Op::Scale(a, c), v)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).transposed();
        self.push(Op::Transpose(a), v)
    }

    // ---- normalization & nonlinearity ---------------------------------------

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: NodeId) -> NodeId {
        let v = kernels::softmax_rows(self.value(a));
        self.push(Op::Softmax(a), v)
    }

    /// Row-wise log-softmax.
    pub fn log_softmax(&mut self, a: NodeId) -> NodeId {
        let v = kernels::log_softmax_rows(self.value(a));
        self.push(Op::LogSoftmax(a), v)
    }

    /// Layer normalization over rows with affine gain/bias (`[1,d]` each).
    /// Value computation shared with the tape-free path via
    /// [`infer::layer_norm`].
    pub fn layer_norm(&mut self, x: NodeId, gain: NodeId, bias: NodeId, eps: f32) -> NodeId {
        let v = infer::layer_norm(self.value(x), self.value(gain), self.value(bias), eps);
        self.push(Op::LayerNorm { x, gain, bias, eps }, v)
    }

    /// Element-wise ReLU.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Element-wise GELU (tanh approximation), through the same SIMD-
    /// dispatched [`kernels::gelu_slice`] as the inference path (all tiers
    /// bitwise-equal).
    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        let mut v = self.value(a).clone();
        kernels::gelu_slice(v.data_mut());
        self.push(Op::Gelu(a), v)
    }

    /// Element-wise SiLU.
    pub fn silu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(kernels::silu);
        self.push(Op::Silu(a), v)
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(kernels::sigmoid);
        self.push(Op::Sigmoid(a), v)
    }

    /// Element-wise tanh.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    // ---- structure ----------------------------------------------------------

    /// Gathers rows `ids` from the `[V,d]` table at `weight`.
    pub fn embedding(&mut self, weight: NodeId, ids: &[usize]) -> NodeId {
        let w = self.value(weight);
        let d = w.cols();
        let mut v = Matrix::zeros(ids.len(), d);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < w.rows(), "embedding: id {id} >= vocab {}", w.rows());
            v.row_mut(r).copy_from_slice(w.row(id));
        }
        self.push(
            Op::Embedding {
                weight,
                ids: ids.to_vec(),
            },
            v,
        )
    }

    /// Mean over all rows: `[n,d] -> [1,d]`.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let va = self.value(a);
        let (n, d) = va.shape();
        assert!(n > 0, "mean_rows: empty input");
        let mut v = Matrix::zeros(1, d);
        for r in 0..n {
            let row = va.row(r);
            for (o, &x) in v.row_mut(0).iter_mut().zip(row.iter()) {
                *o += x;
            }
        }
        v.scale_assign(1.0 / n as f32);
        self.push(Op::MeanRows(a), v)
    }

    /// Cumulative prefix mean over rows: `out[t] = mean(x[0..=t])`,
    /// `[n,d] -> [n,d]`. The causal counterpart of [`mean_rows`]
    /// (`Self::mean_rows`): the last output row is bitwise identical to
    /// `mean_rows`, earlier rows see only their prefix — which is what makes
    /// the infuser gate compatible with incremental (KV-cached) decoding.
    /// Value computation shared with the tape-free path via
    /// [`infer::cumulative_mean_rows`].
    pub fn cum_mean_rows(&mut self, a: NodeId) -> NodeId {
        let va = self.value(a);
        assert!(va.rows() > 0, "cum_mean_rows: empty input");
        let v = infer::cumulative_mean_rows(va);
        self.push(Op::CumMeanRows(a), v)
    }

    /// Per-row scaling `out[t] = a[t] * s[t]` where `s` is a differentiable
    /// `[n,1]` node — the causal infuser gate applied row-wise. Value
    /// computation shared with the tape-free path via
    /// [`infer::mul_col_broadcast`].
    pub fn mul_col_broadcast(&mut self, a: NodeId, s: NodeId) -> NodeId {
        let v = infer::mul_col_broadcast(self.value(a), self.value(s));
        self.push(Op::MulColBroadcast(a, s), v)
    }

    /// Mean over the given rows: `[n,d] -> [1,d]` (entity-span pooling).
    pub fn mean_selected_rows(&mut self, a: NodeId, rows: &[usize]) -> NodeId {
        let va = self.value(a);
        assert!(!rows.is_empty(), "mean_selected_rows: empty selection");
        let d = va.cols();
        let mut v = Matrix::zeros(1, d);
        for &r in rows {
            assert!(r < va.rows(), "mean_selected_rows: row {r} out of bounds");
            for (o, &x) in v.row_mut(0).iter_mut().zip(va.row(r).iter()) {
                *o += x;
            }
        }
        v.scale_assign(1.0 / rows.len() as f32);
        self.push(Op::MeanSelectedRows(a, rows.to_vec()), v)
    }

    /// Vertical stack `[a; b]`.
    pub fn concat_rows(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.cols(), vb.cols(), "concat_rows: col mismatch");
        let mut data = Vec::with_capacity(va.len() + vb.len());
        data.extend_from_slice(va.data());
        data.extend_from_slice(vb.data());
        let v = Matrix::from_vec(va.rows() + vb.rows(), va.cols(), data);
        self.push(Op::ConcatRows(a, b), v)
    }

    /// Horizontal concatenation of equally-tall parts.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols: no parts");
        let n = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let mut v = Matrix::zeros(n, total);
        let mut off = 0;
        for &p in parts {
            let vp = self.value(p);
            assert_eq!(vp.rows(), n, "concat_cols: row mismatch");
            let w = vp.cols();
            for r in 0..n {
                let src = vp.row(r).to_vec();
                v.row_mut(r)[off..off + w].copy_from_slice(&src);
            }
            off += w;
        }
        self.push(Op::ConcatCols(parts.to_vec()), v)
    }

    /// Column slice `[.., start..end)`.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let va = self.value(a);
        assert!(start < end && end <= va.cols(), "slice_cols: bad range");
        let mut v = Matrix::zeros(va.rows(), end - start);
        for r in 0..va.rows() {
            let src = va.row(r)[start..end].to_vec();
            v.row_mut(r).copy_from_slice(&src);
        }
        self.push(Op::SliceCols(a, start, end), v)
    }

    /// Row slice `[start..end, ..)`.
    pub fn slice_rows(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let va = self.value(a);
        assert!(start < end && end <= va.rows(), "slice_rows: bad range");
        let cols = va.cols();
        let data = va.data()[start * cols..end * cols].to_vec();
        let v = Matrix::from_vec(end - start, cols, data);
        self.push(Op::SliceRows(a, start, end), v)
    }

    /// Applies the causal attention mask: positions with `col > row + offset`
    /// receive `-1e9`. `offset` > 0 makes leading (prefix) columns visible.
    pub fn causal_mask(&mut self, a: NodeId, offset: usize) -> NodeId {
        let mut v = self.value(a).clone();
        infer::causal_mask_in_place(&mut v, offset);
        self.push(Op::CausalMask { a, offset }, v)
    }

    // ---- losses -------------------------------------------------------------

    /// Mean token cross-entropy; rows whose target is [`IGNORE_INDEX`] are
    /// masked out of the mean. Returns a `[1,1]` loss node.
    ///
    /// # Panics
    /// Panics if every target is ignored.
    pub fn cross_entropy(&mut self, logits: NodeId, targets: &[usize]) -> NodeId {
        let vl = self.value(logits);
        assert_eq!(vl.rows(), targets.len(), "cross_entropy: target count");
        let ls = kernels::log_softmax_rows(vl);
        let mut loss = 0.0;
        let mut count = 0usize;
        for (r, &t) in targets.iter().enumerate() {
            if t == IGNORE_INDEX {
                continue;
            }
            assert!(t < vl.cols(), "cross_entropy: target {t} >= classes");
            loss -= ls.get(r, t);
            count += 1;
        }
        assert!(count > 0, "cross_entropy: all targets ignored");
        let v = Matrix::scalar(loss / count as f32);
        self.push(
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
            },
            v,
        )
    }

    /// Mean binary cross-entropy on `[n,1]` logits, numerically stable:
    /// `max(z,0) - z*y + ln(1 + e^{-|z|})`. Returns `[1,1]`.
    pub fn bce_with_logits(&mut self, logits: NodeId, targets: &[f32]) -> NodeId {
        let vl = self.value(logits);
        assert_eq!(vl.cols(), 1, "bce_with_logits: logits must be [n,1]");
        assert_eq!(vl.rows(), targets.len(), "bce_with_logits: target count");
        let mut loss = 0.0;
        for (r, &y) in targets.iter().enumerate() {
            let z = vl.get(r, 0);
            loss += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
        }
        let v = Matrix::scalar(loss / targets.len() as f32);
        self.push(
            Op::BceWithLogits {
                logits,
                targets: targets.to_vec(),
            },
            v,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_value() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::scalar(3.0));
        assert_eq!(t.value(a).scalar_value(), 3.0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn param_is_cached() {
        let mut t = Tape::new();
        let p = Param::new("w", Matrix::zeros(2, 2));
        let a = t.param(&p);
        let b = t.param(&p);
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn forward_values_of_composites() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = t.leaf(Matrix::from_vec(2, 1, vec![3.0, 4.0]));
        let c = t.matmul(a, b);
        assert_eq!(t.value(c).scalar_value(), 11.0);
        let s = t.scale(c, 2.0);
        assert_eq!(t.value(s).scalar_value(), 22.0);
    }

    #[test]
    fn causal_mask_pattern() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::zeros(3, 3));
        let m = t.causal_mask(a, 0);
        assert_eq!(t.value(m).get(0, 1), -1e9);
        assert_eq!(t.value(m).get(1, 1), 0.0);
        assert_eq!(t.value(m).get(2, 0), 0.0);
    }

    #[test]
    fn causal_mask_with_prefix_offset() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::zeros(2, 4));
        let m = t.causal_mask(a, 2);
        // prefix columns 0..2 always visible
        assert_eq!(t.value(m).get(0, 0), 0.0);
        assert_eq!(t.value(m).get(0, 2), 0.0);
        assert_eq!(t.value(m).get(0, 3), -1e9);
        assert_eq!(t.value(m).get(1, 3), 0.0);
    }

    #[test]
    fn embedding_gathers_rows() {
        let mut t = Tape::new();
        let w = t.leaf(Matrix::from_vec(3, 2, vec![0., 0., 1., 1., 2., 2.]));
        let e = t.embedding(w, &[2, 0, 2]);
        assert_eq!(t.value(e).row(0), &[2., 2.]);
        assert_eq!(t.value(e).row(1), &[0., 0.]);
    }

    #[test]
    fn mean_selected_rows_value() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(3, 2, vec![0., 0., 2., 4., 4., 8.]));
        let m = t.mean_selected_rows(a, &[1, 2]);
        assert_eq!(t.value(m).row(0), &[3., 6.]);
    }

    #[test]
    fn concat_and_slice_round_trip() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = t.leaf(Matrix::from_vec(2, 1, vec![5., 6.]));
        let c = t.concat_cols(&[a, b]);
        assert_eq!(t.value(c).row(0), &[1., 2., 5.]);
        let s = t.slice_cols(c, 2, 3);
        assert_eq!(t.value(s).data(), &[5., 6.]);
        let r = t.slice_rows(c, 1, 2);
        assert_eq!(t.value(r).data(), &[3., 4., 6.]);
    }

    #[test]
    fn cross_entropy_ignores_masked_rows() {
        let mut t = Tape::new();
        // row 0: confident correct, row 1: masked garbage
        let l = t.leaf(Matrix::from_vec(2, 2, vec![10.0, -10.0, 0.0, 0.0]));
        let loss = t.cross_entropy(l, &[0, IGNORE_INDEX]);
        assert!(t.value(loss).scalar_value() < 1e-3);
    }

    #[test]
    fn bce_with_logits_known_values() {
        let mut t = Tape::new();
        let l = t.leaf(Matrix::from_vec(2, 1, vec![0.0, 0.0]));
        let loss = t.bce_with_logits(l, &[1.0, 0.0]);
        // -ln(0.5) for both rows
        assert!((t.value(loss).scalar_value() - std::f32::consts::LN_2).abs() < 1e-3);
    }

    #[test]
    fn mul_scalar_node_scales() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 2, vec![2.0, 4.0]));
        let s = t.leaf(Matrix::scalar(0.5));
        let o = t.mul_scalar_node(a, s);
        assert_eq!(t.value(o).data(), &[1.0, 2.0]);
    }
}
