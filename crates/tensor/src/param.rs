//! Trainable parameters and gradient accumulation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(1);

/// Globally unique identity of a trainable parameter.
///
/// Ids are process-global so gradients computed on independent tapes (e.g.
/// data-parallel batch members) unambiguously refer to the same parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParamId(u64);

/// A named trainable matrix.
///
/// Deserialized parameters receive a *fresh* id — identity is per-process,
/// while names provide the stable cross-checkpoint key (see
/// [`ParamSet::load_state_from`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    #[serde(skip, default = "fresh_id")]
    id: ParamId,
    name: String,
    data: Matrix,
}

fn fresh_id() -> ParamId {
    ParamId(NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed))
}

impl Param {
    /// Creates a parameter with a fresh unique id.
    pub fn new(name: impl Into<String>, data: Matrix) -> Self {
        Param {
            id: fresh_id(),
            name: name.into(),
            data,
        }
    }

    /// Unique id.
    #[inline]
    pub fn id(&self) -> ParamId {
        self.id
    }

    /// Human-readable name (stable across save/load).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current value.
    #[inline]
    pub fn data(&self) -> &Matrix {
        &self.data
    }

    /// Mutable value (used by optimizers).
    #[inline]
    pub fn data_mut(&mut self) -> &mut Matrix {
        &mut self.data
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }
}

/// An ordered collection of parameters belonging to one module/model.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamSet {
    params: Vec<Param>,
}

impl ParamSet {
    /// An empty set.
    pub fn new() -> Self {
        ParamSet::default()
    }

    /// Adds a parameter, returning a handle index within this set.
    pub fn push(&mut self, p: Param) -> usize {
        self.params.push(p);
        self.params.len() - 1
    }

    /// Creates and registers a parameter in one step.
    pub fn add(&mut self, name: impl Into<String>, data: Matrix) -> usize {
        self.push(Param::new(name, data))
    }

    /// Parameter at set index `i`.
    pub fn get(&self, i: usize) -> &Param {
        &self.params[i]
    }

    /// Mutable parameter at set index `i`.
    pub fn get_mut(&mut self, i: usize) -> &mut Param {
        &mut self.params[i]
    }

    /// Iterates parameters in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.params.iter()
    }

    /// Mutable iteration in registration order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        self.params.iter_mut()
    }

    /// Number of parameters (matrices, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the set holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar element count — the "extra parameters" number reported in
    /// the paper's experimental details.
    pub fn numel(&self) -> usize {
        self.params.iter().map(Param::numel).sum()
    }

    /// Finds a parameter by name.
    pub fn by_name(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Copies values from `other` into this set, matching parameters by name
    /// and requiring identical shapes. Returns the number of matched
    /// parameters. Used for checkpoint restore, where ids differ.
    pub fn load_state_from(&mut self, other: &ParamSet) -> Result<usize, String> {
        let mut matched = 0;
        for p in &mut self.params {
            if let Some(src) = other.params.iter().find(|o| o.name == p.name) {
                if src.data.shape() != p.data.shape() {
                    return Err(format!(
                        "param '{}': shape {:?} != checkpoint {:?}",
                        p.name,
                        p.data.shape(),
                        src.data.shape()
                    ));
                }
                p.data = src.data.clone();
                matched += 1;
            }
        }
        Ok(matched)
    }
}

/// Accumulated gradients keyed by [`ParamId`]; mergeable across tapes for
/// data-parallel batches.
#[derive(Debug, Default)]
pub struct Gradients {
    map: HashMap<ParamId, Matrix>,
}

impl Gradients {
    /// An empty gradient map.
    pub fn new() -> Self {
        Gradients::default()
    }

    /// Accumulates `g` into the slot for `id`.
    pub fn add(&mut self, id: ParamId, g: Matrix) {
        match self.map.get_mut(&id) {
            Some(acc) => acc.add_assign(&g),
            None => {
                self.map.insert(id, g);
            }
        }
    }

    /// Gradient for `id`, if any was accumulated.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.map.get(&id)
    }

    /// Merges all gradients from `other` into `self` (summing overlaps).
    pub fn merge(mut self, other: Gradients) -> Gradients {
        for (id, g) in other.map {
            self.add(id, g);
        }
        self
    }

    /// Scales every gradient by `alpha` (e.g. `1/batch`).
    pub fn scale(&mut self, alpha: f32) {
        for g in self.map.values_mut() {
            g.scale_assign(alpha);
        }
    }

    /// Global L2 norm over all gradients (for clipping).
    ///
    /// The per-parameter squared norms are summed in ascending *value* order,
    /// so the result is a pure function of the multiset of gradient matrices.
    /// Neither `HashMap` iteration order (seeded per instance) nor [`ParamId`]
    /// assignment order (which differs between a freshly built model and one
    /// deserialized from a checkpoint) can perturb the clip scale — a single
    /// reordered float addition here would make every weight bit downstream
    /// irreproducible across reruns of the same seed.
    pub fn global_norm(&self) -> f32 {
        let mut sq: Vec<f32> = self
            .map
            .values()
            .map(|g| {
                let n = g.l2_norm();
                n * n
            })
            .collect();
        sq.sort_unstable_by(f32::total_cmp);
        sq.iter().sum::<f32>().sqrt()
    }

    /// Number of parameters with gradients.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no gradients were accumulated.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(id, grad)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&ParamId, &Matrix)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_ids_are_unique() {
        let a = Param::new("a", Matrix::zeros(1, 1));
        let b = Param::new("a", Matrix::zeros(1, 1));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn paramset_numel() {
        let mut s = ParamSet::new();
        s.add("w", Matrix::zeros(3, 4));
        s.add("b", Matrix::zeros(1, 4));
        assert_eq!(s.numel(), 16);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn gradients_merge_sums_overlaps() {
        let p = Param::new("w", Matrix::zeros(1, 2));
        let mut g1 = Gradients::new();
        g1.add(p.id(), Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let mut g2 = Gradients::new();
        g2.add(p.id(), Matrix::from_vec(1, 2, vec![10.0, 20.0]));
        let merged = g1.merge(g2);
        assert_eq!(merged.get(p.id()).unwrap().data(), &[11.0, 22.0]);
    }

    #[test]
    fn gradients_global_norm() {
        let p1 = Param::new("a", Matrix::zeros(1, 1));
        let p2 = Param::new("b", Matrix::zeros(1, 1));
        let mut g = Gradients::new();
        g.add(p1.id(), Matrix::scalar(3.0));
        g.add(p2.id(), Matrix::scalar(4.0));
        assert!((g.global_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn load_state_matches_by_name() {
        let mut dst = ParamSet::new();
        dst.add("w", Matrix::zeros(2, 2));
        dst.add("b", Matrix::zeros(1, 2));
        let mut src = ParamSet::new();
        src.add("w", Matrix::full(2, 2, 7.0));
        let n = dst.load_state_from(&src).unwrap();
        assert_eq!(n, 1);
        assert_eq!(dst.by_name("w").unwrap().data().get(1, 1), 7.0);
        assert_eq!(dst.by_name("b").unwrap().data().get(0, 0), 0.0);
    }

    #[test]
    fn load_state_rejects_shape_mismatch() {
        let mut dst = ParamSet::new();
        dst.add("w", Matrix::zeros(2, 2));
        let mut src = ParamSet::new();
        src.add("w", Matrix::zeros(3, 3));
        assert!(dst.load_state_from(&src).is_err());
    }

    #[test]
    fn global_norm_is_insertion_order_independent() {
        // Two maps with distinct hasher seeds and reversed insertion order
        // must produce the same bits — the norm is reduced in ParamId order.
        let params: Vec<Param> = (0..9)
            .map(|i| {
                Param::new(
                    "p",
                    Matrix::from_vec(1, 3, vec![0.1 * i as f32, -1.7, 3.3 + i as f32]),
                )
            })
            .collect();
        let mut fwd = Gradients::new();
        let mut rev = Gradients::new();
        for p in &params {
            fwd.add(p.id(), p.data().clone());
        }
        for p in params.iter().rev() {
            rev.add(p.id(), p.data().clone());
        }
        assert_eq!(fwd.global_norm().to_bits(), rev.global_norm().to_bits());
    }

    #[test]
    fn serde_gives_fresh_ids() {
        let p = Param::new("w", Matrix::from_vec(1, 1, vec![5.0]));
        let json = serde_json::to_string(&p).unwrap();
        let q: Param = serde_json::from_str(&json).unwrap();
        assert_eq!(q.name(), "w");
        assert_eq!(q.data().scalar_value(), 5.0);
        assert_ne!(p.id(), q.id());
    }
}
