//! Runtime-dispatched explicit-SIMD kernel tiers.
//!
//! The scalar/autovec kernels in [`crate::kernels`] stay the portable
//! fallback and the semantic reference; this module adds explicit
//! `std::arch` AVX2 and AVX-512 micro-kernels for the hot inner loops
//! (matmul column strips, attention AV panels, GELU, softmax max/scale and
//! the fused int8 dequant-matmul strips of [`crate::quant`]), selected once
//! per kernel call by [`active_isa`].
//!
//! # Tier selection
//!
//! Resolution order mirrors the thread knob in `kernels`:
//! [`set_isa`] override → the [`ISA_ENV`] environment variable → runtime
//! CPU-feature detection ([`detect_best`]). The env knob is strict: an
//! unknown value, or a tier the running CPU cannot execute, aborts with a
//! clear message instead of silently falling back — a mistyped
//! `INFUSERKI_ISA=axv2` must not quietly benchmark the scalar tier.
//!
//! # Bitwise contract
//!
//! Every f32 tier is **bit-for-bit identical** to the scalar tier, by
//! construction: SIMD is applied only across *independent output elements*
//! (the 16 output columns of a matmul strip, the lanes of an elementwise
//! map), never across the inner accumulation dimension. Each output element
//! keeps the exact single ascending-`p` accumulation chain the scalar
//! kernels define, with the same fused-or-not multiply-add per build
//! (see [`crate::kernels::fmadd`]): fused `vfmadd` intrinsics when the build
//! targets FMA, separate multiply + add intrinsics otherwise. Dot-shaped
//! kernels (`a@bᵀ`, score panels), whose single-element chains cannot be
//! lane-parallelized without reassociating, run the shared scalar path in
//! every tier.
//!
//! Two value-level (not bit-level) caveats, both invisible to finite
//! workloads: the vectorized softmax max-scan may return the other sign of
//! zero on `±0.0` ties (the subsequent `v - max` and `exp` make the softmax
//! output bitwise identical regardless), and NaN lanes flow through the
//! vector GELU/min/max as NaN values without a payload guarantee.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Environment variable selecting the kernel instruction-set tier.
pub const ISA_ENV: &str = "INFUSERKI_ISA";

/// A kernel instruction-set tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// The portable scalar/autovec kernels (always available).
    Scalar,
    /// Explicit 256-bit `std::arch` kernels (requires AVX2).
    Avx2,
    /// Explicit 512-bit `std::arch` kernels (requires AVX-512F + AVX2).
    Avx512,
}

impl Isa {
    /// The knob spelling of this tier (`scalar` / `avx2` / `avx512`).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }

    /// All tiers, strongest last.
    pub const ALL: [Isa; 3] = [Isa::Scalar, Isa::Avx2, Isa::Avx512];
}

/// Parses an [`ISA_ENV`] value. Strict: exactly `scalar`, `avx2` or
/// `avx512` (surrounding whitespace tolerated); anything else is an error
/// naming the knob and the valid spellings.
pub fn parse_isa(raw: &str) -> Result<Isa, String> {
    match raw.trim() {
        "scalar" => Ok(Isa::Scalar),
        "avx2" => Ok(Isa::Avx2),
        "avx512" => Ok(Isa::Avx512),
        other => Err(format!(
            "{ISA_ENV} must be one of scalar|avx2|avx512; got `{other}`"
        )),
    }
}

/// Whether the running CPU can execute `isa`.
pub fn supported(isa: Isa) -> bool {
    match isa {
        Isa::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// The strongest tier the running CPU supports.
pub fn detect_best() -> Isa {
    if supported(Isa::Avx512) {
        Isa::Avx512
    } else if supported(Isa::Avx2) {
        Isa::Avx2
    } else {
        Isa::Scalar
    }
}

/// Resolves an optional [`ISA_ENV`] value into a tier: `None` detects the
/// best supported tier; `Some` must parse and be supported, otherwise an
/// error describes the problem (never a silent fallback). Pure function —
/// the unit-testable core of [`active_isa`]'s env resolution.
pub fn resolve_isa(raw: Option<&str>) -> Result<Isa, String> {
    match raw {
        None => Ok(detect_best()),
        Some(s) => {
            let isa = parse_isa(s)?;
            if supported(isa) {
                Ok(isa)
            } else {
                Err(format!(
                    "{ISA_ENV}={} requests the {} tier, but this CPU does not support it \
                     (best available: {})",
                    s.trim(),
                    isa.name(),
                    detect_best().name()
                ))
            }
        }
    }
}

/// Runtime tier override; 0 = unset (use env/detection).
static ISA_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn isa_to_code(isa: Isa) -> usize {
    match isa {
        Isa::Scalar => 1,
        Isa::Avx2 => 2,
        Isa::Avx512 => 3,
    }
}

/// Overrides the kernel tier for this process (differential tests sweep all
/// tiers available on one machine this way). `None` clears the override.
///
/// # Panics
/// Panics if the requested tier is not supported by the running CPU.
pub fn set_isa(isa: Option<Isa>) {
    match isa {
        None => ISA_OVERRIDE.store(0, Ordering::SeqCst),
        Some(isa) => {
            assert!(
                supported(isa),
                "set_isa: this CPU does not support the {} tier",
                isa.name()
            );
            ISA_OVERRIDE.store(isa_to_code(isa), Ordering::SeqCst);
        }
    }
}

/// The tier every dispatched kernel call uses right now:
/// [`set_isa`] override → [`ISA_ENV`] (strict, resolved once) →
/// [`detect_best`].
///
/// # Panics
/// Panics (on first use, with a clear message) if [`ISA_ENV`] is set to an
/// unknown value or to a tier this CPU cannot execute.
pub fn active_isa() -> Isa {
    match ISA_OVERRIDE.load(Ordering::SeqCst) {
        1 => return Isa::Scalar,
        2 => return Isa::Avx2,
        3 => return Isa::Avx512,
        _ => {}
    }
    static DEFAULT: OnceLock<Isa> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let raw = match std::env::var(ISA_ENV) {
            Ok(v) => Some(v),
            Err(std::env::VarError::NotPresent) => None,
            Err(std::env::VarError::NotUnicode(_)) => {
                panic!("{ISA_ENV} is set to a non-UTF-8 value; expected scalar|avx2|avx512")
            }
        };
        match resolve_isa(raw.as_deref()) {
            Ok(isa) => isa,
            Err(e) => panic!("{e}"),
        }
    })
}

/// Explicit AVX2 / AVX-512 micro-kernels. Every function is `unsafe` —
/// callers must have checked the matching CPU feature (the dispatchers in
/// `kernels`/`quant` only reach these arms when [`active_isa`] says so) and
/// must uphold the pointer-range contracts documented per function.
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use crate::kernels::{fmadd, gelu, tanh_poly as tp};
    use core::arch::x86_64::*;

    /// One multiply-add chain step on 8 lanes, matching
    /// [`crate::kernels::fmadd`]'s build-level fused/unfused choice: fused
    /// `vfmadd` in FMA builds, separate multiply + add otherwise (so the
    /// AVX2 tier executed on an FMA-capable CPU under a baseline build stays
    /// bitwise equal to that build's unfused scalar chain).
    #[inline(always)]
    unsafe fn madd256(a: __m256, b: __m256, c: __m256) -> __m256 {
        #[cfg(target_feature = "fma")]
        {
            _mm256_fmadd_ps(a, b, c)
        }
        #[cfg(not(target_feature = "fma"))]
        {
            _mm256_add_ps(c, _mm256_mul_ps(a, b))
        }
    }

    /// 16-lane sibling of [`madd256`].
    #[inline(always)]
    unsafe fn madd512(a: __m512, b: __m512, c: __m512) -> __m512 {
        #[cfg(target_feature = "fma")]
        {
            _mm512_fmadd_ps(a, b, c)
        }
        #[cfg(not(target_feature = "fma"))]
        {
            _mm512_add_ps(c, _mm512_mul_ps(a, b))
        }
    }

    // ---- dense f32 matmul strips -------------------------------------------

    /// `R×16` dense strip: for `r < R`, `out[r*ostride..+16] (+)= Σ_p
    /// apack[p*R+r] · b[p*bstride..+16]`, `p` ascending through one
    /// [`madd256`] chain per output element — the exact chain of the scalar
    /// tile path, 8 columns per register, two register halves per strip.
    ///
    /// # Safety
    /// Requires AVX2. `apack` must hold `k*R` floats, `b` must be readable
    /// for `(k-1)*bstride + 16` floats, `out` for `(R-1)*ostride + 16`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn strip16_avx2<const R: usize>(
        apack: *const f32,
        b: *const f32,
        bstride: usize,
        k: usize,
        out: *mut f32,
        ostride: usize,
        accumulate: bool,
    ) {
        // Two independent 8-wide halves keep register pressure at R
        // accumulators + operands (R=8 with a full 16-wide strip would
        // spill half the ymm file).
        for half in 0..2 {
            let mut acc = [_mm256_setzero_ps(); R];
            let mut bp = b.add(half * 8);
            let mut ap = apack;
            for _ in 0..k {
                let bv = _mm256_loadu_ps(bp);
                for (r, s) in acc.iter_mut().enumerate() {
                    *s = madd256(_mm256_set1_ps(*ap.add(r)), bv, *s);
                }
                bp = bp.add(bstride);
                ap = ap.add(R);
            }
            for (r, &s) in acc.iter().enumerate() {
                let o = out.add(r * ostride + half * 8);
                let v = if accumulate {
                    _mm256_add_ps(_mm256_loadu_ps(o), s)
                } else {
                    s
                };
                _mm256_storeu_ps(o, v);
            }
        }
    }

    /// 512-bit form of [`strip16_avx2`]: one ZMM register per output row.
    ///
    /// # Safety
    /// Requires AVX-512F; same pointer contracts as [`strip16_avx2`].
    #[target_feature(enable = "avx2,avx512f")]
    pub unsafe fn strip16_avx512<const R: usize>(
        apack: *const f32,
        b: *const f32,
        bstride: usize,
        k: usize,
        out: *mut f32,
        ostride: usize,
        accumulate: bool,
    ) {
        let mut acc = [_mm512_setzero_ps(); R];
        let mut bp = b;
        let mut ap = apack;
        for _ in 0..k {
            let bv = _mm512_loadu_ps(bp);
            for (r, s) in acc.iter_mut().enumerate() {
                *s = madd512(_mm512_set1_ps(*ap.add(r)), bv, *s);
            }
            bp = bp.add(bstride);
            ap = ap.add(R);
        }
        for (r, &s) in acc.iter().enumerate() {
            let o = out.add(r * ostride);
            let v = if accumulate {
                _mm512_add_ps(_mm512_loadu_ps(o), s)
            } else {
                s
            };
            _mm512_storeu_ps(o, v);
        }
    }

    // ---- fused int8 dequant-matmul strips ----------------------------------

    /// [`strip16_avx2`] over an int8 B strip: per inner step the 16 quantized
    /// bytes `q[p*qstride..+16]` dequantize in registers as
    /// `q as f32 * scales[p*sstride]` (sign-extend → exact i32→f32 convert →
    /// multiply — the identical arithmetic of scalar dequantization) before
    /// extending the same per-element chains. The caller guarantees the
    /// 16-column strip lies inside one quantization block per row, so one
    /// scale covers the whole strip width.
    ///
    /// # Safety
    /// Requires AVX2. `q` readable for `(k-1)*qstride + 16` bytes, `scales`
    /// for `(k-1)*sstride + 1` floats; `apack`/`out` as [`strip16_avx2`].
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn qstrip16_avx2<const R: usize>(
        apack: *const f32,
        q: *const i8,
        qstride: usize,
        scales: *const f32,
        sstride: usize,
        k: usize,
        out: *mut f32,
        ostride: usize,
        accumulate: bool,
    ) {
        for half in 0..2 {
            let mut acc = [_mm256_setzero_ps(); R];
            let mut qp = q.add(half * 8);
            let mut sp = scales;
            let mut ap = apack;
            for _ in 0..k {
                let qi = _mm_loadl_epi64(qp as *const __m128i);
                let qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(qi));
                let bv = _mm256_mul_ps(qf, _mm256_set1_ps(*sp));
                for (r, s) in acc.iter_mut().enumerate() {
                    *s = madd256(_mm256_set1_ps(*ap.add(r)), bv, *s);
                }
                qp = qp.add(qstride);
                sp = sp.add(sstride);
                ap = ap.add(R);
            }
            for (r, &s) in acc.iter().enumerate() {
                let o = out.add(r * ostride + half * 8);
                let v = if accumulate {
                    _mm256_add_ps(_mm256_loadu_ps(o), s)
                } else {
                    s
                };
                _mm256_storeu_ps(o, v);
            }
        }
    }

    /// 512-bit form of [`qstrip16_avx2`].
    ///
    /// # Safety
    /// Requires AVX-512F; same pointer contracts as [`qstrip16_avx2`].
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,avx512f")]
    pub unsafe fn qstrip16_avx512<const R: usize>(
        apack: *const f32,
        q: *const i8,
        qstride: usize,
        scales: *const f32,
        sstride: usize,
        k: usize,
        out: *mut f32,
        ostride: usize,
        accumulate: bool,
    ) {
        let mut acc = [_mm512_setzero_ps(); R];
        let mut qp = q;
        let mut sp = scales;
        let mut ap = apack;
        for _ in 0..k {
            let qi = _mm_loadu_si128(qp as *const __m128i);
            let qf = _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(qi));
            let bv = _mm512_mul_ps(qf, _mm512_set1_ps(*sp));
            for (r, s) in acc.iter_mut().enumerate() {
                *s = madd512(_mm512_set1_ps(*ap.add(r)), bv, *s);
            }
            qp = qp.add(qstride);
            sp = sp.add(sstride);
            ap = ap.add(R);
        }
        for (r, &s) in acc.iter().enumerate() {
            let o = out.add(r * ostride);
            let v = if accumulate {
                _mm512_add_ps(_mm512_loadu_ps(o), s)
            } else {
                s
            };
            _mm512_storeu_ps(o, v);
        }
    }

    // ---- attention AV row fold ---------------------------------------------

    /// One output row of the attention·V window product:
    /// `out[0..w] (+)= Σ_p a[p] · b[p*bstride..+w]`, `p` ascending. Vector
    /// chunks hold their output columns in a register across the whole fold
    /// (each lane one independent chain, continued from the prior `out`
    /// value when `accumulate`); the ragged tail runs the identical scalar
    /// chain.
    ///
    /// # Safety
    /// Requires AVX2. `a` readable for `seg` floats, `b` for
    /// `(seg-1)*bstride + w`, `out` writable for `w`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn av_row_avx2(
        a: *const f32,
        seg: usize,
        b: *const f32,
        bstride: usize,
        out: *mut f32,
        w: usize,
        accumulate: bool,
    ) {
        let mut c = 0;
        while c + 8 <= w {
            let mut acc = if accumulate {
                _mm256_loadu_ps(out.add(c))
            } else {
                _mm256_setzero_ps()
            };
            let mut bp = b.add(c);
            for p in 0..seg {
                acc = madd256(_mm256_set1_ps(*a.add(p)), _mm256_loadu_ps(bp), acc);
                bp = bp.add(bstride);
            }
            _mm256_storeu_ps(out.add(c), acc);
            c += 8;
        }
        av_row_tail(a, seg, b, bstride, out, c, w, accumulate);
    }

    /// 512-bit form of [`av_row_avx2`]: 16-wide chunks, then the shared
    /// scalar tail (head windows here are 8–64 columns, so the tail is cold).
    ///
    /// # Safety
    /// Requires AVX-512F; same pointer contracts as [`av_row_avx2`].
    #[target_feature(enable = "avx2,avx512f")]
    pub unsafe fn av_row_avx512(
        a: *const f32,
        seg: usize,
        b: *const f32,
        bstride: usize,
        out: *mut f32,
        w: usize,
        accumulate: bool,
    ) {
        let mut c = 0;
        while c + 16 <= w {
            let mut acc = if accumulate {
                _mm512_loadu_ps(out.add(c))
            } else {
                _mm512_setzero_ps()
            };
            let mut bp = b.add(c);
            for p in 0..seg {
                acc = madd512(_mm512_set1_ps(*a.add(p)), _mm512_loadu_ps(bp), acc);
                bp = bp.add(bstride);
            }
            _mm512_storeu_ps(out.add(c), acc);
            c += 16;
        }
        if c + 8 <= w {
            let mut acc = if accumulate {
                _mm256_loadu_ps(out.add(c))
            } else {
                _mm256_setzero_ps()
            };
            let mut bp = b.add(c);
            for p in 0..seg {
                acc = madd256(_mm256_set1_ps(*a.add(p)), _mm256_loadu_ps(bp), acc);
                bp = bp.add(bstride);
            }
            _mm256_storeu_ps(out.add(c), acc);
            c += 8;
        }
        av_row_tail(a, seg, b, bstride, out, c, w, accumulate);
    }

    /// Scalar column tail of the AV row fold — the exact
    /// [`crate::kernels::fmadd`] chain of the scalar kernel.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    unsafe fn av_row_tail(
        a: *const f32,
        seg: usize,
        b: *const f32,
        bstride: usize,
        out: *mut f32,
        c0: usize,
        w: usize,
        accumulate: bool,
    ) {
        for j in c0..w {
            let mut s = if accumulate { *out.add(j) } else { 0.0 };
            for p in 0..seg {
                s = fmadd(*a.add(p), *b.add(p * bstride + j), s);
            }
            *out.add(j) = s;
        }
    }

    // ---- elementwise GELU --------------------------------------------------

    /// 8-lane [`crate::kernels::tanh_fast`]: the identical clamp and
    /// mul/add-ordered rational polynomial, deliberately *never* fused —
    /// the scalar form uses plain `*`/`+`, which Rust never contracts, so a
    /// fused vector variant would diverge bitwise in FMA builds.
    #[inline(always)]
    unsafe fn tanh_fast256(x: __m256) -> __m256 {
        // NaN lanes: `_mm256_min_ps(x, c)` returns `c` when `x` is NaN, so
        // they leave the clamp finite; the caller restores NaN.
        let x = _mm256_max_ps(
            _mm256_min_ps(x, _mm256_set1_ps(tp::CLAMP)),
            _mm256_set1_ps(-tp::CLAMP),
        );
        let x2 = _mm256_mul_ps(x, x);
        let mut p = _mm256_set1_ps(tp::A13);
        for &a in &[tp::A11, tp::A9, tp::A7, tp::A5, tp::A3, tp::A1] {
            p = _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(a));
        }
        let p = _mm256_mul_ps(p, x);
        let mut q = _mm256_set1_ps(tp::B6);
        for &b in &[tp::B4, tp::B2, tp::B0] {
            q = _mm256_add_ps(_mm256_mul_ps(q, x2), _mm256_set1_ps(b));
        }
        _mm256_div_ps(p, q)
    }

    /// 16-lane sibling of [`tanh_fast256`].
    #[inline(always)]
    unsafe fn tanh_fast512(x: __m512) -> __m512 {
        let x = _mm512_max_ps(
            _mm512_min_ps(x, _mm512_set1_ps(tp::CLAMP)),
            _mm512_set1_ps(-tp::CLAMP),
        );
        let x2 = _mm512_mul_ps(x, x);
        let mut p = _mm512_set1_ps(tp::A13);
        for &a in &[tp::A11, tp::A9, tp::A7, tp::A5, tp::A3, tp::A1] {
            p = _mm512_add_ps(_mm512_mul_ps(p, x2), _mm512_set1_ps(a));
        }
        let p = _mm512_mul_ps(p, x);
        let mut q = _mm512_set1_ps(tp::B6);
        for &b in &[tp::B4, tp::B2, tp::B0] {
            q = _mm512_add_ps(_mm512_mul_ps(q, x2), _mm512_set1_ps(b));
        }
        _mm512_div_ps(p, q)
    }

    /// In-place GELU over a slice, 8 lanes at a time — operation-for-
    /// operation the scalar [`crate::kernels::gelu`] (multiplies
    /// left-associated, plain mul/add, division exact), so finite inputs map
    /// to bitwise-identical outputs. NaN lanes are blended back to NaN.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gelu_slice_avx2(xs: &mut [f32]) {
        let n = xs.len();
        let ptr = xs.as_mut_ptr();
        let c = _mm256_set1_ps(tp::GELU_C);
        let k3 = _mm256_set1_ps(tp::GELU_K);
        let half = _mm256_set1_ps(0.5);
        let one = _mm256_set1_ps(1.0);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(ptr.add(i));
            // u = C * (v + K * v * v * v), multiplies left-associated.
            let t = _mm256_mul_ps(_mm256_mul_ps(_mm256_mul_ps(k3, v), v), v);
            let u = _mm256_mul_ps(c, _mm256_add_ps(v, t));
            let th = tanh_fast256(u);
            let r = _mm256_mul_ps(_mm256_mul_ps(half, v), _mm256_add_ps(one, th));
            let nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(v, v);
            let r = _mm256_blendv_ps(r, v, nan);
            _mm256_storeu_ps(ptr.add(i), r);
            i += 8;
        }
        for x in &mut xs[i..] {
            *x = gelu(*x);
        }
    }

    /// 16-lane form of [`gelu_slice_avx2`].
    ///
    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx2,avx512f")]
    pub unsafe fn gelu_slice_avx512(xs: &mut [f32]) {
        let n = xs.len();
        let ptr = xs.as_mut_ptr();
        let c = _mm512_set1_ps(tp::GELU_C);
        let k3 = _mm512_set1_ps(tp::GELU_K);
        let half = _mm512_set1_ps(0.5);
        let one = _mm512_set1_ps(1.0);
        let mut i = 0;
        while i + 16 <= n {
            let v = _mm512_loadu_ps(ptr.add(i));
            let t = _mm512_mul_ps(_mm512_mul_ps(_mm512_mul_ps(k3, v), v), v);
            let u = _mm512_mul_ps(c, _mm512_add_ps(v, t));
            let th = tanh_fast512(u);
            let r = _mm512_mul_ps(_mm512_mul_ps(half, v), _mm512_add_ps(one, th));
            let nan = _mm512_cmp_ps_mask::<_CMP_UNORD_Q>(v, v);
            let r = _mm512_mask_blend_ps(nan, r, v);
            _mm512_storeu_ps(ptr.add(i), r);
            i += 16;
        }
        for x in &mut xs[i..] {
            *x = gelu(*x);
        }
    }

    // ---- softmax helpers ---------------------------------------------------

    /// Max over a slice: lanewise vector max, then an ordered scalar fold of
    /// the lanes and the tail. For finite inputs the result *value* equals
    /// the scalar fold's (max is order-insensitive), differing at most in
    /// the sign of a `±0.0` winner — which the softmax subtraction provably
    /// cannot propagate into an output bit.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn max_slice_avx2(xs: &[f32]) -> f32 {
        let n = xs.len();
        let p = xs.as_ptr();
        let mut m = f32::NEG_INFINITY;
        let mut i = 0;
        if n >= 8 {
            let mut mv = _mm256_loadu_ps(p);
            i = 8;
            while i + 8 <= n {
                mv = _mm256_max_ps(mv, _mm256_loadu_ps(p.add(i)));
                i += 8;
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), mv);
            for &l in &lanes {
                m = m.max(l);
            }
        }
        for &x in &xs[i..] {
            m = m.max(x);
        }
        m
    }

    /// 16-lane form of [`max_slice_avx2`].
    ///
    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx2,avx512f")]
    pub unsafe fn max_slice_avx512(xs: &[f32]) -> f32 {
        let n = xs.len();
        let p = xs.as_ptr();
        let mut m = f32::NEG_INFINITY;
        let mut i = 0;
        if n >= 16 {
            let mut mv = _mm512_loadu_ps(p);
            i = 16;
            while i + 16 <= n {
                mv = _mm512_max_ps(mv, _mm512_loadu_ps(p.add(i)));
                i += 16;
            }
            let mut lanes = [0.0f32; 16];
            _mm512_storeu_ps(lanes.as_mut_ptr(), mv);
            for &l in &lanes {
                m = m.max(l);
            }
        }
        for &x in &xs[i..] {
            m = m.max(x);
        }
        m
    }

    /// `xs[i] *= s` — elementwise, so bitwise-identical to the scalar loop.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_slice_avx2(xs: &mut [f32], s: f32) {
        let n = xs.len();
        let ptr = xs.as_mut_ptr();
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i + 8 <= n {
            _mm256_storeu_ps(ptr.add(i), _mm256_mul_ps(_mm256_loadu_ps(ptr.add(i)), sv));
            i += 8;
        }
        for x in &mut xs[i..] {
            *x *= s;
        }
    }

    /// 16-lane form of [`scale_slice_avx2`].
    ///
    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx2,avx512f")]
    pub unsafe fn scale_slice_avx512(xs: &mut [f32], s: f32) {
        let n = xs.len();
        let ptr = xs.as_mut_ptr();
        let sv = _mm512_set1_ps(s);
        let mut i = 0;
        while i + 16 <= n {
            _mm512_storeu_ps(ptr.add(i), _mm512_mul_ps(_mm512_loadu_ps(ptr.add(i)), sv));
            i += 16;
        }
        for x in &mut xs[i..] {
            *x *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_exact_tier_names() {
        assert_eq!(parse_isa("scalar"), Ok(Isa::Scalar));
        assert_eq!(parse_isa(" avx2 "), Ok(Isa::Avx2));
        assert_eq!(parse_isa("avx512"), Ok(Isa::Avx512));
    }

    #[test]
    fn parse_rejects_garbage_loudly() {
        for bad in ["", "  ", "AVX2", "axv2", "avx-512", "auto", "best", "1"] {
            let err = parse_isa(bad).unwrap_err();
            assert!(
                err.contains(ISA_ENV) && err.contains("scalar|avx2|avx512"),
                "error for {bad:?} must name the knob and valid values: {err}"
            );
        }
    }

    #[test]
    fn resolve_unset_detects_supported_tier() {
        let isa = resolve_isa(None).expect("detection never fails");
        assert!(supported(isa));
    }

    #[test]
    fn resolve_invalid_value_is_loud_not_a_fallback() {
        let err = resolve_isa(Some("turbo")).unwrap_err();
        assert!(err.contains(ISA_ENV), "{err}");
    }

    #[test]
    fn resolve_unsupported_tier_is_an_error() {
        // Whichever way detection goes on this host, both branches are
        // meaningful: a supported tier resolves to itself, an unsupported
        // one must error (not fall back).
        for isa in Isa::ALL {
            let r = resolve_isa(Some(isa.name()));
            if supported(isa) {
                assert_eq!(r, Ok(isa));
            } else {
                let err = r.unwrap_err();
                assert!(
                    err.contains(ISA_ENV) && err.contains(isa.name()),
                    "unsupported tier must fail loudly: {err}"
                );
            }
        }
    }

    #[test]
    fn scalar_is_always_supported() {
        assert!(supported(Isa::Scalar));
        let _ = detect_best(); // must not panic anywhere
    }

    #[test]
    fn set_isa_overrides_and_clears() {
        let before = active_isa();
        set_isa(Some(Isa::Scalar));
        assert_eq!(active_isa(), Isa::Scalar);
        set_isa(None);
        assert!(supported(active_isa()));
        set_isa(Some(before));
        set_isa(None);
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn set_isa_rejects_unsupported_tier() {
        // Find an unsupported tier if any; otherwise simulate the panic the
        // assert would produce so the expectation holds on maxed-out hosts.
        for isa in [Isa::Avx512, Isa::Avx2] {
            if !supported(isa) {
                set_isa(Some(isa));
            }
        }
        panic!("this CPU does not support no tier (all tiers available)");
    }
}
