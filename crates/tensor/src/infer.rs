//! Tape-free forward arithmetic, shared with the autograd tape.
//!
//! The incremental inference engine (KV-cached decoding in `infuserki-nn`)
//! re-runs the model's forward math on plain [`Matrix`] values without
//! recording gradient nodes. Its differential test suite asserts *bitwise*
//! equality against the tape path at `threads = 1`, which is only tractable if
//! both paths execute the exact same floating-point accumulation chains. This
//! module is that single source of truth: [`crate::Tape::affine`],
//! [`crate::Tape::layer_norm`], [`crate::Tape::causal_mask`],
//! [`crate::Tape::cum_mean_rows`] and [`crate::Tape::mul_col_broadcast`]
//! delegate their forward value computation here, and the inference engine
//! calls the same functions directly.
//!
//! Two invariants carried over from `kernels.rs` make per-row equivalence
//! hold between a full forward and a chunked incremental one:
//!
//! 1. every matmul output element is one ascending fused accumulation chain
//!    over the inner dimension, independent of how many *other* rows exist in
//!    either operand — so the projection of a token row does not change when
//!    the surrounding rows do;
//! 2. masked attention scores are `-1e9`, which softmax maps to exactly
//!    `0.0`, and `0.0` contributions vanish from the ascending AV chains — so
//!    attending over a truncated (cached) history equals attending over the
//!    full masked history row for row.

use crate::kernels;
use crate::matrix::Matrix;

/// Fused `x @ w + bias` with `bias [1,d]` broadcast over rows — the value
/// computation of [`crate::Tape::affine`].
pub fn affine(x: &Matrix, w: &Matrix, bias: &Matrix) -> Matrix {
    assert_eq!(bias.rows(), 1, "affine: bias must be [1,d]");
    assert_eq!(w.cols(), bias.cols(), "affine: bias col mismatch");
    let mut v = Matrix::zeros(x.rows(), w.cols());
    kernels::matmul_into(x, w, &mut v, false);
    let brow = bias.row(0).to_vec();
    for r in 0..v.rows() {
        for (o, &b) in v.row_mut(r).iter_mut().zip(brow.iter()) {
            *o += b;
        }
    }
    v
}

/// Row-wise layer normalization with affine gain/bias (`[1,d]` each) — the
/// value computation of [`crate::Tape::layer_norm`].
pub fn layer_norm(x: &Matrix, gain: &Matrix, bias: &Matrix, eps: f32) -> Matrix {
    let d = x.cols();
    assert_eq!(gain.shape(), (1, d), "layer_norm: gain shape");
    assert_eq!(bias.shape(), (1, d), "layer_norm: bias shape");
    let mut v = Matrix::zeros(x.rows(), d);
    for r in 0..x.rows() {
        let row = x.row(r);
        let mean = row.iter().sum::<f32>() / d as f32;
        let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
        let inv = 1.0 / (var + eps).sqrt();
        let out = v.row_mut(r);
        for c in 0..d {
            out[c] = (row[c] - mean) * inv * gain.get(0, c) + bias.get(0, c);
        }
    }
    v
}

/// Applies the causal attention mask in place: positions with
/// `col > row + offset` receive `-1e9`. In an incremental forward `offset` is
/// `prefix_len + cached_tokens`, so every cached column stays visible and the
/// new rows mask exactly as the corresponding rows of a full forward.
///
/// # Panics
/// Panics unless `cols == rows + offset`.
pub fn causal_mask_in_place(m: &mut Matrix, offset: usize) {
    let (n, cols) = m.shape();
    assert_eq!(cols, n + offset, "causal_mask: cols must be rows + offset");
    for r in 0..n {
        let row = m.row_mut(r);
        for (c, x) in row.iter_mut().enumerate() {
            if c > r + offset {
                *x = -1e9;
            }
        }
    }
}

/// Cumulative prefix mean over rows: `out[t] = mean(x[0..=t])` — the value
/// computation of [`crate::Tape::cum_mean_rows`].
///
/// The running column sums accumulate rows in ascending order and each output
/// row scales by `1.0 / (t+1)`, exactly like
/// [`cumulative_mean_rows_continue`] resuming from empty state — so a chunked
/// incremental computation reproduces this bitwise. The last output row is
/// bitwise identical to [`crate::Tape::mean_rows`] over the same input (same
/// ascending sum, same reciprocal scaling).
pub fn cumulative_mean_rows(x: &Matrix) -> Matrix {
    let mut sums = vec![0.0f32; x.cols()];
    let mut count = 0usize;
    cumulative_mean_rows_continue(&mut sums, &mut count, x)
}

/// Continuation form of [`cumulative_mean_rows`]: folds `chunk`'s rows into
/// running `(sums, count)` state and returns the cumulative means of the new
/// rows. Feeding a sequence through in any chunking yields the same rows as
/// one full-sequence call, bitwise.
pub fn cumulative_mean_rows_continue(
    sums: &mut [f32],
    count: &mut usize,
    chunk: &Matrix,
) -> Matrix {
    assert_eq!(sums.len(), chunk.cols(), "cum_mean: width mismatch");
    let mut out = Matrix::zeros(chunk.rows(), chunk.cols());
    for r in 0..chunk.rows() {
        for (s, &x) in sums.iter_mut().zip(chunk.row(r).iter()) {
            *s += x;
        }
        *count += 1;
        let scale = 1.0 / *count as f32;
        for (o, &s) in out.row_mut(r).iter_mut().zip(sums.iter()) {
            *o = s * scale;
        }
    }
    out
}

/// Per-row scaling `out[t] = a[t] * s[t]` with `s [n,1]` — the value
/// computation of [`crate::Tape::mul_col_broadcast`] (the causal infuser
/// gate).
pub fn mul_col_broadcast(a: &Matrix, s: &Matrix) -> Matrix {
    assert_eq!(s.cols(), 1, "mul_col_broadcast: gate must be [n,1]");
    assert_eq!(a.rows(), s.rows(), "mul_col_broadcast: row mismatch");
    let mut v = a.clone();
    for r in 0..v.rows() {
        let sv = s.get(r, 0);
        for x in v.row_mut(r) {
            *x *= sv;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_mean_matches_chunked_continuation() {
        let x = Matrix::from_vec(4, 2, vec![1.0, 2.0, 3.0, 5.0, -1.0, 0.5, 2.0, 8.0]);
        let full = cumulative_mean_rows(&x);
        let mut sums = vec![0.0; 2];
        let mut count = 0;
        let a = cumulative_mean_rows_continue(
            &mut sums,
            &mut count,
            &Matrix::from_vec(1, 2, vec![1.0, 2.0]),
        );
        let b = cumulative_mean_rows_continue(
            &mut sums,
            &mut count,
            &Matrix::from_vec(3, 2, vec![3.0, 5.0, -1.0, 0.5, 2.0, 8.0]),
        );
        assert_eq!(full.row(0), a.row(0));
        for r in 0..3 {
            assert_eq!(full.row(r + 1), b.row(r));
        }
    }

    #[test]
    fn cumulative_mean_first_row_is_identity() {
        let x = Matrix::from_vec(2, 3, vec![4.0, -2.0, 7.0, 0.0, 0.0, 0.0]);
        let c = cumulative_mean_rows(&x);
        assert_eq!(c.row(0), x.row(0));
        assert_eq!(c.row(1), &[2.0, -1.0, 3.5]);
    }

    #[test]
    fn causal_mask_offset_pattern() {
        let mut m = Matrix::zeros(2, 5);
        causal_mask_in_place(&mut m, 3);
        assert_eq!(m.get(0, 3), 0.0);
        assert_eq!(m.get(0, 4), -1e9);
        assert_eq!(m.get(1, 4), 0.0);
    }

    #[test]
    fn mul_col_broadcast_scales_rows() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let s = Matrix::from_vec(2, 1, vec![2.0, -1.0]);
        let v = mul_col_broadcast(&a, &s);
        assert_eq!(v.data(), &[2.0, 4.0, -3.0, -4.0]);
    }

    #[test]
    fn affine_adds_bias_rowwise() {
        let x = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        let y = affine(&x, &w, &b);
        assert_eq!(y.data(), &[11.0, 22.0, 13.0, 24.0]);
    }
}
