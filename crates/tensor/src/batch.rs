//! Ragged sequence-batch layout: N variable-length sequences packed row-wise
//! into one `[total, d]` matrix.
//!
//! The batch-first runtime never pads. A batch of sequences with lengths
//! `[3, 1, 5]` is a single 9-row matrix whose rows 0..3 belong to sequence 0,
//! row 3 to sequence 1 and rows 4..9 to sequence 2; [`SeqBatch`] is the
//! layout descriptor mapping sequence indices onto packed row ranges.
//!
//! Why packing preserves the single-sequence numerics: the blocked kernels
//! guarantee that every output element of a row-local operation (linear
//! projections, LayerNorm, GELU, embedding gathers, the LM head, row
//! softmaxes) is one ascending fused accumulation chain over the inner
//! dimension, *independent of how many other rows the operand holds* (see
//! [`crate::infer`]). So running a whole packed batch through those kernels
//! at one thread produces, row for row, exactly the bits the single-sequence
//! path produces. Only genuinely per-sequence math — attention score
//! matrices, causal masks, cumulative prefix statistics — must be computed
//! per [`SeqBatch::range`], which is what the batched attention and hook
//! paths in `infuserki-nn` do.

use std::ops::Range;

/// Row layout of a ragged batch: per-sequence lengths as prefix-summed
/// offsets into the packed `[total, d]` matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqBatch {
    /// `n_seqs + 1` ascending offsets; sequence `i` owns rows
    /// `offsets[i]..offsets[i+1]`.
    offsets: Vec<usize>,
}

impl SeqBatch {
    /// Builds the layout for sequences of the given lengths.
    ///
    /// # Panics
    /// Panics if `lens` is empty or any length is zero — an empty chunk has
    /// no rows to pack and callers must filter such sequences out first.
    pub fn from_lens(lens: &[usize]) -> Self {
        assert!(!lens.is_empty(), "SeqBatch: empty batch");
        let mut offsets = Vec::with_capacity(lens.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for (i, &len) in lens.iter().enumerate() {
            assert!(len > 0, "SeqBatch: sequence {i} has zero length");
            total += len;
            offsets.push(total);
        }
        SeqBatch { offsets }
    }

    /// The batch-of-1 layout over `n` rows.
    pub fn single(n: usize) -> Self {
        SeqBatch::from_lens(&[n])
    }

    /// Number of sequences.
    #[inline]
    pub fn n_seqs(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total packed rows across all sequences.
    #[inline]
    pub fn total_rows(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Length of sequence `i`.
    #[inline]
    pub fn len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// True when the batch holds a single sequence (batches are never empty).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First packed row of sequence `i`.
    #[inline]
    pub fn start(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Packed row range of sequence `i`.
    #[inline]
    pub fn range(&self, i: usize) -> Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Packed row index of sequence `i`'s last row.
    #[inline]
    pub fn last_row(&self, i: usize) -> usize {
        self.offsets[i + 1] - 1
    }

    /// Iterates the per-sequence packed row ranges in order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        self.offsets.windows(2).map(|w| w[0]..w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ragged_layout_round_trip() {
        let b = SeqBatch::from_lens(&[3, 1, 5]);
        assert_eq!(b.n_seqs(), 3);
        assert_eq!(b.total_rows(), 9);
        assert_eq!(b.len(0), 3);
        assert_eq!(b.len(1), 1);
        assert_eq!(b.range(2), 4..9);
        assert_eq!(b.start(1), 3);
        assert_eq!(b.last_row(0), 2);
        assert_eq!(b.last_row(2), 8);
        let ranges: Vec<_> = b.ranges().collect();
        assert_eq!(ranges, vec![0..3, 3..4, 4..9]);
    }

    #[test]
    fn single_is_batch_of_one() {
        let b = SeqBatch::single(7);
        assert_eq!(b.n_seqs(), 1);
        assert_eq!(b.total_rows(), 7);
        assert_eq!(b.range(0), 0..7);
    }

    #[test]
    #[should_panic(expected = "zero length")]
    fn zero_length_sequence_rejected() {
        SeqBatch::from_lens(&[2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        SeqBatch::from_lens(&[]);
    }
}
