//! Hot numeric kernels.
//!
//! The matmul uses the `ikj` loop order so the innermost loop walks both the
//! output row and the `b` row contiguously — this autovectorizes well and was
//! measured at several GFLOP/s on the single-core target box. Bounds checks
//! are hoisted by slicing rows once per iteration.

use crate::matrix::Matrix;

/// `out = a @ b` where `a: [m, k]`, `b: [k, n]`.
///
/// # Panics
/// Panics if inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dims {}x{} @ {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let m = a.rows();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    matmul_into(a, b, &mut out, false);
    out
}

/// `out (+)= a @ b`; when `accumulate` is false `out` is overwritten.
///
/// `out` must already have shape `[a.rows, b.cols]`.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix, accumulate: bool) {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(b.rows(), k, "matmul_into: inner dim");
    assert_eq!(out.shape(), (m, n), "matmul_into: out shape");
    if !accumulate {
        out.fill_zero();
    }
    let bd = b.data();
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (p, &av) in arow.iter().enumerate().take(k) {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// `out = a @ b^T` where `a: [m, k]`, `b: [n, k]` — avoids materializing the
/// transpose; each dot product walks two contiguous rows.
pub fn matmul_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_bt: inner dims {}x{} @ ({}x{})^T",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let m = a.rows();
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (j, o) in orow.iter_mut().enumerate() {
            *o = dot(arow, b.row(j));
        }
    }
    out
}

/// `out = a^T @ b` where `a: [k, m]`, `b: [k, n]`.
pub fn matmul_at(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at: inner dims ({}x{})^T @ {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (k, m) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for p in 0..k {
        let arow = a.row(p);
        let brow = b.row(p);
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out.data_mut()[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Dot product of two equal-length slices (unrolled by 4 for the vectorizer).
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc0 = 0.0f32;
    let mut acc1 = 0.0f32;
    let mut acc2 = 0.0f32;
    let mut acc3 = 0.0f32;
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc0 += x[i] * y[i];
        acc1 += x[i + 1] * y[i + 1];
        acc2 += x[i + 2] * y[i + 2];
        acc3 += x[i + 3] * y[i + 3];
    }
    let mut acc = acc0 + acc1 + acc2 + acc3;
    for i in chunks * 4..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

/// Row-wise softmax with max-subtraction for stability.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

/// Row-wise log-softmax (numerically stable log-sum-exp form).
pub fn log_softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
        for v in row.iter_mut() {
            *v -= lse;
        }
    }
    out
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(v: f32) -> f32 {
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

/// tanh-approximation GELU (the variant used by GPT-style models).
#[inline]
pub fn gelu(v: f32) -> f32 {
    const C: f32 = 0.797_884_56; // sqrt(2/pi)
    0.5 * v * (1.0 + (C * (v + 0.044_715 * v * v * v)).tanh())
}

/// Derivative of [`gelu`].
#[inline]
pub fn gelu_grad(v: f32) -> f32 {
    const C: f32 = 0.797_884_56;
    let u = C * (v + 0.044_715 * v * v * v);
    let t = u.tanh();
    let du = C * (1.0 + 3.0 * 0.044_715 * v * v);
    0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du
}

/// SiLU / swish: `x * sigmoid(x)`.
#[inline]
pub fn silu(v: f32) -> f32 {
    v * sigmoid(v)
}

/// Derivative of [`silu`].
#[inline]
pub fn silu_grad(v: f32) -> f32 {
    let s = sigmoid(v);
    s * (1.0 + v * (1.0 - s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = m(2, 2, &[1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &i), a);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &[1., 0., 1., 0., 1., 0., 2., 2., 2., -1., 1., 0.]);
        assert_eq!(matmul_bt(&a, &b), matmul(&a, &b.transposed()));
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, &[1., 0., 1., 0., 0., 1., 0., 1., 2., 2., 2., 2.]);
        assert_eq!(matmul_at(&a, &b), matmul(&a.transposed(), &b));
    }

    #[test]
    fn matmul_into_accumulates() {
        let a = m(1, 2, &[1., 1.]);
        let b = m(2, 1, &[2., 3.]);
        let mut out = Matrix::full(1, 1, 10.0);
        matmul_into(&a, &b, &mut out, true);
        assert_eq!(out.scalar_value(), 15.0);
        matmul_into(&a, &b, &mut out, false);
        assert_eq!(out.scalar_value(), 5.0);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_shape_panics() {
        let a = m(1, 2, &[1., 1.]);
        let b = m(3, 1, &[1., 1., 1.]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = m(2, 3, &[1., 2., 3., -1., 0., 100.]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // the large-logit row should be a near-one-hot
        assert!(s.get(1, 2) > 0.999);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = m(1, 4, &[0.5, -1.0, 2.0, 0.0]);
        let s = softmax_rows(&x);
        let ls = log_softmax_rows(&x);
        for c in 0..4 {
            assert!((ls.get(0, c) - s.get(0, c).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn sigmoid_stable_extremes() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn gelu_reference_points() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn activation_grads_match_finite_diff() {
        let eps = 1e-3;
        for &v in &[-2.0f32, -0.5, 0.0, 0.7, 1.9] {
            let fd_g = (gelu(v + eps) - gelu(v - eps)) / (2.0 * eps);
            assert!(
                (gelu_grad(v) - fd_g).abs() < 1e-2,
                "gelu'({v}) = {} vs fd {fd_g}",
                gelu_grad(v)
            );
            let fd_s = (silu(v + eps) - silu(v - eps)) / (2.0 * eps);
            assert!((silu_grad(v) - fd_s).abs() < 1e-2);
        }
    }

    #[test]
    fn dot_handles_remainders() {
        let x: Vec<f32> = (0..7).map(|i| i as f32).collect();
        let y = vec![1.0f32; 7];
        assert_eq!(dot(&x, &y), 21.0);
    }
}
