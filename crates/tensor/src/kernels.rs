//! Hot numeric kernels: parallel, cache-blocked matrix products plus the
//! activation/softmax primitives the rest of the workspace builds on.
//!
//! # Blocking design
//!
//! All three products (`a@b`, `a@bᵀ`, `aᵀ@b`) share the same structure:
//!
//! 1. **Row-band parallelism.** Output rows are split into contiguous,
//!    near-equal bands, one band per worker thread, run under
//!    `std::thread::scope`. Bands write disjoint `out` slices (via
//!    `split_at_mut`), so no synchronization is needed beyond the join.
//! 2. **Register tiling.** Inside a band, outputs are computed in `MR×NR`
//!    tiles ([`matmul_into`]/[`matmul_at_into`]: 8 output rows × 16 columns,
//!    sized for one-ZMM-wide column strips under AVX-512, with 4- and 2-row
//!    fallback tiles for row remainders; [`matmul_bt_into`]: 4×4 dot-product
//!    tiles). Each tile's accumulators live in registers across the entire
//!    inner dimension, so per-`p` traffic is loads only — the seed kernel
//!    re-read and re-wrote the output row on every step of the inner
//!    dimension. Remaining edges fall back to scalar loops.
//! 3. **Serial fast path.** Products smaller than [`PAR_MIN_FLOPS`] run on
//!    the calling thread even when more threads are configured: band spawn
//!    costs ~10µs, which swamps sub-millisecond products. The threshold was
//!    tuned on the microbench suite (`cargo bench -p infuserki-bench`): at
//!    64³ spawning loses, at 256³ it amortizes.
//!
//! # Determinism
//!
//! Every output element is accumulated **over the inner dimension `p` in
//! ascending order through a single accumulator chain**, in the tile path,
//! the scalar-edge path, and every band split. Consequently the blocked,
//! banded, multi-threaded result is *bit-for-bit identical* to the serial
//! result for any thread count and any tile alignment — floating-point
//! summation order never changes. (`accumulate=true` in the `_into` variants
//! adds the prior output value once, after the chain.)
//!
//! The chain's arithmetic is the [`fmadd`] helper: hardware fused
//! multiply-add when the build targets it (see `.cargo/config.toml`), plain
//! multiply + add otherwise. The choice is per *build*, never per call, so
//! reproducibility holds within any given binary; against the plain-chain
//! [`reference`] oracle an FMA build agrees to (tighter than) the documented
//! `1e-4` relative tolerance.
//!
//! # Thread knob
//!
//! Worker count resolution order: [`set_num_threads`] override →
//! `INFUSERKI_THREADS` env var → `std::thread::available_parallelism()`.
//! Set either to `1` for strictly single-threaded execution; results are
//! identical either way (see above), so the knob only trades wall-clock.
//! The env knob is parsed strictly ([`parse_thread_count`]): `0`, empty and
//! non-numeric values abort with a clear error instead of silently falling
//! back, and [`env_thread_count`] is the shared helper the serving config
//! resolves the same knob through.
//!
//! # ISA tiers
//!
//! The column-strip loop of the `a@b`/`aᵀ@b` tile path, the attention·V
//! row fold, GELU and the softmax max/scale passes each dispatch through
//! [`crate::simd::active_isa`] to an explicit AVX2 or AVX-512 micro-kernel
//! ([`crate::simd`]) when the CPU (or the `INFUSERKI_ISA` knob) selects one.
//! Every f32 tier is bitwise-equal to the scalar tier — SIMD lanes only ever
//! span independent output elements, never an accumulation chain (see the
//! `simd` module docs for the proof obligations). The dot-shaped kernels
//! (`a@bᵀ`, score panels, [`dot_seq`]) run this module's scalar path in
//! every tier: one output element per chain leaves nothing to lane out
//! without reassociating.
//!
//! The pre-blocking seed kernels are preserved in [`reference`] as the
//! correctness oracle for the property-test suite and the before/after
//! microbenches.

use crate::matrix::Matrix;
use crate::simd::{self, Isa};
use infuserki_obs as obs;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Output-row tile height of the register micro-kernel.
pub(crate) const MR: usize = 8;
/// Output-column tile width of the register micro-kernel.
pub(crate) const NR: usize = 16;

/// Products below this many FLOPs (`2·m·n·k`) stay on the calling thread.
///
/// Empirically (microbench suite, see module docs): a 64×64×192 product
/// (~1.6 MFLOP) finishes in well under the ~10µs a scoped-thread spawn
/// costs, while 256³ (~33 MFLOP) amortizes spawning comfortably. The
/// break-even sits near a few MFLOP; 8 MFLOP adds safety margin.
const PAR_MIN_FLOPS: usize = 8_000_000;

/// Runtime thread-count override; 0 = unset (use env/default).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the kernel worker-thread count for this process.
///
/// `set_num_threads(1)` forces strictly serial execution; `0` clears the
/// override, falling back to `INFUSERKI_THREADS` / available parallelism.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Environment variable holding the worker-thread count for the matrix
/// kernels (and, via [`env_thread_count`], the serving subsystem).
pub const THREADS_ENV: &str = "INFUSERKI_THREADS";

/// Parses a thread-count string as the [`THREADS_ENV`] knob accepts it:
/// a positive integer. `0`, empty strings and garbage are rejected with a
/// descriptive error rather than silently falling back — a mistyped knob
/// should fail loudly, not quietly run on a surprise thread count.
pub fn parse_thread_count(raw: &str) -> Result<usize, String> {
    let t = raw.trim();
    if t.is_empty() {
        return Err(format!(
            "{THREADS_ENV} is set but empty; expected a positive integer"
        ));
    }
    match t.parse::<usize>() {
        Ok(0) => Err(format!(
            "{THREADS_ENV} must be at least 1 (0 worker threads cannot run anything); got `{raw}`"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "{THREADS_ENV} must be a positive integer; got `{raw}`"
        )),
    }
}

/// Reads and validates the [`THREADS_ENV`] environment knob: `Ok(None)` when
/// unset, `Ok(Some(n))` for a valid positive integer, `Err` (with a clear
/// message) for anything else. The single source of truth shared by the
/// kernel thread pool and the serve config.
pub fn env_thread_count() -> Result<Option<usize>, String> {
    match std::env::var(THREADS_ENV) {
        Ok(v) => parse_thread_count(&v).map(Some),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!(
            "{THREADS_ENV} is set to a non-UTF-8 value; expected a positive integer"
        )),
    }
}

/// Worker threads the matrix kernels will use for large products.
///
/// # Panics
/// Panics (once, with a clear message) if [`THREADS_ENV`] is set to `0` or
/// to anything that is not a positive integer.
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if o != 0 {
        return o;
    }
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| match env_thread_count() {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Err(e) => panic!("{e}"),
    })
}

/// Splits `rows` output rows into `bands` contiguous near-equal ranges.
fn row_bands(rows: usize, bands: usize) -> Vec<Range<usize>> {
    let bands = bands.min(rows).max(1);
    let base = rows / bands;
    let extra = rows % bands;
    let mut out = Vec::with_capacity(bands);
    let mut start = 0;
    for b in 0..bands {
        let len = base + usize::from(b < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Worker count for a product of `flops` FLOPs over `out_rows` output rows.
fn effective_threads(flops: usize, out_rows: usize) -> usize {
    if flops < PAR_MIN_FLOPS {
        1
    } else {
        num_threads().min(out_rows).max(1)
    }
}

/// Cached handles into the global metrics registry for the dispatch path.
///
/// Resolved once (the registry's get-or-create takes a lock); after that
/// every update is a single relaxed `fetch_add`, cheap enough to keep on
/// even in the serial fast path.
struct DispatchMetrics {
    /// Dispatches that ran on the calling thread (serial fast path).
    serial: std::sync::Arc<obs::Counter>,
    /// Dispatches that spawned a banded thread scope.
    banded: std::sync::Arc<obs::Counter>,
    /// Band tasks spawned across all banded dispatches.
    band_tasks: std::sync::Arc<obs::Counter>,
    /// Σ band busy nanoseconds (only advanced while tracing is enabled).
    busy_ns: std::sync::Arc<obs::Counter>,
    /// Σ idle nanoseconds: `threads·wall − Σbusy`, the time worker slots
    /// spent waiting on the slowest band (only while tracing is enabled).
    idle_ns: std::sync::Arc<obs::Counter>,
}

fn dispatch_metrics() -> &'static DispatchMetrics {
    static M: OnceLock<DispatchMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let g = obs::global();
        DispatchMetrics {
            serial: g.counter("kernels.dispatch.serial"),
            banded: g.counter("kernels.dispatch.banded"),
            band_tasks: g.counter("kernels.band_tasks"),
            busy_ns: g.counter("kernels.band_busy_ns"),
            idle_ns: g.counter("kernels.band_idle_ns"),
        }
    })
}

/// Runs `band_fn(rows, out_band)` over row bands, threaded when worthwhile.
///
/// `out` is the full output buffer (`out_rows × n`, row-major); each band
/// receives the disjoint slice holding exactly its rows.
///
/// Dispatch counts always feed the global metrics registry (one relaxed
/// `fetch_add` per call); per-band busy/idle timing and the dispatch span
/// are gated on [`obs::enabled`] so the tracing-off path never reads the
/// clock.
pub(crate) fn run_banded<F>(out: &mut [f32], out_rows: usize, n: usize, flops: usize, band_fn: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    let m = dispatch_metrics();
    let threads = effective_threads(flops, out_rows);
    if threads <= 1 {
        m.serial.inc();
        band_fn(0..out_rows, out);
        return;
    }
    m.banded.inc();
    let bands = row_bands(out_rows, threads);
    m.band_tasks.add(bands.len() as u64);
    let traced = obs::enabled();
    let _sp = traced.then(|| obs::span("kernels.banded_dispatch"));
    let t0 = traced.then(std::time::Instant::now);
    let busy_ns = std::sync::atomic::AtomicU64::new(0);
    let n_bands = bands.len();
    std::thread::scope(|scope| {
        let mut rest = out;
        let band_fn = &band_fn;
        let busy_ns = &busy_ns;
        for band in bands {
            let (chunk, tail) = rest.split_at_mut(band.len() * n);
            rest = tail;
            scope.spawn(move || {
                if traced {
                    let b0 = std::time::Instant::now();
                    band_fn(band, chunk);
                    busy_ns.fetch_add(b0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                } else {
                    band_fn(band, chunk);
                }
            });
        }
    });
    if let Some(t0) = t0 {
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let busy = busy_ns.load(Ordering::Relaxed);
        m.busy_ns.add(busy);
        m.idle_ns
            .add((wall_ns * n_bands as u64).saturating_sub(busy));
    }
}

// ---- a @ b -----------------------------------------------------------------

/// `out = a @ b` where `a: [m, k]`, `b: [k, n]`.
///
/// # Panics
/// Panics if inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dims {}x{} @ {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut out, false);
    out
}

/// `out (+)= a @ b`; when `accumulate` is false `out` is overwritten.
///
/// Allocation-free: `out` must already have shape `[a.rows, b.cols]`.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix, accumulate: bool) {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(b.rows(), k, "matmul_into: inner dims");
    assert_eq!(out.shape(), (m, n), "matmul_into: out shape");
    let flops = 2 * m * n * k;
    let (ad, bd) = (a.data(), b.data());
    let isa = simd::active_isa();
    run_banded(out.data_mut(), m, n, flops, |rows, chunk| {
        // a-value loader: row i0+r of `a`, entry p (row-major, stride k).
        matmul_band(|p, i| ad[i * k + p], bd, rows, chunk, k, n, accumulate, isa);
    });
}

/// `out = aᵀ @ b` where `a: [k, m]`, `b: [k, n]`.
pub fn matmul_at(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at: inner dims ({}x{})^T @ {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.cols(), b.cols());
    matmul_at_into(a, b, &mut out, false);
    out
}

/// `out (+)= aᵀ @ b`; allocation-free, `out: [a.cols, b.cols]`.
pub fn matmul_at_into(a: &Matrix, b: &Matrix, out: &mut Matrix, accumulate: bool) {
    let (k, m) = a.shape();
    let n = b.cols();
    assert_eq!(b.rows(), k, "matmul_at_into: inner dims");
    assert_eq!(out.shape(), (m, n), "matmul_at_into: out shape");
    let flops = 2 * m * n * k;
    let (ad, bd) = (a.data(), b.data());
    let isa = simd::active_isa();
    run_banded(out.data_mut(), m, n, flops, |rows, chunk| {
        // a-value loader: column i0+r of `a`, entry p (row-major, stride m).
        matmul_band(|p, i| ad[p * m + i], bd, rows, chunk, k, n, accumulate, isa);
    });
}

/// One fused-multiply-add step of an accumulation chain: `c + a·b`.
///
/// When the build targets hardware FMA (e.g. `-C target-cpu=native` via this
/// repo's `.cargo/config.toml`) this compiles to a single `vfmadd`
/// instruction; otherwise it is a plain multiply + add (`f32::mul_add`
/// without hardware support would fall back to a slow libm call). The choice
/// is fixed at compile time, so within one build every kernel path uses the
/// same chain and results stay bitwise reproducible.
#[inline(always)]
pub(crate) fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        c + a * b
    }
}

/// Shared banded kernel for `a@b` and `aᵀ@b`.
///
/// Computes `chunk[i - rows.start][j] (+)= Σ_p load_a(p, i) · b[p][j]` for
/// `i ∈ rows`, `j ∈ 0..n`, `p` ascending. Main path: `MR×NR` register tiles
/// over an A panel packed to `[p][r]` layout (contiguous inner-loop reads,
/// no bounds-checked gather in the hot loop), with the column-strip inner
/// loop dispatched to the `isa` tier; edges: scalar loops with the identical
/// per-element accumulation chain.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn matmul_band(
    load_a: impl Fn(usize, usize) -> f32,
    bd: &[f32],
    rows: Range<usize>,
    chunk: &mut [f32],
    k: usize,
    n: usize,
    accumulate: bool,
    isa: Isa,
) {
    let mb = rows.len();
    // O(k·MR) packing scratch, reused across the band's row tiles.
    let mut apack = vec![0.0f32; k * MR];
    let mut ib = 0;
    // Largest-first row blocks: full MR tiles, then one 4- and one 2-row
    // tile for the remainder, then scalar rows. Small batched-decode chunks
    // (4–7 packed rows) would otherwise miss register tiling entirely.
    while mb - ib >= MR {
        tile_rows::<MR>(
            &load_a, bd, rows.start, ib, chunk, k, n, accumulate, &mut apack, isa,
        );
        ib += MR;
    }
    if mb - ib >= 4 {
        tile_rows::<4>(
            &load_a, bd, rows.start, ib, chunk, k, n, accumulate, &mut apack, isa,
        );
        ib += 4;
    }
    if mb - ib >= 2 {
        tile_rows::<2>(
            &load_a, bd, rows.start, ib, chunk, k, n, accumulate, &mut apack, isa,
        );
        ib += 2;
    }
    for li in ib..mb {
        scalar_row_tail(
            &load_a,
            bd,
            rows.start + li,
            li,
            chunk,
            k,
            n,
            0,
            n,
            accumulate,
        );
    }
}

/// One `R×NR`-tiled row block of [`matmul_band`]: packs `R` rows of A,
/// sweeps `NR`-wide column tiles with register accumulators, and finishes
/// the column tail through [`scalar_row_tail`]. Per output element the
/// accumulation is the same single ascending-`p` [`fmadd`] chain for every
/// `R`, so the tile-height fallback ladder never changes a result bit.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tile_rows<const R: usize>(
    load_a: &impl Fn(usize, usize) -> f32,
    bd: &[f32],
    row0: usize,
    ib: usize,
    chunk: &mut [f32],
    k: usize,
    n: usize,
    accumulate: bool,
    apack: &mut [f32],
    isa: Isa,
) {
    let j_main = n - n % NR;
    let apack = &mut apack[..k * R];
    for (p, ap) in apack.chunks_exact_mut(R).enumerate() {
        for (r, slot) in ap.iter_mut().enumerate() {
            *slot = load_a(p, row0 + ib + r);
        }
    }
    for jb in (0..j_main).step_by(NR) {
        strip16::<R>(apack, bd, jb, k, n, chunk, ib, accumulate, isa);
    }
    for r in 0..R {
        let i = row0 + ib + r;
        scalar_row_tail(load_a, bd, i, ib + r, chunk, k, n, j_main, n, accumulate);
    }
}

/// One `R×NR` column strip of [`tile_rows`], dispatched to the `isa` tier.
/// All tiers compute the identical per-element ascending-`p` [`fmadd`]
/// chain — the SIMD variants vectorize across the strip's 16 independent
/// output columns only (see [`crate::simd`]).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn strip16<const R: usize>(
    apack: &[f32],
    bd: &[f32],
    jb: usize,
    k: usize,
    n: usize,
    chunk: &mut [f32],
    ib: usize,
    accumulate: bool,
    isa: Isa,
) {
    #[cfg(target_arch = "x86_64")]
    if isa != Isa::Scalar {
        // Bounds (checked by the callers' invariants, restated here):
        // apack holds k·R floats; the deepest B read is
        // (k-1)·n + jb + 16 ≤ k·n = bd.len(); the deepest out access is
        // (ib+R-1)·n + jb + 16 ≤ chunk.len() since ib+R ≤ band rows and
        // jb + 16 ≤ n. CPU support is guaranteed by `active_isa`.
        unsafe {
            let out = chunk.as_mut_ptr().add(ib * n + jb);
            match isa {
                Isa::Avx2 => simd::x86::strip16_avx2::<R>(
                    apack.as_ptr(),
                    bd.as_ptr().add(jb),
                    n,
                    k,
                    out,
                    n,
                    accumulate,
                ),
                Isa::Avx512 => simd::x86::strip16_avx512::<R>(
                    apack.as_ptr(),
                    bd.as_ptr().add(jb),
                    n,
                    k,
                    out,
                    n,
                    accumulate,
                ),
                Isa::Scalar => unreachable!(),
            }
        }
        return;
    }
    let _ = isa;
    let mut acc = [[0.0f32; NR]; R];
    for (ap, brow) in apack.chunks_exact(R).zip(bd.chunks_exact(n)) {
        let bs: &[f32; NR] = brow[jb..jb + NR].try_into().expect("NR block");
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let av = ap[r];
            for (c, s) in acc_row.iter_mut().enumerate() {
                *s = fmadd(av, bs[c], *s);
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        let orow = &mut chunk[(ib + r) * n + jb..(ib + r) * n + jb + NR];
        if accumulate {
            for (o, &v) in orow.iter_mut().zip(acc_row.iter()) {
                *o += v;
            }
        } else {
            orow.copy_from_slice(acc_row);
        }
    }
}

/// Scalar edge path: `chunk[li][j] (+)= Σ_p load_a(p, i) · b[p][j]` for
/// `j ∈ j_lo..j_hi`, `p` ascending — same [`fmadd`] chain as the tile path,
/// so tile-edge placement (which depends on the band split) never changes a
/// result bit.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn scalar_row_tail(
    load_a: &impl Fn(usize, usize) -> f32,
    bd: &[f32],
    i: usize,
    li: usize,
    chunk: &mut [f32],
    k: usize,
    n: usize,
    j_lo: usize,
    j_hi: usize,
    accumulate: bool,
) {
    for j in j_lo..j_hi {
        let mut s = 0.0f32;
        for p in 0..k {
            s = fmadd(load_a(p, i), bd[p * n + j], s);
        }
        let o = &mut chunk[li * n + j];
        if accumulate {
            *o += s;
        } else {
            *o = s;
        }
    }
}

// ---- a @ b^T ---------------------------------------------------------------

/// `out = a @ bᵀ` where `a: [m, k]`, `b: [n, k]` — avoids materializing the
/// transpose; each dot product walks two contiguous rows.
pub fn matmul_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_bt: inner dims {}x{} @ ({}x{})^T",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.rows(), b.rows());
    matmul_bt_into(a, b, &mut out, false);
    out
}

/// `out (+)= a @ bᵀ`; allocation-free, `out: [a.rows, b.rows]`.
pub fn matmul_bt_into(a: &Matrix, b: &Matrix, out: &mut Matrix, accumulate: bool) {
    let (m, k) = a.shape();
    let n = b.rows();
    assert_eq!(b.cols(), k, "matmul_bt_into: inner dims");
    assert_eq!(out.shape(), (m, n), "matmul_bt_into: out shape");
    let flops = 2 * m * n * k;
    let (ad, bd) = (a.data(), b.data());
    run_banded(out.data_mut(), m, n, flops, |rows, chunk| {
        matmul_bt_band(ad, bd, rows, chunk, k, n, accumulate);
    });
}

/// Tile height/width of the dot-product micro-kernel (`a@bᵀ`).
const TR: usize = 4;

/// Banded `a@bᵀ` kernel: `TR×TR` tiles of simultaneous dot products, so each
/// loaded `a`/`b` value feeds `TR` accumulators. Per-element accumulation is
/// a single ascending-`p` chain in both the tile and the scalar edge path.
fn matmul_bt_band(
    ad: &[f32],
    bd: &[f32],
    rows: Range<usize>,
    chunk: &mut [f32],
    k: usize,
    n: usize,
    accumulate: bool,
) {
    let mb = rows.len();
    let i_main = mb - mb % TR;
    let j_main = n - n % TR;
    for ib in (0..i_main).step_by(TR) {
        let arows: [&[f32]; TR] = std::array::from_fn(|r| {
            let i = rows.start + ib + r;
            &ad[i * k..(i + 1) * k]
        });
        for jb in (0..j_main).step_by(TR) {
            let brows: [&[f32]; TR] = std::array::from_fn(|c| &bd[(jb + c) * k..(jb + c + 1) * k]);
            let mut acc = [[0.0f32; TR]; TR];
            for p in 0..k {
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = arows[r][p];
                    for (c, av_acc) in acc_row.iter_mut().enumerate() {
                        *av_acc = fmadd(av, brows[c][p], *av_acc);
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                for (c, &v) in acc_row.iter().enumerate() {
                    let o = &mut chunk[(ib + r) * n + jb + c];
                    if accumulate {
                        *o += v;
                    } else {
                        *o = v;
                    }
                }
            }
        }
        for r in 0..TR {
            for j in j_main..n {
                let s = dot_seq(arows[r], &bd[j * k..(j + 1) * k]);
                let o = &mut chunk[(ib + r) * n + j];
                if accumulate {
                    *o += s;
                } else {
                    *o = s;
                }
            }
        }
    }
    for li in i_main..mb {
        let i = rows.start + li;
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let s = dot_seq(arow, &bd[j * k..(j + 1) * k]);
            let o = &mut chunk[li * n + j];
            if accumulate {
                *o += s;
            } else {
                *o = s;
            }
        }
    }
}

/// Ascending-order dot product through one [`fmadd`] chain — the exact
/// accumulation chain every matmul kernel in this module uses per output
/// element (tile paths and scalar edges alike).
#[inline]
fn dot_seq(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut s = 0.0f32;
    for (&a, &b) in x.iter().zip(y.iter()) {
        s = fmadd(a, b, s);
    }
    s
}

// ---- column-window kernels (per-head attention over cached K/V) ------------

/// `out = a[r0..r1, lo..hi] @ (b[:, lo..hi])ᵀ` — per-head attention scores
/// against cached K, reading both operands through the column window
/// `lo..hi` in place. Replaces the `slice_rows`/`slice_cols` copies the
/// attention head loop would otherwise make of packed Q and of the *entire*
/// cached K every call (an O(history) copy per head per decode step).
///
/// Bitwise contract: every output element is the single ascending-`p`
/// [`fmadd`] chain shared by all matmul kernels in this module, so the result
/// is bit-for-bit what
/// `matmul_bt(&a.slice_rows(r0, r1).slice_cols(lo, hi), &b.slice_cols(lo, hi))`
/// returns, at any thread count. Runs serial — per-head score blocks sit far
/// below the parallel threshold.
pub fn matmul_bt_cols(
    a: &Matrix,
    r0: usize,
    r1: usize,
    b: &Matrix,
    lo: usize,
    hi: usize,
) -> Matrix {
    assert!(r0 <= r1 && r1 <= a.rows(), "matmul_bt_cols: row window");
    assert!(
        lo <= hi && hi <= a.cols() && hi <= b.cols(),
        "matmul_bt_cols: column window"
    );
    let m = r1 - r0;
    let n = b.rows();
    let (ka, kb) = (a.cols(), b.cols());
    let (ad, bd) = (a.data(), b.data());
    let mut out = Matrix::zeros(m, n);
    let od = out.data_mut();
    // A row's column window is a contiguous slice, so the TR×TR dot-product
    // tiling of `matmul_bt_band` carries over unchanged.
    let arow = |i: usize| &ad[(r0 + i) * ka + lo..(r0 + i) * ka + hi];
    let brow = |j: usize| &bd[j * kb + lo..j * kb + hi];
    let i_main = m - m % TR;
    let j_main = n - n % TR;
    for ib in (0..i_main).step_by(TR) {
        let ar: [&[f32]; TR] = std::array::from_fn(|r| arow(ib + r));
        for jb in (0..j_main).step_by(TR) {
            let br: [&[f32]; TR] = std::array::from_fn(|c| brow(jb + c));
            let mut acc = [[0.0f32; TR]; TR];
            for p in 0..hi - lo {
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = ar[r][p];
                    for (c, s) in acc_row.iter_mut().enumerate() {
                        *s = fmadd(av, br[c][p], *s);
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                od[(ib + r) * n + jb..(ib + r) * n + jb + TR].copy_from_slice(acc_row);
            }
        }
        for (r, ar_row) in ar.iter().enumerate() {
            for j in j_main..n {
                od[(ib + r) * n + j] = dot_seq(ar_row, brow(j));
            }
        }
    }
    for i in i_main..m {
        for j in 0..n {
            od[i * n + j] = dot_seq(arow(i), brow(j));
        }
    }
    out
}

/// `out[row0.., lo..hi] = a @ b[:, lo..hi]` — the per-head attention·V
/// product written straight into the merged-heads matrix's column window,
/// reading cached V in place (no `slice_cols` copy of the history, no
/// per-head output temporary).
///
/// Bitwise contract: per output element one ascending-`p` [`fmadd`] chain —
/// identical to [`matmul`] over a materialized `b.slice_cols(lo, hi)`, and
/// deliberately *without* the seed kernel's zero-skip branch (skipping
/// `av == 0.0` turns `-0.0 + 0.0·x` into `-0.0` where the chain produces
/// `+0.0`). Serial, like [`matmul_bt_cols`].
pub fn matmul_cols_into(
    a: &Matrix,
    b: &Matrix,
    lo: usize,
    hi: usize,
    out: &mut Matrix,
    row0: usize,
) {
    let (m, kk) = a.shape();
    assert_eq!(b.rows(), kk, "matmul_cols_into: inner dims");
    assert!(
        lo <= hi && hi <= b.cols(),
        "matmul_cols_into: column window"
    );
    assert!(
        row0 + m <= out.rows() && hi <= out.cols(),
        "matmul_cols_into: out window"
    );
    // The full product is the single-segment case of the paged fold.
    matmul_cols_seg_into(a, 0, kk, b, lo, hi, out, row0, false);
}

/// `out[:, col0..col0+b_rows] = a[r0..r1, lo..hi] @ (b[0..b_rows, lo..hi])ᵀ`
/// — the score-panel form of [`matmul_bt_cols`] for a *paged* K cache: `b` is
/// one fixed-size KV block of which only the first `b_rows` rows hold tokens,
/// and the panel lands at column offset `col0` of a scores matrix assembled
/// from several blocks.
///
/// Bitwise contract: each output element is the single ascending-`p`
/// [`dot_seq`] chain every matmul kernel here uses, and score elements depend
/// on exactly one Q row and one K row — so a scores matrix assembled
/// panel-by-panel from blocks is bit-for-bit the [`matmul_bt_cols`] result
/// over the same rows stored contiguously. Serial, like the other per-head
/// kernels.
#[allow(clippy::too_many_arguments)]
pub fn matmul_bt_cols_panel(
    a: &Matrix,
    r0: usize,
    r1: usize,
    b: &Matrix,
    b_rows: usize,
    lo: usize,
    hi: usize,
    out: &mut Matrix,
    col0: usize,
) {
    assert!(
        r0 <= r1 && r1 <= a.rows(),
        "matmul_bt_cols_panel: row window"
    );
    assert!(
        lo <= hi && hi <= a.cols() && hi <= b.cols(),
        "matmul_bt_cols_panel: column window"
    );
    assert!(b_rows <= b.rows(), "matmul_bt_cols_panel: b row count");
    let m = r1 - r0;
    assert!(
        m <= out.rows() && col0 + b_rows <= out.cols(),
        "matmul_bt_cols_panel: out window"
    );
    let (ka, kb) = (a.cols(), b.cols());
    let on = out.cols();
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[(r0 + i) * ka + lo..(r0 + i) * ka + hi];
        let orow = &mut od[i * on + col0..i * on + col0 + b_rows];
        for (j, o) in orow.iter_mut().enumerate() {
            *o = dot_seq(arow, &bd[j * kb + lo..j * kb + hi]);
        }
    }
}

/// Segment-continuation form of [`matmul_cols_into`] for a *paged* V cache:
/// folds score columns `a_lo..a_hi` against the first `a_hi - a_lo` rows of
/// `b` (one KV block, or the virtual-prefix panel) into `out`'s column window
/// `lo..hi`. With `accumulate == false` the window is zeroed first; with
/// `true` the chain continues on top of earlier segments.
///
/// Bitwise contract: calling this once per segment in ascending column order
/// (prefix panel first, then each block) extends every output element's
/// single ascending-`p` [`fmadd`] chain with exactly the terms
/// [`matmul_cols_into`] would fold over the same history stored contiguously
/// — so the segmented product is bit-identical. Masked score columns are
/// exact `+0.0` and must still pass through the chain (same no-zero-skip rule
/// as [`matmul_cols_into`]).
#[allow(clippy::too_many_arguments)]
pub fn matmul_cols_seg_into(
    a: &Matrix,
    a_lo: usize,
    a_hi: usize,
    b: &Matrix,
    lo: usize,
    hi: usize,
    out: &mut Matrix,
    row0: usize,
    accumulate: bool,
) {
    let m = a.rows();
    assert!(
        a_lo <= a_hi && a_hi <= a.cols(),
        "matmul_cols_seg_into: a window"
    );
    let seg = a_hi - a_lo;
    assert!(seg <= b.rows(), "matmul_cols_seg_into: b row count");
    assert!(
        lo <= hi && hi <= b.cols(),
        "matmul_cols_seg_into: column window"
    );
    assert!(
        row0 + m <= out.rows() && hi <= out.cols(),
        "matmul_cols_seg_into: out window"
    );
    let ka = a.cols();
    let on = out.cols();
    let bn = b.cols();
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    let isa = simd::active_isa();
    for i in 0..m {
        av_row(
            &ad[i * ka + a_lo..i * ka + a_hi],
            bd,
            lo,
            bn,
            &mut od[(row0 + i) * on + lo..(row0 + i) * on + hi],
            accumulate,
            isa,
        );
    }
}

/// One output row of the attention·V fold, dispatched to the `isa` tier:
/// `orow[j] (+)= Σ_p a[p] · bd[p·bn + lo + j]`, `p` ascending through one
/// [`fmadd`] chain per output element (each SIMD lane owns one independent
/// column's chain, so all tiers are bitwise-equal).
#[inline(always)]
fn av_row(
    a: &[f32],
    bd: &[f32],
    lo: usize,
    bn: usize,
    orow: &mut [f32],
    accumulate: bool,
    isa: Isa,
) {
    #[cfg(target_arch = "x86_64")]
    if isa != Isa::Scalar {
        // Bounds: the deepest B read is (seg-1)·bn + lo + orow.len() =
        // (seg-1)·bn + hi ≤ b.rows()·b.cols() = bd.len() (the caller
        // asserted seg ≤ b.rows() and hi ≤ b.cols()). CPU support is
        // guaranteed by `active_isa`.
        unsafe {
            match isa {
                Isa::Avx2 => simd::x86::av_row_avx2(
                    a.as_ptr(),
                    a.len(),
                    bd.as_ptr().add(lo),
                    bn,
                    orow.as_mut_ptr(),
                    orow.len(),
                    accumulate,
                ),
                Isa::Avx512 => simd::x86::av_row_avx512(
                    a.as_ptr(),
                    a.len(),
                    bd.as_ptr().add(lo),
                    bn,
                    orow.as_mut_ptr(),
                    orow.len(),
                    accumulate,
                ),
                Isa::Scalar => unreachable!(),
            }
        }
        return;
    }
    let _ = isa;
    if !accumulate {
        orow.fill(0.0);
    }
    for (p, &av) in a.iter().enumerate() {
        let brow = &bd[p * bn + lo..p * bn + lo + orow.len()];
        for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
            *o = fmadd(av, bv, *o);
        }
    }
}

/// Dot product of two equal-length slices (unrolled by 4 for the vectorizer).
///
/// Note: the 4-lane split changes summation order vs [`dot_seq`]; it is used
/// where raw speed matters and bit-stability across code paths does not
/// (e.g. softmax backward).
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc0 = 0.0f32;
    let mut acc1 = 0.0f32;
    let mut acc2 = 0.0f32;
    let mut acc3 = 0.0f32;
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc0 += x[i] * y[i];
        acc1 += x[i + 1] * y[i + 1];
        acc2 += x[i + 2] * y[i + 2];
        acc3 += x[i + 3] * y[i + 3];
    }
    let mut acc = acc0 + acc1 + acc2 + acc3;
    for i in chunks * 4..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

pub mod reference {
    //! The pre-blocking seed kernels, kept verbatim as the correctness
    //! oracle for the equivalence property tests and as the baseline for
    //! the before/after microbenches.

    use crate::matrix::Matrix;

    /// Seed `a @ b`: serial `ikj` loop with a zero-skip branch.
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "reference matmul: inner dims");
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = Matrix::zeros(m, n);
        let bd = b.data();
        for i in 0..m {
            let arow = a.row(i);
            let orow = out.row_mut(i);
            for (p, &av) in arow.iter().enumerate().take(k) {
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Seed `a @ bᵀ`: per-element dot products.
    pub fn matmul_bt(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "reference matmul_bt: inner dims");
        let m = a.rows();
        let n = b.rows();
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = a.row(i);
            let orow = out.row_mut(i);
            for (j, o) in orow.iter_mut().enumerate() {
                *o = arow.iter().zip(b.row(j).iter()).map(|(&x, &y)| x * y).sum();
            }
        }
        out
    }

    /// Seed `aᵀ @ b`: `p`-outer accumulation.
    pub fn matmul_at(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "reference matmul_at: inner dims");
        let (k, m) = a.shape();
        let n = b.cols();
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let arow = a.row(p);
            let brow = b.row(p);
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out.data_mut()[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }
}

// ---- softmax & activations -------------------------------------------------

/// Row-wise softmax with max-subtraction for stability.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    softmax_rows_in_place(&mut out);
    out
}

/// Max over a slice, dispatched to the `isa` tier. All tiers return the
/// same *value* as the scalar `f32::max` fold (max is order-insensitive over
/// finite floats); on a `±0.0` tie the SIMD tiers may pick the other zero's
/// sign, which the softmax callers provably absorb (`exp(v - ±0.0)` reads
/// only the value).
#[inline(always)]
fn max_slice(xs: &[f32], isa: Isa) -> f32 {
    #[cfg(target_arch = "x86_64")]
    match isa {
        Isa::Scalar => {}
        Isa::Avx2 => return unsafe { simd::x86::max_slice_avx2(xs) },
        Isa::Avx512 => return unsafe { simd::x86::max_slice_avx512(xs) },
    }
    let _ = isa;
    xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
}

/// `xs[i] *= s`, dispatched to the `isa` tier — elementwise, so every tier
/// is bitwise-equal.
#[inline(always)]
fn scale_slice(xs: &mut [f32], s: f32, isa: Isa) {
    #[cfg(target_arch = "x86_64")]
    match isa {
        Isa::Scalar => {}
        Isa::Avx2 => return unsafe { simd::x86::scale_slice_avx2(xs, s) },
        Isa::Avx512 => return unsafe { simd::x86::scale_slice_avx512(xs, s) },
    }
    let _ = isa;
    for v in xs.iter_mut() {
        *v *= s;
    }
}

/// In-place row-wise softmax (allocation-free form of [`softmax_rows`]).
///
/// The max scan and the `1/sum` scale pass dispatch to the active SIMD tier;
/// the `exp` + sum pass stays scalar in every tier (libm `expf` is the
/// bit-reference, and the sum is one ascending accumulation chain).
pub fn softmax_rows_in_place(out: &mut Matrix) {
    let isa = simd::active_isa();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = max_slice(row, isa);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        scale_slice(row, inv, isa);
    }
}

/// In-place row-wise softmax under a causal mask: row `r` softmaxes its
/// first `offset + r + 1` entries (its causally visible prefix) and writes
/// exact zeros over the tail, without reading the tail at all.
///
/// Bitwise-identical to masking the tail to `-∞` and running full-row
/// [`softmax_rows_in_place`]: masked entries never win the row max, their
/// `exp(-∞) = +0.0` terms extend the sum's accumulation chain only with
/// exact-zero additions (which cannot change any accumulated bit — the sum
/// is never `-0.0`), and `+0.0 × inv` is `+0.0`. Skipping them drops half
/// the `exp` calls of a square prefill score block and the masking pass.
pub fn softmax_rows_causal_in_place(out: &mut Matrix, offset: usize) {
    let isa = simd::active_isa();
    let n = out.cols();
    for r in 0..out.rows() {
        let valid = (offset + r + 1).min(n);
        let row = out.row_mut(r);
        let (head, tail) = row.split_at_mut(valid);
        let max = max_slice(head, isa);
        let mut sum = 0.0;
        for v in head.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        scale_slice(head, inv, isa);
        tail.fill(0.0);
    }
}

/// Row-wise log-softmax (numerically stable log-sum-exp form).
pub fn log_softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
        for v in row.iter_mut() {
            *v -= lse;
        }
    }
    out
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(v: f32) -> f32 {
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

/// Branch-free rational tanh (odd `x·P(x²)/Q(x²)`, saturating clamp at
/// ±7.905 where f32 tanh rounds to ±1), accurate to a few ulp — the
/// polynomial Eigen and XNNPACK use for their vectorized tanh.
///
/// The libm `tanhf` call it replaces is a scalar black box the
/// auto-vectorizer cannot touch, which made [`gelu`] the single largest
/// cost of a prefill (more than all its GEMMs combined). This form is pure
/// clamped polynomial arithmetic, so an elementwise map over a matrix
/// compiles to SIMD. Like every kernel here it is exactly reproducible:
/// same input, same bits, on every path that calls it.
/// The rational-tanh / GELU polynomial constants, shared verbatim with the
/// vector tiers in [`crate::simd`] — one source of truth, so a coefficient
/// tweak can never bitwise-desync the scalar and SIMD paths.
pub(crate) mod tanh_poly {
    /// Saturating clamp: past ±7.905 f32 tanh rounds to ±1.
    pub const CLAMP: f32 = 7.905_311;
    pub const A1: f32 = 4.893_525_6e-3;
    pub const A3: f32 = 6.372_619_3e-4;
    pub const A5: f32 = 1.485_722_4e-5;
    pub const A7: f32 = 5.122_297_1e-8;
    pub const A9: f32 = -8.604_672e-11;
    pub const A11: f32 = 2.000_188e-13;
    pub const A13: f32 = -2.760_768_5e-16;
    pub const B0: f32 = 4.893_525e-3;
    pub const B2: f32 = 2.268_434_6e-3;
    pub const B4: f32 = 1.185_347_1e-4;
    pub const B6: f32 = 1.198_258_4e-6;
    /// sqrt(2/pi), the GELU tanh-approximation scale.
    pub const GELU_C: f32 = 0.797_884_6;
    /// The GELU cubic coefficient.
    pub const GELU_K: f32 = 0.044_715;
}

#[inline]
pub fn tanh_fast(x: f32) -> f32 {
    use tanh_poly::*;
    let x = x.clamp(-CLAMP, CLAMP);
    let x2 = x * x;
    let p = ((((((A13 * x2 + A11) * x2 + A9) * x2 + A7) * x2 + A5) * x2 + A3) * x2 + A1) * x;
    let q = ((B6 * x2 + B4) * x2 + B2) * x2 + B0;
    p / q
}

/// tanh-approximation GELU (the variant used by GPT-style models), with the
/// inner tanh computed by [`tanh_fast`] so the map vectorizes. The tape
/// forward and the KV-cached inference path both route through this one
/// function, so their outputs stay bitwise identical to each other.
#[inline]
pub fn gelu(v: f32) -> f32 {
    const C: f32 = tanh_poly::GELU_C;
    const K: f32 = tanh_poly::GELU_K;
    0.5 * v * (1.0 + tanh_fast(C * (v + K * v * v * v)))
}

/// In-place GELU over a slice, dispatched to the active SIMD tier. The
/// vector tiers replicate [`gelu`]'s exact operation sequence lane-by-lane
/// (plain multiplies and adds, never contracted to FMA — the scalar form
/// uses `*`/`+`, which Rust never fuses), so finite inputs produce
/// bitwise-identical outputs in every tier; NaNs stay NaN.
pub fn gelu_slice(xs: &mut [f32]) {
    let isa = simd::active_isa();
    #[cfg(target_arch = "x86_64")]
    match isa {
        Isa::Scalar => {}
        Isa::Avx2 => return unsafe { simd::x86::gelu_slice_avx2(xs) },
        Isa::Avx512 => return unsafe { simd::x86::gelu_slice_avx512(xs) },
    }
    let _ = isa;
    for v in xs.iter_mut() {
        *v = gelu(*v);
    }
}

/// Derivative of [`gelu`] (same [`tanh_fast`] inner tanh).
#[inline]
pub fn gelu_grad(v: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (v + 0.044_715 * v * v * v);
    let t = tanh_fast(u);
    let du = C * (1.0 + 3.0 * 0.044_715 * v * v);
    0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du
}

/// SiLU / swish: `x * sigmoid(x)`.
#[inline]
pub fn silu(v: f32) -> f32 {
    v * sigmoid(v)
}

/// Derivative of [`silu`].
#[inline]
pub fn silu_grad(v: f32) -> f32 {
    let s = sigmoid(v);
    s * (1.0 + v * (1.0 - s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = m(2, 2, &[1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &i), a);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &[1., 0., 1., 0., 1., 0., 2., 2., 2., -1., 1., 0.]);
        assert_eq!(matmul_bt(&a, &b), matmul(&a, &b.transposed()));
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, &[1., 0., 1., 0., 0., 1., 0., 1., 2., 2., 2., 2.]);
        assert_eq!(matmul_at(&a, &b), matmul(&a.transposed(), &b));
    }

    #[test]
    fn matmul_into_accumulates() {
        let a = m(1, 2, &[1., 1.]);
        let b = m(2, 1, &[2., 3.]);
        let mut out = Matrix::full(1, 1, 10.0);
        matmul_into(&a, &b, &mut out, true);
        assert_eq!(out.scalar_value(), 15.0);
        matmul_into(&a, &b, &mut out, false);
        assert_eq!(out.scalar_value(), 5.0);
    }

    #[test]
    fn matmul_bt_into_accumulates() {
        let a = m(1, 2, &[1., 1.]);
        let b = m(1, 2, &[2., 3.]);
        let mut out = Matrix::full(1, 1, 10.0);
        matmul_bt_into(&a, &b, &mut out, true);
        assert_eq!(out.scalar_value(), 15.0);
        matmul_bt_into(&a, &b, &mut out, false);
        assert_eq!(out.scalar_value(), 5.0);
    }

    #[test]
    fn matmul_at_into_accumulates() {
        let a = m(2, 1, &[1., 1.]);
        let b = m(2, 1, &[2., 3.]);
        let mut out = Matrix::full(1, 1, 10.0);
        matmul_at_into(&a, &b, &mut out, true);
        assert_eq!(out.scalar_value(), 15.0);
        matmul_at_into(&a, &b, &mut out, false);
        assert_eq!(out.scalar_value(), 5.0);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_shape_panics() {
        let a = m(1, 2, &[1., 1.]);
        let b = m(3, 1, &[1., 1., 1.]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn blocked_matches_reference_on_awkward_shapes() {
        // Shapes straddling tile boundaries: 1×1, non-multiples of MR/NR/TR.
        for &(mm, kk, nn) in &[(1, 1, 1), (5, 7, 9), (4, 8, 8), (13, 3, 17), (3, 16, 5)] {
            let a = Matrix::from_vec(
                mm,
                kk,
                (0..mm * kk).map(|i| (i as f32 * 0.37).sin()).collect(),
            );
            let b = Matrix::from_vec(
                kk,
                nn,
                (0..kk * nn).map(|i| (i as f32 * 0.73).cos()).collect(),
            );
            let fast = matmul(&a, &b);
            let slow = reference::matmul(&a, &b);
            for (x, y) in fast.data().iter().zip(slow.data().iter()) {
                assert!((x - y).abs() <= 1e-5 * y.abs().max(1.0), "{mm}x{kk}x{nn}");
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        // Band splits must not change accumulation order: force threading by
        // hammering the banded path directly on a mid-size product.
        let a = Matrix::from_vec(64, 33, (0..64 * 33).map(|i| (i as f32).sin()).collect());
        let b = Matrix::from_vec(33, 29, (0..33 * 29).map(|i| (i as f32).cos()).collect());
        let serial = matmul(&a, &b);
        let mut banded = Matrix::zeros(64, 29);
        // Simulate a 3-way band split exactly as run_banded would.
        let (ad, bd) = (a.data(), b.data());
        let isa = simd::active_isa();
        let mut rest = banded.data_mut();
        for band in row_bands(64, 3) {
            let (chunk, tail) = rest.split_at_mut(band.len() * 29);
            rest = tail;
            matmul_band(|p, i| ad[i * 33 + p], bd, band, chunk, 33, 29, false, isa);
        }
        assert_eq!(serial.data(), banded.data());
    }

    #[test]
    fn set_num_threads_round_trip() {
        let before = num_threads();
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        let _ = num_threads(); // falls back to default resolution
        set_num_threads(before.max(1));
        set_num_threads(0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = m(2, 3, &[1., 2., 3., -1., 0., 100.]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // the large-logit row should be a near-one-hot
        assert!(s.get(1, 2) > 0.999);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = m(1, 4, &[0.5, -1.0, 2.0, 0.0]);
        let s = softmax_rows(&x);
        let ls = log_softmax_rows(&x);
        for c in 0..4 {
            assert!((ls.get(0, c) - s.get(0, c).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn sigmoid_stable_extremes() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn gelu_reference_points() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn activation_grads_match_finite_diff() {
        let eps = 1e-3;
        for &v in &[-2.0f32, -0.5, 0.0, 0.7, 1.9] {
            let fd_g = (gelu(v + eps) - gelu(v - eps)) / (2.0 * eps);
            assert!(
                (gelu_grad(v) - fd_g).abs() < 1e-2,
                "gelu'({v}) = {} vs fd {fd_g}",
                gelu_grad(v)
            );
            let fd_s = (silu(v + eps) - silu(v - eps)) / (2.0 * eps);
            assert!((silu_grad(v) - fd_s).abs() < 1e-2);
        }
    }

    #[test]
    fn dot_handles_remainders() {
        let x: Vec<f32> = (0..7).map(|i| i as f32).collect();
        let y = vec![1.0f32; 7];
        assert_eq!(dot(&x, &y), 21.0);
        assert_eq!(dot_seq(&x, &y), 21.0);
    }

    #[test]
    fn matmul_bt_cols_bitwise_matches_sliced_matmul_bt() {
        // Window shapes spanning tile boundaries on both axes, including the
        // single-query decode shape and ragged histories.
        for &(ra, hist, d, lo, hi) in &[
            (1usize, 1usize, 8usize, 0usize, 4usize),
            (1, 23, 12, 4, 8),
            (5, 9, 16, 8, 16),
            (7, 17, 16, 0, 16),
            (4, 4, 6, 2, 6),
        ] {
            let a = Matrix::from_vec(
                ra + 2,
                d,
                ((0..(ra + 2) * d).map(|i| (i as f32 * 0.31).sin())).collect(),
            );
            let b = Matrix::from_vec(
                hist,
                d,
                ((0..hist * d).map(|i| (i as f32 * 0.57).cos())).collect(),
            );
            let strided = matmul_bt_cols(&a, 1, 1 + ra, &b, lo, hi);
            let sliced = matmul_bt(
                &a.slice_rows(1, 1 + ra).slice_cols(lo, hi),
                &b.slice_cols(lo, hi),
            );
            assert_eq!(strided.shape(), sliced.shape(), "{ra}x{hist} w={lo}..{hi}");
            for (x, y) in strided.data().iter().zip(sliced.data().iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{ra}x{hist} w={lo}..{hi}");
            }
        }
    }

    #[test]
    fn matmul_cols_into_bitwise_matches_sliced_matmul() {
        for &(ra, hist, d, lo, hi) in &[
            (1usize, 1usize, 8usize, 0usize, 4usize),
            (1, 23, 12, 4, 8),
            (5, 9, 16, 8, 16),
            (7, 17, 16, 0, 16),
        ] {
            let attn = Matrix::from_vec(
                ra,
                hist,
                ((0..ra * hist).map(|i| (i as f32 * 0.41).sin())).collect(),
            );
            let v = Matrix::from_vec(
                hist,
                d,
                ((0..hist * d).map(|i| (i as f32 * 0.23).cos())).collect(),
            );
            // Pre-fill the sink with garbage: the kernel must overwrite its
            // window and leave everything else alone.
            let mut merged = Matrix::full(ra + 1, d, 7.5);
            matmul_cols_into(&attn, &v, lo, hi, &mut merged, 1);
            let sliced = matmul(&attn, &v.slice_cols(lo, hi));
            for r in 0..ra {
                for (c, y) in sliced.row(r).iter().enumerate() {
                    let x = merged.get(1 + r, lo + c);
                    assert_eq!(x.to_bits(), y.to_bits(), "{ra}x{hist} w={lo}..{hi}");
                }
            }
            assert!(merged.row(0).iter().all(|&x| x == 7.5));
            for c in 0..d {
                if !(lo..hi).contains(&c) {
                    assert_eq!(merged.get(1, c), 7.5);
                }
            }
        }
    }

    #[test]
    fn matmul_bt_cols_panel_assembles_bitwise_scores_from_blocks() {
        // Split the cached history into fixed-size blocks (last one ragged),
        // compute one score panel per block, and check the assembled matrix
        // is bit-for-bit the contiguous-history kernel's output.
        for &(ra, hist, d, blk, lo, hi) in &[
            (1usize, 1usize, 8usize, 4usize, 0usize, 4usize),
            (1, 23, 12, 4, 4, 8),
            (5, 9, 16, 2, 8, 16),
            (7, 17, 16, 8, 0, 16),
        ] {
            let a = Matrix::from_vec(
                ra + 2,
                d,
                ((0..(ra + 2) * d).map(|i| (i as f32 * 0.31).sin())).collect(),
            );
            let k = Matrix::from_vec(
                hist,
                d,
                ((0..hist * d).map(|i| (i as f32 * 0.57).cos())).collect(),
            );
            let contiguous = matmul_bt_cols(&a, 1, 1 + ra, &k, lo, hi);
            let mut paged = Matrix::zeros(ra, hist);
            let mut col = 0;
            while col < hist {
                let filled = blk.min(hist - col);
                // Blocks are full-size with only `filled` valid rows, like a
                // partially-written KV block.
                let mut block = Matrix::full(blk, d, f32::NAN);
                block.copy_rows_from(0, &k.slice_rows(col, col + filled));
                matmul_bt_cols_panel(&a, 1, 1 + ra, &block, filled, lo, hi, &mut paged, col);
                col += filled;
            }
            for (x, y) in paged.data().iter().zip(contiguous.data().iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{ra}x{hist} b={blk} w={lo}..{hi}");
            }
        }
    }

    #[test]
    fn matmul_cols_seg_into_continues_the_chain_bitwise() {
        // Fold the attention·V product segment-by-segment (reset on the
        // first, accumulate after) and check against the single contiguous
        // fold — the chain must extend, not restart.
        for &(ra, hist, d, blk, lo, hi) in &[
            (1usize, 1usize, 8usize, 4usize, 0usize, 4usize),
            (1, 23, 12, 4, 4, 8),
            (5, 9, 16, 2, 8, 16),
            (7, 17, 16, 8, 0, 16),
        ] {
            let attn = Matrix::from_vec(
                ra,
                hist,
                ((0..ra * hist).map(|i| (i as f32 * 0.41).sin())).collect(),
            );
            let v = Matrix::from_vec(
                hist,
                d,
                ((0..hist * d).map(|i| (i as f32 * 0.23).cos())).collect(),
            );
            let mut contiguous = Matrix::full(ra + 1, d, 7.5);
            matmul_cols_into(&attn, &v, lo, hi, &mut contiguous, 1);
            let mut paged = Matrix::full(ra + 1, d, 7.5);
            let mut col = 0;
            while col < hist {
                let filled = blk.min(hist - col);
                let mut block = Matrix::full(blk, d, f32::NAN);
                block.copy_rows_from(0, &v.slice_rows(col, col + filled));
                matmul_cols_seg_into(
                    &attn,
                    col,
                    col + filled,
                    &block,
                    lo,
                    hi,
                    &mut paged,
                    1,
                    col > 0,
                );
                col += filled;
            }
            for (x, y) in paged.data().iter().zip(contiguous.data().iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{ra}x{hist} b={blk} w={lo}..{hi}");
            }
            assert!(paged.row(0).iter().all(|&x| x == 7.5));
        }
    }

    #[test]
    fn causal_softmax_bitwise_matches_mask_then_full_softmax() {
        for &(rows, cols, offset) in &[(1usize, 1usize, 0usize), (5, 5, 0), (4, 7, 3), (7, 9, 2)] {
            let x = Matrix::from_vec(
                rows,
                cols,
                (0..rows * cols)
                    .map(|i| (i as f32 * 0.63).sin() * 3.0)
                    .collect(),
            );
            let mut masked = x.clone();
            crate::infer::causal_mask_in_place(&mut masked, offset);
            softmax_rows_in_place(&mut masked);
            let mut causal = x.clone();
            softmax_rows_causal_in_place(&mut causal, offset);
            for (r, (a, b)) in masked.data().iter().zip(causal.data()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{rows}x{cols} off {offset} elem {r}"
                );
            }
        }
    }

    #[test]
    fn tanh_fast_tracks_libm_tanh() {
        let mut worst = 0.0f32;
        for i in -4000..=4000 {
            let x = i as f32 * 0.004; // spans ±16, well past the clamp
            let d = (tanh_fast(x) - x.tanh()).abs();
            worst = worst.max(d);
        }
        assert!(worst <= 5e-7, "max abs error {worst}");
        assert_eq!(tanh_fast(0.0), 0.0);
        assert_eq!(tanh_fast(100.0), 1.0);
        assert_eq!(tanh_fast(-100.0), -1.0);
        assert!(tanh_fast(f32::NAN).is_nan());
    }

    #[test]
    fn thread_count_parsing_rejects_zero_and_garbage() {
        assert_eq!(parse_thread_count("4"), Ok(4));
        assert_eq!(parse_thread_count(" 16 "), Ok(16));
        for bad in ["0", "", "  ", "garbage", "-3", "1.5", "1e3", "0x4"] {
            let err = parse_thread_count(bad).unwrap_err();
            assert!(
                err.contains(THREADS_ENV),
                "error for {bad:?} must name the knob: {err}"
            );
        }
    }

    #[test]
    fn matmul_cols_into_keeps_signed_zero_of_the_chain() {
        // Signed zeros are where accumulation-order shortcuts (like the seed
        // kernel's zero-skip branch) diverge from the fused chain; the
        // strided kernel must track the blocked kernel bit-for-bit here too.
        let attn = m(1, 2, &[0.0, 1.0]);
        let mut v = m(2, 1, &[5.0, 0.0]);
        v.set(1, 0, -0.0);
        let mut out = Matrix::zeros(1, 1);
        matmul_cols_into(&attn, &v, 0, 1, &mut out, 0);
        let dense = matmul(&attn, &v);
        assert_eq!(out.get(0, 0).to_bits(), dense.get(0, 0).to_bits());
    }
}
