//! The operation vocabulary of the autograd tape.

use crate::param::ParamId;
use crate::tape::NodeId;

/// One differentiable operation recorded on a [`crate::Tape`].
///
/// Ops are a closed enum (no boxed closures): the backward pass in
/// `backward.rs` matches on this tag, which keeps tapes `Send` and dispatch
/// branch-predictable. Integer payloads (`ids`, `targets`) are owned by the
/// op so a node is self-contained.
#[derive(Debug, Clone)]
pub enum Op {
    /// An input value; `param` links it to a trainable parameter for gradient
    /// extraction.
    Leaf { param: Option<ParamId> },
    /// `a @ b`.
    MatMul(NodeId, NodeId),
    /// `a @ b^T` (fused; avoids materializing the transpose).
    MatMulBt(NodeId, NodeId),
    /// Fused `x @ w + bias` with `bias [1,d]` broadcast over rows — the
    /// linear-layer hot path as a single node (one output allocation, one
    /// backward dispatch instead of MatMul + AddRowBroadcast).
    Affine {
        /// Input `[n,k]`.
        x: NodeId,
        /// Weight `[k,d]`.
        w: NodeId,
        /// Row-broadcast bias `[1,d]`.
        bias: NodeId,
    },
    /// Element-wise `a + b` (equal shapes).
    Add(NodeId, NodeId),
    /// `a [n,d] + b [1,d]` broadcast over rows (bias add).
    AddRowBroadcast(NodeId, NodeId),
    /// Element-wise `a - b` (equal shapes).
    Sub(NodeId, NodeId),
    /// Element-wise `a * b` (equal shapes).
    Mul(NodeId, NodeId),
    /// `a * s` where `s` is a `[1,1]` node (differentiable scalar gate).
    MulScalarNode(NodeId, NodeId),
    /// `a * c` for a compile-time constant `c`.
    Scale(NodeId, f32),
    /// Matrix transpose.
    Transpose(NodeId),
    /// Row-wise softmax.
    Softmax(NodeId),
    /// Row-wise log-softmax.
    LogSoftmax(NodeId),
    /// Layer normalization over each row with affine `gain`/`bias` (`[1,d]`).
    LayerNorm {
        /// Input `[n,d]`.
        x: NodeId,
        /// Per-feature gain `[1,d]`.
        gain: NodeId,
        /// Per-feature bias `[1,d]`.
        bias: NodeId,
        /// Variance epsilon.
        eps: f32,
    },
    /// Element-wise ReLU.
    Relu(NodeId),
    /// Element-wise GELU (tanh approximation).
    Gelu(NodeId),
    /// Element-wise SiLU.
    Silu(NodeId),
    /// Element-wise logistic sigmoid.
    Sigmoid(NodeId),
    /// Element-wise tanh.
    Tanh(NodeId),
    /// Row gather: `value[i] = weight[ids[i]]`.
    Embedding {
        /// Embedding table node (usually a parameter leaf) `[V,d]`.
        weight: NodeId,
        /// Row indices, one per output row.
        ids: Vec<usize>,
    },
    /// Mean over all rows: `[n,d] -> [1,d]`.
    MeanRows(NodeId),
    /// Cumulative prefix mean over rows: `out[t] = mean(x[0..=t])`,
    /// `[n,d] -> [n,d]`. The causal form of [`Op::MeanRows`] — row `t` sees
    /// only rows `0..=t`, which is what makes the infuser gate KV-cacheable.
    CumMeanRows(NodeId),
    /// Per-row scaling `out[t] = a[t] * s[t]` with `s [n,1]` (the causal
    /// infuser gate applied to the adapter output).
    MulColBroadcast(NodeId, NodeId),
    /// Mean over the selected rows: `[n,d] -> [1,d]`.
    MeanSelectedRows(NodeId, Vec<usize>),
    /// Vertical stacking `[n1,d];[n2,d] -> [n1+n2,d]`.
    ConcatRows(NodeId, NodeId),
    /// Horizontal concatenation of parts with equal row counts.
    ConcatCols(Vec<NodeId>),
    /// Column slice `[.., start..end)`.
    SliceCols(NodeId, usize, usize),
    /// Row slice `[start..end, ..]`.
    SliceRows(NodeId, usize, usize),
    /// Adds `-1e9` where `col > row + offset` (causal attention mask; the
    /// offset accommodates prefix-tuning's prepended key/value rows).
    CausalMask {
        /// Attention score matrix `[n, n+offset]`.
        a: NodeId,
        /// Number of always-visible leading columns.
        offset: usize,
    },
    /// Mean token-level cross-entropy between `logits [n,V]` and `targets`;
    /// produces a `[1,1]` loss. Positions with target == `IGNORE_INDEX`
    /// contribute nothing.
    CrossEntropy {
        /// Unnormalized logits.
        logits: NodeId,
        /// One class index per row (or [`IGNORE_INDEX`]).
        targets: Vec<usize>,
    },
    /// Mean binary cross-entropy on `logits [n,1]` against float targets;
    /// numerically stable (log-sum-exp form); produces `[1,1]`.
    BceWithLogits {
        /// Pre-sigmoid logits.
        logits: NodeId,
        /// Targets in `[0,1]`, one per row.
        targets: Vec<f32>,
    },
}

/// Sentinel target value ignored by [`Op::CrossEntropy`] (prompt positions).
pub const IGNORE_INDEX: usize = usize::MAX;

impl Op {
    /// Parent node ids of this op, in evaluation order.
    pub fn parents(&self) -> Vec<NodeId> {
        match self {
            Op::Leaf { .. } => vec![],
            Op::MatMul(a, b)
            | Op::MatMulBt(a, b)
            | Op::Add(a, b)
            | Op::AddRowBroadcast(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::MulScalarNode(a, b)
            | Op::MulColBroadcast(a, b)
            | Op::ConcatRows(a, b) => vec![*a, *b],
            Op::Scale(a, _)
            | Op::Transpose(a)
            | Op::Softmax(a)
            | Op::LogSoftmax(a)
            | Op::Relu(a)
            | Op::Gelu(a)
            | Op::Silu(a)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::MeanRows(a)
            | Op::CumMeanRows(a)
            | Op::MeanSelectedRows(a, _)
            | Op::SliceCols(a, _, _)
            | Op::SliceRows(a, _, _)
            | Op::CausalMask { a, .. } => vec![*a],
            Op::LayerNorm { x, gain, bias, .. } => vec![*x, *gain, *bias],
            Op::Affine { x, w, bias } => vec![*x, *w, *bias],
            Op::Embedding { weight, .. } => vec![*weight],
            Op::ConcatCols(parts) => parts.clone(),
            Op::CrossEntropy { logits, .. } => vec![*logits],
            Op::BceWithLogits { logits, .. } => vec![*logits],
        }
    }

    /// Short name for debugging/profiling.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Leaf { .. } => "leaf",
            Op::MatMul(..) => "matmul",
            Op::MatMulBt(..) => "matmul_bt",
            Op::Affine { .. } => "affine",
            Op::Add(..) => "add",
            Op::AddRowBroadcast(..) => "add_row_bcast",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::MulScalarNode(..) => "mul_scalar_node",
            Op::Scale(..) => "scale",
            Op::Transpose(..) => "transpose",
            Op::Softmax(..) => "softmax",
            Op::LogSoftmax(..) => "log_softmax",
            Op::LayerNorm { .. } => "layer_norm",
            Op::Relu(..) => "relu",
            Op::Gelu(..) => "gelu",
            Op::Silu(..) => "silu",
            Op::Sigmoid(..) => "sigmoid",
            Op::Tanh(..) => "tanh",
            Op::Embedding { .. } => "embedding",
            Op::MeanRows(..) => "mean_rows",
            Op::CumMeanRows(..) => "cum_mean_rows",
            Op::MulColBroadcast(..) => "mul_col_broadcast",
            Op::MeanSelectedRows(..) => "mean_selected_rows",
            Op::ConcatRows(..) => "concat_rows",
            Op::ConcatCols(..) => "concat_cols",
            Op::SliceCols(..) => "slice_cols",
            Op::SliceRows(..) => "slice_rows",
            Op::CausalMask { .. } => "causal_mask",
            Op::CrossEntropy { .. } => "cross_entropy",
            Op::BceWithLogits { .. } => "bce_with_logits",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parents_of_leaf_is_empty() {
        assert!(Op::Leaf { param: None }.parents().is_empty());
    }

    #[test]
    fn parents_of_binary_ops() {
        let a = NodeId(0);
        let b = NodeId(1);
        assert_eq!(Op::MatMul(a, b).parents(), vec![a, b]);
        assert_eq!(Op::ConcatCols(vec![a, b]).parents(), vec![a, b]);
    }

    #[test]
    fn names_are_distinctive() {
        assert_eq!(Op::Softmax(NodeId(0)).name(), "softmax");
        assert_eq!(
            Op::CausalMask {
                a: NodeId(0),
                offset: 0
            }
            .name(),
            "causal_mask"
        );
    }
}
