//! Blockwise int8 weight quantization with a fused dequant-matmul kernel.
//!
//! Frozen base weights never need gradients, so they can be stored as packed
//! signed bytes plus per-block scales and dequantized on the fly inside the
//! matmul inner loop — 4× less weight memory traffic per product. Adapters,
//! gates and everything a tape touches stay f32.
//!
//! # Scheme
//!
//! Symmetric blockwise absmax, the int8 sibling of the 4-bit quantizer the
//! QLoRA baseline applies (`crates/baselines/src/qlora.rs`, which delegates
//! its arithmetic to [`quantize_dequantize_levels`] here): each weight row is
//! split into `block_size` column blocks; per block `scale = absmax / 127`
//! and values round to `q ∈ [-127, 127]` (symmetric — the `-128` code is
//! unused so the grid is sign-balanced). Dequantization is exactly
//! `q as f32 * scale`.
//!
//! # Determinism contract
//!
//! [`QuantizedMatrix::matmul`] is **bitwise-identical** to
//! `kernels::matmul(x, &self.dequantize())` in every ISA tier and at every
//! thread count: the fused kernel computes each dequantized value with the
//! same two exact-or-correctly-rounded steps (int→float convert is exact for
//! `|q| ≤ 127`; one f32 multiply) and folds it through the same ascending-`p`
//! accumulation chain as the dense kernel. Quantization itself is lossy —
//! per-element error against the *original* weights is bounded by
//! [`max_abs_error`] — but everything downstream of the quantized values is
//! exact, which is what lets one tolerance statement at the weights cover the
//! whole inference stack.

use crate::kernels;
use crate::matrix::Matrix;
use crate::simd::{self, Isa};
use serde::{Deserialize, Serialize};

/// Symmetric int8 levels: `[-MAX_LEVEL, MAX_LEVEL]`.
const MAX_LEVEL: f32 = 127.0;

/// Blockwise int8 quantization parameters for the frozen base.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QuantSpec {
    /// Values per quantization block along a weight row (64, QLoRA's choice,
    /// keeps blocks aligned with the 16-column matmul strips).
    pub block_size: usize,
}

impl Default for QuantSpec {
    fn default() -> Self {
        QuantSpec { block_size: 64 }
    }
}

/// Worst-case absolute error of int8 absmax quantization for a block with
/// the given absmax: half a quantization step, plus an ulp-scale slop term
/// for the two roundings (`v/scale` and `q*scale`) the half-step argument
/// treats as exact, plus an absolute epsilon for subnormal-scale corners.
pub fn max_abs_error(absmax: f32) -> f32 {
    absmax / (2.0 * MAX_LEVEL) + absmax * 1e-5 + 1e-7
}

/// Quantizes one buffer blockwise to symmetric levels and dequantizes it
/// back, in place: per block `scale = absmax / max_level`, levels clamped to
/// `[min_level, max_level]`, zero blocks untouched. The shared arithmetic
/// core of this module's int8 path (`max_level = 127`) and the QLoRA
/// baseline's 4-bit path (`max_level = 7`, `min_level = -8`).
pub fn quantize_dequantize_levels(
    data: &mut [f32],
    block_size: usize,
    max_level: f32,
    min_level: f32,
) {
    assert!(block_size > 0, "block_size must be positive");
    for block in data.chunks_mut(block_size) {
        let absmax = block.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if absmax == 0.0 {
            continue;
        }
        let scale = absmax / max_level;
        for v in block.iter_mut() {
            let q = (*v / scale).round().clamp(min_level, max_level);
            *v = q * scale;
        }
    }
}

/// A row-major matrix stored as packed int8 blocks plus per-block scales.
///
/// Layout: `q[r*cols + c]` holds the quantized value of element `(r, c)`;
/// `scales[r*blocks_per_row + c/block_size]` its block scale. Serialization
/// round-trips exactly (bytes and scale bits are stored verbatim).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    block_size: usize,
    q: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes `m` blockwise along its rows.
    ///
    /// # Panics
    /// Panics if `spec.block_size == 0`.
    pub fn quantize(m: &Matrix, spec: QuantSpec) -> Self {
        let bs = spec.block_size;
        assert!(bs > 0, "QuantSpec::block_size must be positive");
        let (rows, cols) = m.shape();
        let bpr = cols.div_ceil(bs).max(1);
        let mut q = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows * bpr];
        for r in 0..rows {
            let row = m.row(r);
            for (blk, chunk) in row.chunks(bs).enumerate() {
                let absmax = chunk.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
                if absmax == 0.0 {
                    continue; // q stays 0, scale stays 0.0: dequantizes to +0.0
                }
                let scale = absmax / MAX_LEVEL;
                scales[r * bpr + blk] = scale;
                for (c, &v) in chunk.iter().enumerate() {
                    let lvl = (v / scale).round().clamp(-MAX_LEVEL, MAX_LEVEL);
                    q[r * cols + blk * bs + c] = lvl as i8;
                }
            }
        }
        QuantizedMatrix {
            rows,
            cols,
            block_size: bs,
            q,
            scales,
        }
    }

    /// Rows of the (logical f32) matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the (logical f32) matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The quantization block size along rows.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Blocks per row.
    fn bpr(&self) -> usize {
        self.cols.div_ceil(self.block_size).max(1)
    }

    /// The dequantized element `(r, c)` — `q as f32 * scale`, the exact value
    /// the fused matmul folds.
    #[inline(always)]
    fn deq(&self, r: usize, c: usize) -> f32 {
        self.q[r * self.cols + c] as f32 * self.scales[r * self.bpr() + c / self.block_size]
    }

    /// Materializes the dequantized f32 matrix.
    pub fn dequantize(&self) -> Matrix {
        let bpr = self.bpr();
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            let srow = &self.scales[r * bpr..(r + 1) * bpr];
            for (c, &qv) in self.q[r * self.cols..(r + 1) * self.cols]
                .iter()
                .enumerate()
            {
                data.push(qv as f32 * srow[c / self.block_size]);
            }
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// `x @ self` with in-register dequantization.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.cols);
        self.matmul_into(x, &mut out, false);
        out
    }

    /// `out (+)= x @ self`, allocation-free; bitwise-identical to
    /// `kernels::matmul_into(x, &self.dequantize(), out, accumulate)` in
    /// every ISA tier and at every thread count (see module docs).
    pub fn matmul_into(&self, x: &Matrix, out: &mut Matrix, accumulate: bool) {
        let (m, k) = x.shape();
        let n = self.cols;
        assert_eq!(self.rows, k, "quantized matmul: inner dims");
        assert_eq!(out.shape(), (m, n), "quantized matmul: out shape");
        let flops = 2 * m * n * k;
        let xd = x.data();
        let isa = simd::active_isa();
        kernels::run_banded(out.data_mut(), m, n, flops, |rows, chunk| {
            self.band(xd, k, rows, chunk, n, accumulate, isa);
        });
    }

    /// One row band of the fused product — the quantized mirror of the dense
    /// kernel's band: identical MR/4/2 row-tile ladder, identical `NR`-wide
    /// column strips (when `block_size` is a multiple of `NR`, so a strip
    /// never straddles a scale boundary; otherwise every column runs the
    /// scalar chain), identical scalar edges.
    #[allow(clippy::too_many_arguments)]
    fn band(
        &self,
        xd: &[f32],
        k: usize,
        rows: std::ops::Range<usize>,
        chunk: &mut [f32],
        n: usize,
        accumulate: bool,
        isa: Isa,
    ) {
        let mb = rows.len();
        let mut apack = vec![0.0f32; k * kernels::MR];
        let mut ib = 0;
        while mb - ib >= kernels::MR {
            self.qtile_rows::<{ kernels::MR }>(
                xd, rows.start, ib, chunk, k, n, accumulate, &mut apack, isa,
            );
            ib += kernels::MR;
        }
        if mb - ib >= 4 {
            self.qtile_rows::<4>(xd, rows.start, ib, chunk, k, n, accumulate, &mut apack, isa);
            ib += 4;
        }
        if mb - ib >= 2 {
            self.qtile_rows::<2>(xd, rows.start, ib, chunk, k, n, accumulate, &mut apack, isa);
            ib += 2;
        }
        for li in ib..mb {
            self.scalar_row_tail(xd, rows.start + li, li, chunk, k, n, 0, n, accumulate);
        }
    }

    /// Quantized mirror of the dense kernel's `tile_rows`.
    #[allow(clippy::too_many_arguments)]
    fn qtile_rows<const R: usize>(
        &self,
        xd: &[f32],
        row0: usize,
        ib: usize,
        chunk: &mut [f32],
        k: usize,
        n: usize,
        accumulate: bool,
        apack: &mut [f32],
        isa: Isa,
    ) {
        // A strip must sit inside one scale block per weight row; blocks
        // whose size is not a multiple of NR fall back to the scalar chain
        // for every column (the default 64 never does).
        let j_main = if self.block_size.is_multiple_of(kernels::NR) {
            n - n % kernels::NR
        } else {
            0
        };
        let apack = &mut apack[..k * R];
        for (p, ap) in apack.chunks_exact_mut(R).enumerate() {
            for (r, slot) in ap.iter_mut().enumerate() {
                *slot = xd[(row0 + ib + r) * k + p];
            }
        }
        for jb in (0..j_main).step_by(kernels::NR) {
            self.qstrip16::<R>(apack, jb, k, n, chunk, ib, accumulate, isa);
        }
        for r in 0..R {
            self.scalar_row_tail(
                xd,
                row0 + ib + r,
                ib + r,
                chunk,
                k,
                n,
                j_main,
                n,
                accumulate,
            );
        }
    }

    /// One `R×NR` fused-dequant column strip, dispatched to the `isa` tier.
    #[allow(clippy::too_many_arguments)]
    fn qstrip16<const R: usize>(
        &self,
        apack: &[f32],
        jb: usize,
        k: usize,
        n: usize,
        chunk: &mut [f32],
        ib: usize,
        accumulate: bool,
        isa: Isa,
    ) {
        let bpr = self.bpr();
        let blk = jb / self.block_size;
        #[cfg(target_arch = "x86_64")]
        if isa != Isa::Scalar {
            // Bounds: deepest q read (k-1)·n + jb + 16 ≤ k·n; deepest scale
            // read (k-1)·bpr + blk < k·bpr; out as in the dense strip. The
            // caller guarantees jb+16 stays inside block `blk` for all rows.
            unsafe {
                let out = chunk.as_mut_ptr().add(ib * n + jb);
                match isa {
                    Isa::Avx2 => simd::x86::qstrip16_avx2::<R>(
                        apack.as_ptr(),
                        self.q.as_ptr().add(jb),
                        n,
                        self.scales.as_ptr().add(blk),
                        bpr,
                        k,
                        out,
                        n,
                        accumulate,
                    ),
                    Isa::Avx512 => simd::x86::qstrip16_avx512::<R>(
                        apack.as_ptr(),
                        self.q.as_ptr().add(jb),
                        n,
                        self.scales.as_ptr().add(blk),
                        bpr,
                        k,
                        out,
                        n,
                        accumulate,
                    ),
                    Isa::Scalar => unreachable!(),
                }
            }
            return;
        }
        let _ = isa;
        let mut acc = [[0.0f32; kernels::NR]; R];
        for (p, ap) in apack.chunks_exact(R).enumerate() {
            let scale = self.scales[p * bpr + blk];
            let qrow = &self.q[p * n + jb..p * n + jb + kernels::NR];
            for (r, acc_row) in acc.iter_mut().enumerate() {
                let av = ap[r];
                for (c, s) in acc_row.iter_mut().enumerate() {
                    *s = kernels::fmadd(av, qrow[c] as f32 * scale, *s);
                }
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            let orow = &mut chunk[(ib + r) * n + jb..(ib + r) * n + jb + kernels::NR];
            if accumulate {
                for (o, &v) in orow.iter_mut().zip(acc_row.iter()) {
                    *o += v;
                }
            } else {
                orow.copy_from_slice(acc_row);
            }
        }
    }

    /// Quantized mirror of the dense kernel's scalar edge path.
    #[allow(clippy::too_many_arguments)]
    fn scalar_row_tail(
        &self,
        xd: &[f32],
        i: usize,
        li: usize,
        chunk: &mut [f32],
        k: usize,
        n: usize,
        j_lo: usize,
        j_hi: usize,
        accumulate: bool,
    ) {
        for j in j_lo..j_hi {
            let mut s = 0.0f32;
            for p in 0..k {
                s = kernels::fmadd(xd[i * k + p], self.deq(p, j), s);
            }
            let o = &mut chunk[li * n + j];
            if accumulate {
                *o += s;
            } else {
                *o = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::Isa;

    fn wave(rows: usize, cols: usize, f: f32) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|i| (i as f32 * f).sin()).collect(),
        )
    }

    #[test]
    fn error_within_bound_per_block() {
        let m = wave(5, 150, 0.37);
        let qm = QuantizedMatrix::quantize(&m, QuantSpec { block_size: 64 });
        let d = qm.dequantize();
        for r in 0..5 {
            for (blk, chunk) in m.row(r).chunks(64).enumerate() {
                let absmax = chunk.iter().fold(0.0f32, |a, v| a.max(v.abs()));
                let bound = max_abs_error(absmax);
                for (c, &v) in chunk.iter().enumerate() {
                    let err = (v - d.get(r, blk * 64 + c)).abs();
                    assert!(err <= bound, "err {err} > bound {bound} at ({r},{blk},{c})");
                }
            }
        }
    }

    #[test]
    fn quantization_is_idempotent() {
        let m = wave(3, 70, 0.51);
        let spec = QuantSpec { block_size: 16 };
        let once = QuantizedMatrix::quantize(&m, spec).dequantize();
        let twice = QuantizedMatrix::quantize(&once, spec).dequantize();
        assert_eq!(once.data(), twice.data());
    }

    #[test]
    fn zero_and_edge_blocks() {
        // All-zero matrix dequantizes to exact zeros.
        let z = Matrix::zeros(2, 40);
        let qz = QuantizedMatrix::quantize(&z, QuantSpec { block_size: 16 });
        assert!(qz.dequantize().data().iter().all(|&v| v == 0.0));
        // Single element: one block, scale = |v| / 127, value survives to
        // within the bound.
        let s = Matrix::from_vec(1, 1, vec![-0.8125]);
        let qs = QuantizedMatrix::quantize(&s, QuantSpec::default());
        assert!((qs.dequantize().get(0, 0) + 0.8125).abs() <= max_abs_error(0.8125));
        // Ragged final block (cols not a multiple of block_size).
        let m = wave(2, 19, 0.73);
        let qm = QuantizedMatrix::quantize(&m, QuantSpec { block_size: 8 });
        let d = qm.dequantize();
        for (v, w) in m.data().iter().zip(d.data()) {
            assert!((v - w).abs() <= max_abs_error(1.0));
        }
    }

    #[test]
    fn serde_round_trip_is_exact() {
        let m = wave(4, 33, 0.29);
        let qm = QuantizedMatrix::quantize(&m, QuantSpec { block_size: 16 });
        let json = serde_json::to_string(&qm).unwrap();
        let back: QuantizedMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(qm, back);
        assert_eq!(qm.dequantize().data(), back.dequantize().data());
    }

    #[test]
    fn fused_matmul_is_bitwise_dequantize_then_matmul() {
        // Shapes covering full strips, ragged columns, ragged rows, the
        // scalar row ladder, and a block size that disables strips.
        for &(m, k, n, bs) in &[
            (8usize, 64usize, 64usize, 64usize),
            (5, 33, 80, 16),
            (1, 7, 19, 64),
            (13, 16, 31, 3),
            (2, 64, 128, 32),
        ] {
            let x = wave(m, k, 0.31);
            let w = wave(k, n, 0.57);
            let qw = QuantizedMatrix::quantize(&w, QuantSpec { block_size: bs });
            let fused = qw.matmul(&x);
            let dense = kernels::matmul(&x, &qw.dequantize());
            for (a, b) in fused.data().iter().zip(dense.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{m}x{k}x{n} bs={bs}");
            }
        }
    }

    #[test]
    fn fused_matmul_bitwise_across_isa_tiers() {
        let x = wave(9, 48, 0.41);
        let w = wave(48, 80, 0.23);
        let qw = QuantizedMatrix::quantize(&w, QuantSpec { block_size: 16 });
        simd::set_isa(Some(Isa::Scalar));
        let base = qw.matmul(&x);
        for isa in [Isa::Avx2, Isa::Avx512] {
            if !simd::supported(isa) {
                continue;
            }
            simd::set_isa(Some(isa));
            let tier = qw.matmul(&x);
            for (a, b) in tier.data().iter().zip(base.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{} tier", isa.name());
            }
        }
        simd::set_isa(None);
    }

    #[test]
    fn accumulate_adds_once_after_the_chain() {
        let x = wave(1, 8, 0.61);
        let w = wave(8, 4, 0.43);
        let qw = QuantizedMatrix::quantize(&w, QuantSpec::default());
        let mut out = Matrix::full(1, 4, 10.0);
        qw.matmul_into(&x, &mut out, true);
        let plain = qw.matmul(&x);
        for c in 0..4 {
            assert_eq!(out.get(0, c), 10.0 + plain.get(0, c));
        }
    }
}
