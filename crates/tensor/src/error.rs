//! Error type for tensor operations.
//!
//! Shape mismatches in the hot path are programming errors and panic with a
//! descriptive message (the library is an internal substrate, not a parsing
//! boundary), but fallible entry points used by checkpoint loading return
//! [`TensorError`] so callers can surface corruption without aborting.

use std::fmt;

/// Errors surfaced by fallible tensor entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// A shape constraint was violated: `(context, expected, got)`.
    ShapeMismatch {
        /// What was being attempted.
        context: &'static str,
        /// Human-readable expectation.
        expected: String,
        /// Human-readable actual.
        got: String,
    },
    /// An index was out of bounds for the given dimension size.
    IndexOutOfBounds {
        /// What was being attempted.
        context: &'static str,
        /// Offending index.
        index: usize,
        /// Size of the dimension indexed.
        len: usize,
    },
    /// Serialized data failed validation (e.g. element count != rows*cols).
    Corrupt(String),
    /// A filesystem operation on a checkpoint failed. Stored as the rendered
    /// message (not `std::io::Error`) so the enum stays `Clone + PartialEq`.
    Io(String),
}

impl From<std::io::Error> for TensorError {
    fn from(e: std::io::Error) -> Self {
        TensorError::Io(e.to_string())
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch {
                context,
                expected,
                got,
            } => write!(
                f,
                "{context}: shape mismatch, expected {expected}, got {got}"
            ),
            TensorError::IndexOutOfBounds {
                context,
                index,
                len,
            } => write!(f, "{context}: index {index} out of bounds for length {len}"),
            TensorError::Corrupt(msg) => write!(f, "corrupt tensor data: {msg}"),
            TensorError::Io(msg) => write!(f, "checkpoint io error: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            context: "matmul",
            expected: "[2,3]".into(),
            got: "[4,5]".into(),
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("[4,5]"));
    }

    #[test]
    fn display_index_oob() {
        let e = TensorError::IndexOutOfBounds {
            context: "row",
            index: 7,
            len: 3,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn display_corrupt() {
        let e = TensorError::Corrupt("bad len".into());
        assert!(e.to_string().contains("bad len"));
    }

    #[test]
    fn io_from_std_error() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "no such checkpoint");
        let e: TensorError = io.into();
        assert!(e.to_string().contains("no such checkpoint"));
    }
}
