//! Serving configuration: batch shape, KV budget, backpressure knobs.

use infuserki_tensor::kernels;

/// Tunables of the continuous-batching scheduler.
///
/// The **KV-row budget** is the scheduler's unit of memory admission
/// control: every admitted request reserves, up front, the worst-case number
/// of cache rows it can ever occupy, rounded up to whole KV blocks of
/// `block_rows` (prefix + prompt + decode budget, per sequence it will own —
/// MCQ requests also pay each multi-token option branch, net of the full
/// prompt blocks the branches share). Rows held by the cross-request prefix
/// cache count against the same budget; under pressure the scheduler evicts
/// cold cached prefixes before making a request wait. Requests whose
/// reservation cannot fit the whole budget are rejected with a typed error
/// at submission; requests that fit the budget but not the *currently free*
/// rows wait in the queue until running sequences retire.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Total KV rows (per layer, summed over live sequences) the scheduler
    /// may reserve at once.
    pub kv_budget_rows: usize,
    /// Token rows per paged-KV block — the granularity of allocation,
    /// sharing and prefix-cache reuse. Smaller blocks share shorter common
    /// prefixes but cost more per-block kernel dispatches.
    pub block_rows: usize,
    /// Cross-request prefix cache: index full prompt blocks in a radix tree
    /// so later requests with a matching token prefix skip that prefill.
    /// Auto-disabled for hooks whose state is not prefix-determined
    /// ([`infuserki_nn::LayerHook::prefix_cache_safe`]).
    pub prefix_cache: bool,
    /// Maximum number of requests admitted into the running batch at once.
    /// MCQ option branches spawned by an already-admitted request do not
    /// count against this cap (their rows were reserved at admission).
    pub max_batch: usize,
    /// Maximum prompt (or option-script) tokens fed per sequence per step.
    /// Chunked prefill: a long prompt advances `prefill_chunk` tokens per
    /// scheduler step while every decode lane still advances its one token,
    /// so a newcomer with a huge prompt cannot stall the live batch.
    pub prefill_chunk: usize,
    /// Bounded queue depth; submissions beyond it are rejected with
    /// [`crate::RejectReason::QueueFull`] (backpressure, not a hang).
    pub queue_capacity: usize,
    /// Compact the KV cache after retiring sequences, returning freed rows
    /// to the allocator ([`infuserki_nn::KvCache::compact`]) at the cost of
    /// reallocating on the next append.
    pub compact_after_retire: bool,
    /// Kernel worker threads; `None` resolves the shared `INFUSERKI_THREADS`
    /// knob via [`kernels::env_thread_count`].
    pub threads: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            kv_budget_rows: 4096,
            block_rows: 16,
            prefix_cache: true,
            max_batch: 16,
            prefill_chunk: 32,
            queue_capacity: 256,
            compact_after_retire: true,
            threads: None,
        }
    }
}

impl ServeConfig {
    /// Validates the knobs (every count must be nonzero).
    pub fn validate(&self) -> Result<(), String> {
        if self.kv_budget_rows == 0 {
            return Err("ServeConfig: kv_budget_rows must be at least 1".into());
        }
        if self.block_rows == 0 {
            return Err("ServeConfig: block_rows must be at least 1".into());
        }
        if self.max_batch == 0 {
            return Err("ServeConfig: max_batch must be at least 1".into());
        }
        if self.prefill_chunk == 0 {
            return Err("ServeConfig: prefill_chunk must be at least 1".into());
        }
        if self.queue_capacity == 0 {
            return Err("ServeConfig: queue_capacity must be at least 1".into());
        }
        if self.threads == Some(0) {
            return Err("ServeConfig: threads must be at least 1 when set".into());
        }
        Ok(())
    }

    /// Resolves the worker-thread count: the explicit `threads` field wins,
    /// otherwise the shared `INFUSERKI_THREADS` env knob (strictly parsed —
    /// `0` and garbage are errors, exactly as the kernels treat it),
    /// otherwise available parallelism.
    pub fn resolve_threads(&self) -> Result<usize, String> {
        if let Some(n) = self.threads {
            if n == 0 {
                return Err("ServeConfig: threads must be at least 1 when set".into());
            }
            return Ok(n);
        }
        Ok(kernels::env_thread_count()?
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())))
    }

    /// Resolves and installs the worker-thread count process-wide
    /// ([`kernels::set_num_threads`]). The `serve` binary calls this at
    /// startup so a mistyped knob fails loudly before the listener binds.
    pub fn apply_threads(&self) -> Result<usize, String> {
        let n = self.resolve_threads()?;
        kernels::set_num_threads(n);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_knobs_are_rejected() {
        for f in [
            |c: &mut ServeConfig| c.kv_budget_rows = 0,
            |c: &mut ServeConfig| c.block_rows = 0,
            |c: &mut ServeConfig| c.max_batch = 0,
            |c: &mut ServeConfig| c.prefill_chunk = 0,
            |c: &mut ServeConfig| c.queue_capacity = 0,
            |c: &mut ServeConfig| c.threads = Some(0),
        ] {
            let mut c = ServeConfig::default();
            f(&mut c);
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn explicit_threads_resolve_without_env() {
        let cfg = ServeConfig {
            threads: Some(3),
            ..ServeConfig::default()
        };
        assert_eq!(cfg.resolve_threads(), Ok(3));
    }
}
