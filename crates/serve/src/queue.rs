//! Bounded priority queue of pending requests.
//!
//! Ordering: higher [`Request::priority`] first; within a priority, FIFO by
//! submission sequence number. Capacity is enforced at push — a full queue
//! hands the entry back so the caller can reply
//! [`crate::RejectReason::QueueFull`] instead of hanging.

use std::cmp::{Ordering as CmpOrdering, Reverse};
use std::collections::BinaryHeap;

use crate::request::Request;

/// A queued request plus its precomputed KV-row reservation.
#[derive(Debug)]
pub struct QueueEntry {
    /// The pending request.
    pub request: Request,
    /// Worst-case KV rows this request reserves when admitted
    /// ([`crate::EngineLimits::cost`]).
    pub cost: usize,
    seq: u64,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}

impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Max-heap: higher priority wins; ties resolve to the earliest
        // sequence number (Reverse => smaller seq is "greater").
        (self.request.priority, Reverse(self.seq))
            .cmp(&(other.request.priority, Reverse(other.seq)))
    }
}

/// Bounded priority/FIFO queue.
#[derive(Debug)]
pub struct RequestQueue {
    heap: BinaryHeap<QueueEntry>,
    capacity: usize,
    next_seq: u64,
}

impl RequestQueue {
    /// An empty queue holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        RequestQueue {
            heap: BinaryHeap::new(),
            capacity,
            next_seq: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Enqueues, or hands the request back if the queue is full.
    // The fat `Err` is the point: on overflow the caller gets the request
    // back intact to answer `QueueFull` on its response channel.
    #[allow(clippy::result_large_err)]
    pub fn try_push(&mut self, request: Request, cost: usize) -> Result<(), Request> {
        if self.heap.len() >= self.capacity {
            return Err(request);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueueEntry { request, cost, seq });
        Ok(())
    }

    /// The entry that would pop next, if any.
    pub fn peek(&self) -> Option<&QueueEntry> {
        self.heap.peek()
    }

    /// Removes and returns the highest-priority (then oldest) entry.
    pub fn pop(&mut self) -> Option<QueueEntry> {
        self.heap.pop()
    }

    /// Drains every entry in scheduling order (used at shutdown to reply
    /// [`crate::RejectReason::ShuttingDown`] to everything still queued).
    pub fn drain(&mut self) -> Vec<QueueEntry> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.heap.pop() {
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{GenerateSpec, RequestKind};
    use std::sync::mpsc;

    fn req(id: u64, priority: i32) -> Request {
        // Receiver dropped immediately: queue tests never respond.
        let (tx, _rx) = mpsc::channel();
        Request::new(
            id,
            RequestKind::Generate(GenerateSpec::greedy(vec![1], 1, None)),
            tx,
        )
        .with_priority(priority)
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let mut q = RequestQueue::new(8);
        q.try_push(req(1, 0), 1).unwrap();
        q.try_push(req(2, 5), 1).unwrap();
        q.try_push(req(3, 0), 1).unwrap();
        q.try_push(req(4, 5), 1).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.request.id)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn full_queue_hands_request_back() {
        let mut q = RequestQueue::new(1);
        q.try_push(req(1, 0), 1).unwrap();
        let rejected = q.try_push(req(2, 0), 1).unwrap_err();
        assert_eq!(rejected.id, 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_empties_in_scheduling_order() {
        let mut q = RequestQueue::new(4);
        q.try_push(req(1, 1), 1).unwrap();
        q.try_push(req(2, 2), 1).unwrap();
        let ids: Vec<u64> = q.drain().into_iter().map(|e| e.request.id).collect();
        assert_eq!(ids, vec![2, 1]);
        assert!(q.is_empty());
    }
}
