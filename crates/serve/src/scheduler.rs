//! The continuous-batching scheduler core.
//!
//! One [`Scheduler`] owns a [`BundleRegistry`] of knowledge versions and one
//! ragged KV cache *per live version* (a [`VersionGroup`]) holding that
//! version's *lanes* (a cache sequence: a generate request mid-prefill or
//! mid-decode, an MCQ prompt mid-prefill, or one MCQ option branch). A
//! request resolves its version at admission — its explicit `bundle` pin, or
//! whatever is active right then — and stays on that version's hook until it
//! retires, no matter how many promotes/rollbacks happen meanwhile. Each
//! [`Scheduler::step`]:
//!
//! 1. **Sweeps** cancelled and deadline-expired requests out of the batch
//!    ([`infuserki_nn::KvCache::retain_indices`]).
//! 2. **Admits** queued requests — highest priority first, FIFO on ties —
//!    while the batch has request slots free *and* the head's worst-case
//!    KV-row reservation fits the budget. Admission is strictly in queue
//!    order (no bypass), so a large head waits for rows rather than being
//!    starved by small late arrivals.
//! 3. Builds one chunk per lane — up to [`crate::ServeConfig::prefill_chunk`]
//!    prompt tokens for prefilling lanes, exactly one token for decode
//!    lanes — and advances each version group with one
//!    [`infuserki_nn::TransformerLm::extend_cached_batch`] call (one forward
//!    per live version per step; splitting the batch by version is bitwise
//!    free because batching is bitwise-invariant). Chunked prefill means a
//!    newcomer with a long prompt joins the batch gradually while every live
//!    decode lane still produces its token each step.
//! 4. Retires finished lanes, spawns MCQ option branches (gathered from the
//!    prompt's cache *before* the prompt lane is dropped), back-fills the
//!    cache, and responds to finished requests.
//!
//! # Equivalence
//!
//! The per-lane math replicates, float-op for float-op, the single-request
//! paths in [`infuserki_nn::sampler`]: greedy lanes reproduce the candidate /
//! eos-check / push / limit-check order of `greedy_decode`, and MCQ lanes
//! reproduce `score_options`' first-token log-softmax plus ascending
//! per-position accumulation over each option branch. Combined with the
//! runtime's batch- and chunking-equivalence guarantees this gives the crown
//! property: at one kernel thread, every response is bitwise identical to
//! running that request alone, regardless of batch composition (proved by
//! `tests/serve_differential.rs` under randomized arrival/cancel schedules).
//!
//! Beam requests (`beam_width > 1`) maintain `beam_width` forked caches with
//! their own pruning schedule; interleaving that with the continuous batch
//! buys little and complicates retirement, so they run atomically on the
//! single-request [`infuserki_nn::sampler::beam_search`] path at admission —
//! trivially equivalent, at the cost of stalling the batch for their
//! duration.

use std::sync::Arc;
use std::time::Instant;

use infuserki_obs as obs;

use infuserki_core::KnowledgeBundle;
use infuserki_nn::sampler::{argmax, beam_search, option_probabilities, score_options};
use infuserki_nn::{KvCache, LayerHook, PoolHandle, PrefixIndex, PrefixMatch, TransformerLm};
use infuserki_tensor::{kernels, Matrix, SeqBatch};

use crate::config::ServeConfig;
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::queue::RequestQueue;
use crate::registry::{
    BundleInfo, BundleRegistry, ControlError, ControlOp, ControlOutcome, GateReport, HookArc,
};
use crate::request::{GenerateSpec, McqSpec, Outcome, RejectReason, Request, RequestKind};

/// Model-derived admission limits, computed once at scheduler construction
/// and shared with clients so they can reject impossible requests
/// synchronously.
#[derive(Debug, Clone)]
pub struct EngineLimits {
    /// Vocabulary size; every token id must be below it.
    pub vocab_size: usize,
    /// Model context length.
    pub max_seq: usize,
    /// Widest per-layer prefix-tuning K/V block the hook prepends to every
    /// cached sequence ([`TransformerLm::max_prefix_rows`]).
    pub prefix_rows: usize,
    /// Total KV-row budget ([`ServeConfig::kv_budget_rows`]).
    pub kv_budget_rows: usize,
    /// Queue capacity ([`ServeConfig::queue_capacity`]).
    pub queue_capacity: usize,
    /// Paged-KV block granularity ([`ServeConfig::block_rows`]); every
    /// reservation is rounded up to whole blocks.
    pub block_rows: usize,
}

impl EngineLimits {
    /// `rows` rounded up to whole KV blocks.
    fn block_span(&self, rows: usize) -> usize {
        rows.div_ceil(self.block_rows) * self.block_rows
    }

    /// Worst-case KV rows `kind` can ever occupy at any single moment:
    /// prefix-tuning virtual rows plus whole-block token rows, per sequence
    /// it owns. Beam requests pay per beam.
    ///
    /// MCQ requests run in two phases that never coexist — the prompt lane
    /// prefills, retires, and only then do the option branches extend
    /// copy-on-write forks of its blocks — so the reservation is the *max*
    /// of the phases, with the prompt's full blocks charged once (branches
    /// share them by reference). Summing the phases instead (as a naive
    /// worst-case would) double-counts the prompt rows and the prefix-tuning
    /// virtual rows of the early-retired prompt lane.
    pub fn cost(&self, kind: &RequestKind) -> usize {
        match kind {
            RequestKind::Generate(g) => {
                let per_seq = self.prefix_rows
                    + self.block_span((g.prompt.len() + g.max_new).min(self.max_seq));
                per_seq * g.beam_width.max(1)
            }
            RequestKind::Mcq(m) => {
                let prompt_phase = self.prefix_rows + self.block_span(m.prompt.len());
                // Full prompt blocks every branch shares by reference.
                let shared = (m.prompt.len() / self.block_rows) * self.block_rows;
                let branch_phase: usize = shared
                    + m.options
                        .iter()
                        .filter(|o| o.len() > 1)
                        .map(|o| {
                            self.prefix_rows + self.block_span(m.prompt.len() + o.len() - 1)
                                - shared
                        })
                        .sum::<usize>();
                prompt_phase.max(branch_phase)
            }
        }
    }

    /// Validates `kind`, returning its KV-row cost on success.
    pub fn validate(&self, kind: &RequestKind) -> Result<usize, RejectReason> {
        let invalid = |msg: &str| Err(RejectReason::Invalid(msg.into()));
        let check_tokens = |toks: &[usize]| -> Result<(), RejectReason> {
            match toks.iter().find(|&&t| t >= self.vocab_size) {
                Some(&t) => Err(RejectReason::Invalid(format!(
                    "token {t} out of range for vocab {}",
                    self.vocab_size
                ))),
                None => Ok(()),
            }
        };
        match kind {
            RequestKind::Generate(g) => {
                if g.prompt.is_empty() {
                    return invalid("empty prompt");
                }
                if g.beam_width == 0 {
                    return invalid("beam_width must be at least 1");
                }
                check_tokens(&g.prompt)?;
            }
            RequestKind::Mcq(m) => {
                if m.prompt.is_empty() {
                    return invalid("empty prompt");
                }
                if m.options.is_empty() {
                    return invalid("MCQ request with no options");
                }
                if m.options.iter().any(|o| o.is_empty()) {
                    return invalid("empty option");
                }
                check_tokens(&m.prompt)?;
                for o in &m.options {
                    check_tokens(o)?;
                }
                let longest = m.options.iter().map(|o| o.len()).max().unwrap();
                if m.prompt.len() + longest - 1 > self.max_seq {
                    return invalid("prompt plus option exceeds the model context");
                }
            }
        }
        let cost = self.cost(kind);
        if cost > self.kv_budget_rows {
            return Err(RejectReason::BudgetExceeded {
                cost,
                budget: self.kv_budget_rows,
            });
        }
        Ok(cost)
    }
}

/// What one lane (cache sequence) is doing.
#[derive(Debug, Clone, Copy)]
enum LaneRole {
    /// Feeding a generate request's prompt, `fed` tokens in.
    GenPrefill { fed: usize },
    /// Decoding: `pending` is the token about to be fed (already pushed to
    /// the output, exactly as the single-path loop carries it).
    GenDecode { pending: usize },
    /// Feeding an MCQ request's prompt.
    McqPrefill { fed: usize },
    /// Extending option `opt`'s branch with its score script
    /// (`option[..len-1]`), `fed` tokens in.
    McqBranch { opt: usize, fed: usize },
}

/// A live cache sequence: which request slot it serves and its role.
#[derive(Debug, Clone, Copy)]
struct Lane {
    slot: usize,
    role: LaneRole,
}

/// Per-admitted-request state.
#[derive(Debug)]
struct InFlight {
    req: Request,
    /// KV rows reserved at admission, released when the slot frees.
    cost: usize,
    /// Generated tokens (generate requests).
    out: Vec<usize>,
    /// Per-option accumulated log-likelihood (MCQ requests).
    scores: Vec<f32>,
    /// Option branches still extending (MCQ requests).
    branches_left: usize,
}

/// What one [`Scheduler::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// Whether a batched forward ran (false = idle step).
    pub ran_forward: bool,
    /// Requests admitted this step (including ones answered inline).
    pub admitted: usize,
    /// Requests that reached a terminal outcome this step.
    pub finished: usize,
    /// Lanes live after the step.
    pub active_lanes: usize,
    /// Queue depth after the step.
    pub queue_depth: usize,
}

/// All live state of one knowledge version: its hook, its ragged KV cache,
/// and the lanes running on it. Groups exist only while they have lanes; a
/// version with no in-flight work costs nothing per step.
struct VersionGroup<'a> {
    version: u32,
    hook: HookArc<'a>,
    /// Cross-request prefix sharing for this version: the config asked for
    /// it *and* this hook's state is a pure function of the token prefix.
    /// Index entries are keyed by `(version, tokens)`, so sharing never
    /// crosses versions.
    prefix_enabled: bool,
    /// This version's hook carries per-sequence state; indexable prefill
    /// chunks must then end on single block boundaries so each indexed node
    /// stores the exact state snapshot at its own boundary.
    hook_stateful: bool,
    /// The live ragged cache; lane `i` is cache sequence `i`.
    cache: KvCache,
    lanes: Vec<Lane>,
}

/// The continuous-batching scheduler. Single-threaded by design: drive it
/// directly for deterministic tests, or hand it to [`crate::spawn_scheduler`]
/// to run on its own thread behind a [`crate::Client`].
pub struct Scheduler<'a> {
    model: &'a TransformerLm,
    /// Knowledge versions; version 0 is the construction hook.
    registry: BundleRegistry<'a>,
    cfg: ServeConfig,
    limits: EngineLimits,
    queue: RequestQueue,
    /// Per-version live state; empty iff no lanes are live anywhere.
    groups: Vec<VersionGroup<'a>>,
    /// The one paged block pool every lane cache (and the prefix index)
    /// allocates from, so blocks are shareable across requests.
    pool: PoolHandle,
    /// Radix index over cached full-block token prefixes, namespaced by
    /// bundle version; hits fork their blocks copy-on-write into the new
    /// lane and skip that much prefill.
    index: PrefixIndex,
    slots: Vec<Option<InFlight>>,
    free_slots: Vec<usize>,
    reserved_rows: usize,
    metrics: Arc<ServeMetrics>,
    draining: bool,
}

impl<'a> Scheduler<'a> {
    /// Builds a scheduler over `model` + `hook` (which must support
    /// incremental decoding); `hook` becomes knowledge version 0, active.
    /// Fails on invalid config.
    pub fn new(
        model: &'a TransformerLm,
        hook: &'a dyn LayerHook,
        cfg: ServeConfig,
    ) -> Result<Self, String> {
        cfg.validate()?;
        if !hook.supports_incremental() {
            return Err("serve: hook does not support KV-cached incremental decoding".into());
        }
        let limits = EngineLimits {
            vocab_size: model.config().vocab_size,
            max_seq: model.config().max_seq,
            prefix_rows: model.max_prefix_rows(hook),
            kv_budget_rows: cfg.kv_budget_rows,
            queue_capacity: cfg.queue_capacity,
            block_rows: cfg.block_rows,
        };
        let slots = (0..cfg.max_batch).map(|_| None).collect::<Vec<_>>();
        let free_slots = (0..cfg.max_batch).rev().collect();
        let metrics = Arc::new(ServeMetrics::new());
        // `&dyn LayerHook` is `Send + Sync` (the trait requires `Sync`) and
        // implements `LayerHook` by forwarding, so a borrowed hook shares
        // through `Arc` exactly like an owned bundle hook.
        let registry = BundleRegistry::new(Arc::new(hook) as HookArc<'a>, &metrics);
        Ok(Scheduler {
            model,
            registry,
            queue: RequestQueue::new(cfg.queue_capacity),
            limits,
            pool: model.new_pool(cfg.block_rows),
            index: PrefixIndex::new(cfg.block_rows),
            cfg,
            groups: Vec::new(),
            slots,
            free_slots,
            reserved_rows: 0,
            metrics,
            draining: false,
        })
    }

    /// The model-derived admission limits.
    pub fn limits(&self) -> &EngineLimits {
        &self.limits
    }

    /// Shared handle to the raw metrics (all-atomic: no lock to take).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Point-in-time metrics snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Whether stepping would make progress (queued or live work exists).
    pub fn has_work(&self) -> bool {
        !self.queue.is_empty() || !self.groups.is_empty()
    }

    // ----- knowledge-bundle control plane ----------------------------------

    /// The version unpinned requests resolve to at admission.
    pub fn active_version(&self) -> u32 {
        self.registry.active_version()
    }

    /// Executes one control op. Runs between steps on the scheduler thread,
    /// so a swap can never tear a batch: every in-flight lane keeps the hook
    /// its request resolved at admission.
    pub fn handle_control(&mut self, op: ControlOp) -> Result<ControlOutcome, ControlError> {
        match op {
            ControlOp::LoadBundle { path } => self.load_bundle(&path).map(ControlOutcome::Loaded),
            ControlOp::Promote { version } => self
                .promote(version)
                .map(|gate| ControlOutcome::Promoted { version, gate }),
            ControlOp::Rollback => self
                .rollback()
                .map(|version| ControlOutcome::RolledBack { version }),
            ControlOp::ListBundles => Ok(ControlOutcome::Bundles(self.list_bundles())),
        }
    }

    /// Loads, verifies and stages a [`KnowledgeBundle`] file. The new
    /// version is immediately pinnable (`bundle: v` on requests) but does
    /// not serve unpinned traffic until [`Scheduler::promote`].
    pub fn load_bundle(&mut self, path: &str) -> Result<BundleInfo, ControlError> {
        let bundle = KnowledgeBundle::load(path).map_err(ControlError::Bundle)?;
        bundle
            .verify(self.model)
            .map_err(ControlError::Incompatible)?;
        let KnowledgeBundle {
            name,
            config_fingerprint,
            stamp,
            gate_probes,
            method,
            ..
        } = bundle;
        let hook: HookArc<'static> = Arc::new(method);
        if !hook.supports_incremental() {
            return Err(ControlError::Incompatible(format!(
                "bundle '{name}' hook does not support KV-cached incremental decoding"
            )));
        }
        // EngineLimits (and every client's synchronous validation) bake in
        // the base hook's prefix-row width; a bundle changing it would make
        // admitted reservations wrong for its lanes.
        let rows = self.model.max_prefix_rows(hook.as_ref());
        if rows != self.limits.prefix_rows {
            return Err(ControlError::Incompatible(format!(
                "bundle '{name}' needs {rows} prefix K/V rows per layer but the engine was \
                 sized for {}",
                self.limits.prefix_rows
            )));
        }
        let v = self.registry.stage(
            name,
            config_fingerprint,
            stamp,
            gate_probes,
            hook,
            &self.metrics,
        );
        Ok(self.registry.info(v))
    }

    /// Promotes a staged version to active after the NR regression gate
    /// passes: on the bundle's held-out known-set probes, the candidate must
    /// answer at least as many correctly as the currently active version
    /// (the paper's knowledge-retention criterion, enforced online). The
    /// gate runs single-request sampler calls on the scheduler thread — a
    /// promote blocks the batch for the probe forwards, which is the price
    /// of gating on the exact serving weights.
    pub fn promote(&mut self, version: u32) -> Result<Option<GateReport>, ControlError> {
        let active = self.registry.active_version();
        if self.registry.get(version).is_none() {
            return Err(ControlError::UnknownVersion(version));
        }
        if version == active {
            return Err(ControlError::AlreadyActive(version));
        }
        let gate = {
            let staged = self.registry.get(version).unwrap();
            if staged.gate_probes.is_empty() {
                None
            } else {
                let active_hook = self.registry.get(active).unwrap().hook.clone();
                let probes = &staged.gate_probes;
                let mut report = GateReport {
                    probes: probes.len(),
                    staged_correct: 0,
                    active_correct: 0,
                };
                for p in probes {
                    if probe_answer(self.model, staged.hook.as_ref(), p) == p.correct {
                        report.staged_correct += 1;
                    }
                    if probe_answer(self.model, active_hook.as_ref(), p) == p.correct {
                        report.active_correct += 1;
                    }
                }
                if report.staged_correct < report.active_correct {
                    self.metrics.bundle_rejected_promotions.inc();
                    return Err(ControlError::NrGateFailed {
                        version,
                        gate: report,
                    });
                }
                Some(report)
            }
        };
        self.registry.promote(version);
        self.metrics.bundle_swaps.inc();
        self.metrics.bundle_active_version.set(version as i64);
        Ok(gate)
    }

    /// Restores the previously active version (no gate: rollback is the
    /// escape hatch and must never be refused). Returns the now-active
    /// version.
    pub fn rollback(&mut self) -> Result<u32, ControlError> {
        let v = self
            .registry
            .rollback()
            .ok_or(ControlError::NothingToRollBack)?;
        self.metrics.bundle_rollbacks.inc();
        self.metrics.bundle_active_version.set(v as i64);
        Ok(v)
    }

    /// Every registered version, in version order.
    pub fn list_bundles(&self) -> Vec<BundleInfo> {
        self.registry.list()
    }

    /// Stops accepting new requests; in-flight and queued work still runs.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Rejects everything still queued with
    /// [`RejectReason::ShuttingDown`] (bounded shutdown: live lanes finish,
    /// queued work does not start).
    pub fn reject_queued_for_shutdown(&mut self) {
        let entries = self.queue.drain();
        let n = entries.len() as u64;
        for e in entries {
            e.request
                .respond(Outcome::Rejected(RejectReason::ShuttingDown));
        }
        self.metrics.rejected_shutdown.add(n);
        self.metrics.queue_depth.set(0);
    }

    /// Validates and enqueues a request. Every outcome — including
    /// rejection — is delivered on the request's response channel, so this
    /// never fails synchronously.
    pub fn enqueue(&mut self, req: Request) {
        if self.draining {
            req.respond(Outcome::Rejected(RejectReason::ShuttingDown));
            self.metrics.rejected_shutdown.inc();
            return;
        }
        // An explicit version pin must exist *now*; versions are never
        // unloaded, so a pin that validates here stays resolvable at
        // admission no matter what control ops run in between.
        if let Some(v) = req.bundle {
            if self.registry.get(v).is_none() {
                self.metrics.rejected_invalid.inc();
                req.respond(Outcome::Rejected(RejectReason::UnknownBundle {
                    version: v,
                }));
                return;
            }
        }
        let cost = match self.limits.validate(&req.kind) {
            Ok(c) => c,
            Err(reason) => {
                match reason {
                    RejectReason::BudgetExceeded { .. } => self.metrics.rejected_budget.inc(),
                    _ => self.metrics.rejected_invalid.inc(),
                }
                req.respond(Outcome::Rejected(reason));
                return;
            }
        };
        match self.queue.try_push(req, cost) {
            Ok(()) => {
                self.metrics.submitted.inc();
                self.metrics.queue_depth.set(self.queue.len() as i64);
            }
            Err(req) => {
                self.metrics.rejected_queue_full.inc();
                req.respond(Outcome::Rejected(RejectReason::QueueFull {
                    capacity: self.queue.capacity(),
                }));
            }
        }
    }

    /// Runs one scheduling step (sweep, admit, forward, retire).
    pub fn step(&mut self) -> StepReport {
        let _sp = obs::enabled().then(|| obs::span("serve.step"));
        let now = Instant::now();
        self.sweep_dead(now);
        let admitted = self.admit(now);
        if self.groups.is_empty() {
            let m = &self.metrics;
            m.idle_steps.inc();
            m.queue_depth.set(self.queue.len() as i64);
            m.active_lanes.set(0);
            m.active_requests.set(0);
            m.reserved_rows.set(self.reserved_rows as i64);
            self.set_block_gauges();
            return StepReport {
                ran_forward: false,
                admitted,
                finished: 0,
                active_lanes: 0,
                queue_depth: self.queue.len(),
            };
        }
        let finished = self.advance_lanes();
        let active_lanes: usize = self.groups.iter().map(|g| g.lanes.len()).sum();
        let report = StepReport {
            ran_forward: true,
            admitted,
            finished,
            active_lanes,
            queue_depth: self.queue.len(),
        };
        let m = &self.metrics;
        m.queue_depth.set(self.queue.len() as i64);
        m.active_lanes.set(active_lanes as i64);
        m.active_requests
            .set(self.slots.iter().filter(|s| s.is_some()).count() as i64);
        m.reserved_rows.set(self.reserved_rows as i64);
        let used = self
            .groups
            .iter()
            .map(|g| g.cache.rows_used())
            .sum::<usize>() as i64;
        m.kv_rows_used.set(used);
        m.kv_rows_peak.set_max(used);
        self.set_block_gauges();
        report
    }

    /// Publishes the paged-pool occupancy gauges.
    fn set_block_gauges(&self) {
        let (live, peak) = {
            let pool = self.pool.lock();
            (pool.live_blocks() as i64, pool.peak_blocks() as i64)
        };
        self.metrics.blocks_live.set(live);
        self.metrics.blocks_peak.set_max(peak);
    }

    /// Steps until neither queued nor live work remains; returns the number
    /// of steps run. Terminates because every queued request's reservation
    /// fits the whole budget (validated at enqueue), so once the batch
    /// drains the head is always admissible.
    pub fn run_until_idle(&mut self) -> usize {
        let mut steps = 0;
        while self.has_work() {
            self.step();
            steps += 1;
        }
        steps
    }

    // ----- internals -------------------------------------------------------

    /// Retires every lane whose request was cancelled or deadline-expired,
    /// responding accordingly.
    fn sweep_dead(&mut self, now: Instant) {
        if self.groups.is_empty() {
            return;
        }
        let mut any_dead = false;
        for slot in 0..self.slots.len() {
            let Some(inf) = &self.slots[slot] else {
                continue;
            };
            let outcome = if inf.req.cancel.is_cancelled() {
                Some(Outcome::Cancelled)
            } else if inf.req.expired_at(now) {
                Some(Outcome::Expired)
            } else {
                None
            };
            if let Some(outcome) = outcome {
                match outcome {
                    Outcome::Cancelled => self.metrics.cancelled.inc(),
                    _ => self.metrics.expired.inc(),
                }
                self.finish_slot(slot, outcome);
                any_dead = true;
            }
        }
        if !any_dead {
            return;
        }
        let mut groups = std::mem::take(&mut self.groups);
        for g in &mut groups {
            let keep: Vec<usize> = (0..g.lanes.len())
                .filter(|&i| self.slots[g.lanes[i].slot].is_some())
                .collect();
            if keep.len() == g.lanes.len() {
                continue;
            }
            if keep.is_empty() {
                // Dropping the group (below) drops its cache and releases
                // the blocks.
                g.lanes.clear();
                continue;
            }
            g.cache.retain_indices(&keep);
            g.lanes = keep.iter().map(|&i| g.lanes[i]).collect();
            if self.cfg.compact_after_retire {
                g.cache.compact();
            }
        }
        groups.retain(|g| !g.lanes.is_empty());
        self.groups = groups;
    }

    /// Admits queue heads while slots and budget allow. Returns how many
    /// requests were admitted or answered inline.
    fn admit(&mut self, now: Instant) -> usize {
        let mut admitted = 0;
        while let Some(head) = self.queue.peek() {
            // Dead queue entries are dropped regardless of capacity.
            if head.request.cancel.is_cancelled() {
                let e = self.queue.pop().unwrap();
                e.request.respond(Outcome::Cancelled);
                // Never touched the batch: counted apart from in-flight
                // cancellations so queue churn is visible on its own.
                self.metrics.cancelled_queued.inc();
                continue;
            }
            if head.request.expired_at(now) {
                let e = self.queue.pop().unwrap();
                e.request.respond(Outcome::Expired);
                self.metrics.expired_queued.inc();
                continue;
            }
            if self.free_slots.is_empty() {
                break;
            }
            // Strict queue order: a head that doesn't fit the remaining
            // budget blocks later (smaller) entries, so it cannot starve.
            // Cached-prefix blocks the head would share are discounted from
            // its reservation (it adopts them instead of allocating), and
            // cold cached prefixes are evicted before the head is made to
            // wait — so pinning rows in the index can never deadlock
            // admission.
            // Resolve the head's knowledge version *now*: its explicit pin,
            // or the currently active version. Versions are never unloaded,
            // so a pin validated at enqueue always resolves.
            let version = head
                .request
                .bundle
                .unwrap_or_else(|| self.registry.active_version());
            let prefix_ok = {
                let entry = self
                    .registry
                    .get(version)
                    .expect("pins are validated at enqueue; versions never unload");
                self.cfg.prefix_cache && entry.prefix_cache_safe
            };
            let prompt = match &head.request.kind {
                RequestKind::Generate(g) if g.beam_width <= 1 && g.max_new > 0 => {
                    Some(g.prompt.as_slice())
                }
                RequestKind::Mcq(m) => Some(m.prompt.as_slice()),
                _ => None,
            };
            let cost = head.cost;
            let hit = loop {
                // Re-run the lookup after every eviction: the evicted leaf
                // may have been on the matched path, invalidating its
                // blocks (they are only pinned at adoption, below). The
                // lookup is namespaced by version: cached blocks and
                // hook-state snapshots are only reusable under the exact
                // hook that produced them.
                let hit = match prompt {
                    Some(p) if prefix_ok => self.index.lookup_in(version as u64, p),
                    _ => None,
                };
                let discount = hit.as_ref().map_or(0, |m| m.tokens);
                if self.reserved_rows + self.index.indexed_rows() + cost - discount
                    <= self.limits.kv_budget_rows
                {
                    break Some((hit, discount));
                }
                if self.index.evict_lru(&mut self.pool.lock()).is_none() {
                    break None;
                }
                self.metrics.blocks_evicted.inc();
            };
            let Some((hit, discount)) = hit else {
                break;
            };
            let entry = self.queue.pop().unwrap();
            self.admit_one(entry.request, version, entry.cost - discount, hit);
            admitted += 1;
        }
        admitted
    }

    /// Admits one request on `version`: answers trivial and beam requests
    /// inline, otherwise reserves rows and opens a prefill lane in the
    /// version's group. `hit` is the cached prefix the admission check
    /// matched (already discounted from `cost`); it is adopted before any
    /// further eviction can free it.
    fn admit_one(&mut self, req: Request, version: u32, cost: usize, hit: Option<PrefixMatch>) {
        self.metrics.admitted.inc();
        let entry = self
            .registry
            .get(version)
            .expect("admit resolved this version");
        entry.served.inc();
        let hook = entry.hook.clone();
        match &req.kind {
            RequestKind::Generate(g) => {
                if g.max_new == 0 || g.prompt.len() >= self.limits.max_seq {
                    // Single-path parity: no budget or no context room emits
                    // nothing (`greedy_decode_batch_limits` filters these
                    // before prefilling).
                    self.record_ttft(&req);
                    req.respond(Outcome::Generated { tokens: Vec::new() });
                    self.metrics.completed.inc();
                    return;
                }
                if g.beam_width > 1 {
                    let tokens = beam_search(
                        self.model,
                        hook.as_ref(),
                        &g.prompt,
                        g.max_new,
                        g.beam_width,
                        g.eos,
                    );
                    self.record_ttft(&req);
                    req.respond(Outcome::Generated { tokens });
                    self.metrics.completed.inc();
                    return;
                }
                self.open_lane(req, version, cost, hit, LaneRole::GenPrefill { fed: 0 });
            }
            RequestKind::Mcq(m) => {
                let scores = vec![0.0; m.options.len()];
                self.open_lane_with(
                    req,
                    version,
                    cost,
                    hit,
                    LaneRole::McqPrefill { fed: 0 },
                    scores,
                );
            }
        }
    }

    fn open_lane(
        &mut self,
        req: Request,
        version: u32,
        cost: usize,
        hit: Option<PrefixMatch>,
        role: LaneRole,
    ) {
        self.open_lane_with(req, version, cost, hit, role, Vec::new());
    }

    fn open_lane_with(
        &mut self,
        req: Request,
        version: u32,
        cost: usize,
        hit: Option<PrefixMatch>,
        role: LaneRole,
        scores: Vec<f32>,
    ) {
        let slot = self.free_slots.pop().expect("admit checked a slot is free");
        self.slots[slot] = Some(InFlight {
            req,
            cost,
            out: Vec::new(),
            scores,
            branches_left: 0,
        });
        self.reserved_rows += cost;
        let metrics = Arc::clone(&self.metrics);
        // Find or create the version's group. Group creation is where a
        // request *pins* its hook: the group holds the version's [`HookArc`]
        // until its last lane retires. `new_cache_in` pre-opens exactly one
        // empty sequence — this lane's.
        let g = match self.groups.iter().position(|g| g.version == version) {
            Some(i) => {
                let fresh = self
                    .model
                    .new_cache_in(self.groups[i].hook.as_ref(), self.pool.clone());
                self.groups[i].cache.absorb(fresh);
                &mut self.groups[i]
            }
            None => {
                let entry = self
                    .registry
                    .get(version)
                    .expect("admit resolved this version");
                self.groups.push(VersionGroup {
                    version,
                    hook: entry.hook.clone(),
                    prefix_enabled: self.cfg.prefix_cache && entry.prefix_cache_safe,
                    hook_stateful: entry.stateful,
                    cache: self
                        .model
                        .new_cache_in(entry.hook.as_ref(), self.pool.clone()),
                    lanes: Vec::new(),
                });
                self.groups.last_mut().unwrap()
            }
        };
        // Prefix-cache hit: adopt the matched blocks by reference (pinning
        // them against eviction) and start prefill past them. The adopted
        // rows are never re-fed; the skipped forward work is the win.
        let mut fed = 0;
        if let Some(m) = hit {
            let lane_idx = g.cache.n_seqs() - 1;
            fed = m.tokens;
            g.cache.adopt_prefix(lane_idx, &m.blocks, m.tokens, m.state);
            metrics.prefix_hits.inc();
            metrics.prefix_hit_tokens.add(m.tokens as u64);
        } else if g.prefix_enabled {
            metrics.prefix_misses.inc();
        }
        let role = match role {
            LaneRole::GenPrefill { .. } => LaneRole::GenPrefill { fed },
            LaneRole::McqPrefill { .. } => LaneRole::McqPrefill { fed },
            other => other,
        };
        g.lanes.push(Lane { slot, role });
    }

    /// End of the prompt span a lane at `fed` feeds this step: up to
    /// `prefill_chunk` tokens, cut back to a block boundary when the chunk
    /// would cross one and the group's prefix cache is live. A prompt chunk
    /// that *ends* on a boundary leaves an exact hook-state snapshot there
    /// for the index; chunking is bitwise-invariant, so the cut changes no
    /// output — it only splits the prefill across one more step.
    fn prefill_end(&self, fed: usize, total: usize, prefix_enabled: bool, stateful: bool) -> usize {
        let mut end = total.min(fed + self.cfg.prefill_chunk);
        if !prefix_enabled {
            return end;
        }
        let b = self.cfg.block_rows;
        if stateful {
            // One indexable boundary per chunk: a chunk spanning several
            // boundaries could only snapshot the state at its end, not at
            // the interior boundaries it would index.
            end = end.min(fed + (b - fed % b));
        }
        let cut = end - end % b;
        if cut > fed {
            cut
        } else {
            end
        }
    }

    /// The tokens lane `lane` feeds this step (always non-empty).
    /// `prefix_enabled`/`stateful` are its group's chunk-alignment flags.
    fn lane_chunk(&self, lane: &Lane, prefix_enabled: bool, stateful: bool) -> Vec<usize> {
        let inf = self.slots[lane.slot]
            .as_ref()
            .expect("lane has a live slot");
        let chunk = self.cfg.prefill_chunk;
        match lane.role {
            LaneRole::GenPrefill { fed } => {
                let p = &gen_spec(&inf.req).prompt;
                p[fed..self.prefill_end(fed, p.len(), prefix_enabled, stateful)].to_vec()
            }
            LaneRole::GenDecode { pending } => vec![pending],
            LaneRole::McqPrefill { fed } => {
                let p = &mcq_spec(&inf.req).prompt;
                p[fed..self.prefill_end(fed, p.len(), prefix_enabled, stateful)].to_vec()
            }
            LaneRole::McqBranch { opt, fed } => {
                let o = &mcq_spec(&inf.req).options[opt];
                let script = &o[..o.len() - 1];
                script[fed..(fed + chunk).min(script.len())].to_vec()
            }
        }
    }

    /// One batched forward per live version group, then per-lane
    /// bookkeeping. Returns the number of requests finished.
    fn advance_lanes(&mut self) -> usize {
        let _sp = obs::enabled().then(|| obs::span("serve.advance_lanes"));
        let t0 = Instant::now();
        let mut groups = std::mem::take(&mut self.groups);
        let mut finished = 0usize;
        let mut lanes_before = 0usize;
        let mut prefill_toks = 0u64;
        let mut decode_toks = 0u64;
        for g in &mut groups {
            lanes_before += g.lanes.len();
            let (f, p, d) = self.advance_group(g);
            finished += f;
            prefill_toks += p;
            decode_toks += d;
        }
        groups.retain(|g| !g.lanes.is_empty());
        self.groups = groups;

        let m = &self.metrics;
        let elapsed = t0.elapsed();
        m.steps.inc();
        m.occupancy_lane_steps.add(lanes_before as u64);
        m.prefill_tokens.add(prefill_toks);
        m.decode_tokens.add(decode_toks);
        m.busy_ns.add(elapsed.as_nanos() as u64);
        m.step_ms.record_duration(elapsed);
        // Each decode lane emits exactly one token per step it advances,
        // so the step's wall time is one time-between-tokens observation.
        if decode_toks > 0 {
            m.tbt_ms.record_duration(elapsed);
        }
        m.completed.add(finished as u64);
        finished
    }

    /// Advances one version group: one batched forward over its lanes under
    /// its pinned hook, then the per-lane bookkeeping. Returns
    /// `(finished, prefill_tokens, decode_tokens)`. A group whose last lane
    /// retires is left empty for the caller to drop (releasing its cache).
    fn advance_group(&mut self, g: &mut VersionGroup<'a>) -> (usize, u64, u64) {
        let chunks: Vec<Vec<usize>> = g
            .lanes
            .iter()
            .map(|l| self.lane_chunk(l, g.prefix_enabled, g.hook_stateful))
            .collect();
        let lens: Vec<usize> = chunks.iter().map(Vec::len).collect();
        let cache = &mut g.cache;
        let logits = self
            .model
            .extend_cached_batch(&chunks, g.hook.as_ref(), cache);
        let batch = SeqBatch::from_lens(&lens);

        // Index every prompt prefill that just reached a block boundary:
        // its full blocks (plus the hook-state snapshot at the boundary)
        // become adoptable by later requests with the same prefix — in this
        // version's namespace only. This runs before retirement, so even a
        // prompt finishing this step leaves its prefix behind.
        if g.prefix_enabled {
            let b = self.cfg.block_rows;
            let handle = self.pool.clone();
            let mut pool = handle.lock();
            for (i, lane) in g.lanes.iter().enumerate() {
                let inf = self.slots[lane.slot]
                    .as_ref()
                    .expect("lane has a live slot");
                let (fed, prompt) = match lane.role {
                    LaneRole::GenPrefill { fed } => (fed, &gen_spec(&inf.req).prompt),
                    LaneRole::McqPrefill { fed } => (fed, &mcq_spec(&inf.req).prompt),
                    _ => continue,
                };
                let t = fed + lens[i];
                if t.is_multiple_of(b) {
                    let state = cache.clone_state(i);
                    self.index.insert_in(
                        &mut pool,
                        g.version as u64,
                        &prompt[..t],
                        &cache.seq_table(i)[..t / b],
                        &state,
                    );
                }
            }
        }

        let lanes = std::mem::take(&mut g.lanes);
        let n_before = lanes.len();
        let mut new_lanes: Vec<Lane> = Vec::with_capacity(n_before);
        let mut keep: Vec<usize> = Vec::with_capacity(n_before);
        // (source lane, slot, option) for every branch spawned this step.
        let mut spawns: Vec<(usize, usize, usize)> = Vec::new();
        let mut finished = 0usize;
        let mut prefill_toks = 0u64;
        let mut decode_toks = 0u64;
        let max_seq = self.limits.max_seq;

        for (i, lane) in lanes.iter().enumerate() {
            let chunk_len = lens[i];
            match lane.role {
                LaneRole::GenPrefill { fed } => {
                    prefill_toks += chunk_len as u64;
                    let plen = {
                        let inf = self.slots[lane.slot].as_ref().unwrap();
                        gen_spec(&inf.req).prompt.len()
                    };
                    if fed + chunk_len < plen {
                        keep.push(i);
                        new_lanes.push(Lane {
                            slot: lane.slot,
                            role: LaneRole::GenPrefill {
                                fed: fed + chunk_len,
                            },
                        });
                        continue;
                    }
                    // Prefill complete: the last chunk row predicts the
                    // first candidate, exactly as the single path's prefill.
                    {
                        let inf = self.slots[lane.slot].as_ref().unwrap();
                        self.record_ttft(&inf.req);
                    }
                    let tok = argmax(logits.row(batch.last_row(i)));
                    match self.greedy_advance(lane.slot, tok, max_seq) {
                        Advance::Finished { emitted } => {
                            decode_toks += emitted as u64;
                            self.finish_gen(lane.slot);
                            finished += 1;
                        }
                        Advance::Continue => {
                            decode_toks += 1;
                            keep.push(i);
                            new_lanes.push(Lane {
                                slot: lane.slot,
                                role: LaneRole::GenDecode { pending: tok },
                            });
                        }
                    }
                }
                LaneRole::GenDecode { .. } => {
                    let tok = argmax(logits.row(batch.last_row(i)));
                    match self.greedy_advance(lane.slot, tok, max_seq) {
                        Advance::Finished { emitted } => {
                            decode_toks += emitted as u64;
                            self.finish_gen(lane.slot);
                            finished += 1;
                        }
                        Advance::Continue => {
                            decode_toks += 1;
                            keep.push(i);
                            new_lanes.push(Lane {
                                slot: lane.slot,
                                role: LaneRole::GenDecode { pending: tok },
                            });
                        }
                    }
                }
                LaneRole::McqPrefill { fed } => {
                    prefill_toks += chunk_len as u64;
                    let plen = {
                        let inf = self.slots[lane.slot].as_ref().unwrap();
                        mcq_spec(&inf.req).prompt.len()
                    };
                    if fed + chunk_len < plen {
                        keep.push(i);
                        new_lanes.push(Lane {
                            slot: lane.slot,
                            role: LaneRole::McqPrefill {
                                fed: fed + chunk_len,
                            },
                        });
                        continue;
                    }
                    // Prompt prefilled: the last row scores every option's
                    // first token (log-softmax is row-local, so normalizing
                    // the extracted row matches `score_options` exactly).
                    let last_lp = kernels::log_softmax_rows(&Matrix::row_vec(
                        logits.row(batch.last_row(i)).to_vec(),
                    ));
                    let inf = self.slots[lane.slot].as_mut().unwrap();
                    let multis: Vec<usize> = {
                        let spec = mcq_spec(&inf.req);
                        for (oi, opt) in spec.options.iter().enumerate() {
                            inf.scores[oi] = last_lp.get(0, opt[0]);
                        }
                        spec.options
                            .iter()
                            .enumerate()
                            .filter(|(_, o)| o.len() > 1)
                            .map(|(oi, _)| oi)
                            .collect()
                    };
                    inf.branches_left = multis.len();
                    {
                        let inf = self.slots[lane.slot].as_ref().unwrap();
                        self.record_ttft(&inf.req);
                    }
                    if multis.is_empty() {
                        self.finish_mcq(lane.slot);
                        finished += 1;
                    } else {
                        // The prompt lane retires; its branches are gathered
                        // from the cache (below) before it is dropped.
                        for oi in multis {
                            spawns.push((i, lane.slot, oi));
                        }
                    }
                }
                LaneRole::McqBranch { opt, fed } => {
                    prefill_toks += chunk_len as u64;
                    let r = batch.range(i);
                    let lp = kernels::log_softmax_rows(&logits.slice_rows(r.start, r.end));
                    let inf = self.slots[lane.slot].as_mut().unwrap();
                    let script_len = {
                        let spec = mcq_spec(&inf.req);
                        let option = &spec.options[opt];
                        // Row j of this chunk predicts option[fed + j + 1];
                        // accumulate in ascending position order so the f32
                        // sum replays `score_options` bit for bit.
                        for j in 0..chunk_len {
                            inf.scores[opt] += lp.get(j, option[fed + j + 1]);
                        }
                        option.len() - 1
                    };
                    if fed + chunk_len < script_len {
                        keep.push(i);
                        new_lanes.push(Lane {
                            slot: lane.slot,
                            role: LaneRole::McqBranch {
                                opt,
                                fed: fed + chunk_len,
                            },
                        });
                        continue;
                    }
                    inf.branches_left -= 1;
                    if inf.branches_left == 0 {
                        self.finish_mcq(lane.slot);
                        finished += 1;
                    }
                }
            }
        }

        // Cache surgery: gather branch sources before retiring anything, so
        // the branches copy the freshly prefilled prompt rows.
        let branch_cache = if spawns.is_empty() {
            None
        } else {
            let srcs: Vec<usize> = spawns.iter().map(|&(src, _, _)| src).collect();
            Some(cache.gather(&srcs))
        };
        if keep.is_empty() {
            // Every surviving sequence (if any) is a fresh branch; otherwise
            // the group is now empty and the caller drops it, cache and all.
            if let Some(b) = branch_cache {
                *cache = b;
            }
        } else {
            if keep.len() < n_before {
                cache.retain_indices(&keep);
            }
            if let Some(b) = branch_cache {
                cache.absorb(b);
            }
        }
        for &(_, slot, oi) in &spawns {
            new_lanes.push(Lane {
                slot,
                role: LaneRole::McqBranch { opt: oi, fed: 0 },
            });
        }
        let retired_any = keep.len() < n_before;
        if retired_any && self.cfg.compact_after_retire && !new_lanes.is_empty() {
            cache.compact();
        }
        g.lanes = new_lanes;
        debug_assert!(
            g.lanes.is_empty() || g.lanes.len() == g.cache.n_seqs(),
            "lane list must mirror cache sequences"
        );
        (finished, prefill_toks, decode_toks)
    }

    /// Replays one iteration of the single-path greedy loop for `tok`, the
    /// candidate just produced: stop on eos (without emitting), else emit,
    /// then stop when the budget or the context fills.
    fn greedy_advance(&mut self, slot: usize, tok: usize, max_seq: usize) -> Advance {
        let inf = self.slots[slot].as_mut().expect("advancing a live slot");
        let (eos, max_new, plen) = {
            let g = gen_spec(&inf.req);
            (g.eos, g.max_new, g.prompt.len())
        };
        if Some(tok) == eos {
            return Advance::Finished { emitted: 0 };
        }
        inf.out.push(tok);
        if inf.out.len() == max_new || plen + inf.out.len() >= max_seq {
            return Advance::Finished { emitted: 1 };
        }
        Advance::Continue
    }

    fn finish_gen(&mut self, slot: usize) {
        let tokens = self.slots[slot]
            .as_mut()
            .map(|inf| std::mem::take(&mut inf.out))
            .expect("finishing a live slot");
        self.finish_slot(slot, Outcome::Generated { tokens });
    }

    fn finish_mcq(&mut self, slot: usize) {
        let outcome = {
            let inf = self.slots[slot].as_ref().expect("finishing a live slot");
            let spec = mcq_spec(&inf.req);
            let lens: Vec<usize> = spec.options.iter().map(Vec::len).collect();
            let probabilities = option_probabilities(&inf.scores, &lens);
            let best = argmax(&probabilities);
            Outcome::McqScored {
                scores: inf.scores.clone(),
                probabilities,
                best,
            }
        };
        self.finish_slot(slot, outcome);
    }

    /// Responds, releases the reservation and frees the slot. Lanes are the
    /// caller's responsibility.
    fn finish_slot(&mut self, slot: usize, outcome: Outcome) {
        let inf = self.slots[slot].take().expect("finishing a live slot");
        inf.req.respond(outcome);
        self.reserved_rows -= inf.cost;
        self.free_slots.push(slot);
    }

    fn record_ttft(&self, req: &Request) {
        self.metrics.record_ttft(req.submitted_at.elapsed());
    }
}

/// Result of one greedy-loop iteration.
enum Advance {
    /// The request is done; `emitted` tokens were pushed this iteration.
    Finished { emitted: usize },
    /// The lane keeps decoding.
    Continue,
}

fn gen_spec(req: &Request) -> &GenerateSpec {
    match &req.kind {
        RequestKind::Generate(g) => g,
        RequestKind::Mcq(_) => unreachable!("generate lane on an MCQ request"),
    }
}

fn mcq_spec(req: &Request) -> &McqSpec {
    match &req.kind {
        RequestKind::Mcq(m) => m,
        RequestKind::Generate(_) => unreachable!("MCQ lane on a generate request"),
    }
}

/// Which option `hook` picks for a held-out NR gate probe: the paper's
/// detection-probe scoring (length-normalized option likelihood, argmax) on
/// the single-request sampler path.
fn probe_answer(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    probe: &infuserki_core::GateProbe,
) -> usize {
    let scores = score_options(model, hook, &probe.prompt, &probe.options);
    let lens: Vec<usize> = probe.options.iter().map(Vec::len).collect();
    argmax(&option_probabilities(&scores, &lens))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Response;
    use infuserki_nn::sampler;
    use infuserki_nn::{ModelConfig, NoHook, TransformerLm};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::mpsc;

    fn model() -> TransformerLm {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        TransformerLm::new(ModelConfig::tiny(30), &mut rng)
    }

    fn submit(sched: &mut Scheduler<'_>, id: u64, kind: RequestKind) -> mpsc::Receiver<Response> {
        let (tx, rx) = mpsc::channel();
        sched.enqueue(Request::new(id, kind, tx));
        rx
    }

    #[test]
    fn generate_matches_single_path_sampler() {
        kernels::set_num_threads(1);
        let m = model();
        let cfg = ServeConfig {
            prefill_chunk: 2,
            kv_budget_rows: 256,
            ..ServeConfig::default()
        };
        let mut sched = Scheduler::new(&m, &NoHook, cfg).unwrap();
        let prompts: Vec<Vec<usize>> = vec![vec![1, 2, 3], vec![4], vec![5, 6, 7, 8, 9]];
        let rxs: Vec<_> = prompts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                submit(
                    &mut sched,
                    i as u64,
                    RequestKind::Generate(GenerateSpec::greedy(p.clone(), 6, Some(3))),
                )
            })
            .collect();
        sched.run_until_idle();
        for (p, rx) in prompts.iter().zip(&rxs) {
            let got = match rx.try_recv().unwrap().outcome {
                Outcome::Generated { tokens } => tokens,
                other => panic!("unexpected outcome {other:?}"),
            };
            let want = sampler::greedy_decode(&m, &NoHook, p, 6, Some(3));
            assert_eq!(got, want);
        }
    }

    #[test]
    fn mcq_matches_single_path_scores_bitwise() {
        kernels::set_num_threads(1);
        let m = model();
        let cfg = ServeConfig {
            prefill_chunk: 3,
            kv_budget_rows: 512,
            ..ServeConfig::default()
        };
        let mut sched = Scheduler::new(&m, &NoHook, cfg).unwrap();
        let prompt = vec![1, 2, 3, 4, 5];
        let options = vec![vec![6], vec![7, 8], vec![9, 10, 11, 12]];
        let rx = submit(
            &mut sched,
            0,
            RequestKind::Mcq(McqSpec {
                prompt: prompt.clone(),
                options: options.clone(),
            }),
        );
        sched.run_until_idle();
        let (scores, probabilities, best) = match rx.try_recv().unwrap().outcome {
            Outcome::McqScored {
                scores,
                probabilities,
                best,
            } => (scores, probabilities, best),
            other => panic!("unexpected outcome {other:?}"),
        };
        let want = sampler::score_options(&m, &NoHook, &prompt, &options);
        let want_bits: Vec<u32> = want.iter().map(|s| s.to_bits()).collect();
        let got_bits: Vec<u32> = scores.iter().map(|s| s.to_bits()).collect();
        assert_eq!(got_bits, want_bits, "scores must be bitwise identical");
        let lens: Vec<usize> = options.iter().map(Vec::len).collect();
        let want_p = option_probabilities(&want, &lens);
        assert_eq!(probabilities, want_p);
        assert_eq!(best, argmax(&want_p));
    }

    #[test]
    fn beam_requests_run_inline_and_match() {
        kernels::set_num_threads(1);
        let m = model();
        let mut sched = Scheduler::new(&m, &NoHook, ServeConfig::default()).unwrap();
        let rx = submit(
            &mut sched,
            0,
            RequestKind::Generate(GenerateSpec {
                prompt: vec![3],
                max_new: 3,
                eos: None,
                beam_width: 3,
            }),
        );
        sched.run_until_idle();
        let got = match rx.try_recv().unwrap().outcome {
            Outcome::Generated { tokens } => tokens,
            other => panic!("unexpected outcome {other:?}"),
        };
        assert_eq!(got, sampler::beam_search(&m, &NoHook, &[3], 3, 3, None));
    }

    #[test]
    fn zero_budget_and_overlong_prompts_emit_nothing() {
        kernels::set_num_threads(1);
        let m = model();
        let max_seq = m.config().max_seq;
        let mut sched = Scheduler::new(&m, &NoHook, ServeConfig::default()).unwrap();
        let rx0 = submit(
            &mut sched,
            0,
            RequestKind::Generate(GenerateSpec::greedy(vec![1, 2], 0, None)),
        );
        let rx1 = submit(
            &mut sched,
            1,
            RequestKind::Generate(GenerateSpec::greedy(vec![1; max_seq], 4, None)),
        );
        sched.run_until_idle();
        for rx in [rx0, rx1] {
            assert_eq!(
                rx.try_recv().unwrap().outcome,
                Outcome::Generated { tokens: Vec::new() }
            );
        }
    }

    #[test]
    fn budget_reservation_serializes_large_requests() {
        kernels::set_num_threads(1);
        let m = model();
        // Budget fits exactly one request at a time; both must still finish.
        // Small blocks keep each reservation (ceil(8/2)*2 = 8 rows) under
        // the 10-row budget while two together still exceed it.
        let cfg = ServeConfig {
            kv_budget_rows: 10,
            block_rows: 2,
            prefill_chunk: 4,
            ..ServeConfig::default()
        };
        let mut sched = Scheduler::new(&m, &NoHook, cfg).unwrap();
        let rx0 = submit(
            &mut sched,
            0,
            RequestKind::Generate(GenerateSpec::greedy(vec![1, 2, 3], 5, None)),
        );
        let rx1 = submit(
            &mut sched,
            1,
            RequestKind::Generate(GenerateSpec::greedy(vec![4, 5, 6], 5, None)),
        );
        let report = sched.step();
        assert_eq!(report.admitted, 1, "second request must wait for rows");
        sched.run_until_idle();
        for (rx, p) in [(rx0, vec![1, 2, 3]), (rx1, vec![4, 5, 6])] {
            let got = match rx.try_recv().unwrap().outcome {
                Outcome::Generated { tokens } => tokens,
                other => panic!("unexpected outcome {other:?}"),
            };
            assert_eq!(got, sampler::greedy_decode(&m, &NoHook, &p, 5, None));
        }
    }

    #[test]
    fn mcq_cost_counts_shared_prompt_blocks_once() {
        // Regression: the pre-paged accounting summed the prompt lane and
        // every branch's full prompt+option span, double-counting the
        // prompt rows and the prefix-tuning virtual rows of the prompt
        // lane, which retires before any branch extends. The block-based
        // model charges max(prompt phase, branch phase) with the shared
        // full prompt blocks paid once.
        let lim = EngineLimits {
            vocab_size: 100,
            max_seq: 64,
            prefix_rows: 2,
            kv_budget_rows: 1000,
            queue_capacity: 8,
            block_rows: 4,
        };
        let kind = RequestKind::Mcq(McqSpec {
            prompt: vec![1, 2, 3, 4, 5],
            options: vec![vec![6, 7, 8], vec![9, 10]],
        });
        // Prompt phase: 2 virtual + ceil(5/4)*4 = 10 rows.
        // Branch phase: 4 shared prompt rows + two branches at
        // 2 virtual + (ceil(7/4) - 1)*4 = 6 rows each = 16 rows.
        assert_eq!(lim.cost(&kind), 16);
        // The old sum-of-phases model would have charged
        // (2+5) + (2+7) + (2+6) = 24 rows — half again too much.

        // Generate reservations round the token span up to whole blocks.
        let g = RequestKind::Generate(GenerateSpec::greedy(vec![1, 2, 3], 5, None));
        assert_eq!(lim.cost(&g), 2 + 8);
    }

    #[test]
    fn invalid_requests_get_typed_rejections() {
        let m = model();
        let mut sched = Scheduler::new(&m, &NoHook, ServeConfig::default()).unwrap();
        let rx = submit(
            &mut sched,
            0,
            RequestKind::Generate(GenerateSpec::greedy(Vec::new(), 4, None)),
        );
        match rx.try_recv().unwrap().outcome {
            Outcome::Rejected(RejectReason::Invalid(msg)) => {
                assert!(msg.contains("empty prompt"));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let rx = submit(
            &mut sched,
            1,
            RequestKind::Generate(GenerateSpec::greedy(vec![999], 4, None)),
        );
        assert!(matches!(
            rx.try_recv().unwrap().outcome,
            Outcome::Rejected(RejectReason::Invalid(_))
        ));
    }

    #[test]
    fn kv_rows_return_to_zero_after_drain() {
        kernels::set_num_threads(1);
        let m = model();
        let mut sched = Scheduler::new(&m, &NoHook, ServeConfig::default()).unwrap();
        let _rx = submit(
            &mut sched,
            0,
            RequestKind::Generate(GenerateSpec::greedy(vec![1, 2], 4, None)),
        );
        sched.run_until_idle();
        assert_eq!(sched.reserved_rows, 0);
        assert!(
            sched.groups.is_empty(),
            "drained scheduler holds no version groups (or caches)"
        );
        let snap = sched.snapshot();
        assert_eq!(snap.completed, 1);
        assert!(snap.kv_rows_peak > 0);
    }

    #[test]
    fn unknown_bundle_pin_is_rejected_at_enqueue() {
        let m = model();
        let mut sched = Scheduler::new(&m, &NoHook, ServeConfig::default()).unwrap();
        let (tx, rx) = mpsc::channel();
        let req = Request::new(
            0,
            RequestKind::Generate(GenerateSpec::greedy(vec![1, 2], 2, None)),
            tx,
        )
        .with_bundle(7);
        sched.enqueue(req);
        assert_eq!(
            rx.try_recv().unwrap().outcome,
            Outcome::Rejected(RejectReason::UnknownBundle { version: 7 })
        );
        // Version 0 (the construction hook) always exists and is pinnable.
        let (tx, rx) = mpsc::channel();
        sched.enqueue(
            Request::new(
                1,
                RequestKind::Generate(GenerateSpec::greedy(vec![1, 2], 2, None)),
                tx,
            )
            .with_bundle(0),
        );
        kernels::set_num_threads(1);
        sched.run_until_idle();
        assert!(matches!(
            rx.try_recv().unwrap().outcome,
            Outcome::Generated { .. }
        ));
    }

    #[test]
    fn control_plane_promote_and_rollback_flip_active_version() {
        let m = model();
        let mut sched = Scheduler::new(&m, &NoHook, ServeConfig::default()).unwrap();
        assert_eq!(sched.active_version(), 0);
        assert!(matches!(
            sched.handle_control(ControlOp::Promote { version: 9 }),
            Err(ControlError::UnknownVersion(9))
        ));
        assert!(matches!(
            sched.handle_control(ControlOp::Promote { version: 0 }),
            Err(ControlError::AlreadyActive(0))
        ));
        assert!(matches!(
            sched.handle_control(ControlOp::Rollback),
            Err(ControlError::NothingToRollBack)
        ));
        let out = sched.handle_control(ControlOp::ListBundles).unwrap();
        match out {
            ControlOutcome::Bundles(list) => {
                assert_eq!(list.len(), 1);
                assert_eq!(list[0].name, "base");
                assert!(list[0].active);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
