//! The knowledge-bundle registry: versioned, hot-swappable hooks.
//!
//! A serving process starts with one *base* hook (version 0 — whatever
//! [`crate::Scheduler::new`] was built with, typically `NoHook` or an
//! initial adapter set) and grows a version per loaded
//! [`infuserki_core::KnowledgeBundle`]. The lifecycle is
//! **load → stage → promote → rollback**:
//!
//! * `load_bundle` verifies the artifact against the serving base model and
//!   *stages* it — it gets a version number and is immediately addressable
//!   by requests that pin it explicitly (`bundle: v`), which is how A/B
//!   traffic runs two knowledge versions concurrently;
//! * `promote` makes a staged version the default for unpinned requests —
//!   after the scheduler's NR regression gate passes ([the gate lives in the
//!   scheduler](crate::Scheduler::promote), which owns the model);
//! * `rollback` swaps the active version back to the previously active one.
//!
//! Versions are never unloaded: a hook that admitted even one request may
//! have in-flight lanes and prefix-cache entries keyed to it, and bundle
//! checkpoints are kilobytes — keeping every staged version addressable
//! makes pinning and rollback trivially safe. In-flight requests hold the
//! hook through an [`Arc`], so a version stays alive (and its lanes bitwise
//! deterministic) across any number of promotes while they retire.

use std::sync::Arc;

use infuserki_core::{EvalStamp, GateProbe};
use infuserki_nn::LayerHook;
use infuserki_obs as obs;

use crate::metrics::ServeMetrics;

/// A shareable, thread-safe hook handle. The lifetime covers borrowed base
/// hooks (`Arc<&'a dyn LayerHook>` coerces here via the reference-forwarding
/// `LayerHook` impl); owned bundle hooks are `'static` and subtype in.
pub type HookArc<'a> = Arc<dyn LayerHook + Send + Sync + 'a>;

/// One registered knowledge version.
pub struct BundleEntry<'a> {
    /// Registry version number (== index; dense from 0).
    pub version: u32,
    /// Bundle name ("base" for version 0).
    pub name: String,
    /// Hex fingerprint of the method config (empty for the base hook).
    pub config_fingerprint: String,
    /// Offline NR/RR stamp carried by the bundle, if any.
    pub stamp: Option<EvalStamp>,
    /// Held-out probes for the promote-time NR gate.
    pub gate_probes: Vec<GateProbe>,
    /// The hook itself.
    pub hook: HookArc<'a>,
    /// Cached [`LayerHook::prefix_cache_safe`] (the scheduler ANDs it with
    /// its config to decide per-version prefix sharing).
    pub prefix_cache_safe: bool,
    /// Cached "has per-sequence hook state" ([`LayerHook::make_state`]).
    pub stateful: bool,
    /// Requests admitted on this version (`serve.bundle.v<N>.requests`).
    pub served: Arc<obs::Counter>,
}

/// Registry of knowledge versions plus the active/previous promotion state.
pub struct BundleRegistry<'a> {
    entries: Vec<BundleEntry<'a>>,
    active: u32,
    previous: Option<u32>,
}

impl<'a> BundleRegistry<'a> {
    /// A registry whose version 0 is `base_hook`, active.
    pub fn new(base_hook: HookArc<'a>, metrics: &ServeMetrics) -> Self {
        let mut r = BundleRegistry {
            entries: Vec::new(),
            active: 0,
            previous: None,
        };
        r.stage("base", String::new(), None, Vec::new(), base_hook, metrics);
        r
    }

    /// The version unpinned requests resolve to at admission.
    pub fn active_version(&self) -> u32 {
        self.active
    }

    /// The version `rollback` would restore.
    pub fn previous_version(&self) -> Option<u32> {
        self.previous
    }

    /// Looks up a version.
    pub fn get(&self, version: u32) -> Option<&BundleEntry<'a>> {
        self.entries.get(version as usize)
    }

    /// Resolves a request's optional pin to a concrete version. `None` pins
    /// to whatever is active *now*; an explicit unknown version is an error
    /// carrying the bad number.
    pub fn resolve(&self, pin: Option<u32>) -> Result<&BundleEntry<'a>, u32> {
        let v = pin.unwrap_or(self.active);
        self.get(v).ok_or(v)
    }

    /// Stages a new version (not yet active). Returns its version number.
    pub fn stage(
        &mut self,
        name: impl Into<String>,
        config_fingerprint: String,
        stamp: Option<EvalStamp>,
        gate_probes: Vec<GateProbe>,
        hook: HookArc<'a>,
        metrics: &ServeMetrics,
    ) -> u32 {
        let version = self.entries.len() as u32;
        let served = metrics
            .registry()
            .counter(&format!("serve.bundle.v{version}.requests"));
        self.entries.push(BundleEntry {
            version,
            name: name.into(),
            config_fingerprint,
            stamp,
            gate_probes,
            prefix_cache_safe: hook.prefix_cache_safe(),
            stateful: hook.make_state().is_some(),
            hook,
            served,
        });
        version
    }

    /// Makes `version` active, remembering the outgoing version for
    /// rollback. The caller (scheduler) has already run the NR gate.
    pub fn promote(&mut self, version: u32) {
        assert!((version as usize) < self.entries.len(), "promote: unknown");
        self.previous = Some(self.active);
        self.active = version;
    }

    /// Swaps active back to the previously active version. A second
    /// rollback undoes the first (active/previous swap).
    pub fn rollback(&mut self) -> Option<u32> {
        let prev = self.previous?;
        self.previous = Some(self.active);
        self.active = prev;
        Some(prev)
    }

    /// Descriptive row for `list_bundles` / control responses.
    pub fn info(&self, version: u32) -> BundleInfo {
        let e = &self.entries[version as usize];
        BundleInfo {
            version,
            name: e.name.clone(),
            config_fingerprint: e.config_fingerprint.clone(),
            active: version == self.active,
            previous: self.previous == Some(version),
            requests: e.served.get(),
            nr: e.stamp.map(|s| s.nr),
            rr: e.stamp.map(|s| s.rr),
            gate_probes: e.gate_probes.len(),
        }
    }

    /// All versions, in version order.
    pub fn list(&self) -> Vec<BundleInfo> {
        (0..self.entries.len() as u32)
            .map(|v| self.info(v))
            .collect()
    }
}

/// One row of `list_bundles`.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleInfo {
    pub version: u32,
    pub name: String,
    pub config_fingerprint: String,
    /// Default for unpinned requests right now.
    pub active: bool,
    /// Would become active on `rollback`.
    pub previous: bool,
    /// Requests admitted on this version so far.
    pub requests: u64,
    /// Offline NR stamp, if the bundle carried one.
    pub nr: Option<f32>,
    /// Offline RR stamp, if the bundle carried one.
    pub rr: Option<f32>,
    /// Held-out probes available to the promote gate.
    pub gate_probes: usize,
}

/// A control-plane operation on the live scheduler, executed between steps
/// on the scheduler thread (never mid-forward, so swaps cannot tear a
/// batch).
#[derive(Debug, Clone, PartialEq)]
pub enum ControlOp {
    /// Load + verify + stage a bundle file.
    LoadBundle {
        /// Filesystem path of the bundle JSON.
        path: String,
    },
    /// Make a staged version the default (runs the NR gate first).
    Promote {
        /// Version to activate.
        version: u32,
    },
    /// Restore the previously active version.
    Rollback,
    /// Describe every registered version.
    ListBundles,
}

/// Successful control-plane result.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlOutcome {
    /// Bundle staged as this version.
    Loaded(BundleInfo),
    /// Version activated; `gate` reports the NR probe comparison when the
    /// bundle carried probes.
    Promoted {
        version: u32,
        gate: Option<GateReport>,
    },
    /// Previous version restored.
    RolledBack { version: u32 },
    /// Registry contents.
    Bundles(Vec<BundleInfo>),
}

/// NR regression-gate result: held-out known-set probes answered correctly
/// by the candidate vs the currently active version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateReport {
    /// Probes evaluated.
    pub probes: usize,
    /// Correct answers under the candidate (staged) version.
    pub staged_correct: usize,
    /// Correct answers under the active version.
    pub active_correct: usize,
}

/// Typed control-plane failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlError {
    /// The version was never staged.
    UnknownVersion(u32),
    /// Promote target is already the active version.
    AlreadyActive(u32),
    /// The NR gate refused the promotion: the candidate answers fewer
    /// held-out known-set probes than the active version.
    NrGateFailed { version: u32, gate: GateReport },
    /// Rollback with no previously active version.
    NothingToRollBack,
    /// The bundle file could not be read or parsed.
    Bundle(String),
    /// The bundle verifies against a different base model, or its hook
    /// cannot run under this engine configuration.
    Incompatible(String),
    /// The scheduler is draining; control ops are refused.
    ShuttingDown,
    /// The scheduler thread is gone.
    Disconnected,
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::UnknownVersion(v) => write!(f, "unknown bundle version {v}"),
            ControlError::AlreadyActive(v) => write!(f, "version {v} is already active"),
            ControlError::NrGateFailed { version, gate } => write!(
                f,
                "NR gate failed for version {version}: {}/{} probes correct vs {}/{} on the \
                 active version",
                gate.staged_correct, gate.probes, gate.active_correct, gate.probes
            ),
            ControlError::NothingToRollBack => write!(f, "no previous version to roll back to"),
            ControlError::Bundle(e) => write!(f, "bundle error: {e}"),
            ControlError::Incompatible(e) => write!(f, "incompatible bundle: {e}"),
            ControlError::ShuttingDown => write!(f, "scheduler is shutting down"),
            ControlError::Disconnected => write!(f, "scheduler disconnected"),
        }
    }
}

impl std::error::Error for ControlError {}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_nn::NoHook;

    fn registry() -> (BundleRegistry<'static>, ServeMetrics) {
        let metrics = ServeMetrics::new();
        let r = BundleRegistry::new(Arc::new(NoHook), &metrics);
        (r, metrics)
    }

    #[test]
    fn base_is_version_zero_and_active() {
        let (r, _m) = registry();
        assert_eq!(r.active_version(), 0);
        assert_eq!(r.previous_version(), None);
        let info = r.info(0);
        assert_eq!(info.name, "base");
        assert!(info.active);
        assert!(r.resolve(None).is_ok());
        assert_eq!(r.resolve(Some(5)).err(), Some(5));
    }

    #[test]
    fn promote_then_rollback_swaps_active_and_previous() {
        let (mut r, m) = registry();
        let v = r.stage("k1", String::new(), None, Vec::new(), Arc::new(NoHook), &m);
        assert_eq!(v, 1);
        assert_eq!(r.active_version(), 0, "staging does not activate");
        r.promote(v);
        assert_eq!(r.active_version(), 1);
        assert_eq!(r.previous_version(), Some(0));
        assert_eq!(r.rollback(), Some(0));
        assert_eq!(r.active_version(), 0);
        // Rollback is itself reversible.
        assert_eq!(r.rollback(), Some(1));
        assert_eq!(r.active_version(), 1);
    }

    #[test]
    fn rollback_without_history_is_none() {
        let (mut r, _m) = registry();
        assert_eq!(r.rollback(), None);
    }

    #[test]
    fn per_version_request_counters_register() {
        let (mut r, m) = registry();
        let v = r.stage("k1", String::new(), None, Vec::new(), Arc::new(NoHook), &m);
        r.get(v).unwrap().served.inc();
        let snap = m.registry().snapshot();
        assert_eq!(
            snap.get("serve.bundle.v1.requests"),
            Some(&obs::MetricValue::Counter(1))
        );
        assert_eq!(r.info(v).requests, 1);
    }
}
