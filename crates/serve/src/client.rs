//! In-process client: the scheduler on its own thread behind std `mpsc`.
//!
//! [`spawn_scheduler`] moves the model + hook into a scheduler thread and
//! returns a cloneable [`Client`]. Submission is non-blocking: the client
//! validates synchronously against the shared [`EngineLimits`] (so
//! impossible requests fail fast with [`SubmitError`]), then hands the
//! request to the scheduler, which delivers exactly one [`Response`] on the
//! returned [`ResponseHandle`]'s channel. The scheduler thread steps while
//! work exists and blocks on its inbox when idle — no spinning.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use infuserki_nn::{LayerHook, TransformerLm};

use crate::config::ServeConfig;
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::registry::{BundleInfo, ControlError, ControlOp, ControlOutcome, GateReport};
use crate::request::{
    CancelToken, GenerateSpec, McqSpec, Outcome, Request, RequestId, RequestKind, Response,
    SubmitError,
};
use crate::scheduler::{EngineLimits, Scheduler};

/// A control-plane op plus the channel its result goes back on.
struct ControlRequest {
    op: ControlOp,
    tx: Sender<Result<ControlOutcome, ControlError>>,
}

/// Inbox messages of the scheduler thread.
enum Msg {
    Request(Request),
    Control(ControlRequest),
    Shutdown,
    /// Abandon ship without draining: the thread exits immediately, dropping
    /// every queued and in-flight request (their response senders die with
    /// them). Failure-injection hook for replica-death tests; never sent in
    /// production paths.
    Crash,
}

/// Awaits the single terminal [`Response`] of one submitted request, and
/// carries its cancellation token.
#[derive(Debug)]
pub struct ResponseHandle {
    /// The submitted request's id.
    pub id: RequestId,
    rx: Receiver<Response>,
    cancel: CancelToken,
}

impl ResponseHandle {
    /// Requests cancellation; the scheduler responds [`Outcome::Cancelled`]
    /// at its next step unless the request already finished.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The cancellation token (cloneable, usable from other threads).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> Result<Outcome, SubmitError> {
        self.rx
            .recv()
            .map(|r| r.outcome)
            .map_err(|_| SubmitError::Disconnected)
    }

    /// Non-blocking poll: `Ok(Some)` once finished, `Ok(None)` while
    /// pending.
    pub fn try_wait(&self) -> Result<Option<Outcome>, SubmitError> {
        match self.rx.try_recv() {
            Ok(r) => Ok(Some(r.outcome)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(SubmitError::Disconnected),
        }
    }

    /// Blocks up to `timeout`; `Ok(None)` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Option<Outcome>, SubmitError> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Ok(Some(r.outcome)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(SubmitError::Disconnected),
        }
    }
}

/// Options attached to a submission (priority, deadline, bundle pin).
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOpts {
    /// Higher runs first; ties run in arrival order.
    pub priority: i32,
    /// Hard deadline; past it the request expires wherever it is.
    pub deadline: Option<Instant>,
    /// Knowledge-bundle version pin; `None` runs on whatever version is
    /// active at admission. An unknown pin is rejected asynchronously
    /// ([`crate::RejectReason::UnknownBundle`] on the response channel) —
    /// only the scheduler thread knows the live registry.
    pub bundle: Option<u32>,
}

/// Cloneable handle submitting requests to a running scheduler thread.
#[derive(Clone)]
pub struct Client {
    tx: Sender<Msg>,
    limits: EngineLimits,
    metrics: Arc<ServeMetrics>,
    next_id: Arc<AtomicU64>,
}

impl Client {
    /// The scheduler's admission limits.
    pub fn limits(&self) -> &EngineLimits {
        &self.limits
    }

    /// Point-in-time metrics snapshot (lock-free: the handles are atomic).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Shared handle to the scheduler's registry-backed metrics.
    pub fn metrics_handle(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Submits a request kind, validating synchronously first. The returned
    /// handle receives exactly one terminal outcome.
    pub fn submit(
        &self,
        kind: RequestKind,
        opts: SubmitOpts,
    ) -> Result<ResponseHandle, SubmitError> {
        let (tx, rx) = mpsc::channel();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = self.submit_with_sender(id, kind, opts, tx)?;
        Ok(ResponseHandle { id, rx, cancel })
    }

    /// Submission for callers that own the response channel (the TCP server
    /// funnels every request of a connection into one sender). Returns the
    /// cancellation token. `id` is the caller's, echoed on the response.
    pub fn submit_with_sender(
        &self,
        id: RequestId,
        kind: RequestKind,
        opts: SubmitOpts,
        tx: Sender<Response>,
    ) -> Result<CancelToken, SubmitError> {
        let cancel = CancelToken::new();
        self.submit_with_parts(id, kind, opts, cancel.clone(), tx)?;
        Ok(cancel)
    }

    /// Fully-assembled submission: the caller owns the id, the response
    /// channel *and* the cancellation token. The router front needs this
    /// form — it hands out the token while the request is still waiting in
    /// a tenant queue, before any scheduler has seen it.
    pub fn submit_with_parts(
        &self,
        id: RequestId,
        kind: RequestKind,
        opts: SubmitOpts,
        cancel: CancelToken,
        tx: Sender<Response>,
    ) -> Result<(), SubmitError> {
        self.limits.validate(&kind).map_err(SubmitError::Rejected)?;
        let mut req = Request::new(id, kind, tx).with_priority(opts.priority);
        req.cancel = cancel;
        if let Some(d) = opts.deadline {
            req = req.with_deadline(d);
        }
        if let Some(v) = opts.bundle {
            req = req.with_bundle(v);
        }
        self.tx
            .send(Msg::Request(req))
            .map_err(|_| SubmitError::Disconnected)?;
        Ok(())
    }

    /// Failure injection: makes the scheduler thread exit *immediately*,
    /// without draining — queued and in-flight requests are dropped on the
    /// floor and their response channels disconnect, exactly like a crashed
    /// process. Only for replica-death tests.
    #[doc(hidden)]
    pub fn crash_for_test(&self) {
        let _ = self.tx.send(Msg::Crash);
    }

    /// Executes one knowledge-bundle control op on the scheduler thread
    /// (between steps — a swap never tears a batch) and blocks for the
    /// result.
    pub fn control(&self, op: ControlOp) -> Result<ControlOutcome, ControlError> {
        let (tx, rx) = mpsc::channel();
        self.tx
            .send(Msg::Control(ControlRequest { op, tx }))
            .map_err(|_| ControlError::Disconnected)?;
        rx.recv().map_err(|_| ControlError::Disconnected)?
    }

    /// Loads, verifies and stages a [`infuserki_core::KnowledgeBundle`]
    /// file; the returned version is pinnable immediately but serves
    /// unpinned traffic only after [`Client::promote`].
    pub fn load_bundle(&self, path: &str) -> Result<BundleInfo, ControlError> {
        match self.control(ControlOp::LoadBundle { path: path.into() })? {
            ControlOutcome::Loaded(info) => Ok(info),
            other => unreachable!("load_bundle returned {other:?}"),
        }
    }

    /// Promotes a staged version to active (after the scheduler's NR
    /// regression gate, whose report is returned when the bundle carries
    /// probes).
    pub fn promote(&self, version: u32) -> Result<Option<GateReport>, ControlError> {
        match self.control(ControlOp::Promote { version })? {
            ControlOutcome::Promoted { gate, .. } => Ok(gate),
            other => unreachable!("promote returned {other:?}"),
        }
    }

    /// Restores the previously active version; returns the now-active one.
    pub fn rollback(&self) -> Result<u32, ControlError> {
        match self.control(ControlOp::Rollback)? {
            ControlOutcome::RolledBack { version } => Ok(version),
            other => unreachable!("rollback returned {other:?}"),
        }
    }

    /// Every registered knowledge version, in version order.
    pub fn list_bundles(&self) -> Result<Vec<BundleInfo>, ControlError> {
        match self.control(ControlOp::ListBundles)? {
            ControlOutcome::Bundles(list) => Ok(list),
            other => unreachable!("list_bundles returned {other:?}"),
        }
    }

    /// Greedy generation convenience wrapper.
    pub fn generate(
        &self,
        prompt: Vec<usize>,
        max_new: usize,
        eos: Option<usize>,
    ) -> Result<ResponseHandle, SubmitError> {
        self.submit(
            RequestKind::Generate(GenerateSpec::greedy(prompt, max_new, eos)),
            SubmitOpts::default(),
        )
    }

    /// MCQ option-scoring convenience wrapper.
    pub fn mcq(
        &self,
        prompt: Vec<usize>,
        options: Vec<Vec<usize>>,
    ) -> Result<ResponseHandle, SubmitError> {
        self.submit(
            RequestKind::Mcq(McqSpec { prompt, options }),
            SubmitOpts::default(),
        )
    }
}

/// Owns the scheduler thread. Dropping without [`SchedulerHandle::shutdown`]
/// detaches the thread (it exits once every client is dropped).
pub struct SchedulerHandle {
    tx: Sender<Msg>,
    join: Option<JoinHandle<()>>,
}

impl SchedulerHandle {
    /// Begins drain: in-flight requests finish, queued requests are
    /// rejected [`crate::RejectReason::ShuttingDown`], then the thread
    /// exits. Blocks until it does.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for SchedulerHandle {
    fn drop(&mut self) {
        if let Some(j) = self.join.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = j.join();
        }
    }
}

/// Spawns the scheduler thread over an owned model + hook and returns the
/// submission client plus the thread handle.
///
/// The thread loop: drain the inbox without blocking, step while work
/// exists, block on the inbox when idle. On shutdown it finishes in-flight
/// work, rejects the remaining queue and exits.
pub fn spawn_scheduler<H>(
    model: TransformerLm,
    hook: H,
    cfg: ServeConfig,
) -> Result<(Client, SchedulerHandle), String>
where
    H: LayerHook + Send + 'static,
{
    let (tx, rx) = mpsc::channel::<Msg>();
    // The scheduler borrows the model and hook, which live on the thread's
    // stack — so it is constructed exactly once, there, and the thread
    // reports the outcome (limits + metrics, or the construction error)
    // back through this channel. Construction failures still surface
    // synchronously from this function; no second "probe" scheduler is
    // built just to pre-validate.
    let (init_tx, init_rx) = mpsc::channel::<Result<(EngineLimits, Arc<ServeMetrics>), String>>();
    let join = std::thread::Builder::new()
        .name("infuserki-serve".into())
        .spawn(move || {
            let mut sched = match Scheduler::new(&model, &hook, cfg) {
                Ok(s) => s,
                Err(e) => {
                    let _ = init_tx.send(Err(e));
                    return;
                }
            };
            let _ = init_tx.send(Ok((sched.limits().clone(), sched.metrics())));
            let mut draining = false;
            loop {
                // Drain the inbox without blocking while work is live.
                loop {
                    match rx.try_recv() {
                        Ok(Msg::Request(r)) => sched.enqueue(r),
                        Ok(Msg::Control(c)) => {
                            let _ = c.tx.send(if draining {
                                Err(ControlError::ShuttingDown)
                            } else {
                                sched.handle_control(c.op)
                            });
                        }
                        Ok(Msg::Shutdown) => {
                            draining = true;
                            sched.begin_drain();
                        }
                        Ok(Msg::Crash) => return,
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            draining = true;
                            sched.begin_drain();
                            break;
                        }
                    }
                }
                if draining {
                    sched.reject_queued_for_shutdown();
                    while sched.has_work() {
                        sched.step();
                    }
                    return;
                }
                if sched.has_work() {
                    sched.step();
                    continue;
                }
                // Idle: block until something arrives.
                match rx.recv() {
                    Ok(Msg::Request(r)) => sched.enqueue(r),
                    Ok(Msg::Control(c)) => {
                        let _ = c.tx.send(sched.handle_control(c.op));
                    }
                    Ok(Msg::Shutdown) | Err(_) => {
                        draining = true;
                        sched.begin_drain();
                    }
                    Ok(Msg::Crash) => return,
                }
            }
        })
        .map_err(|e| format!("serve: failed to spawn scheduler thread: {e}"))?;
    let (limits, metrics) = match init_rx.recv() {
        Ok(Ok(init)) => init,
        Ok(Err(e)) => {
            let _ = join.join();
            return Err(e);
        }
        Err(_) => return Err("serve: scheduler thread died during startup".to_string()),
    };
    let client = Client {
        tx: tx.clone(),
        limits,
        metrics,
        next_id: Arc::new(AtomicU64::new(0)),
    };
    let handle = SchedulerHandle {
        tx,
        join: Some(join),
    };
    Ok((client, handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo_model;
    use infuserki_nn::sampler;
    use infuserki_nn::NoHook;
    use infuserki_tensor::kernels;

    #[test]
    fn client_round_trips_generate_and_mcq() {
        kernels::set_num_threads(1);
        let model = demo_model();
        let reference = demo_model();
        let (client, handle) = spawn_scheduler(model, NoHook, ServeConfig::default()).unwrap();
        let g = client.generate(vec![1, 2, 3], 5, None).unwrap();
        let m = client.mcq(vec![4, 5], vec![vec![6], vec![7, 8]]).unwrap();
        match g.wait().unwrap() {
            Outcome::Generated { tokens } => {
                assert_eq!(
                    tokens,
                    sampler::greedy_decode(&reference, &NoHook, &[1, 2, 3], 5, None)
                );
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        match m.wait().unwrap() {
            Outcome::McqScored { scores, .. } => assert_eq!(scores.len(), 2),
            other => panic!("unexpected outcome {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn invalid_submission_fails_synchronously() {
        let (client, handle) =
            spawn_scheduler(demo_model(), NoHook, ServeConfig::default()).unwrap();
        let err = client.generate(Vec::new(), 4, None).unwrap_err();
        assert!(matches!(
            err,
            SubmitError::Rejected(crate::RejectReason::Invalid(_))
        ));
        handle.shutdown();
    }

    #[test]
    fn shutdown_completes_in_flight_work() {
        kernels::set_num_threads(1);
        let (client, handle) =
            spawn_scheduler(demo_model(), NoHook, ServeConfig::default()).unwrap();
        let g = client.generate(vec![2, 3], 4, None).unwrap();
        handle.shutdown();
        // The response was delivered before the thread exited (drain
        // finishes live work) — or the request never started and was
        // rejected; both are terminal.
        let outcome = g.wait().unwrap();
        assert!(matches!(
            outcome,
            Outcome::Generated { .. } | Outcome::Rejected(crate::RejectReason::ShuttingDown)
        ));
    }
}
