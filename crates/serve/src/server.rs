//! Newline-delimited JSON front-end over `std::net::TcpListener`.
//!
//! One JSON object per line in each direction. Requests:
//!
//! ```json
//! {"op":"generate","id":1,"prompt":[1,2,3],"max_new":8,"eos":3,"beam":1,"priority":0,"timeout_ms":500}
//! {"op":"mcq","id":2,"prompt":[4,5],"options":[[6],[7,8]],"bundle":1}
//! {"op":"cancel","id":1}
//! {"op":"metrics"}
//! {"op":"load_bundle","path":"facts.bundle.json"}
//! {"op":"promote","version":1}
//! {"op":"rollback"}
//! {"op":"list_bundles"}
//! {"op":"shutdown"}
//! ```
//!
//! The optional `bundle` field on `generate`/`mcq` pins the request to a
//! loaded knowledge-bundle version; unpinned requests run on whatever
//! version is active at admission (see the scheduler docs). The optional
//! `tenant` string field tags the request with a tenant id: ignored by
//! single-scheduler serving, used by the multi-replica router front
//! (`serve --replicas N`) to key fair-share queues and token-bucket rate
//! limits. Control ops
//! reply `{"status":"bundle_loaded","bundle":{...}}`,
//! `{"status":"promoted","version":1,"gate":{...}}`,
//! `{"status":"rolled_back","version":0}` and
//! `{"status":"bundles","bundles":[...]}`; failures (unknown version, NR
//! regression-gate refusal, incompatible artifact) come back as
//! `{"status":"control_error","error":"nr_gate_failed","detail":"..."}`.
//!
//! Responses (in completion order, not request order — match on `id`):
//!
//! ```json
//! {"id":1,"status":"ok","tokens":[9,10]}
//! {"id":2,"status":"ok","scores":[-1.5,-2.0],"probabilities":[0.62,0.38],"best":0}
//! {"id":3,"status":"rejected","reason":"queue_full","detail":"queue full (capacity 256)"}
//! {"id":1,"status":"cancelled"}
//! {"id":4,"status":"expired"}
//! {"status":"error","detail":"line 7: missing field `prompt`"}
//! ```
//!
//! `cancel` acks with `{"id":N,"status":"cancel_requested"}`; the request
//! itself still terminates with its own response. `metrics` replies
//! `{"status":"metrics","metrics":{...}}` (a [`crate::MetricsSnapshot`]).
//! `shutdown` acks `{"status":"shutting_down"}` and stops the accept loop;
//! the binary then drains the scheduler.
//!
//! The front-end adds no protocol state beyond a per-connection id→cancel
//! map: every submission funnels into the scheduler through the same
//! in-process [`Client`] the library offers, so wire requests and
//! in-process requests share one queue, one budget and one batch.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Value;

use crate::client::{Client, SubmitOpts};
use crate::registry::{BundleInfo, ControlError, ControlOp, ControlOutcome, GateReport};
use crate::request::{
    CancelToken, GenerateSpec, McqSpec, Outcome, RejectReason, RequestId, RequestKind, Response,
    SubmitError,
};

/// What the TCP front needs from whatever sits behind it: a single
/// scheduler's [`Client`], or a multi-replica router. Implementations are
/// cloned per connection, so they must be cheap shared handles.
///
/// The optional `tenant` tag comes from the wire request's `"tenant"`
/// field. Single-scheduler serving ignores it; the router front keys its
/// fair-share queues and token buckets on it.
pub trait Frontend: Clone + Send + 'static {
    /// Submits one request; the terminal [`Response`] arrives on `tx`.
    fn submit_request(
        &self,
        id: RequestId,
        kind: RequestKind,
        opts: SubmitOpts,
        tenant: Option<&str>,
        tx: mpsc::Sender<Response>,
    ) -> Result<CancelToken, SubmitError>;

    /// Executes one knowledge-bundle control op.
    fn control_op(&self, op: ControlOp) -> Result<ControlOutcome, ControlError>;

    /// Point-in-time metrics as a JSON object string (the `metrics` op's
    /// payload).
    fn metrics_json(&self) -> String;
}

impl Frontend for Client {
    fn submit_request(
        &self,
        id: RequestId,
        kind: RequestKind,
        opts: SubmitOpts,
        _tenant: Option<&str>,
        tx: mpsc::Sender<Response>,
    ) -> Result<CancelToken, SubmitError> {
        self.submit_with_sender(id, kind, opts, tx)
    }

    fn control_op(&self, op: ControlOp) -> Result<ControlOutcome, ControlError> {
        self.control(op)
    }

    fn metrics_json(&self) -> String {
        self.metrics().to_json()
    }
}

/// Serializes a `Value` tree as one line (no trailing newline).
fn json_line(v: &Value) -> String {
    serde_json::to_string(v).expect("value serializes")
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(n: f64) -> Value {
    Value::Num(n)
}

fn str_v(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn usize_array(xs: &[usize]) -> Value {
    Value::Array(xs.iter().map(|&x| num(x as f64)).collect())
}

fn f32_array(xs: &[f32]) -> Value {
    Value::Array(xs.iter().map(|&x| num(f64::from(x))).collect())
}

/// Extracts a non-negative integer from a JSON number (rejecting fractions
/// and values past 2^53, where f64 loses integer exactness).
fn as_usize(v: &Value) -> Option<usize> {
    let n = v.as_f64()?;
    if n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
        return None;
    }
    Some(n as usize)
}

fn field_usize(v: &Value, key: &str) -> Result<usize, String> {
    v.get_field(key)
        .ok_or_else(|| format!("missing field `{key}`"))
        .and_then(|f| {
            as_usize(f).ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
        })
}

fn opt_field_usize(v: &Value, key: &str) -> Result<Option<usize>, String> {
    match v.get_field(key) {
        None | Some(Value::Null) => Ok(None),
        Some(f) => as_usize(f)
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

fn field_tokens(v: &Value, key: &str) -> Result<Vec<usize>, String> {
    match v.get_field(key) {
        Some(Value::Array(items)) => items
            .iter()
            .map(|t| as_usize(t).ok_or_else(|| format!("field `{key}` must hold token ids")))
            .collect(),
        Some(_) => Err(format!("field `{key}` must be an array of token ids")),
        None => Err(format!("missing field `{key}`")),
    }
}

/// Scheduling options shared by both request ops.
fn parse_opts(v: &Value) -> Result<SubmitOpts, String> {
    let priority = match v.get_field("priority") {
        None | Some(Value::Null) => 0,
        Some(f) => {
            let n = f
                .as_f64()
                .filter(|n| n.fract() == 0.0 && n.abs() <= f64::from(i32::MAX))
                .ok_or("field `priority` must be an integer")?;
            n as i32
        }
    };
    let deadline = opt_field_usize(v, "timeout_ms")?
        .map(|ms| Instant::now() + Duration::from_millis(ms as u64));
    let bundle = match opt_field_usize(v, "bundle")? {
        None => None,
        Some(b) if b <= u32::MAX as usize => Some(b as u32),
        Some(_) => return Err("field `bundle` must fit a 32-bit version number".into()),
    };
    Ok(SubmitOpts {
        priority,
        deadline,
        bundle,
    })
}

fn parse_generate(v: &Value) -> Result<RequestKind, String> {
    Ok(RequestKind::Generate(GenerateSpec {
        prompt: field_tokens(v, "prompt")?,
        max_new: field_usize(v, "max_new")?,
        eos: opt_field_usize(v, "eos")?,
        beam_width: opt_field_usize(v, "beam")?.unwrap_or(1),
    }))
}

fn parse_mcq(v: &Value) -> Result<RequestKind, String> {
    let options = match v.get_field("options") {
        Some(Value::Array(items)) => items
            .iter()
            .map(|o| match o {
                Value::Array(toks) => toks
                    .iter()
                    .map(|t| as_usize(t).ok_or_else(|| "options must hold token ids".to_string()))
                    .collect::<Result<Vec<usize>, String>>(),
                _ => Err("field `options` must be an array of token arrays".to_string()),
            })
            .collect::<Result<Vec<Vec<usize>>, String>>()?,
        _ => return Err("field `options` must be an array of token arrays".into()),
    };
    Ok(RequestKind::Mcq(McqSpec {
        prompt: field_tokens(v, "prompt")?,
        options,
    }))
}

fn reject_reason_slug(r: &RejectReason) -> &'static str {
    match r {
        RejectReason::QueueFull { .. } => "queue_full",
        RejectReason::BudgetExceeded { .. } => "budget_exceeded",
        RejectReason::Invalid(_) => "invalid",
        RejectReason::UnknownBundle { .. } => "unknown_bundle",
        RejectReason::ShuttingDown => "shutting_down",
        RejectReason::TenantQueueFull { .. } => "tenant_queue_full",
        RejectReason::ReplicaFailed => "replica_failed",
    }
}

fn control_error_slug(e: &ControlError) -> &'static str {
    match e {
        ControlError::UnknownVersion(_) => "unknown_version",
        ControlError::AlreadyActive(_) => "already_active",
        ControlError::NrGateFailed { .. } => "nr_gate_failed",
        ControlError::NothingToRollBack => "nothing_to_roll_back",
        ControlError::Bundle(_) => "bundle_unreadable",
        ControlError::Incompatible(_) => "incompatible",
        ControlError::ShuttingDown => "shutting_down",
        ControlError::Disconnected => "disconnected",
    }
}

fn gate_value(g: &GateReport) -> Value {
    obj(vec![
        ("probes", num(g.probes as f64)),
        ("staged_correct", num(g.staged_correct as f64)),
        ("active_correct", num(g.active_correct as f64)),
    ])
}

fn bundle_info_value(b: &BundleInfo) -> Value {
    let opt_f32 = |x: Option<f32>| x.map_or(Value::Null, |v| num(f64::from(v)));
    obj(vec![
        ("version", num(f64::from(b.version))),
        ("name", str_v(&b.name)),
        ("config_fingerprint", str_v(&b.config_fingerprint)),
        ("active", Value::Bool(b.active)),
        ("previous", Value::Bool(b.previous)),
        ("requests", num(b.requests as f64)),
        ("nr", opt_f32(b.nr)),
        ("rr", opt_f32(b.rr)),
        ("gate_probes", num(b.gate_probes as f64)),
    ])
}

/// Renders a control-plane result as its wire line.
fn control_line(result: &Result<ControlOutcome, ControlError>) -> String {
    let v = match result {
        Ok(ControlOutcome::Loaded(info)) => obj(vec![
            ("status", str_v("bundle_loaded")),
            ("bundle", bundle_info_value(info)),
        ]),
        Ok(ControlOutcome::Promoted { version, gate }) => obj(vec![
            ("status", str_v("promoted")),
            ("version", num(f64::from(*version))),
            ("gate", gate.as_ref().map_or(Value::Null, gate_value)),
        ]),
        Ok(ControlOutcome::RolledBack { version }) => obj(vec![
            ("status", str_v("rolled_back")),
            ("version", num(f64::from(*version))),
        ]),
        Ok(ControlOutcome::Bundles(list)) => obj(vec![
            ("status", str_v("bundles")),
            (
                "bundles",
                Value::Array(list.iter().map(bundle_info_value).collect()),
            ),
        ]),
        Err(e) => {
            let mut fields = vec![
                ("status", str_v("control_error")),
                ("error", str_v(control_error_slug(e))),
                ("detail", str_v(&e.to_string())),
            ];
            if let ControlError::NrGateFailed { version, gate } = e {
                fields.push(("version", num(f64::from(*version))));
                fields.push(("gate", gate_value(gate)));
            }
            obj(fields)
        }
    };
    json_line(&v)
}

/// Renders a terminal outcome as its wire line.
fn outcome_line(id: u64, outcome: &Outcome) -> String {
    let v = match outcome {
        Outcome::Generated { tokens } => obj(vec![
            ("id", num(id as f64)),
            ("status", str_v("ok")),
            ("tokens", usize_array(tokens)),
        ]),
        Outcome::McqScored {
            scores,
            probabilities,
            best,
        } => obj(vec![
            ("id", num(id as f64)),
            ("status", str_v("ok")),
            ("scores", f32_array(scores)),
            ("probabilities", f32_array(probabilities)),
            ("best", num(*best as f64)),
        ]),
        Outcome::Rejected(reason) => obj(vec![
            ("id", num(id as f64)),
            ("status", str_v("rejected")),
            ("reason", str_v(reject_reason_slug(reason))),
            ("detail", str_v(&reason.to_string())),
        ]),
        Outcome::Cancelled => obj(vec![("id", num(id as f64)), ("status", str_v("cancelled"))]),
        Outcome::Expired => obj(vec![("id", num(id as f64)), ("status", str_v("expired"))]),
    };
    json_line(&v)
}

fn error_line(id: Option<u64>, detail: &str) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id", num(id as f64)));
    }
    fields.push(("status", str_v("error")));
    fields.push(("detail", str_v(detail)));
    json_line(&obj(fields))
}

/// Writes one line (appending `\n`) under the shared write lock.
fn send_line(stream: &Arc<Mutex<TcpStream>>, line: &str) -> std::io::Result<()> {
    let mut s = stream.lock().unwrap();
    s.write_all(line.as_bytes())?;
    s.write_all(b"\n")?;
    s.flush()
}

/// Serves one connection: reads request lines, submits through `client`,
/// and writes responses as they complete. Returns `true` if the peer asked
/// the whole server to shut down.
fn handle_connection<F: Frontend>(stream: TcpStream, client: &F) -> std::io::Result<bool> {
    let reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(Mutex::new(stream));
    // All of this connection's requests respond through one channel; the
    // pump thread turns responses into wire lines in completion order.
    let (tx, rx) = mpsc::channel::<Response>();
    let pump_writer = Arc::clone(&writer);
    let pump = std::thread::spawn(move || {
        while let Ok(resp) = rx.recv() {
            if send_line(&pump_writer, &outcome_line(resp.id, &resp.outcome)).is_err() {
                break;
            }
        }
    });
    let mut cancels: HashMap<u64, CancelToken> = HashMap::new();
    let mut shutdown_all = false;
    for (line_no, line) in reader.lines().enumerate() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let ctx = |msg: String| format!("line {}: {}", line_no + 1, msg);
        let parsed: Result<Value, _> = serde_json::from_str(&line);
        let value = match parsed {
            Ok(v) => v,
            Err(e) => {
                send_line(&writer, &error_line(None, &ctx(e.to_string())))?;
                continue;
            }
        };
        let op = match value.get_field("op").and_then(Value::as_str) {
            Some(op) => op.to_string(),
            None => {
                send_line(
                    &writer,
                    &error_line(None, &ctx("missing field `op`".into())),
                )?;
                continue;
            }
        };
        match op.as_str() {
            "generate" | "mcq" => {
                let id = match field_usize(&value, "id") {
                    Ok(id) => id as u64,
                    Err(e) => {
                        send_line(&writer, &error_line(None, &ctx(e)))?;
                        continue;
                    }
                };
                let kind = if op == "generate" {
                    parse_generate(&value)
                } else {
                    parse_mcq(&value)
                };
                let (kind, opts) = match kind.and_then(|k| Ok((k, parse_opts(&value)?))) {
                    Ok(ko) => ko,
                    Err(e) => {
                        send_line(&writer, &error_line(Some(id), &ctx(e)))?;
                        continue;
                    }
                };
                let tenant = value.get_field("tenant").and_then(Value::as_str);
                match client.submit_request(id, kind, opts, tenant, tx.clone()) {
                    Ok(cancel) => {
                        cancels.insert(id, cancel);
                    }
                    Err(SubmitError::Rejected(reason)) => {
                        send_line(&writer, &outcome_line(id, &Outcome::Rejected(reason)))?;
                    }
                    Err(SubmitError::Disconnected) => {
                        send_line(&writer, &error_line(Some(id), "scheduler unavailable"))?;
                    }
                }
            }
            "cancel" => match field_usize(&value, "id") {
                Ok(id) => {
                    let id = id as u64;
                    if let Some(c) = cancels.get(&id) {
                        c.cancel();
                    }
                    let ack = obj(vec![
                        ("id", num(id as f64)),
                        ("status", str_v("cancel_requested")),
                    ]);
                    send_line(&writer, &json_line(&ack))?;
                }
                Err(e) => send_line(&writer, &error_line(None, &ctx(e)))?,
            },
            "metrics" => {
                let snap_value: Value = serde_json::from_str(&client.metrics_json())
                    .expect("snapshot JSON round-trips");
                let v = obj(vec![("status", str_v("metrics")), ("metrics", snap_value)]);
                send_line(&writer, &json_line(&v))?;
            }
            "load_bundle" => {
                match value.get_field("path").and_then(Value::as_str) {
                    Some(path) => {
                        let res = client.control_op(ControlOp::LoadBundle { path: path.into() });
                        send_line(&writer, &control_line(&res))?;
                    }
                    None => send_line(
                        &writer,
                        &error_line(None, &ctx("missing field `path`".into())),
                    )?,
                };
            }
            "promote" => match field_usize(&value, "version") {
                Ok(v) if v <= u32::MAX as usize => {
                    let res = client.control_op(ControlOp::Promote { version: v as u32 });
                    send_line(&writer, &control_line(&res))?;
                }
                Ok(_) => send_line(
                    &writer,
                    &error_line(None, &ctx("field `version` must fit 32 bits".into())),
                )?,
                Err(e) => send_line(&writer, &error_line(None, &ctx(e)))?,
            },
            "rollback" => {
                let res = client.control_op(ControlOp::Rollback);
                send_line(&writer, &control_line(&res))?;
            }
            "list_bundles" => {
                let res = client.control_op(ControlOp::ListBundles);
                send_line(&writer, &control_line(&res))?;
            }
            "shutdown" => {
                send_line(
                    &writer,
                    &json_line(&obj(vec![("status", str_v("shutting_down"))])),
                )?;
                shutdown_all = true;
                break;
            }
            other => {
                send_line(
                    &writer,
                    &error_line(None, &ctx(format!("unknown op `{other}`"))),
                )?;
            }
        }
    }
    drop(tx);
    let _ = pump.join();
    Ok(shutdown_all)
}

/// Accept loop: serves connections until a peer sends `shutdown` (or
/// `stop` is set externally and the listener is woken by a connection).
/// Connections are handled on their own threads; in-flight connections keep
/// running after the loop returns and end when their peers disconnect.
pub fn run<F: Frontend>(
    listener: TcpListener,
    client: F,
    stop: Arc<AtomicBool>,
) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let client = client.clone();
        let stop_flag = Arc::clone(&stop);
        std::thread::spawn(move || {
            if let Ok(true) = handle_connection(stream, &client) {
                stop_flag.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(addr);
            }
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_lines_render_expected_shapes() {
        let ok = outcome_line(3, &Outcome::Generated { tokens: vec![7, 8] });
        assert_eq!(ok, r#"{"id":3,"status":"ok","tokens":[7,8]}"#);
        let rej = outcome_line(
            4,
            &Outcome::Rejected(RejectReason::QueueFull { capacity: 2 }),
        );
        assert!(rej.contains(r#""status":"rejected""#));
        assert!(rej.contains(r#""reason":"queue_full""#));
        let mcq = outcome_line(
            5,
            &Outcome::McqScored {
                scores: vec![-1.5],
                probabilities: vec![1.0],
                best: 0,
            },
        );
        assert!(mcq.contains(r#""best":0"#));
    }

    #[test]
    fn request_parsing_validates_shapes() {
        let v: Value =
            serde_json::from_str(r#"{"op":"generate","id":1,"prompt":[1,2],"max_new":4,"eos":3}"#)
                .unwrap();
        match parse_generate(&v).unwrap() {
            RequestKind::Generate(g) => {
                assert_eq!(g.prompt, vec![1, 2]);
                assert_eq!(g.max_new, 4);
                assert_eq!(g.eos, Some(3));
                assert_eq!(g.beam_width, 1);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        let v: Value =
            serde_json::from_str(r#"{"op":"mcq","id":2,"prompt":[1],"options":[[2],[3,4]]}"#)
                .unwrap();
        match parse_mcq(&v).unwrap() {
            RequestKind::Mcq(m) => assert_eq!(m.options, vec![vec![2], vec![3, 4]]),
            other => panic!("unexpected kind {other:?}"),
        }
        let bad: Value = serde_json::from_str(r#"{"op":"generate","id":1,"max_new":4}"#).unwrap();
        assert!(parse_generate(&bad).unwrap_err().contains("prompt"));
        let frac: Value =
            serde_json::from_str(r#"{"op":"generate","id":1,"prompt":[1.5],"max_new":4}"#).unwrap();
        assert!(parse_generate(&frac).is_err());
    }

    #[test]
    fn parse_opts_reads_priority_and_deadline() {
        let v: Value = serde_json::from_str(r#"{"priority":-2,"timeout_ms":50}"#).unwrap();
        let opts = parse_opts(&v).unwrap();
        assert_eq!(opts.priority, -2);
        assert!(opts.deadline.is_some());
        let none: Value = serde_json::from_str(r#"{}"#).unwrap();
        let opts = parse_opts(&none).unwrap();
        assert_eq!(opts.priority, 0);
        assert!(opts.deadline.is_none());
        assert_eq!(opts.bundle, None);
        let pinned: Value = serde_json::from_str(r#"{"bundle":2}"#).unwrap();
        assert_eq!(parse_opts(&pinned).unwrap().bundle, Some(2));
    }

    #[test]
    fn control_lines_render_expected_shapes() {
        let rolled = control_line(&Ok(ControlOutcome::RolledBack { version: 0 }));
        assert_eq!(rolled, r#"{"status":"rolled_back","version":0}"#);
        let gate = GateReport {
            probes: 4,
            staged_correct: 1,
            active_correct: 3,
        };
        let failed = control_line(&Err(ControlError::NrGateFailed { version: 2, gate }));
        assert!(failed.contains(r#""status":"control_error""#));
        assert!(failed.contains(r#""error":"nr_gate_failed""#));
        assert!(failed.contains(r#""staged_correct":1"#));
        let unknown = control_line(&Err(ControlError::UnknownVersion(9)));
        assert!(unknown.contains(r#""error":"unknown_version""#));
        assert_eq!(
            reject_reason_slug(&RejectReason::UnknownBundle { version: 3 }),
            "unknown_bundle"
        );
    }
}
