//! # infuserki-serve
//!
//! The serving layer over the batch-first inference runtime: **continuous
//! batching** of generation and MCQ-scoring requests under a KV-row memory
//! budget.
//!
//! A deployed InfuserKI knowledge service answers detection MCQs and free
//! generation requests that arrive and finish asynchronously. The
//! [`Scheduler`] keeps one ragged decode batch full while that happens: each
//! step it retires finished/cancelled/deadline-expired sequences
//! ([`infuserki_nn::KvCache::retain_indices`]), admits queued requests up to
//! the configured KV-row budget, prefills newcomers *in chunks* so one long
//! prompt never stalls the live decode lanes, and advances everything with a
//! single [`infuserki_nn::TransformerLm::extend_cached_batch`] call.
//!
//! The crown property, inherited from the batch- and chunking-equivalence
//! guarantees of the runtime underneath: **at one kernel thread, every
//! response is bitwise identical to running that request alone on the
//! single-sequence sampler path, regardless of what batch compositions the
//! scheduler happened to choose** (see `tests/serve_differential.rs` at the
//! workspace root).
//!
//! Entry points:
//! - [`Scheduler`] — the single-threaded core; drive it directly with
//!   [`Scheduler::enqueue`] / [`Scheduler::step`] for deterministic tests.
//! - [`spawn_scheduler`] — runs the scheduler on its own thread and hands
//!   back a cloneable in-process [`Client`] (std `mpsc`, blocking and `try`
//!   waits, cancellation tokens).
//! - [`server::run`] and the `serve` binary — newline-delimited JSON over
//!   `std::net::TcpListener` (see README "Serving" for the wire format).

pub mod client;
pub mod config;
pub mod metrics;
pub mod queue;
pub mod registry;
pub mod request;
pub mod scheduler;
pub mod server;
pub mod watch;

pub use client::{spawn_scheduler, Client, ResponseHandle, SchedulerHandle, SubmitOpts};
pub use config::ServeConfig;
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use registry::{
    BundleEntry, BundleInfo, BundleRegistry, ControlError, ControlOp, ControlOutcome, GateReport,
    HookArc,
};
pub use request::{
    CancelToken, GenerateSpec, McqSpec, Outcome, RejectReason, Request, RequestId, RequestKind,
    Response, SubmitError,
};
pub use scheduler::{EngineLimits, Scheduler, StepReport};
pub use server::Frontend;
pub use watch::{load_tokenizer, spawn_watcher};

use infuserki_nn::{ModelConfig, TransformerLm};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The deterministic demo model the `serve` binary falls back to when no
/// checkpoint is given (`--demo`): a tiny fresh transformer, seeded so the
/// loopback smoke test can rebuild the identical model in-process and check
/// the served tokens against the single-sequence sampler.
pub fn demo_model() -> TransformerLm {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let cfg = ModelConfig {
        max_seq: 128,
        ..ModelConfig::tiny(64)
    };
    TransformerLm::new(cfg, &mut rng)
}
