//! Serving metrics, backed by the shared observability registry
//! (`infuserki_obs`).
//!
//! Every field is an atomic registry handle, so the scheduler updates them
//! lock-free mid-step and clients snapshot concurrently without a mutex.
//! Each [`ServeMetrics`] owns its *own* [`obs::Registry`] instance rather
//! than the process-global one: test suites run many schedulers at once,
//! and instance registries keep their counters from interleaving. The
//! wire-facing [`MetricsSnapshot`] keeps its flat JSON shape (the `metrics`
//! op's contract), now derived from registry values — TTFT/TBT percentiles
//! come from fixed-bucket histograms instead of a sample reservoir.

use std::sync::Arc;
use std::time::Duration;

use infuserki_obs as obs;
use serde::Serialize;

/// Registry-backed serving counters, updated by the scheduler and read by
/// any number of clients. All handles are atomics; no lock is ever taken
/// on the request path.
#[derive(Debug)]
pub struct ServeMetrics {
    registry: obs::Registry,
    /// Requests handed to the scheduler (accepted into the queue).
    pub submitted: Arc<obs::Counter>,
    /// Requests admitted into the running batch.
    pub admitted: Arc<obs::Counter>,
    /// Requests that finished with a successful outcome.
    pub completed: Arc<obs::Counter>,
    /// Requests cancelled after admission (mid-prefill or mid-decode).
    pub cancelled: Arc<obs::Counter>,
    /// Requests whose deadline passed after admission.
    pub expired: Arc<obs::Counter>,
    /// Requests cancelled while still queued — they never touched the
    /// batch, so they are counted apart from in-flight cancellations.
    pub cancelled_queued: Arc<obs::Counter>,
    /// Requests that expired while still queued (never admitted).
    pub expired_queued: Arc<obs::Counter>,
    /// Submissions rejected because the queue was full.
    pub rejected_queue_full: Arc<obs::Counter>,
    /// Submissions rejected because they exceed the whole KV budget.
    pub rejected_budget: Arc<obs::Counter>,
    /// Submissions rejected as invalid.
    pub rejected_invalid: Arc<obs::Counter>,
    /// Submissions rejected during shutdown drain.
    pub rejected_shutdown: Arc<obs::Counter>,
    /// Current queue depth.
    pub queue_depth: Arc<obs::Gauge>,
    /// Request slots currently active in the batch.
    pub active_requests: Arc<obs::Gauge>,
    /// Cache lanes (sequences) currently live — MCQ branches count each.
    pub active_lanes: Arc<obs::Gauge>,
    /// KV rows currently reserved by admitted requests.
    pub reserved_rows: Arc<obs::Gauge>,
    /// KV rows currently materialized in the cache.
    pub kv_rows_used: Arc<obs::Gauge>,
    /// High-water mark of materialized KV rows.
    pub kv_rows_peak: Arc<obs::Gauge>,
    /// Scheduler steps that ran a forward pass.
    pub steps: Arc<obs::Counter>,
    /// Scheduler steps with nothing to do.
    pub idle_steps: Arc<obs::Counter>,
    /// Prompt/option tokens fed through prefill lanes.
    pub prefill_tokens: Arc<obs::Counter>,
    /// Tokens emitted by decode lanes.
    pub decode_tokens: Arc<obs::Counter>,
    /// Admissions that adopted a cached prefix (skipping its prefill).
    pub prefix_hits: Arc<obs::Counter>,
    /// Prompt tokens skipped thanks to adopted prefixes.
    pub prefix_hit_tokens: Arc<obs::Counter>,
    /// Admissions that found no cached prefix (counted only while the
    /// prefix cache is enabled, so hits + misses = eligible admissions).
    pub prefix_misses: Arc<obs::Counter>,
    /// KV blocks currently allocated in the paged pool.
    pub blocks_live: Arc<obs::Gauge>,
    /// High-water mark of allocated KV blocks.
    pub blocks_peak: Arc<obs::Gauge>,
    /// Cached prefix blocks evicted under KV-budget pressure.
    pub blocks_evicted: Arc<obs::Counter>,
    /// Σ over non-idle steps of lanes advanced that step (occupancy).
    pub occupancy_lane_steps: Arc<obs::Counter>,
    /// Nanoseconds spent inside non-idle steps.
    pub busy_ns: Arc<obs::Counter>,
    /// Time-to-first-token distribution, milliseconds.
    pub ttft_ms: Arc<obs::Histogram>,
    /// Time-between-tokens distribution, milliseconds: the wall time of
    /// each scheduler step that advanced at least one decode lane (every
    /// decode lane emits exactly one token per such step).
    pub tbt_ms: Arc<obs::Histogram>,
    /// Per-step wall time (non-idle steps), milliseconds.
    pub step_ms: Arc<obs::Histogram>,
    /// Currently active (promoted) knowledge-bundle version.
    pub bundle_active_version: Arc<obs::Gauge>,
    /// Successful `promote` operations (version swaps).
    pub bundle_swaps: Arc<obs::Counter>,
    /// Successful `rollback` operations.
    pub bundle_rollbacks: Arc<obs::Counter>,
    /// `promote` attempts refused by the NR regression gate.
    pub bundle_rejected_promotions: Arc<obs::Counter>,
}

impl ServeMetrics {
    /// Builds a fresh instance registry and resolves every handle.
    pub fn new() -> Self {
        let registry = obs::Registry::new();
        let c = |n: &str| registry.counter(n);
        let g = |n: &str| registry.gauge(n);
        let h = |n: &str| registry.histogram(n);
        ServeMetrics {
            submitted: c("serve.submitted"),
            admitted: c("serve.admitted"),
            completed: c("serve.completed"),
            cancelled: c("serve.cancelled"),
            expired: c("serve.expired"),
            cancelled_queued: c("serve.cancelled_queued"),
            expired_queued: c("serve.expired_queued"),
            rejected_queue_full: c("serve.rejected.queue_full"),
            rejected_budget: c("serve.rejected.budget"),
            rejected_invalid: c("serve.rejected.invalid"),
            rejected_shutdown: c("serve.rejected.shutdown"),
            queue_depth: g("serve.queue_depth"),
            active_requests: g("serve.active_requests"),
            active_lanes: g("serve.active_lanes"),
            reserved_rows: g("serve.reserved_rows"),
            kv_rows_used: g("serve.kv_rows_used"),
            kv_rows_peak: g("serve.kv_rows_peak"),
            steps: c("serve.steps"),
            idle_steps: c("serve.idle_steps"),
            prefill_tokens: c("serve.prefill_tokens"),
            decode_tokens: c("serve.decode_tokens"),
            prefix_hits: c("serve.prefix.hits"),
            prefix_hit_tokens: c("serve.prefix.hit_tokens"),
            prefix_misses: c("serve.prefix.misses"),
            blocks_live: g("serve.kv_blocks_live"),
            blocks_peak: g("serve.kv_blocks_peak"),
            blocks_evicted: c("serve.kv_blocks_evicted"),
            occupancy_lane_steps: c("serve.occupancy_lane_steps"),
            busy_ns: c("serve.busy_ns"),
            ttft_ms: h("serve.ttft_ms"),
            tbt_ms: h("serve.tbt_ms"),
            step_ms: h("serve.step_ms"),
            bundle_active_version: g("serve.bundle.active_version"),
            bundle_swaps: c("serve.bundle.swaps"),
            bundle_rollbacks: c("serve.bundle.rollbacks"),
            bundle_rejected_promotions: c("serve.bundle.rejected_promotions"),
            registry,
        }
    }

    /// The backing registry (for full-snapshot export, e.g. JSONL dumps).
    pub fn registry(&self) -> &obs::Registry {
        &self.registry
    }

    /// Records one TTFT observation.
    pub fn record_ttft(&self, d: Duration) {
        self.ttft_ms.record_duration(d);
    }

    /// Derives the exported snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let ttft = self.ttft_ms.summary();
        let tbt = self.tbt_ms.summary();
        let steps = self.steps.get();
        let busy_s = self.busy_ns.get() as f64 / 1e9;
        let decode_tokens = self.decode_tokens.get();
        MetricsSnapshot {
            submitted: self.submitted.get(),
            admitted: self.admitted.get(),
            completed: self.completed.get(),
            cancelled: self.cancelled.get(),
            expired: self.expired.get(),
            cancelled_queued: self.cancelled_queued.get(),
            expired_queued: self.expired_queued.get(),
            rejected_queue_full: self.rejected_queue_full.get(),
            rejected_budget: self.rejected_budget.get(),
            rejected_invalid: self.rejected_invalid.get(),
            rejected_shutdown: self.rejected_shutdown.get(),
            queue_depth: self.queue_depth.get().max(0) as usize,
            active_requests: self.active_requests.get().max(0) as usize,
            active_lanes: self.active_lanes.get().max(0) as usize,
            reserved_rows: self.reserved_rows.get().max(0) as usize,
            kv_rows_used: self.kv_rows_used.get().max(0) as usize,
            kv_rows_peak: self.kv_rows_peak.get().max(0) as usize,
            steps,
            idle_steps: self.idle_steps.get(),
            prefill_tokens: self.prefill_tokens.get(),
            decode_tokens,
            prefix_hits: self.prefix_hits.get(),
            prefix_hit_tokens: self.prefix_hit_tokens.get(),
            prefix_misses: self.prefix_misses.get(),
            blocks_live: self.blocks_live.get().max(0) as usize,
            blocks_peak: self.blocks_peak.get().max(0) as usize,
            blocks_evicted: self.blocks_evicted.get(),
            avg_occupancy: if steps == 0 {
                0.0
            } else {
                self.occupancy_lane_steps.get() as f64 / steps as f64
            },
            decode_tokens_per_sec: if busy_s > 0.0 {
                decode_tokens as f64 / busy_s
            } else {
                0.0
            },
            ttft_p50_ms: ttft.p50,
            ttft_p99_ms: ttft.p99,
            ttft_samples: ttft.count as usize,
            tbt_p50_ms: tbt.p50,
            tbt_p99_ms: tbt.p99,
            bundle_active_version: self.bundle_active_version.get().max(0) as u64,
            bundle_swaps: self.bundle_swaps.get(),
            bundle_rollbacks: self.bundle_rollbacks.get(),
            bundle_rejected_promotions: self.bundle_rejected_promotions.get(),
        }
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

/// Point-in-time metrics view, serializable for the wire `metrics` op.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// See [`ServeMetrics::submitted`].
    pub submitted: u64,
    /// See [`ServeMetrics::admitted`].
    pub admitted: u64,
    /// See [`ServeMetrics::completed`].
    pub completed: u64,
    /// See [`ServeMetrics::cancelled`].
    pub cancelled: u64,
    /// See [`ServeMetrics::expired`].
    pub expired: u64,
    /// See [`ServeMetrics::cancelled_queued`].
    pub cancelled_queued: u64,
    /// See [`ServeMetrics::expired_queued`].
    pub expired_queued: u64,
    /// See [`ServeMetrics::rejected_queue_full`].
    pub rejected_queue_full: u64,
    /// See [`ServeMetrics::rejected_budget`].
    pub rejected_budget: u64,
    /// See [`ServeMetrics::rejected_invalid`].
    pub rejected_invalid: u64,
    /// See [`ServeMetrics::rejected_shutdown`].
    pub rejected_shutdown: u64,
    /// See [`ServeMetrics::queue_depth`].
    pub queue_depth: usize,
    /// See [`ServeMetrics::active_requests`].
    pub active_requests: usize,
    /// See [`ServeMetrics::active_lanes`].
    pub active_lanes: usize,
    /// See [`ServeMetrics::reserved_rows`].
    pub reserved_rows: usize,
    /// See [`ServeMetrics::kv_rows_used`].
    pub kv_rows_used: usize,
    /// See [`ServeMetrics::kv_rows_peak`].
    pub kv_rows_peak: usize,
    /// See [`ServeMetrics::steps`].
    pub steps: u64,
    /// See [`ServeMetrics::idle_steps`].
    pub idle_steps: u64,
    /// See [`ServeMetrics::prefill_tokens`].
    pub prefill_tokens: u64,
    /// See [`ServeMetrics::decode_tokens`].
    pub decode_tokens: u64,
    /// See [`ServeMetrics::prefix_hits`].
    pub prefix_hits: u64,
    /// See [`ServeMetrics::prefix_hit_tokens`].
    pub prefix_hit_tokens: u64,
    /// See [`ServeMetrics::prefix_misses`].
    pub prefix_misses: u64,
    /// See [`ServeMetrics::blocks_live`].
    pub blocks_live: usize,
    /// See [`ServeMetrics::blocks_peak`].
    pub blocks_peak: usize,
    /// See [`ServeMetrics::blocks_evicted`].
    pub blocks_evicted: u64,
    /// Mean lanes advanced per non-idle step.
    pub avg_occupancy: f64,
    /// Decode tokens per second of busy scheduler time.
    pub decode_tokens_per_sec: f64,
    /// Median time-to-first-token, milliseconds.
    pub ttft_p50_ms: f64,
    /// 99th-percentile time-to-first-token, milliseconds.
    pub ttft_p99_ms: f64,
    /// How many TTFT samples back the percentiles.
    pub ttft_samples: usize,
    /// Median time-between-tokens, milliseconds.
    pub tbt_p50_ms: f64,
    /// 99th-percentile time-between-tokens, milliseconds.
    pub tbt_p99_ms: f64,
    /// See [`ServeMetrics::bundle_active_version`].
    pub bundle_active_version: u64,
    /// See [`ServeMetrics::bundle_swaps`].
    pub bundle_swaps: u64,
    /// See [`ServeMetrics::bundle_rollbacks`].
    pub bundle_rollbacks: u64,
    /// See [`ServeMetrics::bundle_rejected_promotions`].
    pub bundle_rejected_promotions: u64,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a single JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("metrics snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_derives_percentiles_and_rates() {
        let m = ServeMetrics::new();
        for ms in [1.0_f64, 2.0, 3.0, 4.0, 100.0] {
            m.ttft_ms.record(ms);
        }
        m.decode_tokens.add(200);
        m.busy_ns.add(2_000_000_000);
        m.steps.add(10);
        m.occupancy_lane_steps.add(25);
        let s = m.snapshot();
        // Histogram quantiles are bucket estimates, not exact order
        // statistics: p50 must land near the middle samples, p99 near the
        // outlier.
        assert!(
            s.ttft_p50_ms >= 1.0 && s.ttft_p50_ms <= 10.0,
            "{}",
            s.ttft_p50_ms
        );
        assert!(
            s.ttft_p99_ms > 10.0 && s.ttft_p99_ms <= 100.0,
            "{}",
            s.ttft_p99_ms
        );
        assert_eq!(s.ttft_samples, 5);
        assert!((s.decode_tokens_per_sec - 100.0).abs() < 1e-9);
        assert!((s.avg_occupancy - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_snapshot_is_all_zero() {
        let s = ServeMetrics::new().snapshot();
        assert_eq!(s.ttft_p50_ms, 0.0);
        assert_eq!(s.decode_tokens_per_sec, 0.0);
        assert_eq!(s.avg_occupancy, 0.0);
        assert_eq!(s.cancelled_queued, 0);
        assert_eq!(s.expired_queued, 0);
    }

    #[test]
    fn snapshot_serializes_to_json_object() {
        let j = ServeMetrics::new().snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"decode_tokens_per_sec\""));
        assert!(j.contains("\"cancelled_queued\""));
        assert!(j.contains("\"tbt_p50_ms\""));
        assert!(j.contains("\"prefix_hits\""));
        assert!(j.contains("\"blocks_evicted\""));
        assert!(j.contains("\"bundle_active_version\""));
        assert!(j.contains("\"bundle_swaps\""));
        assert!(j.contains("\"bundle_rollbacks\""));
        assert!(j.contains("\"bundle_rejected_promotions\""));
    }

    #[test]
    fn registry_snapshot_carries_the_same_values() {
        let m = ServeMetrics::new();
        m.completed.add(3);
        m.queue_depth.set(2);
        let snap = m.registry().snapshot();
        assert_eq!(
            snap.get("serve.completed"),
            Some(&obs::MetricValue::Counter(3))
        );
        assert_eq!(
            snap.get("serve.queue_depth"),
            Some(&obs::MetricValue::Gauge(2))
        );
    }

    #[test]
    fn queued_deaths_are_distinct_from_in_flight_ones() {
        let m = ServeMetrics::new();
        m.cancelled.inc();
        m.cancelled_queued.inc();
        m.cancelled_queued.inc();
        let s = m.snapshot();
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.cancelled_queued, 2);
    }
}
