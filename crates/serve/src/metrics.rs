//! Serving metrics: counters the scheduler updates every step, and a
//! derived [`MetricsSnapshot`] serialized to JSON for the `metrics` wire op.

use serde::Serialize;
use std::time::Duration;

/// Cap on retained TTFT samples; beyond it the reservoir stops growing
/// (enough for stable p50/p99 without unbounded memory).
const TTFT_SAMPLE_CAP: usize = 4096;

/// Raw counters, owned by the scheduler behind a mutex so clients can
/// snapshot concurrently.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests handed to the scheduler (accepted into the queue).
    pub submitted: u64,
    /// Requests admitted into the running batch.
    pub admitted: u64,
    /// Requests that finished with a successful outcome.
    pub completed: u64,
    /// Requests cancelled via their token.
    pub cancelled: u64,
    /// Requests whose deadline passed before completion.
    pub expired: u64,
    /// Submissions rejected because the queue was full.
    pub rejected_queue_full: u64,
    /// Submissions rejected because they exceed the whole KV budget.
    pub rejected_budget: u64,
    /// Submissions rejected as invalid.
    pub rejected_invalid: u64,
    /// Submissions rejected during shutdown drain.
    pub rejected_shutdown: u64,
    /// Current queue depth.
    pub queue_depth: usize,
    /// Request slots currently active in the batch.
    pub active_requests: usize,
    /// Cache lanes (sequences) currently live — MCQ branches count each.
    pub active_lanes: usize,
    /// KV rows currently reserved by admitted requests.
    pub reserved_rows: usize,
    /// KV rows currently materialized in the cache.
    pub kv_rows_used: usize,
    /// High-water mark of materialized KV rows.
    pub kv_rows_peak: usize,
    /// Scheduler steps that ran a forward pass.
    pub steps: u64,
    /// Scheduler steps with nothing to do.
    pub idle_steps: u64,
    /// Prompt/option tokens fed through prefill lanes.
    pub prefill_tokens: u64,
    /// Tokens emitted by decode lanes.
    pub decode_tokens: u64,
    /// Σ over non-idle steps of lanes advanced that step (occupancy).
    pub occupancy_lane_steps: u64,
    /// Wall time spent inside non-idle steps.
    pub busy: Duration,
    /// Time-to-first-token samples, milliseconds (bounded reservoir).
    pub ttft_ms: Vec<f64>,
}

impl ServeMetrics {
    /// Records one TTFT observation (dropped once the reservoir is full).
    pub fn record_ttft(&mut self, d: Duration) {
        if self.ttft_ms.len() < TTFT_SAMPLE_CAP {
            self.ttft_ms.push(d.as_secs_f64() * 1e3);
        }
    }

    /// Derives the exported snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut sorted = self.ttft_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        };
        let busy_s = self.busy.as_secs_f64();
        MetricsSnapshot {
            submitted: self.submitted,
            admitted: self.admitted,
            completed: self.completed,
            cancelled: self.cancelled,
            expired: self.expired,
            rejected_queue_full: self.rejected_queue_full,
            rejected_budget: self.rejected_budget,
            rejected_invalid: self.rejected_invalid,
            rejected_shutdown: self.rejected_shutdown,
            queue_depth: self.queue_depth,
            active_requests: self.active_requests,
            active_lanes: self.active_lanes,
            reserved_rows: self.reserved_rows,
            kv_rows_used: self.kv_rows_used,
            kv_rows_peak: self.kv_rows_peak,
            steps: self.steps,
            idle_steps: self.idle_steps,
            prefill_tokens: self.prefill_tokens,
            decode_tokens: self.decode_tokens,
            avg_occupancy: if self.steps == 0 {
                0.0
            } else {
                self.occupancy_lane_steps as f64 / self.steps as f64
            },
            decode_tokens_per_sec: if busy_s > 0.0 {
                self.decode_tokens as f64 / busy_s
            } else {
                0.0
            },
            ttft_p50_ms: pct(0.50),
            ttft_p99_ms: pct(0.99),
            ttft_samples: sorted.len(),
        }
    }
}

/// Point-in-time metrics view, serializable for the wire `metrics` op.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// See [`ServeMetrics::submitted`].
    pub submitted: u64,
    /// See [`ServeMetrics::admitted`].
    pub admitted: u64,
    /// See [`ServeMetrics::completed`].
    pub completed: u64,
    /// See [`ServeMetrics::cancelled`].
    pub cancelled: u64,
    /// See [`ServeMetrics::expired`].
    pub expired: u64,
    /// See [`ServeMetrics::rejected_queue_full`].
    pub rejected_queue_full: u64,
    /// See [`ServeMetrics::rejected_budget`].
    pub rejected_budget: u64,
    /// See [`ServeMetrics::rejected_invalid`].
    pub rejected_invalid: u64,
    /// See [`ServeMetrics::rejected_shutdown`].
    pub rejected_shutdown: u64,
    /// See [`ServeMetrics::queue_depth`].
    pub queue_depth: usize,
    /// See [`ServeMetrics::active_requests`].
    pub active_requests: usize,
    /// See [`ServeMetrics::active_lanes`].
    pub active_lanes: usize,
    /// See [`ServeMetrics::reserved_rows`].
    pub reserved_rows: usize,
    /// See [`ServeMetrics::kv_rows_used`].
    pub kv_rows_used: usize,
    /// See [`ServeMetrics::kv_rows_peak`].
    pub kv_rows_peak: usize,
    /// See [`ServeMetrics::steps`].
    pub steps: u64,
    /// See [`ServeMetrics::idle_steps`].
    pub idle_steps: u64,
    /// See [`ServeMetrics::prefill_tokens`].
    pub prefill_tokens: u64,
    /// See [`ServeMetrics::decode_tokens`].
    pub decode_tokens: u64,
    /// Mean lanes advanced per non-idle step.
    pub avg_occupancy: f64,
    /// Decode tokens per second of busy scheduler time.
    pub decode_tokens_per_sec: f64,
    /// Median time-to-first-token, milliseconds.
    pub ttft_p50_ms: f64,
    /// 99th-percentile time-to-first-token, milliseconds.
    pub ttft_p99_ms: f64,
    /// How many TTFT samples back the percentiles.
    pub ttft_samples: usize,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a single JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("metrics snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_derives_percentiles_and_rates() {
        let mut m = ServeMetrics::default();
        for ms in [1.0_f64, 2.0, 3.0, 4.0, 100.0] {
            m.ttft_ms.push(ms);
        }
        m.decode_tokens = 200;
        m.busy = Duration::from_secs(2);
        m.steps = 10;
        m.occupancy_lane_steps = 25;
        let s = m.snapshot();
        assert_eq!(s.ttft_p50_ms, 3.0);
        assert_eq!(s.ttft_p99_ms, 100.0);
        assert_eq!(s.ttft_samples, 5);
        assert!((s.decode_tokens_per_sec - 100.0).abs() < 1e-9);
        assert!((s.avg_occupancy - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_snapshot_is_all_zero() {
        let s = ServeMetrics::default().snapshot();
        assert_eq!(s.ttft_p50_ms, 0.0);
        assert_eq!(s.decode_tokens_per_sec, 0.0);
        assert_eq!(s.avg_occupancy, 0.0);
    }

    #[test]
    fn snapshot_serializes_to_json_object() {
        let j = ServeMetrics::default().snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"decode_tokens_per_sec\""));
    }

    #[test]
    fn ttft_reservoir_is_bounded() {
        let mut m = ServeMetrics::default();
        for _ in 0..(TTFT_SAMPLE_CAP + 100) {
            m.record_ttft(Duration::from_millis(1));
        }
        assert_eq!(m.ttft_ms.len(), TTFT_SAMPLE_CAP);
    }
}
