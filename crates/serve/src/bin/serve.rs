//! `serve` — the JSONL serving front-end.
//!
//! ```text
//! serve --demo --port 0
//! serve --model model.bin --port 7878 --budget 4096 --batch 16 --chunk 32
//! ```
//!
//! Binds a `TcpListener`, spawns the continuous-batching scheduler, prints
//! `LISTENING <addr>` on stdout (port 0 binds an ephemeral port — parse the
//! line to find it), then serves newline-delimited JSON until a peer sends
//! `{"op":"shutdown"}`. See the crate docs and README "Serving" for the
//! wire format.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use infuserki_ingest::{PipelineConfig, UpdatePipeline};
use infuserki_nn::{NoHook, TransformerLm};
use infuserki_obs as obs;
use infuserki_serve::{
    demo_model, load_tokenizer, server, spawn_scheduler, spawn_watcher, ServeConfig,
};

struct Args {
    host: String,
    port: u16,
    model: Option<String>,
    demo: bool,
    cfg: ServeConfig,
    /// Knowledge bundles staged (in order) before the listener comes up;
    /// repeatable. The last one is promoted to active.
    bundles: Vec<String>,
    /// Enable tracing spans and write a Chrome trace here at shutdown.
    trace_out: Option<String>,
    /// WAL directory to watch: runs the online knowledge-update pipeline
    /// in-process, publishing live bundles through the registry.
    watch_kg: Option<String>,
    /// Tokenizer JSON the pipeline phrases MCQs with (required with
    /// --watch-kg; must match the served model's vocabulary).
    watch_tokenizer: Option<String>,
    /// Optional `PipelineConfig` JSON overriding the pipeline defaults.
    watch_config: Option<String>,
}

fn usage() -> &'static str {
    "usage: serve (--demo | --model PATH) [--host H] [--port P] \
     [--budget ROWS] [--batch N] [--chunk N] [--queue N] [--threads N] \
     [--bundle PATH]... [--trace-out PATH] \
     [--watch-kg DIR --watch-tokenizer PATH [--watch-config PATH]]\n\
     --port 0 binds an ephemeral port; the chosen address is printed as\n\
     `LISTENING <addr>` on stdout. --bundle (repeatable) stages knowledge\n\
     bundles at startup and promotes the last one; more can be loaded live\n\
     via the load_bundle/promote/rollback wire ops. --watch-kg runs the\n\
     online knowledge-update pipeline in-process over a WAL directory\n\
     (append facts with `kg_ingest`): batched deltas are trained and\n\
     published live through the NR promote gate. --watch-tokenizer is the\n\
     tokenizer JSON matching the served model; --watch-config overrides\n\
     `PipelineConfig` defaults. --trace-out enables tracing spans and\n\
     writes a chrome://tracing-loadable JSON trace to PATH at shutdown."
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        host: "127.0.0.1".to_string(),
        port: 7878,
        model: None,
        demo: false,
        cfg: ServeConfig::default(),
        bundles: Vec::new(),
        trace_out: None,
        watch_kg: None,
        watch_tokenizer: None,
        watch_config: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--demo" => args.demo = true,
            "--model" => args.model = Some(value("--model")?),
            "--host" => args.host = value("--host")?,
            "--port" => {
                args.port = value("--port")?
                    .parse()
                    .map_err(|_| "--port needs a 16-bit integer".to_string())?;
            }
            "--budget" => args.cfg.kv_budget_rows = parse_count(&value("--budget")?, "--budget")?,
            "--batch" => args.cfg.max_batch = parse_count(&value("--batch")?, "--batch")?,
            "--chunk" => args.cfg.prefill_chunk = parse_count(&value("--chunk")?, "--chunk")?,
            "--queue" => args.cfg.queue_capacity = parse_count(&value("--queue")?, "--queue")?,
            "--threads" => {
                args.cfg.threads = Some(parse_count(&value("--threads")?, "--threads")?);
            }
            "--bundle" => args.bundles.push(value("--bundle")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--watch-kg" => args.watch_kg = Some(value("--watch-kg")?),
            "--watch-tokenizer" => args.watch_tokenizer = Some(value("--watch-tokenizer")?),
            "--watch-config" => args.watch_config = Some(value("--watch-config")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if args.demo == args.model.is_some() {
        return Err(format!(
            "pass exactly one of --demo or --model PATH\n{}",
            usage()
        ));
    }
    if args.watch_kg.is_some() && args.watch_tokenizer.is_none() {
        return Err(format!(
            "--watch-kg needs --watch-tokenizer PATH (the pipeline phrases \
             MCQs with it)\n{}",
            usage()
        ));
    }
    if args.watch_kg.is_none() && (args.watch_tokenizer.is_some() || args.watch_config.is_some()) {
        return Err(format!(
            "--watch-tokenizer/--watch-config only make sense with --watch-kg\n{}",
            usage()
        ));
    }
    Ok(args)
}

fn parse_count(raw: &str, flag: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!("{flag} must be at least 1")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("{flag} needs a positive integer, got `{raw}`")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // Spans stay off (one relaxed load per would-be span) unless asked
    // for — by flag or by INFUSERKI_TRACE in the environment.
    obs::init_from_env();
    if args.trace_out.is_some() {
        obs::set_enabled(true);
    }
    // Resolve the thread knob before anything binds so a mistyped
    // INFUSERKI_THREADS fails loudly here, not inside a kernel.
    let threads = match args.cfg.apply_threads() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::from(2);
        }
    };
    let model = if args.demo {
        demo_model()
    } else {
        let path = args.model.as_deref().expect("parse_args enforces --model");
        match TransformerLm::load(path) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("serve: failed to load model `{path}`: {e}");
                return ExitCode::from(2);
            }
        }
    };
    // The watcher's pipeline trains against its own copy of the frozen
    // base; taken before the scheduler thread consumes the original.
    let mut watch_model = args.watch_kg.as_ref().map(|_| model.clone());
    let (client, sched) = match spawn_scheduler(model, NoHook, args.cfg.clone()) {
        Ok(cs) => cs,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::from(2);
        }
    };
    // Stage every --bundle in order and promote the last, so the process
    // comes up already serving the newest knowledge; earlier ones stay
    // pinnable (and are the rollback target).
    let mut last_version = None;
    for path in &args.bundles {
        match client.load_bundle(path) {
            Ok(info) => {
                eprintln!(
                    "serve: staged bundle `{}` ({path}) as version {}",
                    info.name, info.version
                );
                last_version = Some(info.version);
            }
            Err(e) => {
                eprintln!("serve: failed to load bundle `{path}`: {e}");
                sched.shutdown();
                return ExitCode::from(2);
            }
        }
    }
    if let Some(v) = last_version {
        if let Err(e) = client.promote(v) {
            eprintln!("serve: failed to promote bundle version {v}: {e}");
            sched.shutdown();
            return ExitCode::from(2);
        }
        eprintln!("serve: bundle version {v} active");
    }
    // Bring the online knowledge-update watcher up before the listener so
    // the WAL is recovered (and any startup error surfaces) before clients
    // can connect.
    let stop = Arc::new(AtomicBool::new(false));
    let mut watcher = None;
    if let Some(wal_dir) = &args.watch_kg {
        let tok_path = args
            .watch_tokenizer
            .as_deref()
            .expect("parse_args enforces --watch-tokenizer");
        let tokenizer = match load_tokenizer(tok_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("serve: {e}");
                sched.shutdown();
                return ExitCode::from(2);
            }
        };
        let pcfg = match &args.watch_config {
            Some(path) => {
                let json = match std::fs::read_to_string(path) {
                    Ok(j) => j,
                    Err(e) => {
                        eprintln!("serve: read watch config `{path}`: {e}");
                        sched.shutdown();
                        return ExitCode::from(2);
                    }
                };
                match serde_json::from_str::<PipelineConfig>(&json) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("serve: parse watch config `{path}`: {e}");
                        sched.shutdown();
                        return ExitCode::from(2);
                    }
                }
            }
            None => PipelineConfig::default(),
        };
        let metrics = client.metrics_handle();
        let pipeline = match UpdatePipeline::new(
            watch_model.take().expect("watch model cloned above"),
            tokenizer,
            wal_dir,
            pcfg,
            client.clone(),
            metrics.registry(),
        ) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("serve: failed to open WAL dir `{wal_dir}`: {e}");
                sched.shutdown();
                return ExitCode::from(2);
            }
        };
        eprintln!(
            "serve: watching KG WAL at `{wal_dir}` (baseline seq {}, {} live triples)",
            pipeline.state().seq,
            pipeline.state().live_len()
        );
        watcher = Some(spawn_watcher(pipeline, Arc::clone(&stop)));
    }
    let listener = match TcpListener::bind((args.host.as_str(), args.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: failed to bind {}:{}: {e}", args.host, args.port);
            stop.store(true, Ordering::Relaxed);
            if let Some(w) = watcher {
                let _ = w.join();
            }
            sched.shutdown();
            return ExitCode::from(1);
        }
    };
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    println!("LISTENING {addr}");
    eprintln!(
        "serve: {} threads, budget {} rows, batch {}, chunk {}, queue {}",
        threads,
        args.cfg.kv_budget_rows,
        args.cfg.max_batch,
        args.cfg.prefill_chunk,
        args.cfg.queue_capacity
    );
    let accept_result = server::run(listener, client, Arc::clone(&stop));
    // The watcher goes down first (it publishes through the scheduler), then
    // the scheduler drains.
    stop.store(true, Ordering::Relaxed);
    if let Some(w) = watcher {
        let _ = w.join();
    }
    if let Err(e) = accept_result {
        eprintln!("serve: accept loop failed: {e}");
        sched.shutdown();
        return ExitCode::from(1);
    }
    sched.shutdown();
    if let Some(path) = &args.trace_out {
        match obs::write_chrome_trace(path) {
            Ok(()) => eprintln!("serve: wrote trace to {path}"),
            Err(e) => eprintln!("serve: failed to write trace {path}: {e}"),
        }
    }
    ExitCode::SUCCESS
}
