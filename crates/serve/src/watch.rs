//! Live knowledge watching: hosts the ingest update pipeline inside a
//! serving process (`serve --watch-kg DIR`).
//!
//! Two pieces close the loop between a WAL directory and the serving
//! registry:
//!
//! * [`Client`] implements [`infuserki_ingest::BundlePublisher`], so the
//!   pipeline's finished bundles go through the real control plane:
//!   `load_bundle` (verify + stage) then `promote` (NR regression gate). A
//!   gate refusal maps to [`PublishError::GateRefused`] — the pipeline
//!   drops the regressing batch and the previous version keeps serving.
//! * [`spawn_watcher`] drives [`UpdatePipeline::run_once`] on a background
//!   thread at the configured poll cadence until a stop flag is set, so the
//!   `serve` binary can ingest and serve from one process. Requests are
//!   never paused: control ops land between scheduler steps, so a promote
//!   mid-stream cannot tear an in-flight batch.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use infuserki_ingest::{
    BundlePublisher, PublishError, PublishReport, RoundOutcome, UpdatePipeline,
};
use infuserki_text::Tokenizer;

use crate::client::Client;
use crate::registry::ControlError;

impl BundlePublisher for Client {
    /// load → stage → promote through the scheduler thread. The promote-time
    /// NR gate is the safety valve: a refusal comes back typed so the
    /// pipeline can drop the batch instead of erroring out.
    fn publish(&self, path: &Path) -> Result<PublishReport, PublishError> {
        let path_str = path.to_str().ok_or_else(|| {
            PublishError::Other(format!("non-utf8 bundle path {}", path.display()))
        })?;
        let info = self
            .load_bundle(path_str)
            .map_err(|e| PublishError::Other(e.to_string()))?;
        match self.promote(info.version) {
            Ok(_) => Ok(PublishReport {
                version: info.version,
            }),
            Err(ControlError::NrGateFailed { gate, .. }) => Err(PublishError::GateRefused {
                probes: gate.probes as u32,
                staged_correct: gate.staged_correct as u32,
                active_correct: gate.active_correct as u32,
            }),
            Err(e) => Err(PublishError::Other(e.to_string())),
        }
    }
}

/// Loads a tokenizer saved as JSON (the serde form of
/// [`infuserki_text::Tokenizer`]) and rebuilds its lookup index, which does
/// not serialize.
pub fn load_tokenizer(path: &str) -> Result<Tokenizer, String> {
    let json =
        std::fs::read_to_string(path).map_err(|e| format!("read tokenizer `{path}`: {e}"))?;
    let mut tok: Tokenizer =
        serde_json::from_str(&json).map_err(|e| format!("parse tokenizer `{path}`: {e}"))?;
    tok.rebuild_index();
    Ok(tok)
}

/// Runs the update pipeline on a named background thread until `stop` is
/// set. Round outcomes are narrated on stderr; pipeline errors are logged
/// and polling continues (ingestion must outlive transient publish
/// failures — durability lives in the WAL, not in this thread).
pub fn spawn_watcher<P: BundlePublisher + Send + 'static>(
    mut pipeline: UpdatePipeline<P>,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("infuserki-watch-kg".into())
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match pipeline.run_once() {
                    Ok(RoundOutcome::Idle) | Ok(RoundOutcome::Waiting { .. }) => {}
                    Ok(RoundOutcome::Published {
                        version,
                        name,
                        newly_integrated,
                        ..
                    }) => eprintln!(
                        "serve: watch-kg published `{name}` as version {version} \
                         ({newly_integrated} newly integrated)"
                    ),
                    Ok(RoundOutcome::Refused {
                        probes,
                        staged_correct,
                        active_correct,
                    }) => eprintln!(
                        "serve: watch-kg NR gate refused bundle \
                         ({staged_correct}/{probes} vs {active_correct}/{probes} active); \
                         previous version keeps serving"
                    ),
                    Err(e) => eprintln!("serve: watch-kg error: {e}"),
                }
                // Sleep in short slices so shutdown joins promptly even
                // under a long poll cadence.
                let poll_ms = pipeline.config().poll_ms.max(1);
                let mut waited = 0u64;
                while waited < poll_ms && !stop.load(Ordering::Relaxed) {
                    let slice = (poll_ms - waited).min(25);
                    std::thread::sleep(Duration::from_millis(slice));
                    waited += slice;
                }
            }
        })
        .expect("serve: failed to spawn watch-kg thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::spawn_scheduler;
    use crate::config::ServeConfig;
    use infuserki_core::{GateProbe, InfuserKiConfig, InfuserKiMethod, KnowledgeBundle};
    use infuserki_nn::{sampler, LayerHook, ModelConfig, NoHook, TransformerLm};
    use infuserki_tensor::kernels;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::path::PathBuf;

    const VOCAB: usize = 40;

    fn base() -> TransformerLm {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        TransformerLm::new(ModelConfig::tiny(VOCAB), &mut rng)
    }

    fn nudged_method(b: &TransformerLm, k: f32) -> InfuserKiMethod {
        let mut c = InfuserKiConfig::for_model(b.n_layers());
        c.bottleneck = 4;
        c.infuser_hidden = 4;
        c.rc_dim = 8;
        let mut m = InfuserKiMethod::new(c, b, 5);
        m.visit_adapters_mut(&mut |p: &mut infuserki_tensor::Param| {
            for (i, w) in p.data_mut().data_mut().iter_mut().enumerate() {
                *w += k * ((i % 7) as f32 - 3.0);
            }
        });
        m
    }

    fn save_bundle(
        name: &str,
        method: InfuserKiMethod,
        b: &TransformerLm,
        probes: Vec<GateProbe>,
    ) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "infuserki_watch_{}_{}.bundle.json",
            name,
            std::process::id()
        ));
        KnowledgeBundle::new(name, method, b, None, probes)
            .unwrap()
            .save(&path)
            .unwrap();
        path
    }

    /// Probes `right` answers with its own argmax and `wrong` disagrees on.
    fn disagreement_probes(
        b: &TransformerLm,
        right: &dyn LayerHook,
        wrong: &dyn LayerHook,
        n: usize,
    ) -> Vec<GateProbe> {
        let mut probes = Vec::new();
        let mut seed = 0usize;
        while probes.len() < n {
            seed += 1;
            let prompt = vec![seed % VOCAB, (seed * 3 + 1) % VOCAB, (seed * 7 + 2) % VOCAB];
            let options = vec![
                vec![(seed * 5) % VOCAB, (seed + 11) % VOCAB],
                vec![(seed * 2 + 3) % VOCAB],
                vec![(seed + 9) % VOCAB, (seed * 4 + 1) % VOCAB],
            ];
            let pick = |hook: &dyn LayerHook| {
                let scores = sampler::score_options(b, hook, &prompt, &options);
                let lens: Vec<usize> = options.iter().map(Vec::len).collect();
                sampler::argmax(&sampler::option_probabilities(&scores, &lens))
            };
            let (r, w) = (pick(right), pick(wrong));
            if r != w {
                probes.push(GateProbe {
                    prompt,
                    options,
                    correct: r,
                });
            }
            assert!(seed < 4000, "no disagreeing probes found");
        }
        probes
    }

    #[test]
    fn client_publishes_through_load_and_promote() {
        kernels::set_num_threads(1);
        let b = base();
        let p1 = save_bundle("pub1", nudged_method(&b, 0.01), &b, Vec::new());
        let p2 = save_bundle("pub2", nudged_method(&b, -0.02), &b, Vec::new());
        let (client, handle) = spawn_scheduler(base(), NoHook, ServeConfig::default()).unwrap();
        assert_eq!(client.publish(&p1).unwrap(), PublishReport { version: 1 });
        assert_eq!(client.publish(&p2).unwrap(), PublishReport { version: 2 });
        let list = client.list_bundles().unwrap();
        assert_eq!(list.len(), 3);
        assert!(list[2].active, "last published version is active");
        handle.shutdown();
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }

    #[test]
    fn gate_refusal_maps_to_typed_publish_error() {
        kernels::set_num_threads(1);
        let b = base();
        // Probes the active base answers "correctly" by construction and
        // the candidate gets wrong → the NR gate refuses the promote.
        let bad = nudged_method(&b, 0.05);
        let probes = disagreement_probes(&b, &NoHook, &bad.hook(), 3);
        let p_bad = save_bundle("bad", bad, &b, probes);
        let (client, handle) = spawn_scheduler(base(), NoHook, ServeConfig::default()).unwrap();
        let err = client.publish(&p_bad).unwrap_err();
        assert_eq!(
            err,
            PublishError::GateRefused {
                probes: 3,
                staged_correct: 0,
                active_correct: 3,
            }
        );
        // The refused bundle stays staged but never activates.
        let list = client.list_bundles().unwrap();
        assert!(list[0].active, "base remains active after refusal");
        assert!(!list[1].active);
        handle.shutdown();
        let _ = std::fs::remove_file(&p_bad);
    }

    #[test]
    fn tokenizer_round_trips_through_json_with_live_index() {
        let tok = Tokenizer::build(["alpha beta", "gamma delta"]);
        let path =
            std::env::temp_dir().join(format!("infuserki_watch_tok_{}.json", std::process::id()));
        std::fs::write(&path, serde_json::to_string(&tok).unwrap()).unwrap();
        let loaded = load_tokenizer(&path.display().to_string()).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded.vocab_size(), tok.vocab_size());
        // The rebuilt index actually resolves words (it is #[serde(skip)]).
        assert_eq!(loaded.word_id("gamma"), tok.word_id("gamma"));
        assert!(loaded.word_id("epsilon").is_none());
    }
}
