//! Request/response vocabulary of the serving subsystem.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Opaque request identifier, echoed on the response. In-process clients
/// allocate them; wire clients pick their own per connection.
pub type RequestId = u64;

/// Shared cancellation flag: flip it from any thread and the scheduler
/// retires the request at its next step (responding [`Outcome::Cancelled`]),
/// whether it is still queued, mid-prefill, or mid-decode.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A generation request: greedy when `beam_width == 1` (the continuous
/// batch), beam search otherwise (executed atomically on the
/// single-request path — see the scheduler docs for the tradeoff).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerateSpec {
    /// Prompt token ids.
    pub prompt: Vec<usize>,
    /// Maximum new tokens to emit.
    pub max_new: usize,
    /// Stop token, if any.
    pub eos: Option<usize>,
    /// 1 = greedy; >1 = beam search of this width.
    pub beam_width: usize,
}

impl GenerateSpec {
    /// A greedy decode request.
    pub fn greedy(prompt: Vec<usize>, max_new: usize, eos: Option<usize>) -> Self {
        GenerateSpec {
            prompt,
            max_new,
            eos,
            beam_width: 1,
        }
    }
}

/// A shared-prefix MCQ scoring request: sum log-likelihood of every option
/// after the prompt (the paper's detection-probe scoring), semantics of
/// [`infuserki_nn::sampler::score_options`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McqSpec {
    /// Prompt (question) token ids; must be non-empty.
    pub prompt: Vec<usize>,
    /// Candidate completions, each non-empty.
    pub options: Vec<Vec<usize>>,
}

/// What the request asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestKind {
    /// Greedy/beam generation.
    Generate(GenerateSpec),
    /// Shared-prefix option scoring.
    Mcq(McqSpec),
}

/// Why a request was turned away without running.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The bounded queue is at capacity — backpressure.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The request's worst-case KV-row reservation exceeds the *entire*
    /// budget; it could never be admitted.
    BudgetExceeded {
        /// Rows the request would need to reserve.
        cost: usize,
        /// The configured total budget.
        budget: usize,
    },
    /// Malformed request (empty prompt, out-of-vocabulary token, …).
    Invalid(String),
    /// The request pinned a knowledge-bundle version the registry has never
    /// loaded.
    UnknownBundle {
        /// The requested version.
        version: u32,
    },
    /// The scheduler is draining for shutdown.
    ShuttingDown,
    /// The tenant's fair-share queue is at capacity (multi-replica router
    /// front; single-scheduler serving never emits this).
    TenantQueueFull {
        /// The configured per-tenant queue capacity.
        capacity: usize,
    },
    /// The replica executing the request died before responding (router
    /// front; survivors keep serving, so a retry may succeed).
    ReplicaFailed,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            RejectReason::BudgetExceeded { cost, budget } => write!(
                f,
                "request needs {cost} KV rows but the whole budget is {budget}"
            ),
            RejectReason::Invalid(msg) => write!(f, "invalid request: {msg}"),
            RejectReason::UnknownBundle { version } => {
                write!(f, "unknown knowledge-bundle version {version}")
            }
            RejectReason::ShuttingDown => write!(f, "scheduler is shutting down"),
            RejectReason::TenantQueueFull { capacity } => {
                write!(f, "tenant queue full (capacity {capacity})")
            }
            RejectReason::ReplicaFailed => write!(f, "replica died before responding"),
        }
    }
}

/// Terminal state of a request.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Completed generation (new tokens only, exactly what the
    /// single-sequence sampler would emit).
    Generated {
        /// Generated token ids.
        tokens: Vec<usize>,
    },
    /// Completed MCQ scoring.
    McqScored {
        /// Per-option summed log-likelihood (bitwise equal at one kernel
        /// thread to [`infuserki_nn::sampler::score_options`]).
        scores: Vec<f32>,
        /// Length-normalized probabilities
        /// ([`infuserki_nn::sampler::option_probabilities`]).
        probabilities: Vec<f32>,
        /// Index of the highest-probability option.
        best: usize,
    },
    /// Turned away without running.
    Rejected(RejectReason),
    /// Cancelled via its [`CancelToken`].
    Cancelled,
    /// Its deadline passed while queued or running.
    Expired,
}

/// A response: the request id plus its terminal outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of [`Request::id`].
    pub id: RequestId,
    /// Terminal state.
    pub outcome: Outcome,
}

/// A scheduled unit of work: spec plus scheduling metadata and the channel
/// its single terminal [`Response`] is delivered on.
#[derive(Debug)]
pub struct Request {
    /// Identifier echoed on the response.
    pub id: RequestId,
    /// What to run.
    pub kind: RequestKind,
    /// Higher runs first; ties run in arrival order.
    pub priority: i32,
    /// Hard deadline; past it the request expires wherever it is.
    pub deadline: Option<Instant>,
    /// Knowledge-bundle version pin. `None` resolves to whichever version is
    /// *active at admission*; `Some(v)` runs on exactly version `v`
    /// (rejected at enqueue if `v` was never loaded). Either way the
    /// resolved version stays pinned until the request retires, even across
    /// promote/rollback.
    pub bundle: Option<u32>,
    /// Cooperative cancellation flag.
    pub cancel: CancelToken,
    /// Submission timestamp (TTFT baseline).
    pub submitted_at: Instant,
    /// Response channel.
    pub tx: mpsc::Sender<Response>,
}

impl Request {
    /// A default-priority, undeadlined request.
    pub fn new(id: RequestId, kind: RequestKind, tx: mpsc::Sender<Response>) -> Self {
        Request {
            id,
            kind,
            priority: 0,
            deadline: None,
            bundle: None,
            cancel: CancelToken::new(),
            submitted_at: Instant::now(),
            tx,
        }
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the hard deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Pins the request to a specific knowledge-bundle version.
    pub fn with_bundle(mut self, version: u32) -> Self {
        self.bundle = Some(version);
        self
    }

    /// Delivers the terminal outcome (ignoring a hung-up receiver).
    pub(crate) fn respond(&self, outcome: Outcome) {
        let _ = self.tx.send(Response {
            id: self.id,
            outcome,
        });
    }

    /// Whether the deadline (if any) has passed at `now`.
    pub(crate) fn expired_at(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

/// Client-side submission failure (synchronous, before queuing).
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The request can never run (validation or whole-budget failure).
    Rejected(RejectReason),
    /// The scheduler thread is gone.
    Disconnected,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected(r) => write!(f, "submission rejected: {r}"),
            SubmitError::Disconnected => write!(f, "scheduler disconnected"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_flips_once() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let t2 = t.clone();
        t2.cancel();
        assert!(t.is_cancelled(), "clones share the flag");
    }

    #[test]
    fn reject_reasons_render() {
        let r = RejectReason::BudgetExceeded {
            cost: 10,
            budget: 4,
        };
        assert!(r.to_string().contains("10"));
        assert!(RejectReason::QueueFull { capacity: 2 }
            .to_string()
            .contains("capacity 2"));
    }

    #[test]
    fn response_round_trips_through_channel() {
        let (tx, rx) = mpsc::channel();
        let req = Request::new(
            9,
            RequestKind::Generate(GenerateSpec::greedy(vec![1], 2, None)),
            tx,
        )
        .with_priority(3);
        assert_eq!(req.priority, 3);
        req.respond(Outcome::Cancelled);
        assert_eq!(
            rx.recv().unwrap(),
            Response {
                id: 9,
                outcome: Outcome::Cancelled
            }
        );
    }
}
