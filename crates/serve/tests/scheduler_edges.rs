//! Scheduler edge cases: idle steps, budget rejections, cancellation
//! mid-decode, deadline expiry during chunked prefill, queue backpressure,
//! and priority ordering.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use infuserki_nn::{ModelConfig, NoHook, TransformerLm};
use infuserki_serve::{
    GenerateSpec, McqSpec, Outcome, RejectReason, Request, RequestKind, Response, Scheduler,
    ServeConfig,
};
use infuserki_tensor::kernels;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn model() -> TransformerLm {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    TransformerLm::new(ModelConfig::tiny(30), &mut rng)
}

fn gen(prompt: Vec<usize>, max_new: usize) -> RequestKind {
    RequestKind::Generate(GenerateSpec::greedy(prompt, max_new, None))
}

fn submit(sched: &mut Scheduler<'_>, id: u64, kind: RequestKind) -> mpsc::Receiver<Response> {
    let (tx, rx) = mpsc::channel();
    sched.enqueue(Request::new(id, kind, tx));
    rx
}

#[test]
fn empty_queue_step_is_an_idle_no_op() {
    let m = model();
    let mut sched = Scheduler::new(&m, &NoHook, ServeConfig::default()).unwrap();
    for _ in 0..3 {
        let report = sched.step();
        assert!(!report.ran_forward);
        assert_eq!(report.active_lanes, 0);
        assert_eq!(report.queue_depth, 0);
    }
    assert!(!sched.has_work());
    assert_eq!(sched.snapshot().idle_steps, 3);
}

#[test]
fn request_larger_than_whole_budget_is_rejected_not_hung() {
    let m = model();
    let cfg = ServeConfig {
        kv_budget_rows: 4,
        // Single-row blocks make the reservation exact (no rounding).
        block_rows: 1,
        ..ServeConfig::default()
    };
    let mut sched = Scheduler::new(&m, &NoHook, cfg).unwrap();
    // Needs min(3 + 10, 32) = 13 rows against a 4-row budget.
    let rx = submit(&mut sched, 0, gen(vec![1, 2, 3], 10));
    match rx.try_recv().unwrap().outcome {
        Outcome::Rejected(RejectReason::BudgetExceeded { cost, budget }) => {
            assert_eq!(cost, 13);
            assert_eq!(budget, 4);
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    // The scheduler stays healthy: an admissible request still runs.
    let rx = submit(&mut sched, 1, gen(vec![1], 2));
    sched.run_until_idle();
    assert!(matches!(
        rx.try_recv().unwrap().outcome,
        Outcome::Generated { .. }
    ));
}

#[test]
fn oversized_mcq_is_rejected_with_budget_breakdown() {
    let m = model();
    let cfg = ServeConfig {
        kv_budget_rows: 8,
        // Single-row blocks make the reservation exact (no rounding).
        block_rows: 1,
        ..ServeConfig::default()
    };
    let mut sched = Scheduler::new(&m, &NoHook, cfg).unwrap();
    // Branch phase: 4 shared prompt rows + two branches owning 4 option
    // rows each (prompt+option-1 = 8 rows, minus the 4 shared) = 12 > 8.
    let rx = submit(
        &mut sched,
        0,
        RequestKind::Mcq(McqSpec {
            prompt: vec![1, 2, 3, 4],
            options: vec![vec![5, 6, 7, 8, 9], vec![7, 8, 9, 10, 11]],
        }),
    );
    assert!(matches!(
        rx.try_recv().unwrap().outcome,
        Outcome::Rejected(RejectReason::BudgetExceeded {
            cost: 12,
            budget: 8
        })
    ));
}

#[test]
fn cancellation_mid_decode_retires_the_lane() {
    kernels::set_num_threads(1);
    let m = model();
    let mut sched = Scheduler::new(&m, &NoHook, ServeConfig::default()).unwrap();
    let (tx, rx) = mpsc::channel();
    let req = Request::new(0, gen(vec![1, 2], 20), tx);
    let cancel = req.cancel.clone();
    sched.enqueue(req);
    // Admit + prefill, then at least one decode step.
    sched.step();
    sched.step();
    assert!(rx.try_recv().is_err(), "request should still be running");
    cancel.cancel();
    sched.step();
    assert_eq!(rx.try_recv().unwrap().outcome, Outcome::Cancelled);
    assert!(!sched.has_work(), "cancelled lane must leave the batch");
    assert_eq!(sched.snapshot().cancelled, 1);
}

#[test]
fn cancellation_while_queued_never_runs() {
    let m = model();
    let cfg = ServeConfig {
        max_batch: 1,
        ..ServeConfig::default()
    };
    let mut sched = Scheduler::new(&m, &NoHook, cfg).unwrap();
    let _rx0 = submit(&mut sched, 0, gen(vec![1], 3));
    let (tx, rx1) = mpsc::channel();
    let req = Request::new(1, gen(vec![2], 3), tx);
    let cancel = req.cancel.clone();
    sched.enqueue(req);
    cancel.cancel();
    sched.run_until_idle();
    assert_eq!(rx1.try_recv().unwrap().outcome, Outcome::Cancelled);
    // A queued death is its own metric: the request never touched the
    // batch, so the generic in-flight counter must stay untouched.
    let snap = sched.snapshot();
    assert_eq!(snap.cancelled_queued, 1);
    assert_eq!(snap.cancelled, 0);
}

#[test]
fn expiry_while_queued_counts_apart_from_in_flight_expiry() {
    kernels::set_num_threads(1);
    let m = model();
    let cfg = ServeConfig {
        max_batch: 1,
        ..ServeConfig::default()
    };
    let mut sched = Scheduler::new(&m, &NoHook, cfg).unwrap();
    // Request 0 occupies the single slot; request 1 waits in the queue
    // with a deadline that trips before a slot frees.
    let _rx0 = submit(&mut sched, 0, gen(vec![1], 6));
    let (tx, rx1) = mpsc::channel();
    let req = Request::new(1, gen(vec![2], 3), tx)
        .with_deadline(Instant::now() + Duration::from_millis(1));
    sched.enqueue(req);
    std::thread::sleep(Duration::from_millis(5));
    sched.run_until_idle();
    assert_eq!(rx1.try_recv().unwrap().outcome, Outcome::Expired);
    let snap = sched.snapshot();
    assert_eq!(snap.expired_queued, 1, "died in the queue, not in flight");
    assert_eq!(snap.expired, 0);
    assert_eq!(snap.completed, 1, "the running request still finished");
}

#[test]
fn deadline_expiry_during_chunked_prefill() {
    kernels::set_num_threads(1);
    let m = model();
    // One-token chunks: a 12-token prompt needs 12 prefill steps, so the
    // deadline trips while the request is still mid-prefill.
    let cfg = ServeConfig {
        prefill_chunk: 1,
        ..ServeConfig::default()
    };
    let mut sched = Scheduler::new(&m, &NoHook, cfg).unwrap();
    let (tx, rx) = mpsc::channel();
    let prompt: Vec<usize> = (1..13).collect();
    let req = Request::new(0, gen(prompt, 4), tx)
        .with_deadline(Instant::now() + Duration::from_millis(5));
    sched.enqueue(req);
    sched.step(); // admit + first prefill chunk
    assert!(sched.has_work());
    std::thread::sleep(Duration::from_millis(10));
    sched.step(); // sweep sees the expired deadline
    assert_eq!(rx.try_recv().unwrap().outcome, Outcome::Expired);
    assert!(!sched.has_work());
    assert_eq!(sched.snapshot().expired, 1);
}

#[test]
fn queue_full_is_typed_backpressure() {
    let m = model();
    let cfg = ServeConfig {
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let mut sched = Scheduler::new(&m, &NoHook, cfg).unwrap();
    let _rx0 = submit(&mut sched, 0, gen(vec![1], 2));
    let rx1 = submit(&mut sched, 1, gen(vec![2], 2));
    assert!(matches!(
        rx1.try_recv().unwrap().outcome,
        Outcome::Rejected(RejectReason::QueueFull { capacity: 1 })
    ));
}

#[test]
fn priority_beats_arrival_order() {
    kernels::set_num_threads(1);
    let m = model();
    let cfg = ServeConfig {
        max_batch: 1,
        ..ServeConfig::default()
    };
    let mut sched = Scheduler::new(&m, &NoHook, cfg).unwrap();
    let (tx0, rx0) = mpsc::channel();
    sched.enqueue(Request::new(0, gen(vec![1], 2), tx0));
    let (tx1, rx1) = mpsc::channel();
    sched.enqueue(Request::new(1, gen(vec![2], 2), tx1).with_priority(5));
    // One slot: the high-priority late arrival must finish first.
    let mut finish_order = Vec::new();
    while sched.has_work() {
        sched.step();
        if finish_order.len() < 2 {
            if !finish_order.contains(&1) && rx1.try_recv().is_ok() {
                finish_order.push(1);
            }
            if !finish_order.contains(&0) && rx0.try_recv().is_ok() {
                finish_order.push(0);
            }
        }
    }
    assert_eq!(finish_order, vec![1, 0]);
}

#[test]
fn drain_rejects_queued_but_finishes_running() {
    kernels::set_num_threads(1);
    let m = model();
    let cfg = ServeConfig {
        max_batch: 1,
        ..ServeConfig::default()
    };
    let mut sched = Scheduler::new(&m, &NoHook, cfg).unwrap();
    let rx0 = submit(&mut sched, 0, gen(vec![1], 2));
    let rx1 = submit(&mut sched, 1, gen(vec![2], 2));
    sched.step(); // request 0 admitted, request 1 queued
    sched.begin_drain();
    sched.reject_queued_for_shutdown();
    sched.run_until_idle();
    assert!(matches!(
        rx0.try_recv().unwrap().outcome,
        Outcome::Generated { .. }
    ));
    assert!(matches!(
        rx1.try_recv().unwrap().outcome,
        Outcome::Rejected(RejectReason::ShuttingDown)
    ));
    // New submissions during drain are turned away.
    let rx2 = submit(&mut sched, 2, gen(vec![3], 2));
    assert!(matches!(
        rx2.try_recv().unwrap().outcome,
        Outcome::Rejected(RejectReason::ShuttingDown)
    ));
}
