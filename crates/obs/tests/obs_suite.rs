//! Integration suite for the observability crate: histogram bucket and
//! quantile correctness, concurrent counter increments, snapshot JSON, and
//! Chrome-trace well-formedness (parsed with the workspace serde_json
//! shim — the same parser the serve wire protocol uses).

use std::sync::Arc;
use std::thread;

use infuserki_obs as obs;
use serde::Value;

#[test]
fn concurrent_counter_increments_are_lossless() {
    let reg = obs::Registry::new();
    let c = reg.counter("hammered");
    let threads = 8;
    let per_thread = 10_000u64;
    let mut handles = Vec::new();
    for _ in 0..threads {
        let c = Arc::clone(&c);
        handles.push(thread::spawn(move || {
            for _ in 0..per_thread {
                c.inc();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.get(), threads * per_thread);
}

#[test]
fn concurrent_histogram_records_are_lossless() {
    let reg = obs::Registry::new();
    let h = reg.histogram_with("lat", || {
        obs::Histogram::with_bounds(vec![1.0, 2.0, 4.0, 8.0])
    });
    let threads = 4;
    let per_thread = 5_000;
    let mut handles = Vec::new();
    for t in 0..threads {
        let h = Arc::clone(&h);
        handles.push(thread::spawn(move || {
            for i in 0..per_thread {
                h.record(((t * per_thread + i) % 10) as f64);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = h.summary();
    assert_eq!(s.count, (threads * per_thread) as u64);
    // Each thread recorded 0..=9 cyclically: sum = 45 per 10 samples.
    let expect_sum = (threads * per_thread / 10 * 45) as f64;
    assert!(
        (s.sum - expect_sum).abs() < 1e-6,
        "CAS sum lost updates: {} vs {expect_sum}",
        s.sum
    );
    assert_eq!(s.min, 0.0);
    assert_eq!(s.max, 9.0);
}

#[test]
fn quantiles_track_a_known_distribution() {
    let h = obs::Histogram::exponential(1.0, 2.0, 12);
    // 1000 samples uniform on (0, 100]: quantile estimates must land
    // within the owning power-of-two bucket of the exact value.
    for i in 1..=1000 {
        h.record(i as f64 / 10.0);
    }
    let p50 = h.quantile(0.5);
    assert!((32.0..=64.0).contains(&p50), "p50 = {p50}");
    let p99 = h.quantile(0.99);
    assert!((64.0..=100.0).contains(&p99), "p99 = {p99}");
    assert!(h.quantile(1.0) <= 100.0);
    assert!(h.quantile(0.0) >= 0.1);
}

#[test]
fn snapshot_json_parses_with_workspace_serde() {
    let reg = obs::Registry::new();
    reg.counter("serve.completed").add(3);
    reg.gauge("serve.queue_depth").set(2);
    reg.histogram("serve.ttft_ms").record(12.5);
    let json = reg.snapshot().to_json();
    let v: Value = serde_json::from_str(&json).expect("snapshot JSON parses");
    assert_eq!(
        v.get_field("serve.completed").and_then(Value::as_f64),
        Some(3.0)
    );
    assert_eq!(
        v.get_field("serve.queue_depth").and_then(Value::as_f64),
        Some(2.0)
    );
    let h = v.get_field("serve.ttft_ms").expect("histogram object");
    assert_eq!(h.get_field("count").and_then(Value::as_f64), Some(1.0));
    assert_eq!(h.get_field("p50").and_then(Value::as_f64), Some(12.5));
}

#[test]
fn chrome_trace_is_well_formed_json() {
    obs::clear_trace();
    obs::set_enabled(true);
    {
        let _outer = obs::span("suite.outer");
        for _ in 0..3 {
            let _inner = obs::span("suite.inner");
            std::hint::black_box(0u64);
        }
    }
    obs::set_enabled(false);
    let json = obs::chrome_trace_json();
    let v: Value = serde_json::from_str(&json).expect("trace JSON parses");
    let events = match v.get_field("traceEvents") {
        Some(Value::Array(items)) => items,
        other => panic!("traceEvents missing/not array: {other:?}"),
    };
    let mut slices = 0;
    let mut metas = 0;
    for ev in events {
        match ev.get_field("ph").and_then(Value::as_str) {
            Some("X") => {
                slices += 1;
                // Complete events need ts + dur in µs; dur must be >= 1
                // so chrome://tracing renders the slice.
                assert!(ev.get_field("ts").and_then(Value::as_f64).is_some());
                assert!(ev.get_field("dur").and_then(Value::as_f64).unwrap() >= 1.0);
                assert!(ev.get_field("name").and_then(Value::as_str).is_some());
                assert_eq!(ev.get_field("pid").and_then(Value::as_f64), Some(1.0));
            }
            Some("M") => {
                metas += 1;
                assert_eq!(
                    ev.get_field("name").and_then(Value::as_str),
                    Some("thread_name")
                );
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(slices >= 4, "outer + 3 inner spans, got {slices}");
    assert!(metas >= 1, "at least this thread's name event");
}

#[test]
fn disabled_spans_cost_no_events() {
    obs::clear_trace();
    obs::set_enabled(false);
    for _ in 0..100 {
        let _s = obs::span("never.recorded");
    }
    assert!(!obs::chrome_trace_json().contains("never.recorded"));
}

#[test]
fn perf_suite_round_trips_through_serde() {
    let mut suite = obs::PerfSuite::new("perf_suite");
    suite.push(
        obs::PerfRecord::new("matmul_256")
            .metric("gflops", 42.5)
            .metric("wall_ms", 1.25),
    );
    let v: Value = serde_json::from_str(&suite.to_json()).expect("suite JSON parses");
    assert_eq!(
        v.get_field("suite").and_then(Value::as_str),
        Some("perf_suite")
    );
    let gflops = v
        .get_field("benches")
        .and_then(|b| b.get_field("matmul_256"))
        .and_then(|m| m.get_field("gflops"))
        .and_then(Value::as_f64);
    assert_eq!(gflops, Some(42.5));
}
