//! Metrics registry: named counters, gauges, and fixed-bucket histograms.
//!
//! Handles are `Arc`-shared atomics — hot paths update them with relaxed
//! operations and never lock. The registry itself is only locked on
//! get-or-create and on snapshot, both cold.
//!
//! Histograms use fixed bucket upper bounds chosen at construction;
//! recording is one bucket search (over ~30 bounds) plus three relaxed
//! atomic updates, and p50/p95/p99 are estimated by linear interpolation
//! inside the owning bucket, clamped to the observed min/max so a
//! single-sample histogram reports that sample exactly.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::{json_number, json_string};

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (usable standalone, outside any registry).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value (queue depth, live rows, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is below it (high-water marks).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram of non-negative samples (latencies, sizes).
///
/// Negative samples are clamped to zero. `bounds` are ascending bucket
/// upper bounds; an implicit overflow bucket catches everything above the
/// last bound.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Σ samples, stored as `f64` bits and accumulated by CAS.
    sum_bits: AtomicU64,
    /// Smallest sample's bits (non-negative f64 bits order like the values).
    min_bits: AtomicU64,
    /// Largest sample's bits.
    max_bits: AtomicU64,
}

impl Histogram {
    /// A histogram with explicit ascending upper bounds (must be non-empty,
    /// strictly increasing, and non-negative).
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds[0] >= 0.0,
            "histogram bounds must be ascending and non-negative"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Exponential bounds: `start, start·factor, …` (`n` bounds).
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && n > 0, "bad exponential spec");
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Histogram::with_bounds(bounds)
    }

    /// The default latency histogram: 5µs to ~84s in ×2 steps
    /// (milliseconds).
    pub fn time_ms() -> Self {
        Histogram::exponential(0.005, 2.0, 24)
    }

    /// Records one sample (negatives clamp to 0).
    pub fn record(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64 bits of non-negative values order like the values themselves.
        self.min_bits.fetch_min(v.to_bits(), Ordering::Relaxed);
        self.max_bits.fetch_max(v.to_bits(), Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Records a duration in milliseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64() * 1e3);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): linear interpolation inside
    /// the owning bucket, clamped to the observed `[min, max]`. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let target = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= target {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    max
                };
                let frac = (target - cum as f64).max(0.0) / c as f64;
                let est = lower + (upper - lower) * frac;
                return est.clamp(min, max);
            }
            cum += c;
        }
        max
    }

    /// Point-in-time summary of this histogram.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let (min, max) = if count == 0 {
            (0.0, 0.0)
        } else {
            (
                f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
                f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            )
        };
        HistogramSummary {
            count,
            sum: self.sum(),
            min,
            max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Derived histogram statistics, as exported in snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

impl HistogramSummary {
    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Cheap to create; subsystems that are
/// instantiated repeatedly (one scheduler per test, say) own their own so
/// concurrent instances never share counters. Process-wide telemetry uses
/// [`global`].
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or creates the counter `name`.
    ///
    /// # Panics
    /// Panics if `name` is registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` already registered with another kind"),
        }
    }

    /// Gets or creates the gauge `name` (same panic contract as
    /// [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` already registered with another kind"),
        }
    }

    /// Gets or creates the histogram `name` with the default latency
    /// buckets ([`Histogram::time_ms`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, Histogram::time_ms)
    }

    /// Gets or creates the histogram `name`, building it with `make` on
    /// first registration (same panic contract as [`Registry::counter`]).
    pub fn histogram_with(&self, name: &str, make: impl FnOnce() -> Histogram) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(make())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` already registered with another kind"),
        }
    }

    /// Point-in-time snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.lock().unwrap();
        let entries = m
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { entries }
    }
}

/// The process-wide registry (kernel, engine, and trainer telemetry).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A metric's exported value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram statistics.
    Histogram(HistogramSummary),
}

/// Point-in-time view of a registry, name-sorted.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs, ascending by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Serializes the snapshot as one JSON object: counters and gauges as
    /// numbers, histograms as `{count, sum, min, max, p50, p95, p99}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
            out.push(':');
            match value {
                MetricValue::Counter(v) => out.push_str(&format!("{v}")),
                MetricValue::Gauge(v) => out.push_str(&format!("{v}")),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        h.count,
                        json_number(h.sum),
                        json_number(h.min),
                        json_number(h.max),
                        json_number(h.p50),
                        json_number(h.p95),
                        json_number(h.p99),
                    ));
                }
            }
        }
        out.push('}');
        out
    }

    /// Appends this snapshot as one line to a JSONL file, creating it (and
    /// parent directories) if needed.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(self.to_json().as_bytes())?;
        f.write_all(b"\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("g");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        g.set_max(3);
        assert_eq!(g.get(), 5, "set_max never lowers");
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn registry_returns_same_handle_for_same_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn histogram_buckets_and_quantiles_uniform() {
        // 1..=100 into 10-wide linear buckets: exact quantiles are known and
        // interpolation must land within one bucket width of them.
        let h = Histogram::with_bounds((1..=10).map(|i| i as f64 * 10.0).collect());
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.sum() - 5050.0).abs() < 1e-9);
        assert!((h.quantile(0.50) - 50.0).abs() <= 10.0);
        assert!((h.quantile(0.95) - 95.0).abs() <= 10.0);
        assert!((h.quantile(0.99) - 99.0).abs() <= 10.0);
        let s = h.summary();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_single_sample_reports_it_exactly() {
        let h = Histogram::time_ms();
        h.record(3.25);
        // min/max clamping pins every quantile to the lone sample.
        assert_eq!(h.quantile(0.5), 3.25);
        assert_eq!(h.quantile(0.99), 3.25);
    }

    #[test]
    fn histogram_overflow_bucket_uses_observed_max() {
        let h = Histogram::with_bounds(vec![1.0]);
        h.record(50.0);
        h.record(90.0);
        // Interpolation in the overflow bucket runs up to the observed max
        // (not infinity), and clamping keeps it inside [min, max].
        let p99 = h.quantile(0.99);
        assert!((50.0..=90.0).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 90.0);
        assert_eq!(h.summary().max, 90.0);
    }

    #[test]
    fn histogram_clamps_negatives_and_empty_is_zero() {
        let h = Histogram::time_ms();
        assert_eq!(h.quantile(0.5), 0.0);
        h.record(-5.0);
        assert_eq!(h.summary().min, 0.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_sorted_lookup_and_json() {
        let r = Registry::new();
        r.counter("b.count").add(2);
        r.gauge("a.depth").set(-3);
        r.histogram("c.lat").record(1.0);
        let s = r.snapshot();
        assert_eq!(s.entries[0].0, "a.depth");
        assert_eq!(s.get("b.count"), Some(&MetricValue::Counter(2)));
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"a.depth\":-3"));
        assert!(j.contains("\"c.lat\":{\"count\":1"));
    }
}
