//! RAII tracing spans recorded into per-thread ring buffers, exported as
//! Chrome trace-event JSON (loadable in `chrome://tracing` / Perfetto).
//!
//! The enable flag is the whole disabled-path cost: [`span`] loads one
//! relaxed `AtomicBool` and, when tracing is off, returns a guard whose
//! `Drop` is a no-op — no timestamp, no allocation, no lock. When tracing
//! is on, each completed span pushes a fixed-size record into its thread's
//! ring buffer (a bounded, wrapping `Vec`), so long traces keep the most
//! recent events instead of growing without bound.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json_string;

/// Events kept per thread before the ring wraps (newest win).
const RING_CAPACITY: usize = 16_384;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether spans are currently being recorded.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The instant all trace timestamps are measured from. Initialised lazily
/// by the first span so every recorded `ts` is non-negative.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[derive(Debug, Clone, Copy)]
struct SpanEvent {
    name: &'static str,
    start_ns: u64,
    dur_ns: u64,
}

#[derive(Debug)]
struct Ring {
    events: Vec<SpanEvent>,
    /// Next write position; total pushes mod capacity once full.
    head: usize,
    wrapped: bool,
}

impl Ring {
    fn new() -> Self {
        Ring {
            events: Vec::new(),
            head: 0,
            wrapped: false,
        }
    }

    fn push(&mut self, ev: SpanEvent) {
        if self.events.len() < RING_CAPACITY {
            self.events.push(ev);
            self.head = self.events.len() % RING_CAPACITY;
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % RING_CAPACITY;
            self.wrapped = true;
        }
    }

    /// Events in recording order (oldest surviving first).
    fn ordered(&self) -> Vec<SpanEvent> {
        if !self.wrapped {
            self.events.clone()
        } else {
            let mut out = Vec::with_capacity(self.events.len());
            out.extend_from_slice(&self.events[self.head..]);
            out.extend_from_slice(&self.events[..self.head]);
            out
        }
    }

    fn clear(&mut self) {
        self.events.clear();
        self.head = 0;
        self.wrapped = false;
    }
}

#[derive(Debug)]
struct ThreadRing {
    tid: u64,
    name: String,
    ring: Mutex<Ring>,
}

/// Every thread that ever recorded a span registers its ring here, so the
/// exporter sees rings of threads that have since exited.
fn all_rings() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: Arc<ThreadRing> = {
        let mut all = all_rings().lock().unwrap();
        let tid = all.len() as u64 + 1;
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{tid}"));
        let tr = Arc::new(ThreadRing {
            tid,
            name,
            ring: Mutex::new(Ring::new()),
        });
        all.push(Arc::clone(&tr));
        tr
    };
}

/// RAII span timer: created by [`span`], records its duration into the
/// current thread's ring buffer when dropped (if tracing was enabled at
/// creation).
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    /// `None` when tracing was disabled at creation — drop is then free.
    start: Option<Instant>,
}

/// Starts a span named `name`. When tracing is disabled this is one
/// relaxed atomic load and the returned guard does nothing on drop.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, start: None };
    }
    // Touch the epoch before reading the clock so start >= epoch.
    epoch();
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let start_ns = start.duration_since(epoch()).as_nanos() as u64;
        let ev = SpanEvent {
            name: self.name,
            start_ns,
            dur_ns,
        };
        LOCAL_RING.with(|tr| tr.ring.lock().unwrap().push(ev));
    }
}

/// Discards all recorded spans (rings stay registered).
pub fn clear_trace() {
    for tr in all_rings().lock().unwrap().iter() {
        tr.ring.lock().unwrap().clear();
    }
}

/// Renders everything recorded so far as Chrome trace-event JSON:
/// `{"traceEvents": [...]}` with complete (`"ph":"X"`) events in
/// microseconds plus a `thread_name` metadata event per thread.
pub fn chrome_trace_json() -> String {
    let rings: Vec<Arc<ThreadRing>> = all_rings().lock().unwrap().clone();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        out.push_str(&s);
        *first = false;
    };
    for tr in &rings {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                tr.tid,
                json_string(&tr.name)
            ),
            &mut first,
        );
    }
    let mut events: Vec<(u64, SpanEvent)> = Vec::new();
    for tr in &rings {
        for ev in tr.ring.lock().unwrap().ordered() {
            events.push((tr.tid, ev));
        }
    }
    events.sort_by_key(|(_, ev)| ev.start_ns);
    for (tid, ev) in events {
        push(
            format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":{},\"ts\":{},\"dur\":{}}}",
                tid,
                json_string(ev.name),
                ev.start_ns / 1_000,
                // Never emit dur 0: chrome://tracing drops zero-width slices.
                (ev.dur_ns / 1_000).max(1),
            ),
            &mut first,
        );
    }
    out.push_str("]}");
    out
}

/// Writes [`chrome_trace_json`] to `path`, creating parent directories.
pub fn write_chrome_trace(path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, chrome_trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share process-global state (ENABLED + the rings), so they
    // serialise on one mutex.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = guard();
        clear_trace();
        set_enabled(false);
        {
            let _s = span("invisible");
        }
        assert!(!chrome_trace_json().contains("invisible"));
    }

    #[test]
    fn enabled_span_appears_in_trace() {
        let _g = guard();
        clear_trace();
        set_enabled(true);
        {
            let _s = span("visible.work");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_enabled(false);
        let json = chrome_trace_json();
        assert!(json.contains("\"name\":\"visible.work\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("thread_name"));
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let mut r = Ring::new();
        for i in 0..(RING_CAPACITY + 10) {
            r.push(SpanEvent {
                name: "x",
                start_ns: i as u64,
                dur_ns: 1,
            });
        }
        let ord = r.ordered();
        assert_eq!(ord.len(), RING_CAPACITY);
        assert_eq!(ord[0].start_ns, 10);
        assert_eq!(ord.last().unwrap().start_ns, (RING_CAPACITY + 9) as u64);
    }

    #[test]
    fn clear_trace_empties_rings() {
        let _g = guard();
        set_enabled(true);
        {
            let _s = span("to.clear");
        }
        set_enabled(false);
        clear_trace();
        assert!(!chrome_trace_json().contains("to.clear"));
    }
}
