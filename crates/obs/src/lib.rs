//! # infuserki-obs
//!
//! The workspace's shared observability layer: a metrics registry
//! (counters, gauges, fixed-bucket histograms with quantile estimates),
//! RAII tracing spans exported as Chrome trace-event JSON, and
//! machine-readable perf records for the CI bench-regression gate.
//!
//! Three design constraints shape everything here:
//!
//! 1. **Zero overhead when disabled.** Tracing is off by default; the
//!    disabled hot path of [`span`] is a single relaxed atomic load and no
//!    allocation, timestamp, or lock. Metric handles are plain atomics —
//!    an increment is one relaxed `fetch_add` — so always-on counters are
//!    safe even inside the kernel dispatch path. See DESIGN.md §9 for the
//!    contract.
//! 2. **No dependencies.** The tensor kernels link this crate, so it must
//!    not pull anything into their build. JSON is emitted by hand
//!    (numbers use Rust's shortest-round-trip formatting, the same
//!    contract as the workspace's serde_json shim).
//! 3. **Instance registries where isolation matters.** [`global`] serves
//!    process-wide telemetry (kernels, engine, trainer), while subsystems
//!    that are constructed many times per process — e.g. one scheduler per
//!    test — build their own [`Registry`] so snapshots never interleave.
//!
//! Quick tour:
//!
//! ```
//! use infuserki_obs as obs;
//!
//! // Metrics: get-or-create handles, then hammer them from any thread.
//! let reg = obs::Registry::new();
//! let reqs = reg.counter("serve.completed");
//! reqs.inc();
//! let lat = reg.histogram("serve.ttft_ms");
//! lat.record(12.5);
//! assert!(reg.snapshot().to_json().contains("serve.completed"));
//!
//! // Spans: RAII timers, recorded only while tracing is enabled.
//! obs::set_enabled(true);
//! {
//!     let _s = obs::span("demo.work");
//! } // recorded on drop
//! obs::set_enabled(false);
//! let trace = obs::chrome_trace_json();
//! assert!(trace.contains("demo.work"));
//! ```

pub mod perf;
pub mod registry;
pub mod span;

pub use perf::{PerfRecord, PerfSuite};
pub use registry::{
    global, Counter, Gauge, Histogram, HistogramSummary, MetricValue, Registry, Snapshot,
};
pub use span::{
    chrome_trace_json, clear_trace, enabled, set_enabled, span, write_chrome_trace, SpanGuard,
};

use std::sync::Mutex;

/// Environment knob enabling tracing spans at process start: any non-empty
/// value other than `0` turns them on (see [`init_from_env`]).
pub const TRACE_ENV: &str = "INFUSERKI_TRACE";

/// Enables spans if [`TRACE_ENV`] is set (binaries call this once at
/// startup; libraries never need to).
pub fn init_from_env() {
    if let Ok(v) = std::env::var(TRACE_ENV) {
        if !v.is_empty() && v != "0" {
            set_enabled(true);
        }
    }
}

/// Current training-phase label (see [`set_phase`]); empty outside training.
static PHASE: Mutex<String> = Mutex::new(String::new());

/// Labels subsequent trainer metrics with a phase name (`"infuser"`,
/// `"qa"`, `"rc"`): the generic training loop prefixes its per-step
/// metrics with `train.<phase>.` so the three InfuserKI phases stay
/// distinguishable in one registry.
pub fn set_phase(name: &str) {
    name.clone_into(&mut PHASE.lock().unwrap());
}

/// The current phase label (empty when none is set).
pub fn phase() -> String {
    PHASE.lock().unwrap().clone()
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite `f64` as JSON (shortest round-trip); non-finite values
/// render as `null`, matching serde_json.
pub(crate) fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_number_handles_non_finite() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    fn phase_label_round_trips() {
        set_phase("qa");
        assert_eq!(phase(), "qa");
        set_phase("");
        assert_eq!(phase(), "");
    }
}
