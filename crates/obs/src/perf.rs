//! Machine-readable perf records for the CI bench-regression gate.
//!
//! Bench binaries build a [`PerfSuite`] of named records (each a flat map
//! of metric name → value, higher-is-better for throughputs) and write it
//! as a `BENCH_<suite>.json` artifact. The gate binary compares a fresh
//! suite against the committed `results/bench_baseline.json`; this module
//! only *emits* — parsing lives with the gate, which has the serde_json
//! shim.

use std::path::Path;

use crate::{json_number, json_string};

/// One benchmark's measurements: `(metric, value)` pairs in insertion
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// Bench name, e.g. `"matmul_256"`.
    pub name: String,
    /// Flat metric map; throughput metrics are higher-is-better.
    pub metrics: Vec<(String, f64)>,
}

impl PerfRecord {
    /// An empty record named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        PerfRecord {
            name: name.into(),
            metrics: Vec::new(),
        }
    }

    /// Adds (or appends) a metric; builder-style.
    pub fn metric(mut self, name: impl Into<String>, value: f64) -> Self {
        self.metrics.push((name.into(), value));
        self
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// A named set of [`PerfRecord`]s — the unit the regression gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfSuite {
    /// Suite name, e.g. `"perf_suite"`.
    pub suite: String,
    /// Records in run order.
    pub records: Vec<PerfRecord>,
}

impl PerfSuite {
    /// An empty suite named `suite`.
    pub fn new(suite: impl Into<String>) -> Self {
        PerfSuite {
            suite: suite.into(),
            records: Vec::new(),
        }
    }

    /// Appends a record.
    pub fn push(&mut self, record: PerfRecord) {
        self.records.push(record);
    }

    /// Looks up a record by bench name.
    pub fn get(&self, name: &str) -> Option<&PerfRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// Serializes as `{"suite": ..., "benches": {name: {metric: value}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"suite\":");
        out.push_str(&json_string(&self.suite));
        out.push_str(",\"benches\":{");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(&r.name));
            out.push_str(":{");
            for (j, (m, v)) in r.metrics.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(m));
                out.push(':');
                out.push_str(&json_number(*v));
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Writes the suite JSON to `path`, creating parent directories.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_json_shape() {
        let mut s = PerfSuite::new("perf_suite");
        s.push(
            PerfRecord::new("matmul_256")
                .metric("gflops", 12.5)
                .metric("wall_ms", 3.0),
        );
        s.push(PerfRecord::new("decode").metric("tok_per_s", 1000.0));
        let j = s.to_json();
        assert_eq!(
            j,
            "{\"suite\":\"perf_suite\",\"benches\":{\
             \"matmul_256\":{\"gflops\":12.5,\"wall_ms\":3},\
             \"decode\":{\"tok_per_s\":1000}}}"
        );
        assert_eq!(s.get("decode").unwrap().get("tok_per_s"), Some(1000.0));
    }
}
