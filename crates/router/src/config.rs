//! Router configuration: replica count, per-tenant shaping knobs, and
//! affinity tuning on top of the per-replica [`ServeConfig`].

use infuserki_serve::ServeConfig;

/// Configuration of a multi-replica router front.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Number of model replicas, each its own scheduler thread with its own
    /// KV block pool and budget.
    pub replicas: usize,
    /// Per-replica scheduler configuration (every replica gets a clone).
    pub serve: ServeConfig,
    /// Bound of each tenant's pending queue; a submission past it is
    /// rejected [`infuserki_serve::RejectReason::TenantQueueFull`]
    /// (backpressure per tenant, so one tenant's backlog never consumes
    /// another's headroom).
    pub tenant_queue_capacity: usize,
    /// Maximum requests a tenant may have in flight across the fleet
    /// (dispatched, not yet responded). 0 = unlimited.
    pub max_tenant_inflight: usize,
    /// Token-bucket burst size per tenant. Only meaningful with
    /// [`RouterConfig::tenant_refill_per_sec`] > 0; clamped up to 1.
    pub tenant_bucket_capacity: f64,
    /// Token-bucket refill rate per tenant (requests/second). Each dispatch
    /// spends one token; an empty bucket delays (shapes) the tenant's queue
    /// rather than rejecting. 0 disables rate limiting.
    pub tenant_refill_per_sec: f64,
    /// How many leading prompt blocks (of `serve.block_rows` tokens each)
    /// at most feed the affinity hash. Longer prompts hash the same leading
    /// chunk, so a template and its continuations agree on a home replica.
    pub affinity_blocks: usize,
    /// Load slack for affinity dispatch: when the affinity target's
    /// outstanding count exceeds the least-loaded replica's by more than
    /// this, the request goes least-loaded instead.
    pub imbalance_slack: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            replicas: 2,
            serve: ServeConfig::default(),
            tenant_queue_capacity: 256,
            max_tenant_inflight: 0,
            tenant_bucket_capacity: 0.0,
            tenant_refill_per_sec: 0.0,
            affinity_blocks: 4,
            imbalance_slack: 4,
        }
    }
}

impl RouterConfig {
    /// Checks internal consistency; every field that is a count must be
    /// meaningful and the serve config must validate itself.
    pub fn validate(&self) -> Result<(), String> {
        if self.replicas == 0 {
            return Err("router: replicas must be at least 1".into());
        }
        if self.tenant_queue_capacity == 0 {
            return Err("router: tenant_queue_capacity must be at least 1".into());
        }
        if self.affinity_blocks == 0 {
            return Err("router: affinity_blocks must be at least 1".into());
        }
        if self.tenant_refill_per_sec < 0.0 || self.tenant_bucket_capacity < 0.0 {
            return Err("router: token-bucket knobs must be non-negative".into());
        }
        self.serve.validate().map_err(|e| format!("router: {e}"))
    }

    /// Whether per-tenant token-bucket rate limiting is enabled.
    pub fn rate_limited(&self) -> bool {
        self.tenant_refill_per_sec > 0.0
    }

    /// Effective burst size when rate limiting is on (at least one token,
    /// or dispatch could never proceed).
    pub fn bucket_capacity(&self) -> f64 {
        self.tenant_bucket_capacity.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(RouterConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_counts_are_rejected() {
        let mut c = RouterConfig {
            replicas: 0,
            ..RouterConfig::default()
        };
        assert!(c.validate().is_err());
        c.replicas = 1;
        c.tenant_queue_capacity = 0;
        assert!(c.validate().is_err());
        c.tenant_queue_capacity = 8;
        c.affinity_blocks = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bucket_capacity_clamps_to_one() {
        let c = RouterConfig {
            tenant_refill_per_sec: 5.0,
            tenant_bucket_capacity: 0.25,
            ..RouterConfig::default()
        };
        assert!(c.rate_limited());
        assert_eq!(c.bucket_capacity(), 1.0);
    }
}
