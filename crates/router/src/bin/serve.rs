//! `serve` — the JSONL serving front-end.
//!
//! ```text
//! serve --demo --port 0
//! serve --model model.bin --port 7878 --budget 4096 --batch 16 --chunk 32
//! serve --demo --replicas 4 --tenant-rate 50 --tenant-burst 10
//! ```
//!
//! Binds a `TcpListener`, spawns the continuous-batching scheduler — or,
//! with `--replicas N` (N > 1), a router front over N independent
//! scheduler replicas — prints `LISTENING <addr>` on stdout (port 0 binds
//! an ephemeral port — parse the line to find it), then serves
//! newline-delimited JSON until a peer sends `{"op":"shutdown"}`. See the
//! serve/router crate docs and README "Serving" for the wire format.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use infuserki_ingest::{BundlePublisher, PipelineConfig, UpdatePipeline};
use infuserki_nn::{NoHook, TransformerLm};
use infuserki_obs as obs;
use infuserki_router::{spawn_router, RouterConfig};
use infuserki_serve::{
    demo_model, load_tokenizer, server, spawn_scheduler, spawn_watcher, ControlOp, ControlOutcome,
    Frontend, ServeConfig,
};

struct Args {
    host: String,
    port: u16,
    model: Option<String>,
    demo: bool,
    cfg: ServeConfig,
    /// Model replicas behind the front; 1 serves through a single
    /// scheduler exactly as before, >1 spawns the router.
    replicas: usize,
    /// Router tenant shaping (only meaningful with --replicas > 1).
    router: RouterConfig,
    /// Knowledge bundles staged (in order) before the listener comes up;
    /// repeatable. The last one is promoted to active.
    bundles: Vec<String>,
    /// Enable tracing spans and write a Chrome trace here at shutdown.
    trace_out: Option<String>,
    /// WAL directory to watch: runs the online knowledge-update pipeline
    /// in-process, publishing live bundles through the registry.
    watch_kg: Option<String>,
    /// Tokenizer JSON the pipeline phrases MCQs with (required with
    /// --watch-kg; must match the served model's vocabulary).
    watch_tokenizer: Option<String>,
    /// Optional `PipelineConfig` JSON overriding the pipeline defaults.
    watch_config: Option<String>,
}

fn usage() -> &'static str {
    "usage: serve (--demo | --model PATH) [--host H] [--port P] \
     [--budget ROWS] [--batch N] [--chunk N] [--queue N] [--threads N] \
     [--replicas N] [--tenant-queue N] [--tenant-inflight N] \
     [--tenant-rate R] [--tenant-burst B] \
     [--bundle PATH]... [--trace-out PATH] \
     [--watch-kg DIR --watch-tokenizer PATH [--watch-config PATH]]\n\
     --port 0 binds an ephemeral port; the chosen address is printed as\n\
     `LISTENING <addr>` on stdout. --replicas N > 1 serves through the\n\
     multi-replica router: N independent schedulers (each its own KV pool\n\
     and budget) behind prefix-affinity dispatch, per-tenant fair-share\n\
     queues (bound --tenant-queue, in-flight cap --tenant-inflight, token\n\
     bucket --tenant-rate req/s with burst --tenant-burst), and atomic\n\
     bundle fan-out. --bundle (repeatable) stages knowledge bundles at\n\
     startup and promotes the last one; more can be loaded live via the\n\
     load_bundle/promote/rollback wire ops. --watch-kg runs the online\n\
     knowledge-update pipeline in-process over a WAL directory (append\n\
     facts with `kg_ingest`): batched deltas are trained and published\n\
     live through the NR promote gate (fleet-wide and all-or-none under\n\
     --replicas). --watch-tokenizer is the tokenizer JSON matching the\n\
     served model; --watch-config overrides `PipelineConfig` defaults.\n\
     --trace-out enables tracing spans and writes a\n\
     chrome://tracing-loadable JSON trace to PATH at shutdown."
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        host: "127.0.0.1".to_string(),
        port: 7878,
        model: None,
        demo: false,
        cfg: ServeConfig::default(),
        replicas: 1,
        router: RouterConfig::default(),
        bundles: Vec::new(),
        trace_out: None,
        watch_kg: None,
        watch_tokenizer: None,
        watch_config: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--demo" => args.demo = true,
            "--model" => args.model = Some(value("--model")?),
            "--host" => args.host = value("--host")?,
            "--port" => {
                args.port = value("--port")?
                    .parse()
                    .map_err(|_| "--port needs a 16-bit integer".to_string())?;
            }
            "--budget" => args.cfg.kv_budget_rows = parse_count(&value("--budget")?, "--budget")?,
            "--batch" => args.cfg.max_batch = parse_count(&value("--batch")?, "--batch")?,
            "--chunk" => args.cfg.prefill_chunk = parse_count(&value("--chunk")?, "--chunk")?,
            "--queue" => args.cfg.queue_capacity = parse_count(&value("--queue")?, "--queue")?,
            "--threads" => {
                args.cfg.threads = Some(parse_count(&value("--threads")?, "--threads")?);
            }
            "--replicas" => args.replicas = parse_count(&value("--replicas")?, "--replicas")?,
            "--tenant-queue" => {
                args.router.tenant_queue_capacity =
                    parse_count(&value("--tenant-queue")?, "--tenant-queue")?;
            }
            "--tenant-inflight" => {
                args.router.max_tenant_inflight =
                    value("--tenant-inflight")?.parse().map_err(|_| {
                        "--tenant-inflight needs an integer (0 = unlimited)".to_string()
                    })?;
            }
            "--tenant-rate" => {
                args.router.tenant_refill_per_sec =
                    parse_rate(&value("--tenant-rate")?, "--tenant-rate")?;
            }
            "--tenant-burst" => {
                args.router.tenant_bucket_capacity =
                    parse_rate(&value("--tenant-burst")?, "--tenant-burst")?;
            }
            "--bundle" => args.bundles.push(value("--bundle")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--watch-kg" => args.watch_kg = Some(value("--watch-kg")?),
            "--watch-tokenizer" => args.watch_tokenizer = Some(value("--watch-tokenizer")?),
            "--watch-config" => args.watch_config = Some(value("--watch-config")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if args.demo == args.model.is_some() {
        return Err(format!(
            "pass exactly one of --demo or --model PATH\n{}",
            usage()
        ));
    }
    if args.watch_kg.is_some() && args.watch_tokenizer.is_none() {
        return Err(format!(
            "--watch-kg needs --watch-tokenizer PATH (the pipeline phrases \
             MCQs with it)\n{}",
            usage()
        ));
    }
    if args.watch_kg.is_none() && (args.watch_tokenizer.is_some() || args.watch_config.is_some()) {
        return Err(format!(
            "--watch-tokenizer/--watch-config only make sense with --watch-kg\n{}",
            usage()
        ));
    }
    Ok(args)
}

fn parse_count(raw: &str, flag: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!("{flag} must be at least 1")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("{flag} needs a positive integer, got `{raw}`")),
    }
}

fn parse_rate(raw: &str, flag: &str) -> Result<f64, String> {
    match raw.trim().parse::<f64>() {
        Ok(r) if r >= 0.0 && r.is_finite() => Ok(r),
        _ => Err(format!("{flag} needs a non-negative number, got `{raw}`")),
    }
}

/// Everything between "front is up" and "accept loop returned": bundle
/// staging, the optional watch-kg pipeline, the listener and the JSONL
/// accept loop. Generic over the front so the single-scheduler `Client`
/// and the multi-replica `RouterClient` share one code path (control ops
/// and publishes fan out fleet-wide under the latter).
fn run_front<F>(
    args: &Args,
    client: F,
    pipeline_registry: &obs::Registry,
    mut watch_model: Option<TransformerLm>,
    stop: &Arc<AtomicBool>,
    threads: usize,
) -> Result<(), u8>
where
    F: Frontend + BundlePublisher,
{
    // Stage every --bundle in order and promote the last, so the process
    // comes up already serving the newest knowledge; earlier ones stay
    // pinnable (and are the rollback target).
    let mut last_version = None;
    for path in &args.bundles {
        match client.control_op(ControlOp::LoadBundle { path: path.clone() }) {
            Ok(ControlOutcome::Loaded(info)) => {
                eprintln!(
                    "serve: staged bundle `{}` ({path}) as version {}",
                    info.name, info.version
                );
                last_version = Some(info.version);
            }
            Ok(other) => {
                eprintln!("serve: unexpected load outcome {other:?}");
                return Err(2);
            }
            Err(e) => {
                eprintln!("serve: failed to load bundle `{path}`: {e}");
                return Err(2);
            }
        }
    }
    if let Some(v) = last_version {
        if let Err(e) = client.control_op(ControlOp::Promote { version: v }) {
            eprintln!("serve: failed to promote bundle version {v}: {e}");
            return Err(2);
        }
        eprintln!("serve: bundle version {v} active");
    }
    // Bring the online knowledge-update watcher up before the listener so
    // the WAL is recovered (and any startup error surfaces) before clients
    // can connect.
    let mut watcher = None;
    if let Some(wal_dir) = &args.watch_kg {
        let tok_path = args
            .watch_tokenizer
            .as_deref()
            .expect("parse_args enforces --watch-tokenizer");
        let tokenizer = match load_tokenizer(tok_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("serve: {e}");
                return Err(2);
            }
        };
        let pcfg = match &args.watch_config {
            Some(path) => {
                let json = match std::fs::read_to_string(path) {
                    Ok(j) => j,
                    Err(e) => {
                        eprintln!("serve: read watch config `{path}`: {e}");
                        return Err(2);
                    }
                };
                match serde_json::from_str::<PipelineConfig>(&json) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("serve: parse watch config `{path}`: {e}");
                        return Err(2);
                    }
                }
            }
            None => PipelineConfig::default(),
        };
        let pipeline = match UpdatePipeline::new(
            watch_model.take().expect("watch model cloned before spawn"),
            tokenizer,
            wal_dir,
            pcfg,
            client.clone(),
            pipeline_registry,
        ) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("serve: failed to open WAL dir `{wal_dir}`: {e}");
                return Err(2);
            }
        };
        eprintln!(
            "serve: watching KG WAL at `{wal_dir}` (baseline seq {}, {} live triples)",
            pipeline.state().seq,
            pipeline.state().live_len()
        );
        watcher = Some(spawn_watcher(pipeline, Arc::clone(stop)));
    }
    let listener = match TcpListener::bind((args.host.as_str(), args.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: failed to bind {}:{}: {e}", args.host, args.port);
            stop.store(true, Ordering::Relaxed);
            if let Some(w) = watcher {
                let _ = w.join();
            }
            return Err(1);
        }
    };
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    println!("LISTENING {addr}");
    eprintln!(
        "serve: {} replica(s), {} threads, budget {} rows, batch {}, chunk {}, queue {}",
        args.replicas,
        threads,
        args.cfg.kv_budget_rows,
        args.cfg.max_batch,
        args.cfg.prefill_chunk,
        args.cfg.queue_capacity
    );
    let accept_result = server::run(listener, client, Arc::clone(stop));
    // The watcher goes down first (it publishes through the front), then
    // the caller drains the scheduler(s).
    stop.store(true, Ordering::Relaxed);
    if let Some(w) = watcher {
        let _ = w.join();
    }
    if let Err(e) = accept_result {
        eprintln!("serve: accept loop failed: {e}");
        return Err(1);
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // Spans stay off (one relaxed load per would-be span) unless asked
    // for — by flag or by INFUSERKI_TRACE in the environment.
    obs::init_from_env();
    if args.trace_out.is_some() {
        obs::set_enabled(true);
    }
    // Resolve the thread knob before anything binds so a mistyped
    // INFUSERKI_THREADS fails loudly here, not inside a kernel.
    let threads = match args.cfg.apply_threads() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::from(2);
        }
    };
    let model = if args.demo {
        demo_model()
    } else {
        let path = args.model.as_deref().expect("parse_args enforces --model");
        match TransformerLm::load(path) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("serve: failed to load model `{path}`: {e}");
                return ExitCode::from(2);
            }
        }
    };
    // The watcher's pipeline trains against its own copy of the frozen
    // base; taken before the scheduler thread(s) consume the original.
    let watch_model = args.watch_kg.as_ref().map(|_| model.clone());
    let stop = Arc::new(AtomicBool::new(false));
    let result = if args.replicas > 1 {
        let mut rcfg = args.router.clone();
        rcfg.replicas = args.replicas;
        rcfg.serve = args.cfg.clone();
        // Every replica serves an identical model copy, so responses are
        // independent of which replica a request lands on.
        let mut copies: Vec<TransformerLm> =
            (0..args.replicas - 1).map(|_| model.clone()).collect();
        copies.push(model);
        let (client, handle) = match spawn_router(rcfg, move |_| {
            (copies.pop().expect("one model copy per replica"), NoHook)
        }) {
            Ok(ch) => ch,
            Err(e) => {
                eprintln!("serve: {e}");
                return ExitCode::from(2);
            }
        };
        let registry_client = client.clone();
        let result = run_front(
            &args,
            client,
            registry_client.metrics().registry(),
            watch_model,
            &stop,
            threads,
        );
        handle.shutdown();
        result
    } else {
        let (client, sched) = match spawn_scheduler(model, NoHook, args.cfg.clone()) {
            Ok(cs) => cs,
            Err(e) => {
                eprintln!("serve: {e}");
                return ExitCode::from(2);
            }
        };
        let metrics = client.metrics_handle();
        let result = run_front(
            &args,
            client,
            metrics.registry(),
            watch_model,
            &stop,
            threads,
        );
        sched.shutdown();
        result
    };
    if let Err(code) = result {
        return ExitCode::from(code);
    }
    if let Some(path) = &args.trace_out {
        match obs::write_chrome_trace(path) {
            Ok(()) => eprintln!("serve: wrote trace to {path}"),
            Err(e) => eprintln!("serve: failed to write trace {path}: {e}"),
        }
    }
    ExitCode::SUCCESS
}
