//! # infuserki-router
//!
//! The fleet layer over `infuserki-serve`: one front door, N in-process
//! model replicas.
//!
//! A single continuous-batching scheduler saturates at one model instance.
//! [`spawn_router`] brings up `replicas` independent schedulers — each its
//! own model copy, KV block pool and budget — behind one cloneable
//! [`RouterClient`] that speaks the same submit/control vocabulary as the
//! single-scheduler [`infuserki_serve::Client`] (both implement
//! [`infuserki_serve::Frontend`], so the JSONL TCP front is shared).
//!
//! Three mechanisms make the fleet more than a load balancer:
//!
//! * **Prefix-affinity dispatch** ([`affinity`]): the leading block-aligned
//!   chunk of the prompt — the same `block_rows`-sized chunking the radix
//!   prefix cache (`nn::PrefixIndex`) is keyed by — is hashed and mapped to
//!   a replica by rendezvous (highest-random-weight) hashing, so repeated
//!   templates land where their KV blocks are already cached, and a replica
//!   death only remaps the prefixes it owned. A replica overloaded past the
//!   configured slack falls back to least-loaded dispatch.
//! * **Per-tenant fair share**: requests wait in per-tenant bounded queues
//!   drained round-robin (one request per tenant per sweep), with optional
//!   token-bucket rate limits and in-flight caps in front — an aggressive
//!   tenant can fill its own queue but cannot starve another's.
//! * **Atomic control fan-out**: `load_bundle` stages on every replica,
//!   `promote` executes two-phase (promote each replica in turn; any
//!   refusal — NR gate or otherwise — rolls the already-promoted replicas
//!   back), so the fleet never serves mixed knowledge versions to unpinned
//!   traffic. [`RouterClient`] implements
//!   [`infuserki_ingest::BundlePublisher`], so `serve --watch-kg` publishes
//!   ingested knowledge to the whole fleet atomically.
//!
//! The determinism contract survives routing: every response served
//! through the router is produced by exactly one scheduler, and each
//! scheduler's responses are bitwise-equal (at one kernel thread) to
//! single-request execution — so the router's responses are too, no matter
//! which replica a request lands on (see `tests/router_differential.rs` at
//! the workspace root).

pub mod affinity;
pub mod config;
pub mod metrics;
pub mod router;

pub use config::RouterConfig;
pub use metrics::RouterMetrics;
pub use router::{spawn_router, PendingResponse, RouterClient, RouterHandle};
