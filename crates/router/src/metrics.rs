//! Router-level metrics, backed by an instance `obs::Registry` exactly
//! like [`infuserki_serve::ServeMetrics`] — every handle is atomic, so the
//! dispatcher and replica pumps update them lock-free and any thread
//! snapshots concurrently.

use std::sync::Arc;

use infuserki_obs as obs;

/// Registry-backed dispatch counters, one instance per router.
#[derive(Debug)]
pub struct RouterMetrics {
    registry: obs::Registry,
    /// Requests accepted into a tenant queue.
    pub submitted: Arc<obs::Counter>,
    /// Requests handed to a replica scheduler.
    pub dispatched: Arc<obs::Counter>,
    /// Dispatches that followed the prefix-affinity target.
    pub affinity_hits: Arc<obs::Counter>,
    /// Dispatches that fell back to least-loaded (no hashable chunk, or
    /// the affinity target was overloaded past the slack).
    pub balanced: Arc<obs::Counter>,
    /// Submissions rejected because the tenant's queue was full.
    pub rejected_tenant_queue_full: Arc<obs::Counter>,
    /// Requests answered `ReplicaFailed` because their replica died
    /// mid-request (or none was alive to dispatch to).
    pub failed_replica: Arc<obs::Counter>,
    /// Requests cancelled while still waiting in a tenant queue.
    pub cancelled_queued: Arc<obs::Counter>,
    /// Queued requests rejected when the router shut down.
    pub rejected_shutdown: Arc<obs::Counter>,
    /// Fan-out promotes that rolled the whole group back after a refusal.
    pub group_rollbacks: Arc<obs::Counter>,
    /// Replicas currently alive.
    pub replicas_alive: Arc<obs::Gauge>,
    /// Requests currently queued across all tenants.
    pub tenant_queued: Arc<obs::Gauge>,
    /// Per-replica dispatch counters (`router.replica{i}.dispatched`).
    pub replica_dispatched: Vec<Arc<obs::Counter>>,
    /// Per-replica outstanding-request gauges
    /// (`router.replica{i}.outstanding`) — the dispatcher's load signal.
    pub replica_outstanding: Vec<Arc<obs::Gauge>>,
}

impl RouterMetrics {
    /// Builds a fresh instance registry with `n` per-replica handle sets.
    pub fn new(n: usize) -> Self {
        let registry = obs::Registry::new();
        let c = |name: &str| registry.counter(name);
        let g = |name: &str| registry.gauge(name);
        RouterMetrics {
            submitted: c("router.submitted"),
            dispatched: c("router.dispatched"),
            affinity_hits: c("router.dispatch.affinity"),
            balanced: c("router.dispatch.balanced"),
            rejected_tenant_queue_full: c("router.rejected.tenant_queue_full"),
            failed_replica: c("router.failed.replica"),
            cancelled_queued: c("router.cancelled_queued"),
            rejected_shutdown: c("router.rejected.shutdown"),
            group_rollbacks: c("router.bundle.group_rollbacks"),
            replicas_alive: g("router.replicas_alive"),
            tenant_queued: g("router.tenant_queued"),
            replica_dispatched: (0..n)
                .map(|i| c(&format!("router.replica{i}.dispatched")))
                .collect(),
            replica_outstanding: (0..n)
                .map(|i| g(&format!("router.replica{i}.outstanding")))
                .collect(),
            registry,
        }
    }

    /// The backing registry (for full-snapshot export).
    pub fn registry(&self) -> &obs::Registry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_replica_handles_are_distinct() {
        let m = RouterMetrics::new(3);
        m.replica_dispatched[1].inc();
        assert_eq!(m.replica_dispatched[0].get(), 0);
        assert_eq!(m.replica_dispatched[1].get(), 1);
        m.replica_outstanding[2].set(5);
        assert_eq!(m.replica_outstanding[2].get(), 5);
    }

    #[test]
    fn registry_snapshot_sees_router_names() {
        let m = RouterMetrics::new(1);
        m.affinity_hits.inc();
        let snap = m.registry().snapshot();
        assert_eq!(
            snap.get("router.dispatch.affinity"),
            Some(&obs::MetricValue::Counter(1))
        );
        assert!(snap.get("router.replica0.outstanding").is_some());
    }
}
