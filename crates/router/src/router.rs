//! The router proper: tenant queues in front, N scheduler replicas behind,
//! a dispatcher thread in between, and a fan-out control plane.
//!
//! # Threads
//!
//! * N scheduler threads (one per replica, from
//!   [`infuserki_serve::spawn_scheduler`]).
//! * N *pump* threads: each replica's responses funnel through one channel;
//!   the pump translates internal router ids back to caller ids and
//!   channels, and detects replica death (the channel disconnects when the
//!   scheduler thread drops its request senders).
//! * One *dispatcher* thread: drains tenant queues round-robin (one request
//!   per tenant per sweep — the fair share), spends token-bucket tokens,
//!   and picks a replica per request (affinity first, least-loaded
//!   fallback).
//!
//! # Failure semantics
//!
//! A dead replica (detected by a failed submit or a disconnected response
//! channel) is excluded from dispatch; its outstanding requests are
//! answered with [`RejectReason::ReplicaFailed`] — a typed, retryable
//! error — and survivors keep serving. Rendezvous hashing means only the
//! dead replica's prefixes are remapped.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use infuserki_nn::{LayerHook, TransformerLm};
use infuserki_serve::{
    spawn_scheduler, BundleInfo, CancelToken, Client, ControlError, ControlOp, ControlOutcome,
    EngineLimits, Frontend, GateReport, Outcome, RejectReason, RequestId, RequestKind, Response,
    SchedulerHandle, SubmitError, SubmitOpts,
};

use crate::affinity;
use crate::config::RouterConfig;
use crate::metrics::RouterMetrics;

/// Tenant id used when a submission carries none.
pub const DEFAULT_TENANT: &str = "";

/// A request parked in a tenant queue, waiting for dispatch.
struct Pending {
    caller_id: RequestId,
    kind: RequestKind,
    opts: SubmitOpts,
    cancel: CancelToken,
    tx: Sender<Response>,
    tenant: String,
}

/// Book-keeping for one dispatched request, until its replica responds.
struct Outstanding {
    caller_id: RequestId,
    tenant: String,
    tx: Sender<Response>,
}

/// One scheduler replica plus its routing state.
struct Replica {
    client: Client,
    /// Master clone of the replica's response sender. Dropped on death so
    /// the pump's receiver disconnects once the scheduler's own per-request
    /// senders are gone too.
    resp_tx: Mutex<Option<Sender<Response>>>,
    /// Internal router id → caller book-keeping.
    outstanding: Mutex<HashMap<u64, Outstanding>>,
    alive: AtomicBool,
}

/// Per-tenant shaping state.
struct TenantState {
    queue: VecDeque<Pending>,
    tokens: f64,
    last_refill: Instant,
    inflight: usize,
}

impl TenantState {
    fn new(cfg: &RouterConfig) -> Self {
        TenantState {
            queue: VecDeque::new(),
            tokens: cfg.bucket_capacity(),
            last_refill: Instant::now(),
            inflight: 0,
        }
    }
}

/// All tenants plus the rotating fair-share cursor.
struct TenantTable {
    map: HashMap<String, TenantState>,
    /// Tenant names in first-appearance order (the round-robin ring).
    order: Vec<String>,
    /// Where the next sweep starts, so no tenant is permanently first.
    cursor: usize,
}

struct Inner {
    cfg: RouterConfig,
    limits: EngineLimits,
    replicas: Vec<Replica>,
    tenants: Mutex<TenantTable>,
    /// Signalled on enqueue and on request completion (freed capacity).
    cv: Condvar,
    stop: AtomicBool,
    metrics: RouterMetrics,
    next_rid: AtomicU64,
}

impl Inner {
    fn alive_flags(&self) -> Vec<bool> {
        self.replicas
            .iter()
            .map(|r| r.alive.load(Ordering::SeqCst))
            .collect()
    }

    fn load_of(&self, i: usize) -> usize {
        self.metrics.replica_outstanding[i].get().max(0) as usize
    }

    /// Marks a replica dead (idempotent) and drops its master sender so the
    /// pump can observe full disconnection.
    fn mark_dead(&self, i: usize) {
        if self.replicas[i].alive.swap(false, Ordering::SeqCst) {
            self.metrics.replicas_alive.add(-1);
        }
        *self.replicas[i].resp_tx.lock().unwrap() = None;
    }

    /// Decrements a tenant's in-flight count and wakes the dispatcher.
    fn finish_one(&self, tenant: &str) {
        let mut t = self.tenants.lock().unwrap();
        if let Some(state) = t.map.get_mut(tenant) {
            state.inflight = state.inflight.saturating_sub(1);
        }
        drop(t);
        self.cv.notify_all();
    }
}

/// Awaits one response submitted through [`RouterClient::submit`].
#[derive(Debug)]
pub struct PendingResponse {
    /// The submitted request's id.
    pub id: RequestId,
    rx: Receiver<Response>,
    cancel: CancelToken,
}

impl PendingResponse {
    /// Requests cancellation (queued or in-flight).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The cancellation token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Blocks until the terminal outcome arrives.
    pub fn wait(self) -> Result<Outcome, SubmitError> {
        self.rx
            .recv()
            .map(|r| r.outcome)
            .map_err(|_| SubmitError::Disconnected)
    }

    /// Blocks up to `timeout`; `Ok(None)` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Option<Outcome>, SubmitError> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Ok(Some(r.outcome)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(SubmitError::Disconnected),
        }
    }
}

/// Cloneable handle submitting requests and control ops to the fleet.
/// Implements [`Frontend`] (the TCP server serves it directly) and
/// [`infuserki_ingest::BundlePublisher`] (`--watch-kg` publishes through
/// it, reaching every replica atomically).
#[derive(Clone)]
pub struct RouterClient {
    inner: Arc<Inner>,
    next_id: Arc<AtomicU64>,
}

impl RouterClient {
    /// The fleet's admission limits (identical on every replica).
    pub fn limits(&self) -> &EngineLimits {
        &self.inner.limits
    }

    /// The router's own metrics.
    pub fn metrics(&self) -> &RouterMetrics {
        &self.inner.metrics
    }

    /// Per-replica serve metrics snapshots (dead replicas report their last
    /// state).
    pub fn replica_metrics(&self) -> Vec<infuserki_serve::MetricsSnapshot> {
        self.inner
            .replicas
            .iter()
            .map(|r| r.client.metrics())
            .collect()
    }

    /// How many replicas are currently alive.
    pub fn replicas_alive(&self) -> usize {
        self.inner.alive_flags().iter().filter(|&&a| a).count()
    }

    /// Submits one request under an optional tenant id; the handle receives
    /// exactly one terminal outcome.
    pub fn submit(
        &self,
        kind: RequestKind,
        opts: SubmitOpts,
        tenant: Option<&str>,
    ) -> Result<PendingResponse, SubmitError> {
        let (tx, rx) = mpsc::channel();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = self.submit_with_sender(id, kind, opts, tenant, tx)?;
        Ok(PendingResponse { id, rx, cancel })
    }

    /// Submission for callers that own the response channel (the TCP
    /// server). Validates synchronously against the shared limits and the
    /// tenant's queue bound, then parks the request for the dispatcher.
    pub fn submit_with_sender(
        &self,
        id: RequestId,
        kind: RequestKind,
        opts: SubmitOpts,
        tenant: Option<&str>,
        tx: Sender<Response>,
    ) -> Result<CancelToken, SubmitError> {
        let inner = &self.inner;
        if inner.stop.load(Ordering::SeqCst) {
            return Err(SubmitError::Rejected(RejectReason::ShuttingDown));
        }
        inner
            .limits
            .validate(&kind)
            .map_err(SubmitError::Rejected)?;
        let tenant = tenant.unwrap_or(DEFAULT_TENANT).to_string();
        let cancel = CancelToken::new();
        let pending = Pending {
            caller_id: id,
            kind,
            opts,
            cancel: cancel.clone(),
            tx,
            tenant: tenant.clone(),
        };
        {
            let mut t = inner.tenants.lock().unwrap();
            if !t.map.contains_key(&tenant) {
                t.map.insert(tenant.clone(), TenantState::new(&inner.cfg));
                t.order.push(tenant.clone());
            }
            let state = t.map.get_mut(&tenant).expect("tenant just ensured");
            if state.queue.len() >= inner.cfg.tenant_queue_capacity {
                inner.metrics.rejected_tenant_queue_full.inc();
                return Err(SubmitError::Rejected(RejectReason::TenantQueueFull {
                    capacity: inner.cfg.tenant_queue_capacity,
                }));
            }
            state.queue.push_back(pending);
            inner.metrics.submitted.inc();
            inner.metrics.tenant_queued.add(1);
        }
        inner.cv.notify_all();
        Ok(cancel)
    }

    /// Executes one knowledge-bundle control op across the fleet. Loads
    /// stage everywhere; promotes are all-or-none (any refusal rolls the
    /// already-promoted replicas back); rollbacks and listings address
    /// every / the first live replica.
    pub fn control(&self, op: ControlOp) -> Result<ControlOutcome, ControlError> {
        match op {
            ControlOp::LoadBundle { path } => self.fan_load(&path),
            ControlOp::Promote { version } => self.fan_promote(version, None),
            ControlOp::Rollback => self.fan_rollback(),
            ControlOp::ListBundles => self.first_alive()?.control(ControlOp::ListBundles),
        }
    }

    /// Loads, verifies and stages a bundle file on every live replica.
    pub fn load_bundle(&self, path: &str) -> Result<BundleInfo, ControlError> {
        match self.fan_load(path)? {
            ControlOutcome::Loaded(info) => Ok(info),
            other => unreachable!("load_bundle returned {other:?}"),
        }
    }

    /// Promotes a staged version fleet-wide, all-or-none.
    pub fn promote(&self, version: u32) -> Result<Option<GateReport>, ControlError> {
        match self.fan_promote(version, None)? {
            ControlOutcome::Promoted { gate, .. } => Ok(gate),
            other => unreachable!("promote returned {other:?}"),
        }
    }

    /// Restores the previously active version on every live replica.
    pub fn rollback(&self) -> Result<u32, ControlError> {
        match self.fan_rollback()? {
            ControlOutcome::RolledBack { version } => Ok(version),
            other => unreachable!("rollback returned {other:?}"),
        }
    }

    /// Every registered knowledge version, from the first live replica
    /// (the registries march in lockstep — all control traffic fans out).
    pub fn list_bundles(&self) -> Result<Vec<BundleInfo>, ControlError> {
        match self.first_alive()?.control(ControlOp::ListBundles)? {
            ControlOutcome::Bundles(list) => Ok(list),
            other => unreachable!("list_bundles returned {other:?}"),
        }
    }

    /// Promote with a fault injected at one replica: that replica receives
    /// a `Promote` for a version that was never loaded, so its refusal
    /// exercises the real all-or-none group rollback. Test hook.
    #[doc(hidden)]
    pub fn promote_with_fault(
        &self,
        version: u32,
        fault_replica: usize,
    ) -> Result<ControlOutcome, ControlError> {
        self.fan_promote(version, Some(fault_replica))
    }

    /// Kills one replica abruptly (no drain): its scheduler thread exits,
    /// outstanding requests come back [`RejectReason::ReplicaFailed`], and
    /// dispatch continues on survivors. Test hook.
    #[doc(hidden)]
    pub fn kill_replica(&self, i: usize) {
        self.inner.replicas[i].client.crash_for_test();
        self.inner.mark_dead(i);
    }

    fn first_alive(&self) -> Result<&Client, ControlError> {
        self.inner
            .replicas
            .iter()
            .find(|r| r.alive.load(Ordering::SeqCst))
            .map(|r| &r.client)
            .ok_or(ControlError::Disconnected)
    }

    fn fan_load(&self, path: &str) -> Result<ControlOutcome, ControlError> {
        let mut first: Option<BundleInfo> = None;
        for r in &self.inner.replicas {
            if !r.alive.load(Ordering::SeqCst) {
                continue;
            }
            let outcome = r
                .client
                .control(ControlOp::LoadBundle { path: path.into() })?;
            let ControlOutcome::Loaded(info) = outcome else {
                unreachable!("load returned {outcome:?}");
            };
            if let Some(f) = &first {
                if f.version != info.version {
                    return Err(ControlError::Incompatible(format!(
                        "replica registries diverged: version {} vs {}",
                        f.version, info.version
                    )));
                }
            } else {
                first = Some(info);
            }
        }
        first
            .map(ControlOutcome::Loaded)
            .ok_or(ControlError::Disconnected)
    }

    /// Two-phase promote: every live replica promotes in turn; the first
    /// refusal (NR gate, unknown version, anything) rolls the
    /// already-promoted replicas back and returns the error — the fleet
    /// either serves the new version everywhere or nowhere.
    fn fan_promote(
        &self,
        version: u32,
        fault_replica: Option<usize>,
    ) -> Result<ControlOutcome, ControlError> {
        let mut promoted: Vec<&Client> = Vec::new();
        let mut first: Option<ControlOutcome> = None;
        for (i, r) in self.inner.replicas.iter().enumerate() {
            if !r.alive.load(Ordering::SeqCst) {
                continue;
            }
            let v = if fault_replica == Some(i) {
                u32::MAX // never a loaded version: forces a refusal
            } else {
                version
            };
            match r.client.control(ControlOp::Promote { version: v }) {
                Ok(outcome) => {
                    if first.is_none() {
                        first = Some(outcome);
                    }
                    promoted.push(&r.client);
                }
                Err(e) => {
                    for c in promoted {
                        // Rollback restores the pre-promote active version;
                        // a failure here means the replica died mid-op, and
                        // dead replicas serve nothing anyway.
                        let _ = c.control(ControlOp::Rollback);
                    }
                    self.inner.metrics.group_rollbacks.inc();
                    return Err(e);
                }
            }
        }
        first.ok_or(ControlError::Disconnected)
    }

    fn fan_rollback(&self) -> Result<ControlOutcome, ControlError> {
        let mut first: Option<ControlOutcome> = None;
        for r in &self.inner.replicas {
            if !r.alive.load(Ordering::SeqCst) {
                continue;
            }
            let outcome = r.client.control(ControlOp::Rollback)?;
            if first.is_none() {
                first = Some(outcome);
            }
        }
        first.ok_or(ControlError::Disconnected)
    }

    /// Router + per-replica metrics as one JSON object (the wire `metrics`
    /// op payload in `--replicas` mode).
    pub fn metrics_json(&self) -> String {
        let m = &self.inner.metrics;
        let alive = self.inner.alive_flags();
        let replicas: Vec<String> = self
            .inner
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| {
                format!(
                    "{{\"alive\":{},\"dispatched\":{},\"outstanding\":{},\"serve\":{}}}",
                    alive[i],
                    m.replica_dispatched[i].get(),
                    m.replica_outstanding[i].get().max(0),
                    r.client.metrics().to_json()
                )
            })
            .collect();
        format!(
            "{{\"submitted\":{},\"dispatched\":{},\"affinity_hits\":{},\"balanced\":{},\
             \"rejected_tenant_queue_full\":{},\"failed_replica\":{},\"cancelled_queued\":{},\
             \"group_rollbacks\":{},\"replicas_alive\":{},\"tenant_queued\":{},\"replicas\":[{}]}}",
            m.submitted.get(),
            m.dispatched.get(),
            m.affinity_hits.get(),
            m.balanced.get(),
            m.rejected_tenant_queue_full.get(),
            m.failed_replica.get(),
            m.cancelled_queued.get(),
            m.group_rollbacks.get(),
            m.replicas_alive.get().max(0),
            m.tenant_queued.get().max(0),
            replicas.join(",")
        )
    }
}

impl infuserki_ingest::BundlePublisher for RouterClient {
    /// Fleet-wide load → stage → all-or-none promote. A promote-time NR
    /// gate refusal on any replica rolls the whole group back and comes
    /// back typed, so `--watch-kg` drops the batch while every replica
    /// keeps serving the previous version.
    fn publish(
        &self,
        path: &std::path::Path,
    ) -> Result<infuserki_ingest::PublishReport, infuserki_ingest::PublishError> {
        use infuserki_ingest::{PublishError, PublishReport};
        let path_str = path.to_str().ok_or_else(|| {
            PublishError::Other(format!("non-utf8 bundle path {}", path.display()))
        })?;
        let info = self
            .load_bundle(path_str)
            .map_err(|e| PublishError::Other(e.to_string()))?;
        match self.promote(info.version) {
            Ok(_) => Ok(PublishReport {
                version: info.version,
            }),
            Err(ControlError::NrGateFailed { gate, .. }) => Err(PublishError::GateRefused {
                probes: gate.probes as u32,
                staged_correct: gate.staged_correct as u32,
                active_correct: gate.active_correct as u32,
            }),
            Err(e) => Err(PublishError::Other(e.to_string())),
        }
    }
}

impl Frontend for RouterClient {
    fn submit_request(
        &self,
        id: RequestId,
        kind: RequestKind,
        opts: SubmitOpts,
        tenant: Option<&str>,
        tx: Sender<Response>,
    ) -> Result<CancelToken, SubmitError> {
        self.submit_with_sender(id, kind, opts, tenant, tx)
    }

    fn control_op(&self, op: ControlOp) -> Result<ControlOutcome, ControlError> {
        self.control(op)
    }

    fn metrics_json(&self) -> String {
        RouterClient::metrics_json(self)
    }
}

/// Owns every router thread. [`RouterHandle::shutdown`] drains the fleet:
/// queued requests are rejected, in-flight requests finish, then every
/// thread joins.
pub struct RouterHandle {
    inner: Arc<Inner>,
    dispatcher: Option<JoinHandle<()>>,
    pumps: Vec<JoinHandle<()>>,
    scheds: Vec<SchedulerHandle>,
}

impl RouterHandle {
    /// Drains and joins the whole fleet.
    pub fn shutdown(mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        // Scheduler drains deliver every in-flight response into the pump
        // channels before the threads exit...
        for s in self.scheds.drain(..) {
            s.shutdown();
        }
        // ...then dropping the master senders lets the pumps observe full
        // disconnection and exit once they have relayed everything.
        for r in &self.inner.replicas {
            *r.resp_tx.lock().unwrap() = None;
        }
        for p in self.pumps.drain(..) {
            let _ = p.join();
        }
    }
}

/// Spawns `cfg.replicas` schedulers (the factory builds each replica's
/// model + hook; deterministic factories give identical replicas, which is
/// what the bitwise routing contract assumes), the per-replica pumps, and
/// the dispatcher. Returns the cloneable client plus the owning handle.
pub fn spawn_router<H, F>(
    cfg: RouterConfig,
    mut factory: F,
) -> Result<(RouterClient, RouterHandle), String>
where
    H: LayerHook + Send + 'static,
    F: FnMut(usize) -> (TransformerLm, H),
{
    cfg.validate()?;
    let metrics = RouterMetrics::new(cfg.replicas);
    let mut replicas = Vec::with_capacity(cfg.replicas);
    let mut scheds = Vec::with_capacity(cfg.replicas);
    let mut rxs = Vec::with_capacity(cfg.replicas);
    for i in 0..cfg.replicas {
        let (model, hook) = factory(i);
        let (client, handle) = spawn_scheduler(model, hook, cfg.serve.clone())
            .map_err(|e| format!("router: replica {i}: {e}"))?;
        let (tx, rx) = mpsc::channel::<Response>();
        replicas.push(Replica {
            client,
            resp_tx: Mutex::new(Some(tx)),
            outstanding: Mutex::new(HashMap::new()),
            alive: AtomicBool::new(true),
        });
        scheds.push(handle);
        rxs.push(rx);
    }
    metrics.replicas_alive.set(cfg.replicas as i64);
    let limits = replicas[0].client.limits().clone();
    let inner = Arc::new(Inner {
        cfg,
        limits,
        replicas,
        tenants: Mutex::new(TenantTable {
            map: HashMap::new(),
            order: Vec::new(),
            cursor: 0,
        }),
        cv: Condvar::new(),
        stop: AtomicBool::new(false),
        metrics,
        next_rid: AtomicU64::new(0),
    });
    let mut pumps = Vec::with_capacity(inner.replicas.len());
    for (i, rx) in rxs.into_iter().enumerate() {
        let pump_inner = Arc::clone(&inner);
        let pump = std::thread::Builder::new()
            .name(format!("infuserki-router-pump{i}"))
            .spawn(move || pump_loop(&pump_inner, i, rx))
            .map_err(|e| format!("router: failed to spawn pump {i}: {e}"))?;
        pumps.push(pump);
    }
    let disp_inner = Arc::clone(&inner);
    let dispatcher = std::thread::Builder::new()
        .name("infuserki-router-dispatch".into())
        .spawn(move || dispatcher_loop(&disp_inner))
        .map_err(|e| format!("router: failed to spawn dispatcher: {e}"))?;
    let client = RouterClient {
        inner: Arc::clone(&inner),
        next_id: Arc::new(AtomicU64::new(0)),
    };
    let handle = RouterHandle {
        inner,
        dispatcher: Some(dispatcher),
        pumps,
        scheds,
    };
    Ok((client, handle))
}

/// Relays one replica's responses back to their callers; on disconnection
/// (replica death) flushes every outstanding request with a typed error.
fn pump_loop(inner: &Inner, i: usize, rx: Receiver<Response>) {
    while let Ok(resp) = rx.recv() {
        let out = inner.replicas[i]
            .outstanding
            .lock()
            .unwrap()
            .remove(&resp.id);
        if let Some(o) = out {
            inner.metrics.replica_outstanding[i].add(-1);
            let _ = o.tx.send(Response {
                id: o.caller_id,
                outcome: resp.outcome,
            });
            inner.finish_one(&o.tenant);
        }
    }
    // Every sender is gone: either a clean shutdown (outstanding is empty)
    // or the scheduler thread died mid-request.
    inner.mark_dead(i);
    let drained: Vec<Outstanding> = {
        let mut map = inner.replicas[i].outstanding.lock().unwrap();
        map.drain().map(|(_, o)| o).collect()
    };
    for o in drained {
        inner.metrics.replica_outstanding[i].add(-1);
        inner.metrics.failed_replica.inc();
        let _ = o.tx.send(Response {
            id: o.caller_id,
            outcome: Outcome::Rejected(RejectReason::ReplicaFailed),
        });
        inner.finish_one(&o.tenant);
    }
}

/// One fair-share collection: starting at the rotating cursor, take at most
/// one dispatchable request per tenant per sweep, spending tokens and
/// charging in-flight, until a full sweep takes nothing.
fn collect_dispatchable(inner: &Inner, t: &mut TenantTable) -> Vec<Pending> {
    let cfg = &inner.cfg;
    let now = Instant::now();
    if cfg.rate_limited() {
        for state in t.map.values_mut() {
            let dt = now.duration_since(state.last_refill).as_secs_f64();
            state.tokens =
                (state.tokens + dt * cfg.tenant_refill_per_sec).min(cfg.bucket_capacity());
            state.last_refill = now;
        }
    }
    let n = t.order.len();
    let mut batch = Vec::new();
    if n == 0 {
        return batch;
    }
    loop {
        let mut took = false;
        for k in 0..n {
            let name = t.order[(t.cursor + k) % n].clone();
            let state = t.map.get_mut(&name).expect("ring names are table keys");
            if state.queue.is_empty() {
                continue;
            }
            if cfg.max_tenant_inflight > 0 && state.inflight >= cfg.max_tenant_inflight {
                continue;
            }
            if cfg.rate_limited() && state.tokens < 1.0 {
                continue;
            }
            if cfg.rate_limited() {
                state.tokens -= 1.0;
            }
            state.inflight += 1;
            let p = state.queue.pop_front().expect("queue checked non-empty");
            inner.metrics.tenant_queued.add(-1);
            batch.push(p);
            took = true;
        }
        t.cursor = (t.cursor + 1) % n;
        if !took {
            return batch;
        }
    }
}

fn dispatcher_loop(inner: &Inner) {
    let mut guard = inner.tenants.lock().unwrap();
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            // Reject everything still queued, like the scheduler's drain.
            for state in guard.map.values_mut() {
                while let Some(p) = state.queue.pop_front() {
                    inner.metrics.tenant_queued.add(-1);
                    inner.metrics.rejected_shutdown.inc();
                    let _ = p.tx.send(Response {
                        id: p.caller_id,
                        outcome: Outcome::Rejected(RejectReason::ShuttingDown),
                    });
                }
            }
            return;
        }
        let batch = collect_dispatchable(inner, &mut guard);
        if batch.is_empty() {
            let queued = guard.map.values().any(|s| !s.queue.is_empty());
            // Short wait while throttled/capped (tokens refill on a clock);
            // long wait when idle (enqueue and completion both notify).
            let wait = if queued {
                Duration::from_millis(5)
            } else {
                Duration::from_millis(100)
            };
            guard = inner.cv.wait_timeout(guard, wait).unwrap().0;
            continue;
        }
        drop(guard);
        for p in batch {
            dispatch_one(inner, p);
        }
        guard = inner.tenants.lock().unwrap();
    }
}

/// Picks a replica (affinity first, least-loaded fallback) and forwards one
/// request, failing over to survivors when a replica turns out dead.
fn dispatch_one(inner: &Inner, p: Pending) {
    if p.cancel.is_cancelled() {
        inner.metrics.cancelled_queued.inc();
        let _ = p.tx.send(Response {
            id: p.caller_id,
            outcome: Outcome::Cancelled,
        });
        inner.finish_one(&p.tenant);
        return;
    }
    let alive = inner.alive_flags();
    let least_loaded = |alive: &[bool]| {
        alive
            .iter()
            .enumerate()
            .filter(|&(_, &up)| up)
            .min_by_key(|&(i, _)| inner.load_of(i))
            .map(|(i, _)| i)
    };
    let prompt = match &p.kind {
        RequestKind::Generate(g) => &g.prompt,
        RequestKind::Mcq(m) => &m.prompt,
    };
    let block_rows = inner.cfg.serve.block_rows;
    let choice = match affinity::prefix_hash(prompt, block_rows, inner.cfg.affinity_blocks) {
        Some(h) => match affinity::rendezvous_pick(h, &alive) {
            Some(target) => {
                let min_load = least_loaded(&alive).map(|i| inner.load_of(i)).unwrap_or(0);
                if inner.load_of(target) <= min_load + inner.cfg.imbalance_slack {
                    inner.metrics.affinity_hits.inc();
                    Some(target)
                } else {
                    inner.metrics.balanced.inc();
                    least_loaded(&alive)
                }
            }
            None => None,
        },
        None => {
            let pick = least_loaded(&alive);
            if pick.is_some() {
                inner.metrics.balanced.inc();
            }
            pick
        }
    };
    let Some(mut target) = choice else {
        inner.metrics.failed_replica.inc();
        let _ = p.tx.send(Response {
            id: p.caller_id,
            outcome: Outcome::Rejected(RejectReason::ReplicaFailed),
        });
        inner.finish_one(&p.tenant);
        return;
    };
    // Failover ring: the chosen replica first, then every other live one.
    let mut tried = vec![false; inner.replicas.len()];
    loop {
        tried[target] = true;
        match try_forward(inner, target, &p) {
            Ok(()) => return,
            Err(SubmitError::Rejected(reason)) => {
                let _ = p.tx.send(Response {
                    id: p.caller_id,
                    outcome: Outcome::Rejected(reason),
                });
                inner.finish_one(&p.tenant);
                return;
            }
            Err(SubmitError::Disconnected) => {
                inner.mark_dead(target);
                match inner
                    .alive_flags()
                    .iter()
                    .enumerate()
                    .filter(|&(i, &up)| up && !tried[i])
                    .min_by_key(|&(i, _)| inner.load_of(i))
                    .map(|(i, _)| i)
                {
                    Some(next) => target = next,
                    None => {
                        inner.metrics.failed_replica.inc();
                        let _ = p.tx.send(Response {
                            id: p.caller_id,
                            outcome: Outcome::Rejected(RejectReason::ReplicaFailed),
                        });
                        inner.finish_one(&p.tenant);
                        return;
                    }
                }
            }
        }
    }
}

/// Forwards one pending request to replica `i` under a fresh internal id.
fn try_forward(inner: &Inner, i: usize, p: &Pending) -> Result<(), SubmitError> {
    let replica = &inner.replicas[i];
    let tx = replica
        .resp_tx
        .lock()
        .unwrap()
        .clone()
        .ok_or(SubmitError::Disconnected)?;
    let rid = inner.next_rid.fetch_add(1, Ordering::Relaxed);
    replica.outstanding.lock().unwrap().insert(
        rid,
        Outstanding {
            caller_id: p.caller_id,
            tenant: p.tenant.clone(),
            tx: p.tx.clone(),
        },
    );
    inner.metrics.replica_outstanding[i].add(1);
    match replica
        .client
        .submit_with_parts(rid, p.kind.clone(), p.opts, p.cancel.clone(), tx)
    {
        Ok(()) => {
            inner.metrics.dispatched.inc();
            inner.metrics.replica_dispatched[i].inc();
            Ok(())
        }
        Err(e) => {
            replica.outstanding.lock().unwrap().remove(&rid);
            inner.metrics.replica_outstanding[i].add(-1);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_nn::{sampler, NoHook};
    use infuserki_serve::{GenerateSpec, McqSpec, ServeConfig};
    use infuserki_tensor::kernels;

    fn demo_pair(_i: usize) -> (TransformerLm, NoHook) {
        (infuserki_serve::demo_model(), NoHook)
    }

    fn small_cfg(replicas: usize) -> RouterConfig {
        RouterConfig {
            replicas,
            serve: ServeConfig {
                block_rows: 4,
                ..ServeConfig::default()
            },
            ..RouterConfig::default()
        }
    }

    #[test]
    fn round_trips_generate_and_mcq_across_replicas() {
        kernels::set_num_threads(1);
        let reference = infuserki_serve::demo_model();
        let (client, handle) = spawn_router(small_cfg(2), demo_pair).unwrap();
        let mut handles = Vec::new();
        for i in 0..6usize {
            let prompt = vec![1 + i, 2, 3 + i];
            handles.push((
                prompt.clone(),
                client
                    .submit(
                        RequestKind::Generate(GenerateSpec::greedy(prompt, 4, None)),
                        SubmitOpts::default(),
                        None,
                    )
                    .unwrap(),
            ));
        }
        for (prompt, h) in handles {
            match h.wait().unwrap() {
                Outcome::Generated { tokens } => {
                    let want = sampler::greedy_decode(&reference, &NoHook, &prompt, 4, None);
                    assert_eq!(tokens, want);
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let m = client
            .submit(
                RequestKind::Mcq(McqSpec {
                    prompt: vec![4, 5],
                    options: vec![vec![6], vec![7, 8]],
                }),
                SubmitOpts::default(),
                Some("acme"),
            )
            .unwrap();
        match m.wait().unwrap() {
            Outcome::McqScored { scores, .. } => assert_eq!(scores.len(), 2),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(client.metrics().dispatched.get(), 7);
        handle.shutdown();
        kernels::set_num_threads(0);
    }

    #[test]
    fn invalid_submission_fails_synchronously() {
        let (client, handle) = spawn_router(small_cfg(1), demo_pair).unwrap();
        let err = client
            .submit(
                RequestKind::Generate(GenerateSpec::greedy(Vec::new(), 4, None)),
                SubmitOpts::default(),
                None,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SubmitError::Rejected(RejectReason::Invalid(_))
        ));
        handle.shutdown();
    }

    #[test]
    fn tenant_queue_bound_backpressures_that_tenant_only() {
        // A router with no replicas consuming work is hard to arrange, so
        // bound the queue instead: capacity 1 with an in-flight cap of 1
        // forces the second burst submission of the same tenant to park and
        // the third to bounce, while another tenant still gets in.
        let cfg = RouterConfig {
            tenant_queue_capacity: 1,
            max_tenant_inflight: 1,
            ..small_cfg(1)
        };
        let (client, handle) = spawn_router(cfg, demo_pair).unwrap();
        let slow = |i: usize| RequestKind::Generate(GenerateSpec::greedy(vec![1 + i, 2], 8, None));
        let h1 = client
            .submit(slow(0), SubmitOpts::default(), Some("big"))
            .unwrap();
        // One of these lands in the queue; with capacity 1 a rapid burst
        // must eventually bounce with the typed tenant error.
        let mut bounced = false;
        let mut extra = Vec::new();
        for i in 1..40 {
            match client.submit(slow(i), SubmitOpts::default(), Some("big")) {
                Ok(h) => extra.push(h),
                Err(SubmitError::Rejected(RejectReason::TenantQueueFull { capacity })) => {
                    assert_eq!(capacity, 1);
                    bounced = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert!(bounced, "burst never hit the tenant queue bound");
        // A different tenant is unaffected by big's backlog.
        let other = client
            .submit(slow(50), SubmitOpts::default(), Some("small"))
            .unwrap();
        assert!(matches!(other.wait().unwrap(), Outcome::Generated { .. }));
        assert!(matches!(h1.wait().unwrap(), Outcome::Generated { .. }));
        for h in extra {
            assert!(matches!(h.wait().unwrap(), Outcome::Generated { .. }));
        }
        assert!(client.metrics().rejected_tenant_queue_full.get() >= 1);
        handle.shutdown();
    }

    #[test]
    fn cancel_while_queued_reports_cancelled() {
        let cfg = RouterConfig {
            max_tenant_inflight: 1,
            ..small_cfg(1)
        };
        let (client, handle) = spawn_router(cfg, demo_pair).unwrap();
        let gen = |i: usize| RequestKind::Generate(GenerateSpec::greedy(vec![1 + i, 2], 6, None));
        let h1 = client
            .submit(gen(0), SubmitOpts::default(), Some("t"))
            .unwrap();
        let h2 = client
            .submit(gen(1), SubmitOpts::default(), Some("t"))
            .unwrap();
        // h2 waits behind h1's in-flight slot; cancelling it while parked
        // must come back Cancelled (from the router or, if it raced into
        // the scheduler, from there — either way terminal and Cancelled).
        h2.cancel();
        assert!(matches!(h1.wait().unwrap(), Outcome::Generated { .. }));
        assert!(matches!(h2.wait().unwrap(), Outcome::Cancelled));
        handle.shutdown();
    }

    #[test]
    fn control_plane_requires_a_live_replica() {
        let (client, handle) = spawn_router(small_cfg(1), demo_pair).unwrap();
        client.kill_replica(0);
        assert!(matches!(
            client.list_bundles(),
            Err(ControlError::Disconnected)
        ));
        handle.shutdown();
    }

    #[test]
    fn metrics_json_is_wire_shaped() {
        let (client, handle) = spawn_router(small_cfg(2), demo_pair).unwrap();
        let j = RouterClient::metrics_json(&client);
        assert!(j.contains("\"affinity_hits\""));
        assert!(j.contains("\"replicas\":["));
        assert!(j.contains("\"serve\":{"));
        // It must parse as one JSON object (the wire `metrics` op embeds it).
        let v: serde::Value = serde_json::from_str(&j).unwrap();
        assert!(v.get_field("replicas").is_some());
        handle.shutdown();
    }
}
