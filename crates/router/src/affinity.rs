//! Prefix-affinity hashing: map a prompt's leading block-aligned chunk to
//! a home replica, stably under replica death.
//!
//! The chunk rule mirrors the radix prefix cache (`nn::PrefixIndex`): a
//! prompt of length `L` can have at most `floor((L - 1) / block_rows)`
//! whole blocks cached (at least one token must remain for the request's
//! own logits), so that is exactly the span worth hashing — two prompts
//! that share it will hit each other's cached KV blocks when they land on
//! the same replica. The span is additionally capped at a configured
//! number of blocks so a template and its long continuations agree.
//!
//! Replica choice is rendezvous (highest-random-weight) hashing: each
//! replica scores `mix(chunk_hash, replica)` and the highest live score
//! wins. Unlike modular hashing, removing a dead replica only remaps the
//! prefixes that replica owned — every other template keeps its warm cache.

/// FNV-1a over token ids (each hashed as little-endian `u64` bytes).
pub fn fnv1a64(tokens: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &t in tokens {
        for b in (t as u64).to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// SplitMix64 finalizer: decorrelates the (chunk, replica) pairing.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Length of the hashable chunk of a prompt: the largest multiple of
/// `block_rows` strictly below `prompt_len` (the prefix-cache-indexable
/// span), capped at `max_blocks` whole blocks. 0 means "no affinity" —
/// the prompt is too short to ever share cached blocks.
pub fn chunk_len(prompt_len: usize, block_rows: usize, max_blocks: usize) -> usize {
    if prompt_len == 0 {
        return 0;
    }
    let indexable = (prompt_len - 1) / block_rows * block_rows;
    indexable.min(max_blocks * block_rows)
}

/// Affinity hash of a prompt, if it has a hashable chunk.
pub fn prefix_hash(prompt: &[usize], block_rows: usize, max_blocks: usize) -> Option<u64> {
    let len = chunk_len(prompt.len(), block_rows, max_blocks);
    if len == 0 {
        None
    } else {
        Some(fnv1a64(&prompt[..len]))
    }
}

/// Rendezvous pick: the live replica with the highest mixed weight for
/// `hash`. `None` when no replica is alive.
pub fn rendezvous_pick(hash: u64, alive: &[bool]) -> Option<usize> {
    let mut best: Option<(u64, usize)> = None;
    for (i, &up) in alive.iter().enumerate() {
        if !up {
            continue;
        }
        let w = mix(hash ^ mix(i as u64 + 1));
        if best.is_none_or(|(bw, _)| w > bw) {
            best = Some((w, i));
        }
    }
    best.map(|(_, i)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_len_mirrors_prefix_index_rule() {
        // block_rows 4: a 9-token prompt has 2 whole blocks strictly below
        // its length (8 tokens); an exact multiple keeps one token out.
        assert_eq!(chunk_len(9, 4, 8), 8);
        assert_eq!(chunk_len(8, 4, 8), 4);
        assert_eq!(chunk_len(4, 4, 8), 0);
        assert_eq!(chunk_len(3, 4, 8), 0);
        assert_eq!(chunk_len(0, 4, 8), 0);
        // The cap bounds long prompts to the template-sized chunk.
        assert_eq!(chunk_len(1000, 4, 2), 8);
    }

    #[test]
    fn shared_templates_share_a_hash_and_a_home() {
        let template: Vec<usize> = (0..12).collect();
        let mut a = template.clone();
        a.extend([30, 31]);
        let mut b = template.clone();
        b.extend([7]);
        let ha = prefix_hash(&a, 4, 3).unwrap();
        let hb = prefix_hash(&b, 4, 3).unwrap();
        assert_eq!(ha, hb, "same leading chunk, same hash");
        let alive = vec![true; 4];
        assert_eq!(rendezvous_pick(ha, &alive), rendezvous_pick(hb, &alive));
    }

    #[test]
    fn short_prompts_have_no_affinity() {
        assert_eq!(prefix_hash(&[1, 2, 3], 4, 3), None);
    }

    #[test]
    fn replica_death_only_remaps_the_dead_replicas_prefixes() {
        let alive4 = vec![true; 4];
        let mut alive3 = alive4.clone();
        alive3[2] = false;
        let mut moved = 0;
        let mut stayed = 0;
        for seed in 0..256u64 {
            let prompt: Vec<usize> = (0..16).map(|i| (seed as usize * 31 + i) % 97).collect();
            let h = prefix_hash(&prompt, 4, 4).unwrap();
            let before = rendezvous_pick(h, &alive4).unwrap();
            let after = rendezvous_pick(h, &alive3).unwrap();
            assert_ne!(after, 2, "dead replica never picked");
            if before == 2 {
                moved += 1;
            } else {
                assert_eq!(before, after, "surviving assignments are stable");
                stayed += 1;
            }
        }
        assert!(moved > 0, "some prefixes lived on the dead replica");
        assert!(stayed > moved, "most assignments survive a death");
    }

    #[test]
    fn rendezvous_spreads_across_replicas() {
        let alive = vec![true; 3];
        let mut counts = [0usize; 3];
        for seed in 0..300u64 {
            let prompt: Vec<usize> = (0..8)
                .map(|i| (seed as usize * 131 + i * 7) % 101)
                .collect();
            let h = prefix_hash(&prompt, 4, 2).unwrap();
            counts[rendezvous_pick(h, &alive).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 40, "replica {i} got only {c}/300 assignments");
        }
    }

    #[test]
    fn no_live_replica_yields_none() {
        assert_eq!(rendezvous_pick(42, &[false, false]), None);
        assert_eq!(rendezvous_pick(42, &[]), None);
    }
}
