//! Loopback smoke test of the `serve` binary: spawn it on an ephemeral
//! port, round-trip one generate and one MCQ request over the JSONL wire
//! protocol, verify the generate tokens against the in-process
//! single-sequence sampler, then shut the server down cleanly.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use infuserki_nn::{sampler, NoHook};
use infuserki_serve::demo_model;
use infuserki_tensor::kernels;
use serde::Value;

struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn as_usize_vec(v: &Value) -> Vec<usize> {
    match v {
        Value::Array(items) => items
            .iter()
            .map(|x| x.as_f64().expect("token is a number") as usize)
            .collect(),
        other => panic!("expected array, got {other:?}"),
    }
}

#[test]
fn loopback_generate_and_mcq_round_trip() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--demo", "--port", "0", "--threads", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve binary spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut guard = ServerGuard(child);

    // The binary prints `LISTENING <addr>` once the port is bound.
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before listening")
            .expect("stdout readable");
        if let Some(rest) = line.strip_prefix("LISTENING ") {
            break rest.trim().to_string();
        }
    };

    let stream = TcpStream::connect(&addr).expect("loopback connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    writer
        .write_all(
            b"{\"op\":\"generate\",\"id\":1,\"prompt\":[1,2,3],\"max_new\":6}\n\
              {\"op\":\"mcq\",\"id\":2,\"prompt\":[4,5],\"options\":[[6],[7,8],[9,10,11]]}\n",
        )
        .unwrap();
    writer.flush().unwrap();

    // Responses arrive in completion order; match on id.
    let mut generate_tokens = None;
    let mut mcq_best = None;
    while generate_tokens.is_none() || mcq_best.is_none() {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        let v: Value = serde_json::from_str(line.trim()).expect("response parses");
        assert_eq!(
            v.get_field("status").and_then(Value::as_str),
            Some("ok"),
            "unexpected response: {line}"
        );
        match v
            .get_field("id")
            .and_then(Value::as_f64)
            .map(|id| id as u64)
        {
            Some(1) => {
                generate_tokens = Some(as_usize_vec(v.get_field("tokens").unwrap()));
            }
            Some(2) => {
                let probs = v.get_field("probabilities").expect("probabilities field");
                let n = match probs {
                    Value::Array(items) => items.len(),
                    _ => 0,
                };
                assert_eq!(n, 3);
                mcq_best = Some(v.get_field("best").unwrap().as_f64().unwrap() as usize);
            }
            other => panic!("unexpected response id {other:?} in {line}"),
        }
    }

    // The served tokens must equal the single-sequence sampler on the same
    // deterministic demo model (the binary ran with one kernel thread).
    kernels::set_num_threads(1);
    let model = demo_model();
    let want = sampler::greedy_decode(&model, &NoHook, &[1, 2, 3], 6, None);
    assert_eq!(generate_tokens.unwrap(), want);
    let scores = sampler::score_options(
        &model,
        &NoHook,
        &[4, 5],
        &[vec![6], vec![7, 8], vec![9, 10, 11]],
    );
    let probs = sampler::option_probabilities(&scores, &[1, 2, 3]);
    assert_eq!(mcq_best.unwrap(), sampler::argmax(&probs));

    // Metrics op answers with a snapshot object.
    writer.write_all(b"{\"op\":\"metrics\"}\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim()).unwrap();
    assert_eq!(
        v.get_field("status").and_then(Value::as_str),
        Some("metrics")
    );
    let metrics = v.get_field("metrics").expect("metrics object");
    let field = |name: &str| -> f64 {
        metrics
            .get_field(name)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("metrics field {name} missing in {line}"))
    };
    let completed = field("completed");
    assert!(completed >= 2.0, "both requests completed, got {completed}");
    // Registry-backed values: TTFT percentiles come from the scheduler's
    // histogram (one sample per finished request) and queue depth from its
    // gauge — the queue must be empty again after both responses arrived.
    assert!(
        field("ttft_samples") >= 2.0,
        "each request records one TTFT sample"
    );
    assert!(field("ttft_p50_ms") > 0.0, "TTFT median must be positive");
    assert!(field("ttft_p99_ms") >= field("ttft_p50_ms"));
    assert_eq!(field("queue_depth"), 0.0, "queue drained");
    assert_eq!(field("cancelled_queued"), 0.0);

    // Clean shutdown: ack line, then the process exits on its own.
    writer.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim()).unwrap();
    assert_eq!(
        v.get_field("status").and_then(Value::as_str),
        Some("shutting_down")
    );
    drop(writer);
    drop(reader);

    let status = wait_with_timeout(&mut guard.0, Duration::from_secs(30))
        .expect("serve exits after shutdown");
    assert!(status.success(), "serve exited with {status}");
}

fn wait_with_timeout(child: &mut Child, timeout: Duration) -> Option<std::process::ExitStatus> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        if let Ok(Some(status)) = child.try_wait() {
            return Some(status);
        }
        if std::time::Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
