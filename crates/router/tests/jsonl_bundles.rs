//! Loopback test of the knowledge-bundle wire ops: spawn the `serve`
//! binary with a `--bundle` staged at startup, then drive
//! `list_bundles` / `promote` / `rollback` / pinned requests over the
//! JSONL protocol, verifying served tokens against the in-process
//! single-sequence sampler under the correct hook per phase.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use infuserki_core::{InfuserKiConfig, InfuserKiMethod, KnowledgeBundle};
use infuserki_nn::{sampler, NoHook, TransformerLm};
use infuserki_serve::demo_model;
use infuserki_tensor::kernels;
use serde::Value;

struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn as_usize_vec(v: &Value) -> Vec<usize> {
    match v {
        Value::Array(items) => items
            .iter()
            .map(|x| x.as_f64().expect("token is a number") as usize)
            .collect(),
        other => panic!("expected array, got {other:?}"),
    }
}

fn nudged_method(b: &TransformerLm) -> InfuserKiMethod {
    let mut c = InfuserKiConfig::for_model(b.n_layers());
    c.bottleneck = 4;
    c.infuser_hidden = 4;
    c.rc_dim = 8;
    let mut m = InfuserKiMethod::new(c, b, 5);
    m.visit_adapters_mut(&mut |p: &mut infuserki_tensor::Param| {
        for (i, w) in p.data_mut().data_mut().iter_mut().enumerate() {
            *w += 0.5 * ((i % 7) as f32 - 3.0);
        }
    });
    m
}

#[test]
fn loopback_bundle_ops_round_trip() {
    // Bake a bundle against the same deterministic demo model the binary
    // will serve.
    let model = demo_model();
    let bundle_path = std::env::temp_dir().join(format!(
        "infuserki_jsonl_bundle_{}.bundle.json",
        std::process::id()
    ));
    KnowledgeBundle::new("wire-k1", nudged_method(&model), &model, None, Vec::new())
        .unwrap()
        .save(&bundle_path)
        .unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--demo", "--port", "0", "--threads", "1"])
        .arg("--bundle")
        .arg(&bundle_path)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve binary spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut guard = ServerGuard(child);

    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before listening")
            .expect("stdout readable");
        if let Some(rest) = line.strip_prefix("LISTENING ") {
            break rest.trim().to_string();
        }
    };

    let stream = TcpStream::connect(&addr).expect("loopback connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut send = |line: &str| {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
    };
    let mut recv = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        let v: Value = serde_json::from_str(line.trim()).expect("response parses");
        (v, line)
    };
    let status = |v: &Value| -> String {
        v.get_field("status")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string()
    };

    // --bundle staged version 1 and promoted it before listening.
    send(r#"{"op":"list_bundles"}"#);
    let (v, line) = recv();
    assert_eq!(status(&v), "bundles", "{line}");
    let bundles = match v.get_field("bundles") {
        Some(Value::Array(items)) => items.clone(),
        other => panic!("bundles array missing: {other:?}"),
    };
    assert_eq!(bundles.len(), 2, "{line}");
    assert_eq!(
        bundles[1].get_field("name").and_then(Value::as_str),
        Some("wire-k1")
    );
    assert_eq!(bundles[1].get_field("active"), Some(&Value::Bool(true)));

    // Unpinned runs on v1; "bundle":0 pins the base.
    kernels::set_num_threads(1);
    let method = nudged_method(&model);
    let want_v1 = sampler::greedy_decode(&model, &method.hook(), &[1, 2, 3], 6, None);
    let want_v0 = sampler::greedy_decode(&model, &NoHook, &[1, 2, 3], 6, None);
    assert_ne!(want_v1, want_v0, "bundle must observably change the output");

    send(r#"{"op":"generate","id":1,"prompt":[1,2,3],"max_new":6}"#);
    let (v, line) = recv();
    assert_eq!(status(&v), "ok", "{line}");
    assert_eq!(as_usize_vec(v.get_field("tokens").unwrap()), want_v1);

    send(r#"{"op":"generate","id":2,"prompt":[1,2,3],"max_new":6,"bundle":0}"#);
    let (v, line) = recv();
    assert_eq!(status(&v), "ok", "{line}");
    assert_eq!(as_usize_vec(v.get_field("tokens").unwrap()), want_v0);

    // A pin to a version that was never loaded is a typed rejection.
    send(r#"{"op":"generate","id":3,"prompt":[1,2,3],"max_new":6,"bundle":9}"#);
    let (v, line) = recv();
    assert_eq!(status(&v), "rejected", "{line}");
    assert_eq!(
        v.get_field("reason").and_then(Value::as_str),
        Some("unknown_bundle"),
        "{line}"
    );

    // Rollback restores the base for unpinned traffic.
    send(r#"{"op":"rollback"}"#);
    let (v, line) = recv();
    assert_eq!(status(&v), "rolled_back", "{line}");
    assert_eq!(v.get_field("version").and_then(Value::as_f64), Some(0.0));
    send(r#"{"op":"generate","id":4,"prompt":[1,2,3],"max_new":6}"#);
    let (v, _) = recv();
    assert_eq!(as_usize_vec(v.get_field("tokens").unwrap()), want_v0);

    // Promote it back; control errors carry slugs.
    send(r#"{"op":"promote","version":1}"#);
    let (v, line) = recv();
    assert_eq!(status(&v), "promoted", "{line}");
    send(r#"{"op":"promote","version":42}"#);
    let (v, line) = recv();
    assert_eq!(status(&v), "control_error", "{line}");
    assert_eq!(
        v.get_field("error").and_then(Value::as_str),
        Some("unknown_version")
    );

    // The metrics snapshot carries the bundle dimensions.
    send(r#"{"op":"metrics"}"#);
    let (v, line) = recv();
    let metrics = v.get_field("metrics").expect("metrics object");
    let field = |name: &str| -> f64 {
        metrics
            .get_field(name)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("metrics field {name} missing in {line}"))
    };
    assert_eq!(field("bundle_active_version"), 1.0);
    assert!(field("bundle_swaps") >= 2.0, "startup promote + re-promote");
    assert_eq!(field("bundle_rollbacks"), 1.0);
    assert_eq!(field("bundle_rejected_promotions"), 0.0);

    send(r#"{"op":"shutdown"}"#);
    let (v, _) = recv();
    assert_eq!(status(&v), "shutting_down");
    drop(reader);

    let status = wait_with_timeout(&mut guard.0, Duration::from_secs(30))
        .expect("serve exits after shutdown");
    assert!(status.success(), "serve exited with {status}");
    let _ = std::fs::remove_file(&bundle_path);
}

fn wait_with_timeout(child: &mut Child, timeout: Duration) -> Option<std::process::ExitStatus> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        if let Ok(Some(status)) = child.try_wait() {
            return Some(status);
        }
        if std::time::Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
