//! End-to-end acceptance test for `serve --watch-kg`: a fact that did NOT
//! exist when the process started is appended to the WAL (as a separate
//! writer, exactly like `kg_ingest` would), the in-process pipeline trains
//! and publishes a bundle through the NR gate, and the fact becomes
//! answerable over the JSONL wire — while in-flight requests keep
//! completing, none dropped.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use infuserki_core::{InfuserKiConfig, KnowledgeBundle, TrainConfig};
use infuserki_ingest::{AppendOutcome, DurableStore, PipelineConfig, StoreOptions, TripleDelta};
use infuserki_kg::{synth_umls, TripleStore, UmlsConfig};
use infuserki_nn::{ModelConfig, TransformerLm};
use infuserki_text::{prompts, templates::TemplateSet, Tokenizer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Value;

struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn tiny_world() -> (TransformerLm, Tokenizer, TripleStore) {
    let store = synth_umls(&UmlsConfig::with_triplets(40, 19));
    let mut lines: Vec<String> = store.entity_names().map(str::to_string).collect();
    for r in store.relation_names() {
        lines.extend(TemplateSet::vocabulary_lines(r));
    }
    lines.extend(prompts::vocabulary_lines());
    let tok = Tokenizer::build(lines.iter().map(String::as_str));
    let mut rng = ChaCha8Rng::seed_from_u64(91);
    let base = TransformerLm::new(
        ModelConfig {
            vocab_size: tok.vocab_size(),
            max_seq: 96,
            ..ModelConfig::tiny(0)
        },
        &mut rng,
    );
    (base, tok, store)
}

fn pipeline_cfg(bundle_dir: &std::path::Path) -> PipelineConfig {
    let mut method = InfuserKiConfig::for_model(2);
    method.bottleneck = 4;
    method.infuser_hidden = 4;
    method.rc_dim = 8;
    PipelineConfig {
        min_batch: 2,
        max_age_ms: 120_000,
        poll_ms: 40,
        max_relations: 24,
        method: Some(method),
        bundle_dir: bundle_dir.display().to_string(),
        name_prefix: "live".to_string(),
        train: TrainConfig {
            epochs_infuser: 6,
            epochs_qa: 24,
            epochs_rc: 2,
            lr: 3e-3,
            lr_infuser: 2e-2,
            batch: 4,
            seed: 11,
        },
        ..PipelineConfig::default()
    }
}

/// Appends `n` facts that are not yet live (known names, so in-vocabulary
/// and trainable); earlier appends are duplicates and auto-rejected.
fn append_novel(ds: &mut DurableStore, world: &TripleStore, n: usize) -> usize {
    let names: Vec<&str> = world.entity_names().collect();
    let rel = world.relation_name(world.triples()[0].relation);
    let mut appended = 0;
    'outer: for (i, &s) in names.iter().enumerate() {
        for &o in names.iter().skip(i + 1) {
            if appended == n {
                break 'outer;
            }
            if let AppendOutcome::Accepted(_) = ds.append(&TripleDelta::add(s, rel, o)).unwrap() {
                appended += 1;
            }
        }
    }
    ds.sync().unwrap();
    appended
}

fn tokens_json(ts: &[usize]) -> String {
    let inner: Vec<String> = ts.iter().map(|t| t.to_string()).collect();
    format!("[{}]", inner.join(","))
}

#[test]
fn wal_append_becomes_answerable_through_live_serve() {
    let dir = std::env::temp_dir().join(format!("infuserki_watch_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let wal_dir = dir.join("wal");
    let bundle_dir = dir.join("bundles");
    std::fs::create_dir_all(&wal_dir).unwrap();

    let (base, tok, world) = tiny_world();
    let model_path = dir.join("model.json");
    base.save(&model_path).unwrap();
    let tok_path = dir.join("tokenizer.json");
    std::fs::write(&tok_path, serde_json::to_string(&tok).unwrap()).unwrap();
    let cfg_path = dir.join("pipeline.json");
    std::fs::write(
        &cfg_path,
        serde_json::to_string(&pipeline_cfg(&bundle_dir)).unwrap(),
    )
    .unwrap();

    // The baseline world goes into the WAL before the server exists — the
    // pipeline recovers it at startup and only trains on what lands later.
    let opts = StoreOptions {
        functional: false,
        ..StoreOptions::default()
    };
    let mut ds = DurableStore::open(&wal_dir, opts.clone()).unwrap();
    for t in world.triples() {
        ds.append(&TripleDelta::add(
            world.entity_name(t.head),
            world.relation_name(t.relation),
            world.entity_name(t.tail),
        ))
        .unwrap();
    }
    ds.sync().unwrap();
    drop(ds);

    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--port", "0", "--threads", "1"])
        .arg("--model")
        .arg(&model_path)
        .arg("--watch-kg")
        .arg(&wal_dir)
        .arg("--watch-tokenizer")
        .arg(&tok_path)
        .arg("--watch-config")
        .arg(&cfg_path)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("serve binary spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut guard = ServerGuard(child);

    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before listening")
            .expect("stdout readable");
        if let Some(rest) = line.strip_prefix("LISTENING ") {
            break rest.trim().to_string();
        }
    };

    let stream = TcpStream::connect(&addr).expect("loopback connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut send = |line: &str| {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
    };
    let mut recv = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        let v: Value = serde_json::from_str(line.trim()).expect("response parses");
        (v, line)
    };
    let status = |v: &Value| -> String {
        v.get_field("status")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string()
    };

    // Only the base exists at startup: no --bundle, nothing published yet.
    send(r#"{"op":"list_bundles"}"#);
    let (v, line) = recv();
    assert_eq!(status(&v), "bundles", "{line}");
    let count = |v: &Value| match v.get_field("bundles") {
        Some(Value::Array(items)) => items.len(),
        other => panic!("bundles array missing: {other:?}"),
    };
    assert_eq!(count(&v), 1, "{line}");

    // The new facts arrive exactly as `kg_ingest` would deliver them: a
    // second DurableStore writer on the same WAL directory.
    let mut ds = DurableStore::open(&wal_dir, opts).unwrap();
    assert_eq!(append_novel(&mut ds, &world, 2), 2);
    drop(ds);

    // Poll until the pipeline's bundle is active — every poll ALSO runs a
    // generate request, so live traffic is in flight across the hot-swap;
    // each one must come back terminal (zero dropped requests).
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut in_flight = 0u32;
    let active_version = loop {
        assert!(
            Instant::now() < deadline,
            "pipeline never published (after {in_flight} interleaved requests)"
        );
        send(&format!(
            r#"{{"op":"generate","id":{},"prompt":[1,2,3],"max_new":4}}"#,
            1000 + in_flight
        ));
        let (v, line) = recv();
        assert_eq!(status(&v), "ok", "in-flight generate dropped: {line}");
        in_flight += 1;

        send(r#"{"op":"list_bundles"}"#);
        let (v, _) = recv();
        let active = match v.get_field("bundles") {
            Some(Value::Array(items)) => items
                .iter()
                .find(|b| {
                    b.get_field("active") == Some(&Value::Bool(true))
                        && b.get_field("version").and_then(Value::as_f64) != Some(0.0)
                })
                .cloned(),
            other => panic!("bundles array missing: {other:?}"),
        };
        if let Some(b) = active {
            break b.get_field("version").and_then(Value::as_f64).unwrap();
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    assert_eq!(active_version, 1.0, "first published round is version 1");
    assert!(in_flight >= 1, "traffic overlapped the publish");

    // The published artifact carries gate probes phrased from the NEW
    // facts; ask the served process the first one over the wire. The base
    // model has never seen these triplets — only the just-promoted bundle
    // can answer, so `best` proves the update is live.
    let bundle = KnowledgeBundle::load(bundle_dir.join("live-r1.json")).unwrap();
    assert!(
        !bundle.gate_probes.is_empty(),
        "published bundle carries probes"
    );
    let stamp = bundle.stamp.expect("pipeline stamps bundles");
    assert_eq!(stamp.rr, 1.0, "round mastered its new facts");
    for (i, probe) in bundle.gate_probes.iter().enumerate() {
        let options: Vec<String> = probe.options.iter().map(|o| tokens_json(o)).collect();
        send(&format!(
            r#"{{"op":"mcq","id":{},"prompt":{},"options":[{}]}}"#,
            2000 + i,
            tokens_json(&probe.prompt),
            options.join(",")
        ));
        let (v, line) = recv();
        assert_eq!(status(&v), "ok", "{line}");
        assert_eq!(
            v.get_field("best").and_then(Value::as_f64),
            Some(probe.correct as f64),
            "new fact answered wrong over the wire: {line}"
        );
    }

    // The incremental report landed next to the bundle (operational
    // provenance for the round).
    assert!(
        bundle_dir.join("live-r1.report.json").exists(),
        "report persisted next to the bundle"
    );

    send(r#"{"op":"shutdown"}"#);
    let (v, _) = recv();
    assert_eq!(status(&v), "shutting_down");
    drop(reader);

    let status = wait_with_timeout(&mut guard.0, Duration::from_secs(60))
        .expect("serve exits after shutdown");
    assert!(status.success(), "serve exited with {status}");
    let _ = std::fs::remove_dir_all(&dir);
}

fn wait_with_timeout(child: &mut Child, timeout: Duration) -> Option<std::process::ExitStatus> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        if let Ok(Some(status)) = child.try_wait() {
            return Some(status);
        }
        if std::time::Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
