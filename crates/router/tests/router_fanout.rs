//! Fan-out edge cases of the multi-replica router: tenant fairness under an
//! aggressive tenant, replica death mid-request, and all-or-none group
//! promotion with an injected partial failure.

use std::sync::{mpsc, Mutex};
use std::time::Duration;

use infuserki_core::{InfuserKiConfig, InfuserKiMethod, KnowledgeBundle};
use infuserki_nn::{sampler, LayerHook, NoHook, TransformerLm};
use infuserki_router::{affinity, spawn_router, RouterConfig};
use infuserki_serve::{
    demo_model, ControlError, GenerateSpec, Outcome, RejectReason, RequestKind, ServeConfig,
    SubmitOpts,
};
use infuserki_tensor::kernels;

/// The kernel thread override is process-global; tests that pin it
/// serialize behind this lock.
static THREADS: Mutex<()> = Mutex::new(());

fn fleet_cfg(replicas: usize) -> RouterConfig {
    RouterConfig {
        replicas,
        serve: ServeConfig {
            block_rows: 4,
            ..ServeConfig::default()
        },
        ..RouterConfig::default()
    }
}

fn gen(prompt: Vec<usize>, max_new: usize) -> RequestKind {
    RequestKind::Generate(GenerateSpec::greedy(prompt, max_new, None))
}

/// A hook that slows every forward down without changing any output, so
/// tests can reliably catch requests mid-decode.
struct SlowHook(Duration);

impl LayerHook for SlowHook {
    fn infer_attn_q_delta(
        &self,
        _layer: usize,
        _x: &infuserki_tensor::Matrix,
    ) -> Option<infuserki_tensor::Matrix> {
        std::thread::sleep(self.0);
        None
    }
}

/// An aggressive tenant floods 30 requests before a polite tenant submits
/// 4. Round-robin fair share must interleave the polite tenant's requests
/// near the front instead of behind the whole backlog.
#[test]
fn aggressive_tenant_cannot_starve_polite_tenant() {
    let cfg = RouterConfig {
        // A small in-flight cap keeps the aggressive backlog parked in its
        // tenant queue, where the fair-share drain (not arrival order)
        // decides what goes next.
        max_tenant_inflight: 2,
        ..fleet_cfg(1)
    };
    let (client, handle) = spawn_router(cfg, |_| (demo_model(), NoHook)).unwrap();
    // One shared response channel: responses arrive in completion order.
    let (tx, rx) = mpsc::channel();
    let n_big = 30u64;
    for id in 0..n_big {
        client
            .submit_with_sender(
                id,
                gen(vec![1 + (id as usize % 5), 2, 3], 6),
                SubmitOpts::default(),
                Some("aggressive"),
                tx.clone(),
            )
            .unwrap();
    }
    let polite_ids: Vec<u64> = (1000..1004).collect();
    for &id in &polite_ids {
        client
            .submit_with_sender(
                id,
                gen(vec![7, 8, 9], 6),
                SubmitOpts::default(),
                Some("polite"),
                tx.clone(),
            )
            .unwrap();
    }
    let total = n_big as usize + polite_ids.len();
    let mut order = Vec::with_capacity(total);
    for _ in 0..total {
        let resp = rx.recv_timeout(Duration::from_secs(60)).unwrap();
        assert!(
            matches!(resp.outcome, Outcome::Generated { .. }),
            "request {} failed: {:?}",
            resp.id,
            resp.outcome
        );
        order.push(resp.id);
    }
    let last_polite = order
        .iter()
        .enumerate()
        .filter(|(_, id)| polite_ids.contains(id))
        .map(|(pos, _)| pos)
        .max()
        .unwrap();
    // Without fair share the polite tenant would finish in the last 4
    // slots (positions 30..34). Round-robin must pull all of its requests
    // well into the first half.
    assert!(
        last_polite < total / 2,
        "polite tenant's last completion at position {last_polite}/{total}: starved \
         (order {order:?})"
    );
    handle.shutdown();
}

/// Kill a replica while it is mid-decode: its in-flight request must come
/// back as the typed `ReplicaFailed` rejection, the survivor's request
/// must complete correctly, and new traffic keeps being served.
#[test]
fn replica_death_mid_request_fails_typed_and_survivors_serve() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let cfg = fleet_cfg(2);
    let block_rows = cfg.serve.block_rows;
    let affinity_blocks = cfg.affinity_blocks;
    let (client, handle) =
        spawn_router(cfg, |_| (demo_model(), SlowHook(Duration::from_millis(2)))).unwrap();
    // Build one prompt homed on each replica, so we know exactly which
    // request dies and which survives.
    let alive = vec![true, true];
    let mut homed: [Option<Vec<usize>>; 2] = [None, None];
    'outer: for seed in 0..64usize {
        let prompt: Vec<usize> = (0..9).map(|i| (seed * 13 + i) % 32).collect();
        let h = affinity::prefix_hash(&prompt, block_rows, affinity_blocks).unwrap();
        let home = affinity::rendezvous_pick(h, &alive).unwrap();
        if homed[home].is_none() {
            homed[home] = Some(prompt);
            if homed.iter().all(Option::is_some) {
                break 'outer;
            }
        }
    }
    let doomed_prompt = homed[0].clone().expect("a prompt homed on replica 0");
    let safe_prompt = homed[1].clone().expect("a prompt homed on replica 1");
    let doomed = client
        .submit(gen(doomed_prompt, 48), SubmitOpts::default(), None)
        .unwrap();
    let safe = client
        .submit(gen(safe_prompt.clone(), 48), SubmitOpts::default(), None)
        .unwrap();
    // Let both dispatch and enter decode (SlowHook stretches each forward),
    // then kill replica 0 under them.
    std::thread::sleep(Duration::from_millis(40));
    client.kill_replica(0);
    match doomed.wait().unwrap() {
        Outcome::Rejected(RejectReason::ReplicaFailed) => {}
        other => panic!("doomed request got {other:?}, wanted ReplicaFailed"),
    }
    let reference = demo_model();
    match safe.wait().unwrap() {
        Outcome::Generated { tokens } => {
            // SlowHook only sleeps; outputs are identical to the bare model.
            let want = sampler::greedy_decode(&reference, &NoHook, &safe_prompt, 48, None);
            assert_eq!(tokens, want, "survivor's response must be unaffected");
        }
        other => panic!("safe request got {other:?}"),
    }
    assert_eq!(client.replicas_alive(), 1);
    assert!(client.metrics().failed_replica.get() >= 1);
    // New traffic — including prompts whose affinity home was the dead
    // replica — keeps being served by the survivor.
    let after = client
        .submit(
            gen(vec![3, 1, 4, 1, 5, 9, 2, 6, 5], 4),
            SubmitOpts::default(),
            None,
        )
        .unwrap();
    assert!(matches!(after.wait().unwrap(), Outcome::Generated { .. }));
    handle.shutdown();
    kernels::set_num_threads(0);
}

fn nudged_method(b: &TransformerLm) -> InfuserKiMethod {
    let mut c = InfuserKiConfig::for_model(b.n_layers());
    c.bottleneck = 4;
    c.infuser_hidden = 4;
    c.rc_dim = 8;
    let mut m = InfuserKiMethod::new(c, b, 5);
    m.visit_adapters_mut(&mut |p: &mut infuserki_tensor::Param| {
        for (i, w) in p.data_mut().data_mut().iter_mut().enumerate() {
            *w += 0.5 * ((i % 7) as f32 - 3.0);
        }
    });
    m
}

/// Inject a promote failure on one replica of three: the fleet must roll
/// the already-promoted replicas back (all-or-none), keep serving the base
/// everywhere, and then promote cleanly once the fault is gone.
#[test]
fn partial_promotion_failure_rolls_the_whole_group_back() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let model = demo_model();
    let bundle_path = std::env::temp_dir().join(format!(
        "infuserki_router_fanout_{}.bundle.json",
        std::process::id()
    ));
    KnowledgeBundle::new("fanout-k1", nudged_method(&model), &model, None, Vec::new())
        .unwrap()
        .save(&bundle_path)
        .unwrap();
    let (client, handle) = spawn_router(fleet_cfg(3), |_| (demo_model(), NoHook)).unwrap();
    let info = client.load_bundle(bundle_path.to_str().unwrap()).unwrap();
    assert_eq!(info.version, 1, "staged on every replica as version 1");

    // Promote with a fault injected at replica 2: replicas 0 and 1 promote
    // first, then the fault refuses — the group must roll back.
    let err = client.promote_with_fault(info.version, 2).unwrap_err();
    assert!(
        matches!(err, ControlError::UnknownVersion(_)),
        "fault surfaces as the refusing replica's error, got {err:?}"
    );
    assert_eq!(client.metrics().group_rollbacks.get(), 1);

    // No replica serves v1: unpinned traffic still gets base-model tokens
    // (bitwise at one kernel thread), on every replica.
    let method = nudged_method(&model);
    let prompt = vec![1usize, 2, 3];
    let want_base = sampler::greedy_decode(&model, &NoHook, &prompt, 6, None);
    let want_v1 = sampler::greedy_decode(&model, &method.hook(), &prompt, 6, None);
    assert_ne!(want_base, want_v1, "bundle must observably change output");
    for _ in 0..6 {
        let h = client
            .submit(gen(prompt.clone(), 6), SubmitOpts::default(), None)
            .unwrap();
        match h.wait().unwrap() {
            Outcome::Generated { tokens } => assert_eq!(
                tokens, want_base,
                "a replica served the half-promoted bundle after group rollback"
            ),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    let listed = client.list_bundles().unwrap();
    assert!(
        listed.iter().all(|b| !(b.version == 1 && b.active)),
        "v1 still active somewhere after rollback: {listed:?}"
    );

    // Without the fault the same promote lands fleet-wide.
    client.promote(info.version).unwrap();
    for _ in 0..6 {
        let h = client
            .submit(gen(prompt.clone(), 6), SubmitOpts::default(), None)
            .unwrap();
        match h.wait().unwrap() {
            Outcome::Generated { tokens } => assert_eq!(tokens, want_v1),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    handle.shutdown();
    let _ = std::fs::remove_file(&bundle_path);
    kernels::set_num_threads(0);
}
